//! Training loop with best-validation-epoch model selection.
//!
//! The paper trains for up to 200 epochs but keeps "the ML model weights
//! after a specific epoch that give best validation set performance"
//! (Sec. 4).  [`Trainer`] implements exactly that: mini-batch training with
//! a caller-supplied optimizer, per-epoch validation MSE, and restoration of
//! the best snapshot at the end.

use crate::loss::{mse, mse_value};
use crate::model::Sequential;
use crate::optim::Optimizer;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shuffle seed (the data order is the only source of randomness in the
    /// loop itself).
    pub shuffle_seed: u64,
    /// If `true`, keep the weights of the epoch with the lowest validation
    /// MSE (the paper's model selection); otherwise keep the final weights.
    pub keep_best_validation_epoch: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 200,
            batch_size: 16,
            shuffle_seed: 0,
            keep_best_validation_epoch: true,
        }
    }
}

/// Per-epoch training history and the selected epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Training loss after each epoch.
    pub train_loss: Vec<f32>,
    /// Validation loss after each epoch.
    pub val_loss: Vec<f32>,
    /// Index of the epoch whose weights were kept.
    pub best_epoch: usize,
    /// Validation loss of the kept epoch.
    pub best_val_loss: f32,
}

/// Mini-batch trainer.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `model` on `(train_x, train_y)`, evaluating on
    /// `(val_x, val_y)` after every epoch.
    ///
    /// Inputs are batch tensors (first dimension = sample index).  Returns
    /// the training history; the model is left holding either the best-
    /// validation or the final weights according to the configuration.
    pub fn fit<O: Optimizer>(
        &self,
        model: &mut Sequential,
        optimizer: &mut O,
        train_x: &Tensor,
        train_y: &Tensor,
        val_x: &Tensor,
        val_y: &Tensor,
    ) -> TrainReport {
        let n = train_x.batch_size();
        assert_eq!(n, train_y.batch_size(), "training set size mismatch");
        assert!(n > 0, "empty training set");
        let mut rng = StdRng::seed_from_u64(self.config.shuffle_seed);
        let mut indices: Vec<usize> = (0..n).collect();

        let mut report = TrainReport {
            train_loss: Vec::with_capacity(self.config.epochs),
            val_loss: Vec::with_capacity(self.config.epochs),
            best_epoch: 0,
            best_val_loss: f32::INFINITY,
        };
        let mut best_state: Option<Vec<Vec<f32>>> = None;

        for epoch in 0..self.config.epochs {
            indices.shuffle(&mut rng);
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for chunk in indices.chunks(self.config.batch_size.max(1)) {
                let xb = train_x.select_batch(chunk);
                let yb = train_y.select_batch(chunk);
                model.zero_grad();
                let pred = model.forward(&xb, true);
                let (loss, grad) = mse(&pred, &yb);
                model.backward(&grad);
                model.step(optimizer);
                epoch_loss += loss;
                batches += 1;
            }
            let train_loss = epoch_loss / batches.max(1) as f32;
            let val_loss = if val_x.batch_size() > 0 {
                mse_value(&model.forward(val_x, false), val_y)
            } else {
                train_loss
            };
            report.train_loss.push(train_loss);
            report.val_loss.push(val_loss);

            if val_loss < report.best_val_loss {
                report.best_val_loss = val_loss;
                report.best_epoch = epoch;
                if self.config.keep_best_validation_epoch {
                    best_state = Some(model.state());
                }
            }
        }

        if let (true, Some(state)) = (self.config.keep_best_validation_epoch, best_state) {
            model.load_state(&state);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::optim::Nadam;
    use rand::Rng;

    fn toy_dataset(n: usize, seed: u64) -> (Tensor, Tensor) {
        // y = sin-ish smooth function of 2 inputs, learnable by a small MLP.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f32 = rng.gen_range(-1.0..1.0);
            let b: f32 = rng.gen_range(-1.0..1.0);
            xs.push(vec![a, b]);
            ys.push(vec![0.5 * a - 0.3 * b + 0.2 * a * b]);
        }
        (Tensor::stack(&xs, &[2]), Tensor::stack(&ys, &[1]))
    }

    fn mlp(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new()
            .add(Dense::new(2, 16, &mut rng))
            .add(Relu::new())
            .add(Dense::new(16, 1, &mut rng))
    }

    #[test]
    fn training_improves_validation_loss() {
        let (tx, ty) = toy_dataset(128, 0);
        let (vx, vy) = toy_dataset(32, 1);
        let mut model = mlp(7);
        let mut opt = Nadam::new(0.01, 0.0);
        let trainer = Trainer::new(TrainConfig {
            epochs: 40,
            batch_size: 16,
            shuffle_seed: 3,
            keep_best_validation_epoch: true,
        });
        let report = trainer.fit(&mut model, &mut opt, &tx, &ty, &vx, &vy);
        assert_eq!(report.train_loss.len(), 40);
        assert!(
            report.best_val_loss < report.val_loss[0] * 0.2,
            "validation loss did not improve: first {} best {}",
            report.val_loss[0],
            report.best_val_loss
        );
    }

    #[test]
    fn best_epoch_weights_are_restored() {
        let (tx, ty) = toy_dataset(64, 2);
        let (vx, vy) = toy_dataset(32, 3);
        let mut model = mlp(11);
        let mut opt = Nadam::new(0.02, 0.0);
        let trainer = Trainer::new(TrainConfig {
            epochs: 25,
            batch_size: 8,
            shuffle_seed: 5,
            keep_best_validation_epoch: true,
        });
        let report = trainer.fit(&mut model, &mut opt, &tx, &ty, &vx, &vy);
        // The restored model must reproduce the best recorded validation loss.
        let final_val = mse_value(&model.forward(&vx, false), &vy);
        assert!(
            (final_val - report.best_val_loss).abs() < 1e-5,
            "restored model val loss {final_val} != best {}",
            report.best_val_loss
        );
        assert!(report.best_epoch < 25);
    }

    #[test]
    fn report_is_consistent() {
        let (tx, ty) = toy_dataset(32, 4);
        let (vx, vy) = toy_dataset(16, 5);
        let mut model = mlp(13);
        let mut opt = Nadam::new(0.01, 0.0);
        let trainer = Trainer::new(TrainConfig {
            epochs: 5,
            batch_size: 8,
            shuffle_seed: 1,
            keep_best_validation_epoch: false,
        });
        let report = trainer.fit(&mut model, &mut opt, &tx, &ty, &vx, &vy);
        let min_val = report
            .val_loss
            .iter()
            .cloned()
            .fold(f32::INFINITY, f32::min);
        assert_eq!(report.best_val_loss, min_val);
        assert_eq!(report.val_loss.len(), 5);
    }

    #[test]
    #[should_panic]
    fn empty_training_set_panics() {
        let trainer = Trainer::new(TrainConfig::default());
        let mut model = mlp(1);
        let mut opt = Nadam::paper_defaults();
        let empty_x = Tensor::zeros(&[0, 2]);
        let empty_y = Tensor::zeros(&[0, 1]);
        let _ = trainer.fit(&mut model, &mut opt, &empty_x, &empty_y, &empty_x, &empty_y);
    }
}
