//! Activation functions.
//!
//! The paper uses ReLU after every convolution and after the first dense
//! layer (Sec. 4).

use crate::layers::Layer;
use crate::tensor::Tensor;

/// Rectified linear unit applied element-wise.
#[derive(Clone)]
pub struct Relu {
    cached_mask: Vec<bool>,
    cached_shape: Vec<usize>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu {
            cached_mask: Vec::new(),
            cached_shape: Vec::new(),
        }
    }
}

impl Default for Relu {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Relu {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        self.cached_mask = input.data().iter().map(|&v| v > 0.0).collect();
        self.cached_shape = input.shape().to_vec();
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        Tensor::from_vec(
            input.shape(),
            input.data().iter().map(|&v| v.max(0.0)).collect(),
        )
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert_eq!(grad_output.len(), self.cached_mask.len());
        Tensor::from_vec(
            &self.cached_shape,
            grad_output
                .data()
                .iter()
                .zip(self.cached_mask.iter())
                .map(|(&g, &m)| if m { g } else { 0.0 })
                .collect(),
        )
    }

    fn name(&self) -> &'static str {
        "ReLU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(&[1, 4], vec![-1.0, 0.0, 0.5, 2.0]);
        let y = relu.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 0.0, 0.5, 2.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(&[1, 4], vec![-1.0, 3.0, -0.5, 2.0]);
        let _ = relu.forward(&x, true);
        let g = Tensor::from_vec(&[1, 4], vec![1.0, 1.0, 1.0, 1.0]);
        let gi = relu.backward(&g);
        assert_eq!(gi.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn zero_input_has_zero_gradient() {
        // The subgradient at exactly zero is taken as 0.
        let mut relu = Relu::new();
        let x = Tensor::from_vec(&[1, 1], vec![0.0]);
        let _ = relu.forward(&x, true);
        let gi = relu.backward(&Tensor::from_vec(&[1, 1], vec![7.0]));
        assert_eq!(gi.data(), &[0.0]);
    }
}
