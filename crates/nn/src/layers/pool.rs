//! Average and max pooling (square windows, stride = window size).
//!
//! The paper uses 2 × 2 *average* pooling throughout and notes that max
//! pooling performed slightly worse (Sec. 4); both are provided so the
//! ablation bench can reproduce that comparison.

use crate::layers::Layer;
use crate::tensor::Tensor;

/// 2-D average pooling with a square window and matching stride.
#[derive(Clone)]
pub struct AvgPool2d {
    window: usize,
    cached_shape: Vec<usize>,
}

impl AvgPool2d {
    /// Creates an average pooling layer with the given window size.
    pub fn new(window: usize) -> Self {
        assert!(window >= 1);
        AvgPool2d {
            window,
            cached_shape: Vec::new(),
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (h / self.window, w / self.window)
    }

    fn pool(&self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "AvgPool2d expects [N, C, H, W]");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let (oh, ow) = self.out_hw(h, w);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let win2 = (self.window * self.window) as f32;
        for i in 0..n {
            let item = input.item(i);
            let out_item = out.item_mut(i);
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for dy in 0..self.window {
                            for dx in 0..self.window {
                                acc += item[ch * h * w
                                    + (oy * self.window + dy) * w
                                    + ox * self.window
                                    + dx];
                            }
                        }
                        out_item[ch * oh * ow + oy * ow + ox] = acc / win2;
                    }
                }
            }
        }
        out
    }
}

impl Layer for AvgPool2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        let out = self.pool(input);
        self.cached_shape = input.shape().to_vec();
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        self.pool(input)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let shape = &self.cached_shape;
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let (oh, ow) = self.out_hw(h, w);
        let mut grad_input = Tensor::zeros(&[n, c, h, w]);
        let win2 = (self.window * self.window) as f32;
        for i in 0..n {
            let g = grad_output.item(i);
            let gi = grad_input.item_mut(i);
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let v = g[ch * oh * ow + oy * ow + ox] / win2;
                        for dy in 0..self.window {
                            for dx in 0..self.window {
                                gi[ch * h * w
                                    + (oy * self.window + dy) * w
                                    + ox * self.window
                                    + dx] += v;
                            }
                        }
                    }
                }
            }
        }
        grad_input
    }

    fn name(&self) -> &'static str {
        "AvgPool2d"
    }
}

/// 2-D max pooling with a square window and matching stride.
#[derive(Clone)]
pub struct MaxPool2d {
    window: usize,
    cached_shape: Vec<usize>,
    cached_argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max pooling layer with the given window size.
    pub fn new(window: usize) -> Self {
        assert!(window >= 1);
        MaxPool2d {
            window,
            cached_shape: Vec::new(),
            cached_argmax: Vec::new(),
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (h / self.window, w / self.window)
    }

    fn pool_with_argmax(&self, input: &Tensor) -> (Tensor, Vec<usize>) {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "MaxPool2d expects [N, C, H, W]");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let (oh, ow) = self.out_hw(h, w);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let mut argmax = vec![0; n * c * oh * ow];
        for i in 0..n {
            let item = input.item(i);
            let out_item = out.item_mut(i);
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dy in 0..self.window {
                            for dx in 0..self.window {
                                let idx = ch * h * w
                                    + (oy * self.window + dy) * w
                                    + ox * self.window
                                    + dx;
                                if item[idx] > best {
                                    best = item[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let out_idx = ch * oh * ow + oy * ow + ox;
                        out_item[out_idx] = best;
                        argmax[i * c * oh * ow + out_idx] = best_idx;
                    }
                }
            }
        }
        (out, argmax)
    }
}

impl Layer for MaxPool2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        let (out, argmax) = self.pool_with_argmax(input);
        self.cached_argmax = argmax;
        self.cached_shape = input.shape().to_vec();
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        self.pool_with_argmax(input).0
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let shape = &self.cached_shape;
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let (oh, ow) = self.out_hw(h, w);
        let mut grad_input = Tensor::zeros(&[n, c, h, w]);
        for i in 0..n {
            let g = grad_output.item(i);
            let gi = grad_input.item_mut(i);
            for (idx, &gval) in g[..c * oh * ow].iter().enumerate() {
                let src = self.cached_argmax[i * c * oh * ow + idx];
                gi[src] += gval;
            }
        }
        grad_input
    }

    fn name(&self) -> &'static str {
        "MaxPool2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Layer;

    #[test]
    fn avg_pool_averages_blocks() {
        let mut pool = AvgPool2d::new(2);
        let x = Tensor::from_vec(&[1, 1, 2, 4], vec![1.0, 3.0, 5.0, 7.0, 2.0, 4.0, 6.0, 8.0]);
        let y = pool.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 1, 2]);
        assert_eq!(y.data(), &[2.5, 6.5]);
    }

    #[test]
    fn avg_pool_backward_distributes_evenly() {
        let mut pool = AvgPool2d::new(2);
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let _ = pool.forward(&x, true);
        let g = Tensor::from_vec(&[1, 1, 1, 1], vec![4.0]);
        let gi = pool.backward(&g);
        assert_eq!(gi.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn max_pool_picks_maximum_and_routes_gradient() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 9.0, 3.0, 2.0]);
        let y = pool.forward(&x, true);
        assert_eq!(y.data(), &[9.0]);
        let g = Tensor::from_vec(&[1, 1, 1, 1], vec![5.0]);
        let gi = pool.backward(&g);
        assert_eq!(gi.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn odd_sizes_are_truncated() {
        let mut pool = AvgPool2d::new(2);
        let x = Tensor::zeros(&[1, 2, 5, 7]);
        let y = pool.forward(&x, true);
        assert_eq!(y.shape(), &[1, 2, 2, 3]);
        // Backward still produces a full-size gradient (zeros at truncated
        // edges).
        let gi = pool.backward(&Tensor::zeros(y.shape()));
        assert_eq!(gi.shape(), x.shape());
    }

    #[test]
    fn avg_and_max_agree_on_constant_input() {
        let x = Tensor::from_vec(&[1, 1, 4, 4], vec![0.7; 16]);
        let mut avg = AvgPool2d::new(2);
        let mut max = MaxPool2d::new(2);
        assert_eq!(avg.forward(&x, true).data(), max.forward(&x, true).data());
    }
}
