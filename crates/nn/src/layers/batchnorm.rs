//! Batch normalisation over the channel dimension of `[N, C, H, W]` inputs.
//!
//! The paper reports that *removing* the batch-normalisation layers of the
//! reference architecture from [13] did not change accuracy while reducing
//! training time (Sec. 4); the layer is provided so that the ablation bench
//! can reproduce that observation.

use crate::layers::Layer;
use crate::param::Parameter;
use crate::tensor::Tensor;

/// Batch normalisation with learnable per-channel scale and shift.
#[derive(Clone)]
pub struct BatchNorm2d {
    channels: usize,
    epsilon: f32,
    momentum: f32,
    gamma: Parameter,
    beta: Parameter,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    // Cached values for backward.
    cached_input: Option<Tensor>,
    cached_mean: Vec<f32>,
    cached_var: Vec<f32>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for the given number of channels.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            channels,
            epsilon: 1e-5,
            momentum: 0.1,
            gamma: Parameter::new(vec![1.0; channels]),
            beta: Parameter::new(vec![0.0; channels]),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            cached_input: None,
            cached_mean: vec![0.0; channels],
            cached_var: vec![1.0; channels],
        }
    }

    fn channel_stats(&self, input: &Tensor) -> (Vec<f32>, Vec<f32>) {
        let shape = input.shape();
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let count = (n * h * w) as f32;
        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        for i in 0..n {
            let item = input.item(i);
            for ch in 0..c {
                for v in &item[ch * h * w..(ch + 1) * h * w] {
                    mean[ch] += v;
                }
            }
        }
        for m in mean.iter_mut() {
            *m /= count;
        }
        for i in 0..n {
            let item = input.item(i);
            for ch in 0..c {
                for v in &item[ch * h * w..(ch + 1) * h * w] {
                    let d = v - mean[ch];
                    var[ch] += d * d;
                }
            }
        }
        for v in var.iter_mut() {
            *v /= count;
        }
        (mean, var)
    }

    /// Normalises the input with the given per-channel statistics.
    fn normalize(&self, input: &Tensor, mean: &[f32], var: &[f32]) -> Tensor {
        let shape = input.shape();
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let mut out = Tensor::zeros(shape);
        for i in 0..n {
            let item = input.item(i);
            let out_item = out.item_mut(i);
            for ch in 0..c {
                let inv_std = 1.0 / (var[ch] + self.epsilon).sqrt();
                let g = self.gamma.value[ch];
                let b = self.beta.value[ch];
                for idx in ch * h * w..(ch + 1) * h * w {
                    out_item[idx] = (item[idx] - mean[ch]) * inv_std * g + b;
                }
            }
        }
        out
    }
}

impl Layer for BatchNorm2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "BatchNorm2d expects [N, C, H, W]");
        assert_eq!(shape[1], self.channels, "BatchNorm2d channel mismatch");
        let c = shape[1];

        let (mean, var) = if training {
            let (m, v) = self.channel_stats(input);
            for ch in 0..c {
                self.running_mean[ch] =
                    (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * m[ch];
                self.running_var[ch] =
                    (1.0 - self.momentum) * self.running_var[ch] + self.momentum * v[ch];
            }
            (m, v)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };

        let out = self.normalize(input, &mean, &var);
        self.cached_input = Some(input.clone());
        self.cached_mean = mean;
        self.cached_var = var;
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "BatchNorm2d expects [N, C, H, W]");
        assert_eq!(shape[1], self.channels, "BatchNorm2d channel mismatch");
        self.normalize(input, &self.running_mean, &self.running_var)
    }

    fn buffers(&self) -> Vec<Vec<f32>> {
        vec![self.running_mean.clone(), self.running_var.clone()]
    }

    fn load_buffers(&mut self, buffers: &[Vec<f32>]) {
        assert_eq!(buffers.len(), 2, "BatchNorm2d expects 2 buffers");
        assert_eq!(buffers[0].len(), self.channels, "running-mean size");
        assert_eq!(buffers[1].len(), self.channels, "running-var size");
        self.running_mean.copy_from_slice(&buffers[0]);
        self.running_var.copy_from_slice(&buffers[1]);
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        // Standard batch-norm backward pass (per channel).
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let shape = input.shape();
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let count = (n * h * w) as f32;
        let mut grad_input = Tensor::zeros(shape);

        for ch in 0..c {
            let mean = self.cached_mean[ch];
            let var = self.cached_var[ch];
            let inv_std = 1.0 / (var + self.epsilon).sqrt();
            let gamma = self.gamma.value[ch];

            // Accumulate the channel-wide sums needed by the backward formula.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for i in 0..n {
                let g = grad_output.item(i);
                let x = input.item(i);
                for idx in ch * h * w..(ch + 1) * h * w {
                    let xhat = (x[idx] - mean) * inv_std;
                    sum_dy += g[idx];
                    sum_dy_xhat += g[idx] * xhat;
                }
            }
            self.beta.grad[ch] += sum_dy;
            self.gamma.grad[ch] += sum_dy_xhat;

            for i in 0..n {
                let g = grad_output.item(i).to_vec();
                let x = input.item(i).to_vec();
                let gi = grad_input.item_mut(i);
                for idx in ch * h * w..(ch + 1) * h * w {
                    let xhat = (x[idx] - mean) * inv_std;
                    gi[idx] =
                        gamma * inv_std / count * (count * g[idx] - sum_dy - xhat * sum_dy_xhat);
                }
            }
        }
        grad_input
    }

    fn parameters(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn name(&self) -> &'static str {
        "BatchNorm2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_output_is_normalised_per_channel() {
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::from_vec(
            &[2, 2, 1, 2],
            vec![1.0, 3.0, 10.0, 20.0, 5.0, 7.0, 30.0, 40.0],
        );
        let y = bn.forward(&x, true);
        // Per-channel mean ~0, variance ~1.
        let shape = y.shape().to_vec();
        let (n, _c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        for ch in 0..2 {
            let mut vals = Vec::new();
            for i in 0..n {
                let item = y.item(i);
                vals.extend_from_slice(&item[ch * h * w..(ch + 1) * h * w]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ch} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ch} var {var}");
        }
    }

    #[test]
    fn inference_uses_running_statistics() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::from_vec(&[4, 1, 1, 1], vec![2.0, 4.0, 6.0, 8.0]);
        // A few training passes to build the running stats.
        for _ in 0..50 {
            let _ = bn.forward(&x, true);
        }
        let y = bn.forward(&Tensor::from_vec(&[1, 1, 1, 1], vec![5.0]), false);
        // 5.0 is the mean of the training batch, so the output should be ~0.
        assert!(y.data()[0].abs() < 0.2, "inference output {}", y.data()[0]);
    }

    #[test]
    fn gradient_check_input() {
        let mut bn = BatchNorm2d::new(1);
        let x_data = vec![0.5, -1.0, 2.0, 0.3, 1.4, -0.7];
        let x = Tensor::from_vec(&[3, 1, 1, 2], x_data.clone());
        let y = bn.forward(&x, true);
        // Loss = weighted sum so the gradient is non-uniform.
        let weights: Vec<f32> = (0..y.len()).map(|i| 0.3 + 0.2 * i as f32).collect();
        let g = Tensor::from_vec(y.shape(), weights.clone());
        let grad_input = bn.backward(&g);
        let eps = 1e-2f32;
        for idx in 0..x_data.len() {
            let mut plus = x_data.clone();
            plus[idx] += eps;
            let mut minus = x_data.clone();
            minus[idx] -= eps;
            let loss = |bn: &mut BatchNorm2d, data: Vec<f32>| -> f32 {
                bn.forward(&Tensor::from_vec(&[3, 1, 1, 2], data), true)
                    .data()
                    .iter()
                    .zip(weights.iter())
                    .map(|(a, b)| a * b)
                    .sum()
            };
            let numeric = (loss(&mut bn, plus) - loss(&mut bn, minus)) / (2.0 * eps);
            assert!(
                (numeric - grad_input.data()[idx]).abs() < 0.05,
                "input {idx}: numeric {numeric} vs analytic {}",
                grad_input.data()[idx]
            );
        }
    }

    #[test]
    fn gamma_beta_are_trainable() {
        let mut bn = BatchNorm2d::new(3);
        assert_eq!(bn.parameters().len(), 2);
        assert_eq!(bn.parameters()[0].len(), 3);
    }
}
