//! 2-D convolution (valid padding, stride 1) via batched im2col + GEMM.
//!
//! The paper's CNN (Fig. 8) stacks 3 × 3 convolutions with ReLU activations
//! and pooling; Keras' default "valid" padding is used, so each convolution
//! shrinks the spatial size by `kernel - 1`.
//!
//! The whole mini-batch is lowered to one `(patch × N·oh·ow)` column matrix
//! and convolved with a single blocked GEMM per pass (`crate::kernels`);
//! the backward pass computes per-sample weight-gradient partials on scoped
//! worker threads and reduces them in fixed sample order, so results are
//! bit-identical to the historical per-sample loops at any worker count.

use crate::init::glorot_uniform;
use crate::kernels::{
    self, col2im_item, gemm, gemm_at, gemm_bt_strided, im2col_batch, ConvGeometry,
};
use crate::layers::Layer;
use crate::param::Parameter;
use crate::tensor::Tensor;
use rand::Rng;

/// A 2-D convolution layer with square kernels, stride 1 and valid padding.
#[derive(Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    /// Weight stored as `[out_channels, in_channels * kernel * kernel]`.
    weight: Parameter,
    /// Bias stored as `[out_channels]`.
    bias: Parameter,
    cached_input: Option<Tensor>,
    /// Batched `(patch × N·oh·ow)` column matrix of the last forward pass.
    cached_cols: Vec<f32>,
}

impl Conv2d {
    /// Creates a convolution layer with Glorot-uniform weights.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        rng: &mut R,
    ) -> Self {
        assert!(kernel >= 1, "kernel must be at least 1");
        let fan_in = in_channels * kernel * kernel;
        let fan_out = out_channels * kernel * kernel;
        let weight = Parameter::new(glorot_uniform(fan_in, fan_out, out_channels * fan_in, rng));
        let bias = Parameter::new(vec![0.0; out_channels]);
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            weight,
            bias,
            cached_input: None,
            cached_cols: Vec::new(),
        }
    }

    /// Output spatial size for an input spatial size (valid padding).
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (h + 1 - self.kernel, w + 1 - self.kernel)
    }

    /// Number of trainable scalars.
    pub fn parameter_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn geometry(&self, h: usize, w: usize) -> ConvGeometry {
        ConvGeometry::valid(self.in_channels, h, w, self.kernel)
    }

    /// The batched forward arithmetic shared by `forward` and `infer`:
    /// lowers the whole batch to one column matrix, convolves it with a
    /// single GEMM and scatters the result (plus bias) into `[N, C', oh,
    /// ow]` layout.  Returns the output and the column matrix.
    fn forward_batch(&self, input: &Tensor) -> (Tensor, Vec<f32>) {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "Conv2d expects [N, C, H, W]");
        assert_eq!(shape[1], self.in_channels, "Conv2d channel mismatch");
        let (n, h, w) = (shape[0], shape[2], shape[3]);
        let geometry = self.geometry(h, w);
        let (oh, ow) = geometry.output_hw();
        let (ohow, patch) = (oh * ow, geometry.patch());
        let n_cols = n * ohow;

        let col = im2col_batch(input.data(), n, &geometry);
        // One GEMM for the whole batch: (out_channels × patch) · (patch ×
        // N·oh·ow).  Per output element this is the same ascending-patch
        // accumulation the per-sample lowering produced.
        let y = gemm(&self.weight.value, &col, self.out_channels, patch, n_cols);

        let mut out = Tensor::zeros(&[n, self.out_channels, oh, ow]);
        let item_len = self.out_channels * ohow;
        let (bias, out_channels) = (&self.bias.value, self.out_channels);
        // min_rows = 8: the scatter is memcpy-scale work, only worth a
        // thread for large batches.
        kernels::run_row_chunks(out.data_mut(), n, item_len, 8, |first, _rows, chunk| {
            for (r, item) in chunk.chunks_mut(item_len).enumerate() {
                let i = first + r;
                for oc in 0..out_channels {
                    let b = bias[oc];
                    let src = &y[oc * n_cols + i * ohow..oc * n_cols + (i + 1) * ohow];
                    for (d, &s) in item[oc * ohow..(oc + 1) * ohow].iter_mut().zip(src) {
                        *d = s + b;
                    }
                }
            }
        });
        (out, col)
    }

    /// Accumulates the weight and bias gradients for the cached forward
    /// pass (shared by `backward` and `backward_head`).  Returns the
    /// cached input's `(n, h, w)` and the lowering geometry.
    ///
    /// dW is computed as per-sample partials `gᵢ · colᵢᵀ` on
    /// `std::thread::scope` worker threads, then reduced on the calling
    /// thread in ascending sample order — exactly the accumulation
    /// sequence of the historical per-sample loop, and independent of the
    /// worker count.
    fn accumulate_parameter_grads(
        &mut self,
        grad_output: &Tensor,
    ) -> (usize, usize, usize, ConvGeometry) {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let shape = input.shape();
        let (n, h, w) = (shape[0], shape[2], shape[3]);
        let geometry = self.geometry(h, w);
        let (oh, ow) = geometry.output_hw();
        let (ohow, patch) = (oh * ow, geometry.patch());
        let n_cols = n * ohow;
        let out_channels = self.out_channels;

        let mut partials: Vec<Vec<f32>> = vec![Vec::new(); n];
        let workers = kernels::hardware_workers().min(n.max(1));
        let cols = &self.cached_cols;
        let compute_partial = |i: usize| {
            gemm_bt_strided(
                grad_output.item(i),
                cols,
                i * ohow,
                n_cols,
                out_channels,
                ohow,
                patch,
            )
        };
        if workers <= 1 {
            for (i, slot) in partials.iter_mut().enumerate() {
                *slot = compute_partial(i);
            }
        } else {
            let chunk = n.div_ceil(workers);
            std::thread::scope(|scope| {
                for (ci, slots) in partials.chunks_mut(chunk).enumerate() {
                    let compute_partial = &compute_partial;
                    scope.spawn(move || {
                        for (r, slot) in slots.iter_mut().enumerate() {
                            *slot = compute_partial(ci * chunk + r);
                        }
                    });
                }
            });
        }
        for dw in &partials {
            for (acc, v) in self.weight.grad.iter_mut().zip(dw.iter()) {
                *acc += v;
            }
        }

        // db: per-sample row sums of g, in sample order.
        for i in 0..n {
            let g = grad_output.item(i);
            for oc in 0..out_channels {
                let s = vvd_dsp::accum::sum_f32(g[oc * ohow..(oc + 1) * ohow].iter().copied());
                self.bias.grad[oc] += s;
            }
        }
        (n, h, w, geometry)
    }
}

impl Layer for Conv2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        let (out, col) = self.forward_batch(input);
        self.cached_cols = col;
        self.cached_input = Some(input.clone());
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        self.forward_batch(input).0
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let (n, h, w, geometry) = self.accumulate_parameter_grads(grad_output);
        let (oh, ow) = geometry.output_hw();
        let (ohow, patch) = (oh * ow, geometry.patch());
        let n_cols = n * ohow;
        let out_channels = self.out_channels;

        // dX: gather g into its batched (out_channels × N·oh·ow) layout,
        // run one GEMM for the whole batch and scatter per sample.
        // min_rows = 8: the gather is memcpy-scale work, not worth a
        // thread per channel.
        let mut g_big = vec![0.0f32; out_channels * n_cols];
        kernels::run_row_chunks(
            &mut g_big,
            out_channels,
            n_cols,
            8,
            |first, _rows, chunk| {
                for (r, row) in chunk.chunks_mut(n_cols).enumerate() {
                    let oc = first + r;
                    for i in 0..n {
                        row[i * ohow..(i + 1) * ohow]
                            .copy_from_slice(&grad_output.item(i)[oc * ohow..(oc + 1) * ohow]);
                    }
                }
            },
        );
        let dcol = gemm_at(&self.weight.value, &g_big, patch, out_channels, n_cols);
        // col2im does real accumulation work; parallelise from 4 samples.
        let mut grad_input = Tensor::zeros(&[n, self.in_channels, h, w]);
        let in_item = self.in_channels * h * w;
        kernels::run_row_chunks(
            grad_input.data_mut(),
            n,
            in_item,
            4,
            |first, _rows, chunk| {
                for (r, item) in chunk.chunks_mut(in_item).enumerate() {
                    col2im_item(&dcol, n_cols, (first + r) * ohow, &geometry, item);
                }
            },
        );
        grad_input
    }

    fn backward_head(&mut self, grad_output: &Tensor) {
        // First layer of the network: nobody consumes the input gradient,
        // so only the parameter gradients are accumulated (bit-identical
        // to the ones `backward` produces).
        let _ = self.accumulate_parameter_grads(grad_output);
    }

    fn parameters(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer(in_c: usize, out_c: usize, k: usize) -> Conv2d {
        let mut rng = StdRng::seed_from_u64(0);
        Conv2d::new(in_c, out_c, k, &mut rng)
    }

    #[test]
    fn output_shape_valid_padding() {
        let mut conv = layer(1, 2, 3);
        let x = Tensor::zeros(&[1, 1, 5, 7]);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[1, 2, 3, 5]);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        let mut conv = layer(1, 1, 1);
        conv.weight.value = vec![1.0];
        conv.bias.value = vec![0.0];
        let x = Tensor::from_vec(&[1, 1, 2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = conv.forward(&x, true);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_3x3_convolution_result() {
        let mut conv = layer(1, 1, 3);
        conv.weight.value = vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0]; // centre tap
        conv.bias.value = vec![0.5];
        let x = Tensor::from_vec(
            &[1, 1, 3, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
        );
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert!((y.data()[0] - 5.5).abs() < 1e-6);
    }

    #[test]
    fn bias_gradient_is_sum_of_output_grad() {
        let mut conv = layer(1, 2, 3);
        let x = Tensor::from_vec(&[1, 1, 4, 4], (0..16).map(|i| i as f32 * 0.1).collect());
        let y = conv.forward(&x, true);
        let g = Tensor::from_vec(y.shape(), vec![1.0; y.len()]);
        let _ = conv.backward(&g);
        // Each output map is 2x2 = 4 elements of ones.
        assert!((conv.bias.grad[0] - 4.0).abs() < 1e-5);
        assert!((conv.bias.grad[1] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn gradient_check_weights() {
        // Numerical gradient check on a tiny convolution.
        let mut conv = layer(1, 1, 2);
        let x = Tensor::from_vec(
            &[1, 1, 3, 3],
            vec![0.1, -0.2, 0.3, 0.4, 0.5, -0.6, 0.7, 0.8, 0.9],
        );
        // Loss = sum of outputs.
        let y = conv.forward(&x, true);
        let g = Tensor::from_vec(y.shape(), vec![1.0; y.len()]);
        let _ = conv.backward(&g);
        let analytic = conv.weight.grad.clone();
        let eps = 1e-3f32;
        for (idx, &analytic_grad) in analytic.iter().enumerate() {
            let orig = conv.weight.value[idx];
            conv.weight.value[idx] = orig + eps;
            let y_plus: f32 = conv.forward(&x, true).data().iter().sum();
            conv.weight.value[idx] = orig - eps;
            let y_minus: f32 = conv.forward(&x, true).data().iter().sum();
            conv.weight.value[idx] = orig;
            let numeric = (y_plus - y_minus) / (2.0 * eps);
            assert!(
                (numeric - analytic_grad).abs() < 1e-2,
                "weight {idx}: numeric {numeric} vs analytic {analytic_grad}"
            );
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut conv = layer(1, 1, 2);
        let x_data = vec![0.3, -0.1, 0.2, 0.5, -0.4, 0.6, 0.1, 0.0, -0.2];
        let x = Tensor::from_vec(&[1, 1, 3, 3], x_data.clone());
        let y = conv.forward(&x, true);
        let g = Tensor::from_vec(y.shape(), vec![1.0; y.len()]);
        let grad_input = conv.backward(&g);
        let eps = 1e-3f32;
        for idx in 0..x_data.len() {
            let mut plus = x_data.clone();
            plus[idx] += eps;
            let mut minus = x_data.clone();
            minus[idx] -= eps;
            let yp: f32 = conv
                .forward(&Tensor::from_vec(&[1, 1, 3, 3], plus), true)
                .data()
                .iter()
                .sum();
            let ym: f32 = conv
                .forward(&Tensor::from_vec(&[1, 1, 3, 3], minus), true)
                .data()
                .iter()
                .sum();
            let numeric = (yp - ym) / (2.0 * eps);
            assert!(
                (numeric - grad_input.data()[idx]).abs() < 1e-2,
                "input {idx}: numeric {numeric} vs analytic {}",
                grad_input.data()[idx]
            );
        }
    }

    #[test]
    fn multi_channel_shapes() {
        let mut conv = layer(3, 5, 3);
        let x = Tensor::zeros(&[2, 3, 10, 12]);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[2, 5, 8, 10]);
        assert_eq!(conv.parameter_count(), 5 * 3 * 9 + 5);
        let g = Tensor::zeros(y.shape());
        let gi = conv.backward(&g);
        assert_eq!(gi.shape(), x.shape());
    }

    #[test]
    fn backward_head_accumulates_identical_parameter_grads() {
        let x = Tensor::from_vec(
            &[2, 1, 5, 6],
            (0..60).map(|i| (i as f32 * 0.19).sin()).collect(),
        );
        let mut full = layer(1, 3, 3);
        let mut head = full.clone();
        let y = full.forward(&x, true);
        let _ = head.forward(&x, true);
        let g = Tensor::from_vec(
            y.shape(),
            (0..y.len()).map(|i| (i as f32 * 0.07).cos()).collect(),
        );
        let _ = full.backward(&g);
        head.backward_head(&g);
        assert_eq!(full.weight.grad, head.weight.grad);
        assert_eq!(full.bias.grad, head.bias.grad);
    }

    #[test]
    fn infer_matches_forward_bitwise() {
        let mut conv = layer(2, 3, 3);
        let x = Tensor::from_vec(
            &[2, 2, 5, 6],
            (0..120).map(|i| (i as f32 * 0.37).sin()).collect(),
        );
        let trained = conv.forward(&x, false);
        assert_eq!(conv.infer(&x).data(), trained.data());
    }

    #[test]
    fn batched_backward_equals_per_sample_accumulation() {
        // Gradients from one batched pass must equal the sum of per-sample
        // passes accumulated in sample order — bit for bit.
        let x = Tensor::from_vec(
            &[3, 1, 4, 5],
            (0..60).map(|i| (i as f32 * 0.13).cos()).collect(),
        );
        let g_data: Vec<f32> = (0..3 * 2 * 3 * 4)
            .map(|i| (i as f32 * 0.21).sin())
            .collect();
        let mut batched = layer(1, 2, 2);
        let y = batched.forward(&x, true);
        assert_eq!(y.shape(), &[3, 2, 3, 4]);
        let g = Tensor::from_vec(&[3, 2, 3, 4], g_data.clone());
        let gi = batched.backward(&g);

        let mut per_sample = layer(1, 2, 2);
        let mut gi_items: Vec<f32> = Vec::new();
        for i in 0..3 {
            let xi = Tensor::from_vec(&[1, 1, 4, 5], x.item(i).to_vec());
            let _ = per_sample.forward(&xi, true);
            let gi_item = per_sample.backward(&Tensor::from_vec(&[1, 2, 3, 4], g.item(i).to_vec()));
            gi_items.extend_from_slice(gi_item.data());
        }
        assert_eq!(batched.weight.grad, per_sample.weight.grad);
        assert_eq!(batched.bias.grad, per_sample.bias.grad);
        assert_eq!(gi.data(), &gi_items[..]);
    }
}
