//! 2-D convolution (valid padding, stride 1) via im2col + GEMM.
//!
//! The paper's CNN (Fig. 8) stacks 3 × 3 convolutions with ReLU activations
//! and pooling; Keras' default "valid" padding is used, so each convolution
//! shrinks the spatial size by `kernel - 1`.

use crate::init::glorot_uniform;
use crate::layers::Layer;
use crate::param::Parameter;
use crate::tensor::{matmul, matmul_at, matmul_bt, Tensor};
use rand::Rng;

/// A 2-D convolution layer with square kernels, stride 1 and valid padding.
#[derive(Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    /// Weight stored as `[out_channels, in_channels * kernel * kernel]`.
    weight: Parameter,
    /// Bias stored as `[out_channels]`.
    bias: Parameter,
    cached_input: Option<Tensor>,
    cached_cols: Vec<Vec<f32>>,
}

impl Conv2d {
    /// Creates a convolution layer with Glorot-uniform weights.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        rng: &mut R,
    ) -> Self {
        assert!(kernel >= 1, "kernel must be at least 1");
        let fan_in = in_channels * kernel * kernel;
        let fan_out = out_channels * kernel * kernel;
        let weight = Parameter::new(glorot_uniform(fan_in, fan_out, out_channels * fan_in, rng));
        let bias = Parameter::new(vec![0.0; out_channels]);
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            weight,
            bias,
            cached_input: None,
            cached_cols: Vec::new(),
        }
    }

    /// Output spatial size for an input spatial size (valid padding).
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (h + 1 - self.kernel, w + 1 - self.kernel)
    }

    /// Number of trainable scalars.
    pub fn parameter_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn im2col(&self, item: &[f32], h: usize, w: usize) -> Vec<f32> {
        let (oh, ow) = self.output_hw(h, w);
        let k = self.kernel;
        let patch = self.in_channels * k * k;
        let mut col = vec![0.0f32; patch * oh * ow];
        // col is (patch, oh*ow) row-major.
        for c in 0..self.in_channels {
            let channel = &item[c * h * w..(c + 1) * h * w];
            for ky in 0..k {
                for kx in 0..k {
                    let row_idx = (c * k * k + ky * k + kx) * (oh * ow);
                    for oy in 0..oh {
                        let src_row = &channel[(oy + ky) * w + kx..(oy + ky) * w + kx + ow];
                        let dst = &mut col[row_idx + oy * ow..row_idx + oy * ow + ow];
                        dst.copy_from_slice(src_row);
                    }
                }
            }
        }
        col
    }

    fn col2im(&self, col: &[f32], h: usize, w: usize) -> Vec<f32> {
        let (oh, ow) = self.output_hw(h, w);
        let k = self.kernel;
        let mut out = vec![0.0f32; self.in_channels * h * w];
        for c in 0..self.in_channels {
            for ky in 0..k {
                for kx in 0..k {
                    let row_idx = (c * k * k + ky * k + kx) * (oh * ow);
                    for oy in 0..oh {
                        for ox in 0..ow {
                            out[c * h * w + (oy + ky) * w + (ox + kx)] +=
                                col[row_idx + oy * ow + ox];
                        }
                    }
                }
            }
        }
        out
    }
}

impl Layer for Conv2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "Conv2d expects [N, C, H, W]");
        assert_eq!(shape[1], self.in_channels, "Conv2d channel mismatch");
        let (n, h, w) = (shape[0], shape[2], shape[3]);
        let (oh, ow) = self.output_hw(h, w);
        let patch = self.in_channels * self.kernel * self.kernel;
        let mut out = Tensor::zeros(&[n, self.out_channels, oh, ow]);
        self.cached_cols.clear();
        for i in 0..n {
            let col = self.im2col(input.item(i), h, w);
            // (out_channels x patch) * (patch x oh*ow)
            let mut y = matmul(&self.weight.value, &col, self.out_channels, patch, oh * ow);
            for oc in 0..self.out_channels {
                let b = self.bias.value[oc];
                for v in &mut y[oc * oh * ow..(oc + 1) * oh * ow] {
                    *v += b;
                }
            }
            out.item_mut(i).copy_from_slice(&y);
            self.cached_cols.push(col);
        }
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let shape = input.shape();
        let (n, h, w) = (shape[0], shape[2], shape[3]);
        let (oh, ow) = self.output_hw(h, w);
        let patch = self.in_channels * self.kernel * self.kernel;
        let mut grad_input = Tensor::zeros(&[n, self.in_channels, h, w]);
        for i in 0..n {
            let g = grad_output.item(i); // (out_channels x oh*ow)
            let col = &self.cached_cols[i]; // (patch x oh*ow)

            // dW += g * col^T : (out_channels x patch)
            let dw = matmul_bt(g, col, self.out_channels, oh * ow, patch);
            for (acc, v) in self.weight.grad.iter_mut().zip(dw.iter()) {
                *acc += v;
            }
            // db += row sums of g
            for oc in 0..self.out_channels {
                let s: f32 = g[oc * oh * ow..(oc + 1) * oh * ow].iter().sum();
                self.bias.grad[oc] += s;
            }
            // dcol = W^T * g : (patch x oh*ow); weight stored (out_channels x patch).
            let dcol = matmul_at(&self.weight.value, g, patch, self.out_channels, oh * ow);
            let dinput = self.col2im(&dcol, h, w);
            grad_input.item_mut(i).copy_from_slice(&dinput);
        }
        grad_input
    }

    fn parameters(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer(in_c: usize, out_c: usize, k: usize) -> Conv2d {
        let mut rng = StdRng::seed_from_u64(0);
        Conv2d::new(in_c, out_c, k, &mut rng)
    }

    #[test]
    fn output_shape_valid_padding() {
        let mut conv = layer(1, 2, 3);
        let x = Tensor::zeros(&[1, 1, 5, 7]);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[1, 2, 3, 5]);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        let mut conv = layer(1, 1, 1);
        conv.weight.value = vec![1.0];
        conv.bias.value = vec![0.0];
        let x = Tensor::from_vec(&[1, 1, 2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = conv.forward(&x, true);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_3x3_convolution_result() {
        let mut conv = layer(1, 1, 3);
        conv.weight.value = vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0]; // centre tap
        conv.bias.value = vec![0.5];
        let x = Tensor::from_vec(
            &[1, 1, 3, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
        );
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert!((y.data()[0] - 5.5).abs() < 1e-6);
    }

    #[test]
    fn bias_gradient_is_sum_of_output_grad() {
        let mut conv = layer(1, 2, 3);
        let x = Tensor::from_vec(&[1, 1, 4, 4], (0..16).map(|i| i as f32 * 0.1).collect());
        let y = conv.forward(&x, true);
        let g = Tensor::from_vec(y.shape(), vec![1.0; y.len()]);
        let _ = conv.backward(&g);
        // Each output map is 2x2 = 4 elements of ones.
        assert!((conv.bias.grad[0] - 4.0).abs() < 1e-5);
        assert!((conv.bias.grad[1] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn gradient_check_weights() {
        // Numerical gradient check on a tiny convolution.
        let mut conv = layer(1, 1, 2);
        let x = Tensor::from_vec(
            &[1, 1, 3, 3],
            vec![0.1, -0.2, 0.3, 0.4, 0.5, -0.6, 0.7, 0.8, 0.9],
        );
        // Loss = sum of outputs.
        let y = conv.forward(&x, true);
        let g = Tensor::from_vec(y.shape(), vec![1.0; y.len()]);
        let _ = conv.backward(&g);
        let analytic = conv.weight.grad.clone();
        let eps = 1e-3f32;
        for (idx, &analytic_grad) in analytic.iter().enumerate() {
            let orig = conv.weight.value[idx];
            conv.weight.value[idx] = orig + eps;
            let y_plus: f32 = conv.forward(&x, true).data().iter().sum();
            conv.weight.value[idx] = orig - eps;
            let y_minus: f32 = conv.forward(&x, true).data().iter().sum();
            conv.weight.value[idx] = orig;
            let numeric = (y_plus - y_minus) / (2.0 * eps);
            assert!(
                (numeric - analytic_grad).abs() < 1e-2,
                "weight {idx}: numeric {numeric} vs analytic {analytic_grad}"
            );
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut conv = layer(1, 1, 2);
        let x_data = vec![0.3, -0.1, 0.2, 0.5, -0.4, 0.6, 0.1, 0.0, -0.2];
        let x = Tensor::from_vec(&[1, 1, 3, 3], x_data.clone());
        let y = conv.forward(&x, true);
        let g = Tensor::from_vec(y.shape(), vec![1.0; y.len()]);
        let grad_input = conv.backward(&g);
        let eps = 1e-3f32;
        for idx in 0..x_data.len() {
            let mut plus = x_data.clone();
            plus[idx] += eps;
            let mut minus = x_data.clone();
            minus[idx] -= eps;
            let yp: f32 = conv
                .forward(&Tensor::from_vec(&[1, 1, 3, 3], plus), true)
                .data()
                .iter()
                .sum();
            let ym: f32 = conv
                .forward(&Tensor::from_vec(&[1, 1, 3, 3], minus), true)
                .data()
                .iter()
                .sum();
            let numeric = (yp - ym) / (2.0 * eps);
            assert!(
                (numeric - grad_input.data()[idx]).abs() < 1e-2,
                "input {idx}: numeric {numeric} vs analytic {}",
                grad_input.data()[idx]
            );
        }
    }

    #[test]
    fn multi_channel_shapes() {
        let mut conv = layer(3, 5, 3);
        let x = Tensor::zeros(&[2, 3, 10, 12]);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[2, 5, 8, 10]);
        assert_eq!(conv.parameter_count(), 5 * 3 * 9 + 5);
        let g = Tensor::zeros(y.shape());
        let gi = conv.backward(&g);
        assert_eq!(gi.shape(), x.shape());
    }
}
