//! Inverted dropout.
//!
//! Not used by the default Fig.-8 architecture but provided for
//! regularisation experiments on larger synthetic campaigns.

use crate::layers::Layer;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and the survivors are scaled by `1 / (1 - p)`; at
/// inference the layer is the identity.
#[derive(Clone)]
pub struct Dropout {
    p: f32,
    rng: StdRng,
    cached_mask: Vec<f32>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and a deterministic
    /// seed (training reproducibility matters for the evaluation harness).
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1)"
        );
        Dropout {
            p,
            rng: StdRng::seed_from_u64(seed),
            cached_mask: Vec::new(),
        }
    }
}

impl Layer for Dropout {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        // Inverted dropout is the identity at inference time.
        input.clone()
    }

    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        if !training || self.p == 0.0 {
            self.cached_mask = vec![1.0; input.len()];
            return input.clone();
        }
        let keep = 1.0 - self.p;
        self.cached_mask = (0..input.len())
            .map(|_| {
                if self.rng.gen::<f32>() < self.p {
                    0.0
                } else {
                    1.0 / keep
                }
            })
            .collect();
        Tensor::from_vec(
            input.shape(),
            input
                .data()
                .iter()
                .zip(self.cached_mask.iter())
                .map(|(v, m)| v * m)
                .collect(),
        )
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        Tensor::from_vec(
            grad_output.shape(),
            grad_output
                .data()
                .iter()
                .zip(self.cached_mask.iter())
                .map(|(g, m)| g * m)
                .collect(),
        )
    }

    fn name(&self) -> &'static str {
        "Dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::from_vec(&[1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn training_drops_roughly_p_fraction() {
        let mut d = Dropout::new(0.3, 2);
        let x = Tensor::from_vec(&[1, 10_000], vec![1.0; 10_000]);
        let y = d.forward(&x, true);
        let dropped = y.data().iter().filter(|&&v| v == 0.0).count();
        let frac = dropped as f32 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "dropped fraction {frac}");
        // Survivors are scaled so the expectation is preserved.
        assert!((y.mean() - 1.0).abs() < 0.05);
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::from_vec(&[1, 8], vec![1.0; 8]);
        let y = d.forward(&x, true);
        let g = Tensor::from_vec(&[1, 8], vec![1.0; 8]);
        let gi = d.backward(&g);
        for (a, b) in y.data().iter().zip(gi.data().iter()) {
            assert_eq!(a, b);
        }
    }
}
