//! Flatten layer: `[N, C, H, W] → [N, C·H·W]`.

use crate::layers::Layer;
use crate::tensor::Tensor;

/// Flattens every batch item into a feature vector.
#[derive(Clone)]
pub struct Flatten {
    cached_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten {
            cached_shape: Vec::new(),
        }
    }
}

impl Default for Flatten {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Flatten {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        self.cached_shape = input.shape().to_vec();
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        input.reshaped(&[input.batch_size(), input.item_len()])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        grad_output.reshaped(&self.cached_shape)
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_and_restore_shapes() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 5]);
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 60]);
        let g = Tensor::zeros(&[2, 60]);
        assert_eq!(f.backward(&g).shape(), &[2, 3, 4, 5]);
    }

    #[test]
    fn data_order_is_preserved() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = f.forward(&x, true);
        assert_eq!(y.data(), x.data());
    }
}
