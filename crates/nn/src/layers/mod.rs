//! Neural-network layers.
//!
//! Every layer implements [`Layer`]: a forward pass that caches whatever it
//! needs for the backward pass, a backward pass that accumulates parameter
//! gradients and returns the gradient with respect to its input, and access
//! to its trainable [`Parameter`]s for the optimizer.
//!
//! Image tensors follow the `[batch, channels, height, width]` convention;
//! fully-connected tensors are `[batch, features]`.

mod activation;
mod batchnorm;
mod conv2d;
mod dense;
mod dropout;
mod flatten;
mod pool;

pub use activation::Relu;
pub use batchnorm::BatchNorm2d;
pub use conv2d::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use pool::{AvgPool2d, MaxPool2d};

use crate::param::Parameter;
use crate::tensor::Tensor;

/// A differentiable network layer.
///
/// Layers are `Send + Sync` and clonable through [`Layer::clone_box`]:
/// trained models can be duplicated into worker threads, and — because
/// [`Layer::infer`] takes `&self` — a single trained model behind an
/// [`std::sync::Arc`] can serve predictions from many estimators at once
/// without cloning its weights.
pub trait Layer: Send + Sync {
    /// Computes the layer output for a batch.  `training` toggles
    /// behaviour that differs between training and inference (dropout,
    /// batch-norm statistics).
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor;

    /// Inference-only forward pass: bit-identical to
    /// `forward(input, false)` but without any cache writes, so a shared
    /// (immutably borrowed) trained layer can serve predictions.
    fn infer(&self, input: &Tensor) -> Tensor;

    /// Clones the layer behind the trait object (deep copy of parameters,
    /// caches and any RNG state).
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Propagates the gradient of the loss with respect to the layer output
    /// back to the layer input, accumulating parameter gradients on the way.
    ///
    /// Must be called after a corresponding `forward` call.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Backward pass for the *first* layer of a network, whose input
    /// gradient nobody consumes: accumulates parameter gradients only.
    /// The default computes and discards the input gradient; layers with
    /// an expensive input-gradient path (convolution) override it.
    /// Parameter gradients are bit-identical to [`Layer::backward`]'s.
    fn backward_head(&mut self, grad_output: &Tensor) {
        let _ = self.backward(grad_output);
    }

    /// The layer's trainable parameters (empty for stateless layers).
    fn parameters(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    /// Non-trainable state that inference depends on (batch-norm running
    /// statistics), in a fixed per-layer order.  Empty for most layers.
    fn buffers(&self) -> Vec<Vec<f32>> {
        Vec::new()
    }

    /// Restores state captured by [`Layer::buffers`].
    ///
    /// # Panics
    /// Panics when the buffer layout does not match the layer.
    fn load_buffers(&mut self, buffers: &[Vec<f32>]) {
        assert!(
            buffers.is_empty(),
            "{} has no buffers, got {}",
            self.name(),
            buffers.len()
        );
    }

    /// Human-readable layer name for summaries.
    fn name(&self) -> &'static str;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}
