//! Neural-network layers.
//!
//! Every layer implements [`Layer`]: a forward pass that caches whatever it
//! needs for the backward pass, a backward pass that accumulates parameter
//! gradients and returns the gradient with respect to its input, and access
//! to its trainable [`Parameter`]s for the optimizer.
//!
//! Image tensors follow the `[batch, channels, height, width]` convention;
//! fully-connected tensors are `[batch, features]`.

mod activation;
mod batchnorm;
mod conv2d;
mod dense;
mod dropout;
mod flatten;
mod pool;

pub use activation::Relu;
pub use batchnorm::BatchNorm2d;
pub use conv2d::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use pool::{AvgPool2d, MaxPool2d};

use crate::param::Parameter;
use crate::tensor::Tensor;

/// A differentiable network layer.
///
/// Layers are `Send` and clonable through [`Layer::clone_box`] so that whole
/// trained models can be duplicated into worker threads (the evaluation
/// harness clones one trained VVD model per estimator instance).
pub trait Layer: Send {
    /// Computes the layer output for a batch.  `training` toggles
    /// behaviour that differs between training and inference (dropout,
    /// batch-norm statistics).
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor;

    /// Clones the layer behind the trait object (deep copy of parameters,
    /// caches and any RNG state).
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Propagates the gradient of the loss with respect to the layer output
    /// back to the layer input, accumulating parameter gradients on the way.
    ///
    /// Must be called after a corresponding `forward` call.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// The layer's trainable parameters (empty for stateless layers).
    fn parameters(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    /// Human-readable layer name for summaries.
    fn name(&self) -> &'static str;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}
