//! Fully connected (dense) layer.

use crate::init::glorot_uniform;
use crate::kernels::{gemm, gemm_at, gemm_bt};
use crate::layers::Layer;
use crate::param::Parameter;
use crate::tensor::Tensor;
use rand::Rng;

/// A fully connected layer `y = x Wᵀ + b`.
#[derive(Clone)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    /// Weight stored row-major as `[out_features, in_features]`.
    weight: Parameter,
    /// Bias stored as `[out_features]`.
    bias: Parameter,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Glorot-uniform weights and zero bias.
    pub fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        let weight = Parameter::new(glorot_uniform(
            in_features,
            out_features,
            in_features * out_features,
            rng,
        ));
        let bias = Parameter::new(vec![0.0; out_features]);
        Dense {
            in_features,
            out_features,
            weight,
            bias,
            cached_input: None,
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Number of trainable scalars.
    pub fn parameter_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// The affine map `x Wᵀ + b` over a whole batch (one blocked GEMM),
    /// shared by `forward` and `infer`.
    fn affine(&self, input: &Tensor) -> Tensor {
        let n = input.batch_size();
        assert_eq!(
            input.item_len(),
            self.in_features,
            "Dense input feature mismatch"
        );
        // y (n x out) = x (n x in) * W^T, W stored (out x in).
        let mut y = gemm_bt(
            input.data(),
            &self.weight.value,
            n,
            self.in_features,
            self.out_features,
        );
        for row in 0..n {
            for (o, b) in self.bias.value.iter().enumerate() {
                y[row * self.out_features + o] += b;
            }
        }
        Tensor::from_vec(&[n, self.out_features], y)
    }
}

impl Layer for Dense {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        let y = self.affine(input);
        self.cached_input = Some(input.clone());
        y
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        self.affine(input)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let n = input.batch_size();
        // dW (out x in) = g^T (out x n) * x (n x in)
        let dw = gemm_at(
            grad_output.data(),
            input.data(),
            self.out_features,
            n,
            self.in_features,
        );
        for (acc, v) in self.weight.grad.iter_mut().zip(dw.iter()) {
            *acc += v;
        }
        // db = column sums of g
        for row in 0..n {
            for o in 0..self.out_features {
                self.bias.grad[o] += grad_output.data()[row * self.out_features + o];
            }
        }
        // dx (n x in) = g (n x out) * W (out x in)
        let dx = gemm(
            grad_output.data(),
            &self.weight.value,
            n,
            self.out_features,
            self.in_features,
        );
        Tensor::from_vec(&[n, self.in_features], dx)
    }

    fn parameters(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "Dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer(inf: usize, outf: usize) -> Dense {
        let mut rng = StdRng::seed_from_u64(3);
        Dense::new(inf, outf, &mut rng)
    }

    #[test]
    fn forward_matches_manual_computation() {
        let mut d = layer(2, 3);
        d.weight.value = vec![1.0, 0.0, 0.0, 1.0, 1.0, -1.0]; // rows: [1,0],[0,1],[1,-1]
        d.bias.value = vec![0.1, 0.2, 0.3];
        let x = Tensor::from_vec(&[1, 2], vec![2.0, 5.0]);
        let y = d.forward(&x, true);
        assert_eq!(y.shape(), &[1, 3]);
        let out = y.data();
        assert!((out[0] - 2.1).abs() < 1e-6);
        assert!((out[1] - 5.2).abs() < 1e-6);
        assert!((out[2] - (-2.7)).abs() < 1e-6);
    }

    #[test]
    fn gradient_check() {
        let mut d = layer(3, 2);
        let x_data = vec![0.5, -0.3, 0.8, 0.1, 0.7, -0.9];
        let x = Tensor::from_vec(&[2, 3], x_data.clone());
        let y = d.forward(&x, true);
        let g = Tensor::from_vec(y.shape(), vec![1.0; y.len()]);
        let grad_input = d.backward(&g);
        let analytic_w = d.weight.grad.clone();

        let eps = 1e-3f32;
        // Check weight gradients numerically.
        for (idx, &analytic_grad) in analytic_w.iter().enumerate() {
            let orig = d.weight.value[idx];
            d.weight.value[idx] = orig + eps;
            let yp: f32 = d.forward(&x, true).data().iter().sum();
            d.weight.value[idx] = orig - eps;
            let ym: f32 = d.forward(&x, true).data().iter().sum();
            d.weight.value[idx] = orig;
            let numeric = (yp - ym) / (2.0 * eps);
            assert!(
                (numeric - analytic_grad).abs() < 1e-2,
                "weight {idx}: {numeric} vs {analytic_grad}"
            );
        }
        // Check input gradients numerically.
        for idx in 0..x_data.len() {
            let mut plus = x_data.clone();
            plus[idx] += eps;
            let mut minus = x_data.clone();
            minus[idx] -= eps;
            let yp: f32 = d
                .forward(&Tensor::from_vec(&[2, 3], plus), true)
                .data()
                .iter()
                .sum();
            let ym: f32 = d
                .forward(&Tensor::from_vec(&[2, 3], minus), true)
                .data()
                .iter()
                .sum();
            let numeric = (yp - ym) / (2.0 * eps);
            assert!(
                (numeric - grad_input.data()[idx]).abs() < 1e-2,
                "input {idx}: {numeric} vs {}",
                grad_input.data()[idx]
            );
        }
    }

    #[test]
    fn bias_gradient_accumulates_over_batch() {
        let mut d = layer(2, 2);
        let x = Tensor::from_vec(&[3, 2], vec![1.0; 6]);
        let y = d.forward(&x, true);
        let g = Tensor::from_vec(y.shape(), vec![1.0; y.len()]);
        let _ = d.backward(&g);
        assert!((d.bias.grad[0] - 3.0).abs() < 1e-6);
        assert!((d.bias.grad[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn parameter_count() {
        let d = layer(10, 4);
        assert_eq!(d.parameter_count(), 44);
        assert_eq!(d.in_features(), 10);
        assert_eq!(d.out_features(), 4);
    }
}
