//! Dense row-major tensors.
//!
//! A deliberately small tensor type: shape + `Vec<f32>` storage, with the
//! handful of helpers the layers need.  Image batches use the
//! `[batch, channels, height, width]` convention.

use serde::{Deserialize, Serialize};

/// A dense tensor of `f32` values with row-major storage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    /// Panics if the data length does not match the shape.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "tensor data does not match shape {shape:?}"
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Size of the first (batch) dimension; 0 for a rank-0 tensor.
    pub fn batch_size(&self) -> usize {
        self.shape.first().copied().unwrap_or(0)
    }

    /// Number of elements per batch item.
    pub fn item_len(&self) -> usize {
        if self.shape.is_empty() {
            0
        } else {
            self.shape[1..].iter().product()
        }
    }

    /// Immutable slice of one batch item.
    pub fn item(&self, index: usize) -> &[f32] {
        let n = self.item_len();
        &self.data[index * n..(index + 1) * n]
    }

    /// Mutable slice of one batch item.
    pub fn item_mut(&mut self, index: usize) -> &mut [f32] {
        let n = self.item_len();
        &mut self.data[index * n..(index + 1) * n]
    }

    /// Returns a copy with a new shape (the number of elements must match).
    pub fn reshaped(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            self.len(),
            shape.iter().product::<usize>(),
            "reshape size mismatch"
        );
        Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// Builds a batch tensor by stacking equally-sized items.
    ///
    /// # Panics
    /// Panics if items have differing lengths or the iterator is empty.
    pub fn stack(items: &[Vec<f32>], item_shape: &[usize]) -> Tensor {
        assert!(!items.is_empty(), "cannot stack zero items");
        let item_len: usize = item_shape.iter().product();
        let mut data = Vec::with_capacity(items.len() * item_len);
        for item in items {
            assert_eq!(item.len(), item_len, "item length mismatch");
            data.extend_from_slice(item);
        }
        let mut shape = vec![items.len()];
        shape.extend_from_slice(item_shape);
        Tensor { shape, data }
    }

    /// Selects a subset of batch items (used for mini-batching).
    pub fn select_batch(&self, indices: &[usize]) -> Tensor {
        let item_len = self.item_len();
        let mut data = Vec::with_capacity(indices.len() * item_len);
        for &i in indices {
            data.extend_from_slice(self.item(i));
        }
        let mut shape = self.shape.clone();
        shape[0] = indices.len();
        Tensor { shape, data }
    }

    /// Element-wise addition.  Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "tensor shape mismatch");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Element-wise subtraction.  Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "tensor shape mismatch");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Scales every element by a constant.
    pub fn scale(&self, k: f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|a| a * k).collect(),
        }
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// Maximum absolute element (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }
}

/// Row-major matrix multiply `C = A(m×k) · B(k×n)`, the workhorse behind the
/// convolution and dense layers.
///
/// Delegates to the cache-blocked [`crate::kernels::gemm`]; bit-identical
/// to the naive [`crate::kernels::reference::matmul`].
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    crate::kernels::gemm(a, b, m, k, n)
}

/// Row-major matrix multiply with the first operand transposed:
/// `C = Aᵀ(m×k)ᵀ · B(...)` where `a` is stored as `(k × m)`.
///
/// Delegates to the cache-blocked [`crate::kernels::gemm_at`].
pub fn matmul_at(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    crate::kernels::gemm_at(a, b, m, k, n)
}

/// Row-major matrix multiply with the second operand transposed:
/// `C = A(m×k) · Bᵀ` where `b` is stored as `(n × k)`.
///
/// Delegates to the tiled [`crate::kernels::gemm_bt`].
pub fn matmul_bt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    crate::kernels::gemm_bt(a, b, m, k, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.batch_size(), 2);
        assert_eq!(t.item_len(), 3);
        assert_eq!(t.item(1), &[4.0, 5.0, 6.0]);
        assert_eq!(t.mean(), 3.5);
        assert_eq!(t.max_abs(), 6.0);
    }

    #[test]
    fn stack_and_select() {
        let items = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let t = Tensor::stack(&items, &[2]);
        assert_eq!(t.shape(), &[3, 2]);
        let sel = t.select_batch(&[2, 0]);
        assert_eq!(sel.shape(), &[2, 2]);
        assert_eq!(sel.item(0), &[5.0, 6.0]);
        assert_eq!(sel.item(1), &[1.0, 2.0]);
    }

    #[test]
    fn arithmetic() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(&[2, 2], vec![0.5, 0.5, 0.5, 0.5]);
        assert_eq!(a.add(&b).data(), &[1.5, 2.5, 3.5, 4.5]);
        assert_eq!(a.sub(&b).data(), &[0.5, 1.5, 2.5, 3.5]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = a.reshaped(&[3, 2]);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.data(), a.data());
    }

    #[test]
    fn matmul_matches_manual_example() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        assert_eq!(matmul(&a, &b, 2, 2, 2), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_transposed_variants_agree() {
        // Random-ish small matrices.
        let a: Vec<f32> = (0..12).map(|i| (i as f32) * 0.3 - 1.0).collect(); // 3x4
        let b: Vec<f32> = (0..20).map(|i| (i as f32) * 0.1 + 0.5).collect(); // 4x5
        let c = matmul(&a, &b, 3, 4, 5);
        // A^T stored as (4 x 3):
        let mut at = vec![0.0f32; 12];
        for i in 0..3 {
            for j in 0..4 {
                at[j * 3 + i] = a[i * 4 + j];
            }
        }
        assert_eq!(matmul_at(&at, &b, 3, 4, 5), c);
        // B^T stored as (5 x 4):
        let mut bt = vec![0.0f32; 20];
        for i in 0..4 {
            for j in 0..5 {
                bt[j * 4 + i] = b[i * 5 + j];
            }
        }
        let c_bt = matmul_bt(&a, &bt, 3, 4, 5);
        for (x, y) in c.iter().zip(c_bt.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0]);
    }
}
