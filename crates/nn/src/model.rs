//! Sequential model container.

use crate::layers::Layer;
use crate::optim::Optimizer;
use crate::tensor::Tensor;

/// A stack of layers executed in order.
#[derive(Clone)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty model.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    #[allow(clippy::should_implement_trait)] // builder push, not arithmetic
    pub fn add<L: Layer + 'static>(mut self, layer: L) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer names in order (for summaries and tests).
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Total number of trainable scalars.
    pub fn parameter_count(&mut self) -> usize {
        self.layers
            .iter_mut()
            .flat_map(|l| l.parameters())
            .map(|p| p.len())
            .sum()
    }

    /// Forward pass through every layer.
    pub fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        let mut x = input.clone();
        for layer in self.layers.iter_mut() {
            x = layer.forward(&x, training);
        }
        x
    }

    /// Inference pass through every layer without touching any layer
    /// caches — bit-identical to `forward(input, false)`, but usable
    /// through a shared reference (e.g. a trained model behind an
    /// [`std::sync::Arc`] serving many estimators at once).
    pub fn infer(&self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in self.layers.iter() {
            x = layer.infer(&x);
        }
        x
    }

    /// Inference helper (no training-mode behaviour, no cache writes).
    pub fn predict(&self, input: &Tensor) -> Tensor {
        self.infer(input)
    }

    /// Backward pass: propagates the loss gradient through every layer,
    /// accumulating parameter gradients.  The first layer's input gradient
    /// is not consumed by anything, so it takes the cheaper
    /// [`Layer::backward_head`] path (same parameter gradients).
    pub fn backward(&mut self, grad_output: &Tensor) {
        let mut g = grad_output.clone();
        let n = self.layers.len();
        for (idx, layer) in self.layers.iter_mut().rev().enumerate() {
            if idx + 1 == n {
                layer.backward_head(&g);
            } else {
                g = layer.backward(&g);
            }
        }
    }

    /// Clears every parameter gradient.
    pub fn zero_grad(&mut self) {
        for layer in self.layers.iter_mut() {
            for p in layer.parameters() {
                p.zero_grad();
            }
        }
    }

    /// Applies one optimizer update to every parameter and advances the
    /// optimizer step counter.
    pub fn step<O: Optimizer>(&mut self, optimizer: &mut O) {
        for layer in self.layers.iter_mut() {
            for p in layer.parameters() {
                optimizer.update(p);
            }
        }
        optimizer.advance();
    }

    /// Snapshot of every parameter value (used to keep the best-validation
    /// epoch, as the paper does).
    pub fn state(&mut self) -> Vec<Vec<f32>> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.parameters())
            .map(|p| p.value.clone())
            .collect()
    }

    /// Snapshot of every layer's non-trainable buffers (batch-norm running
    /// statistics), in layer order.
    pub fn buffers_state(&self) -> Vec<Vec<f32>> {
        self.layers.iter().flat_map(|l| l.buffers()).collect()
    }

    /// Restores a snapshot produced by [`Sequential::buffers_state`].
    ///
    /// # Panics
    /// Panics if the snapshot does not match the model's buffer layout.
    pub fn load_buffers_state(&mut self, buffers: &[Vec<f32>]) {
        let mut idx = 0usize;
        for layer in self.layers.iter_mut() {
            let count = layer.buffers().len();
            assert!(idx + count <= buffers.len(), "buffer state layout mismatch");
            layer.load_buffers(&buffers[idx..idx + count]);
            idx += count;
        }
        assert_eq!(idx, buffers.len(), "buffer state layout mismatch");
    }

    /// Restores a snapshot produced by [`Sequential::state`].
    ///
    /// # Panics
    /// Panics if the snapshot does not match the model's parameter layout.
    pub fn load_state(&mut self, state: &[Vec<f32>]) {
        let params: Vec<&mut crate::param::Parameter> = self
            .layers
            .iter_mut()
            .flat_map(|l| l.parameters())
            .collect();
        assert_eq!(params.len(), state.len(), "state layout mismatch");
        for (p, s) in params.into_iter().zip(state.iter()) {
            assert_eq!(p.len(), s.len(), "parameter size mismatch");
            p.value.copy_from_slice(s);
        }
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::loss::mse;
    use crate::optim::Sgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new()
            .add(Dense::new(2, 8, &mut rng))
            .add(Relu::new())
            .add(Dense::new(8, 1, &mut rng))
    }

    #[test]
    fn model_structure_helpers() {
        let mut m = tiny_model(0);
        assert_eq!(m.len(), 3);
        assert_eq!(m.layer_names(), vec!["Dense", "ReLU", "Dense"]);
        assert_eq!(m.parameter_count(), 2 * 8 + 8 + 8 + 1);
    }

    #[test]
    fn training_reduces_loss_on_toy_regression() {
        // Learn y = x0 + 2*x1 on a small grid.
        let mut m = tiny_model(1);
        let mut opt = Sgd::new(0.05, 0.9);
        let xs: Vec<Vec<f32>> = (0..16)
            .map(|i| vec![(i % 4) as f32 / 4.0, (i / 4) as f32 / 4.0])
            .collect();
        let ys: Vec<Vec<f32>> = xs.iter().map(|v| vec![v[0] + 2.0 * v[1]]).collect();
        let x = Tensor::stack(&xs, &[2]);
        let y = Tensor::stack(&ys, &[1]);

        let initial_loss = mse(&m.forward(&x, false), &y).0;
        for _ in 0..300 {
            m.zero_grad();
            let pred = m.forward(&x, true);
            let (_, grad) = mse(&pred, &y);
            m.backward(&grad);
            m.step(&mut opt);
        }
        let final_loss = mse(&m.forward(&x, false), &y).0;
        assert!(
            final_loss < initial_loss * 0.05,
            "loss did not drop enough: {initial_loss} -> {final_loss}"
        );
    }

    #[test]
    fn state_roundtrip_restores_predictions() {
        let mut m = tiny_model(2);
        let x = Tensor::from_vec(&[1, 2], vec![0.3, -0.4]);
        let before = m.predict(&x);
        let snapshot = m.state();

        // Perturb the weights by "training" on garbage.
        let mut opt = Sgd::new(0.5, 0.0);
        for _ in 0..10 {
            m.zero_grad();
            let pred = m.forward(&x, true);
            let (_, grad) = mse(&pred, &Tensor::from_vec(&[1, 1], vec![100.0]));
            m.backward(&grad);
            m.step(&mut opt);
        }
        assert!((m.predict(&x).data()[0] - before.data()[0]).abs() > 1e-3);

        m.load_state(&snapshot);
        let after = m.predict(&x);
        assert_eq!(after.data(), before.data());
    }

    #[test]
    fn cloned_model_predicts_identically_and_is_independent() {
        let m = tiny_model(4);
        let x = Tensor::from_vec(&[1, 2], vec![0.7, -0.2]);
        let mut c = m.clone();
        assert_eq!(m.predict(&x).data(), c.predict(&x).data());

        // Training the clone must not affect the original.
        let before = m.predict(&x);
        let mut opt = Sgd::new(0.5, 0.0);
        for _ in 0..5 {
            c.zero_grad();
            let pred = c.forward(&x, true);
            let (_, grad) = mse(&pred, &Tensor::from_vec(&[1, 1], vec![42.0]));
            c.backward(&grad);
            c.step(&mut opt);
        }
        assert_eq!(m.predict(&x).data(), before.data());
        assert!((c.predict(&x).data()[0] - before.data()[0]).abs() > 1e-3);
    }

    #[test]
    fn zero_grad_clears_all_gradients() {
        let mut m = tiny_model(3);
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 1.0]);
        let pred = m.forward(&x, true);
        let (_, grad) = mse(&pred, &Tensor::from_vec(&[1, 1], vec![0.0]));
        m.backward(&grad);
        let any_nonzero = m
            .layers
            .iter_mut()
            .flat_map(|l| l.parameters())
            .any(|p| p.grad_norm() > 0.0);
        assert!(any_nonzero);
        m.zero_grad();
        let all_zero = m
            .layers
            .iter_mut()
            .flat_map(|l| l.parameters())
            .all(|p| p.grad_norm() == 0.0);
        assert!(all_zero);
    }
}
