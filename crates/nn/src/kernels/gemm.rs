//! Cache-blocked GEMM kernels, bit-identical to the naive references.
//!
//! The blocking strategy only tiles the *output*: every output element is
//! still produced by one straight, ascending-`k` chain of fused
//! multiply-adds starting from `+0.0`, exactly like the reference kernels
//! in [`super::reference`].  Column panels keep the streamed operand
//! resident in cache while the panel is reused across output rows, and row
//! chunks fan out to scoped worker threads (disjoint writes, so the worker
//! count cannot affect any bit of the result).
//!
//! Each kernel comes in two layers: a `*_tiled` variant taking explicit
//! [`GemmTiles`] block sizes (the layer [`super::autotune`] sweeps), and a
//! tile-less wrapper that asks the autotuner for the measured winner of the
//! shape class.  Because tiles only partition the *output*, every candidate
//! tile produces the same bits — the proptests in
//! `crates/nn/tests/kernel_properties.rs` pin that across the whole
//! candidate set.

use super::autotune::{self, GemmOp, GemmTiles};
use super::run_row_chunks;

/// Default column-panel width in `f32` elements (1 KiB per panel row): the
/// panel of the streamed operand stays in L1/L2 while it is reused across
/// rows.  [`super::autotune`] sweeps alternatives per shape class.
pub const COL_BLOCK: usize = 256;

/// Default row-tile height of the dot-product kernel: the tile of `A` rows
/// stays hot while the whole of `B` streams past it once per tile.
/// [`super::autotune`] sweeps alternatives per shape class.
pub const ROW_BLOCK: usize = 32;

/// Minimum output rows per worker before a thread is spawned.
const MIN_ROWS_PER_WORKER: usize = 4;

/// `B` matrices at most this many `f32`s (2 MiB) are treated as cache
/// resident and processed without column panelling — the panel bookkeeping
/// only pays for itself once `B` is streamed from memory.  Blocking never
/// changes per-output-element accumulation order, so the threshold cannot
/// affect any result bit.
const PANEL_THRESHOLD: usize = 512 * 1024;

/// Panel width for a `(k × n)` streamed operand: full-width (no panelling)
/// while it plausibly stays in cache, `col_block` once it does not.
fn panel_width(k: usize, n: usize, col_block: usize) -> usize {
    if k * n <= PANEL_THRESHOLD {
        n
    } else {
        col_block.max(1)
    }
}

/// Row-major matrix multiply `C = A(m×k) · B(k×n)`, blocked and threaded,
/// with the block sizes chosen by the autotuner for this shape class.
///
/// Bit-identical to [`super::reference::matmul`].
pub fn gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    gemm_tiled(a, b, m, k, n, autotune::tiles_for(GemmOp::Nn, m, k, n))
}

/// [`gemm`] with explicit block sizes.
///
/// Tiles only partition the output, so *every* tile choice is bit-identical
/// to [`super::reference::matmul`]; the choice affects speed alone.
pub fn gemm_tiled(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    tiles: GemmTiles,
) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "gemm: A size mismatch");
    assert_eq!(b.len(), k * n, "gemm: B size mismatch");
    let mut c = vec![0.0f32; m * n];
    if n == 0 {
        return c;
    }
    let panel = panel_width(k, n, tiles.col_block);
    run_row_chunks(&mut c, m, n, MIN_ROWS_PER_WORKER, |first, rows, chunk| {
        let a_chunk = &a[first * k..(first + rows) * k];
        let mut j0 = 0;
        while j0 < n {
            let jb = panel.min(n - j0);
            for i in 0..rows {
                let a_row = &a_chunk[i * k..(i + 1) * k];
                let c_row = &mut chunk[i * n + j0..i * n + j0 + jb];
                for (kk, &a_val) in a_row.iter().enumerate() {
                    if a_val == 0.0 {
                        continue;
                    }
                    let b_row = &b[kk * n + j0..kk * n + j0 + jb];
                    for (c_v, &b_v) in c_row.iter_mut().zip(b_row.iter()) {
                        *c_v += a_val * b_v;
                    }
                }
            }
            j0 += jb;
        }
    });
    c
}

/// `C = Aᵀ · B` with `a` stored `(k × m)`, blocked and threaded, with the
/// block sizes chosen by the autotuner for this shape class.
///
/// Bit-identical to [`super::reference::matmul_at`].
pub fn gemm_at(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    gemm_at_tiled(a, b, m, k, n, autotune::tiles_for(GemmOp::At, m, k, n))
}

/// [`gemm_at`] with explicit block sizes; bit-identical to
/// [`super::reference::matmul_at`] for every tile choice.
pub fn gemm_at_tiled(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    tiles: GemmTiles,
) -> Vec<f32> {
    assert_eq!(a.len(), k * m, "gemm_at: A size mismatch");
    assert_eq!(b.len(), k * n, "gemm_at: B size mismatch");
    let mut c = vec![0.0f32; m * n];
    if n == 0 {
        return c;
    }
    // Here the panel keeps the *output* resident: every column panel of C
    // is revisited k times (once per kk), so C is the operand to protect.
    let panel = panel_width(m, n, tiles.col_block);
    run_row_chunks(&mut c, m, n, MIN_ROWS_PER_WORKER, |first, rows, chunk| {
        let mut j0 = 0;
        while j0 < n {
            let jb = panel.min(n - j0);
            for kk in 0..k {
                let b_row = &b[kk * n + j0..kk * n + j0 + jb];
                let a_col = &a[kk * m + first..kk * m + first + rows];
                for (i, &a_val) in a_col.iter().enumerate() {
                    if a_val == 0.0 {
                        continue;
                    }
                    let c_row = &mut chunk[i * n + j0..i * n + j0 + jb];
                    for (c_v, &b_v) in c_row.iter_mut().zip(b_row.iter()) {
                        *c_v += a_val * b_v;
                    }
                }
            }
            j0 += jb;
        }
    });
    c
}

/// `C = A(m×k) · Bᵀ` with `b` stored `(n × k)`, tiled and threaded, with
/// the block sizes chosen by the autotuner for this shape class.
///
/// Bit-identical to [`super::reference::matmul_bt`].
pub fn gemm_bt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    gemm_bt_tiled(a, b, m, k, n, autotune::tiles_for(GemmOp::Bt, m, k, n))
}

/// [`gemm_bt`] with explicit block sizes; bit-identical to
/// [`super::reference::matmul_bt`] for every tile choice.
pub fn gemm_bt_tiled(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    tiles: GemmTiles,
) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "gemm_bt: A size mismatch");
    assert_eq!(b.len(), n * k, "gemm_bt: B size mismatch");
    let row_block = tiles.row_block.max(1);
    let mut c = vec![0.0f32; m * n];
    run_row_chunks(&mut c, m, n, MIN_ROWS_PER_WORKER, |first, rows, chunk| {
        let mut i0 = 0;
        while i0 < rows {
            let ib = row_block.min(rows - i0);
            for j in 0..n {
                let b_row = &b[j * k..(j + 1) * k];
                for i in i0..i0 + ib {
                    let a_row = &a[(first + i) * k..(first + i + 1) * k];
                    let mut acc = 0.0f32;
                    for (av, bv) in a_row.iter().zip(b_row.iter()) {
                        acc += av * bv;
                    }
                    chunk[i * n + j] = acc;
                }
            }
            i0 += ib;
        }
    });
    c
}

/// `C = A(m×k) · Bᵀ` where the rows of `B` are *strided* slices of a larger
/// matrix: row `j` is `b[b_offset + j·b_stride .. + k]`.
///
/// Used by the convolution backward pass to compute one sample's
/// weight-gradient partial out of the batched column matrix.  The kernel
/// first transposes the strided block to a contiguous `(k × n)` scratch,
/// then accumulates rank-1 updates with a `kk`-outer loop whose inner
/// saxpy vectorises — per output element the products still arrive in
/// ascending-`kk` order from a `+0.0` start, so for finite inputs the
/// result is bit-identical to [`super::reference::matmul_bt`] on the
/// equivalent contiguous `B` (the zero-skip differs from the reference
/// only when a skipped `0.0` would have multiplied an `Inf`/`NaN`; see
/// the module docs).
pub fn gemm_bt_strided(
    a: &[f32],
    b: &[f32],
    b_offset: usize,
    b_stride: usize,
    m: usize,
    k: usize,
    n: usize,
) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "gemm_bt_strided: A size mismatch");
    assert!(
        n == 0 || b_offset + (n - 1) * b_stride + k <= b.len(),
        "gemm_bt_strided: B slice out of bounds"
    );
    // bt[kk*n + j] = b[b_offset + j*b_stride + kk]
    let mut bt = vec![0.0f32; k * n];
    for j in 0..n {
        let src = &b[b_offset + j * b_stride..b_offset + j * b_stride + k];
        for (kk, &v) in src.iter().enumerate() {
            bt[kk * n + j] = v;
        }
    }
    let mut c = vec![0.0f32; m * n];
    for kk in 0..k {
        let b_row = &bt[kk * n..(kk + 1) * n];
        for i in 0..m {
            let a_val = a[i * k + kk];
            if a_val == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row.iter()) {
                *c_v += a_val * b_v;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::super::reference;
    use super::*;

    fn pattern(len: usize, seed: f32) -> Vec<f32> {
        (0..len).map(|i| ((i as f32) * 0.37 + seed).sin()).collect()
    }

    #[test]
    fn gemm_matches_reference_bitwise_across_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (8, 72, 300), (5, 513, 7)] {
            let a = pattern(m * k, 0.1);
            let b = pattern(k * n, 0.7);
            assert_eq!(gemm(&a, &b, m, k, n), reference::matmul(&a, &b, m, k, n));
        }
    }

    #[test]
    fn gemm_at_matches_reference_bitwise_across_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (4, 3, 6), (72, 8, 300), (9, 2, 513)] {
            let a = pattern(k * m, 0.2);
            let b = pattern(k * n, 0.9);
            assert_eq!(
                gemm_at(&a, &b, m, k, n),
                reference::matmul_at(&a, &b, m, k, n)
            );
        }
    }

    #[test]
    fn gemm_bt_matches_reference_bitwise_across_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (5, 4, 3), (40, 100, 6), (33, 7, 33)] {
            let a = pattern(m * k, 0.3);
            let b = pattern(n * k, 0.5);
            assert_eq!(
                gemm_bt(&a, &b, m, k, n),
                reference::matmul_bt(&a, &b, m, k, n)
            );
        }
    }

    #[test]
    fn every_candidate_tile_is_bit_identical() {
        // The autotuner may pick any candidate per shape class; all of them
        // must produce the same bits as the reference (tiles only partition
        // the output).  The proptests widen this to random shapes.
        let (m, k, n) = (13, 37, 61);
        let a = pattern(m * k, 0.11);
        let b = pattern(k * n, 0.73);
        let bt = pattern(n * k, 0.29);
        let at = pattern(k * m, 0.41);
        for tiles in autotune::candidates(GemmOp::Nn) {
            assert_eq!(
                gemm_tiled(&a, &b, m, k, n, tiles),
                reference::matmul(&a, &b, m, k, n)
            );
        }
        for tiles in autotune::candidates(GemmOp::At) {
            assert_eq!(
                gemm_at_tiled(&at, &b, m, k, n, tiles),
                reference::matmul_at(&at, &b, m, k, n)
            );
        }
        for tiles in autotune::candidates(GemmOp::Bt) {
            assert_eq!(
                gemm_bt_tiled(&a, &bt, m, k, n, tiles),
                reference::matmul_bt(&a, &bt, m, k, n)
            );
        }
    }

    #[test]
    fn strided_bt_equals_contiguous_bt_on_extracted_block() {
        let (m, k, n) = (3, 5, 4);
        let stride = 11;
        let offset = 2;
        let a = pattern(m * k, 0.4);
        let big = pattern(offset + (n - 1) * stride + k, 0.6);
        let mut contiguous = Vec::with_capacity(n * k);
        for j in 0..n {
            contiguous.extend_from_slice(&big[offset + j * stride..offset + j * stride + k]);
        }
        assert_eq!(
            gemm_bt_strided(&a, &big, offset, stride, m, k, n),
            reference::matmul_bt(&a, &contiguous, m, k, n)
        );
    }

    #[test]
    fn zeros_in_either_operand_do_not_break_parity() {
        let (m, k, n) = (4, 6, 5);
        let mut a = pattern(m * k, 0.0);
        let mut b = pattern(k * n, 1.0);
        for i in (0..a.len()).step_by(3) {
            a[i] = 0.0;
        }
        for i in (0..b.len()).step_by(4) {
            b[i] = -0.0;
        }
        assert_eq!(gemm(&a, &b, m, k, n), reference::matmul(&a, &b, m, k, n));
        let at = pattern(k * m, 0.0);
        assert_eq!(
            gemm_at(&at, &b, m, k, n),
            reference::matmul_at(&at, &b, m, k, n)
        );
    }
}
