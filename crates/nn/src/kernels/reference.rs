//! Naive reference kernels.
//!
//! These are the original, loop-nest implementations the blocked kernels in
//! [`super`] are verified against: the property tests in
//! `crates/nn/tests/kernel_properties.rs` assert *bit-identical* results
//! across randomized shapes, strides and paddings.  They are kept small and
//! obviously correct; do not optimise them.

use super::im2col::ConvGeometry;

/// Row-major matrix multiply `C = A(m×k) · B(k×n)`.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "matmul: A size mismatch");
    assert_eq!(b.len(), k * n, "matmul: B size mismatch");
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (kk, &a_val) in a_row.iter().enumerate() {
            if a_val == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row.iter()) {
                *c_v += a_val * b_v;
            }
        }
    }
    c
}

/// Row-major matrix multiply with the first operand transposed:
/// `C = Aᵀ · B` where `a` is stored as `(k × m)`.
pub fn matmul_at(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), k * m, "matmul_at: A size mismatch");
    assert_eq!(b.len(), k * n, "matmul_at: B size mismatch");
    let mut c = vec![0.0f32; m * n];
    for kk in 0..k {
        let a_row = &a[kk * m..(kk + 1) * m];
        let b_row = &b[kk * n..(kk + 1) * n];
        for (i, &a_val) in a_row.iter().enumerate() {
            if a_val == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row.iter()) {
                *c_v += a_val * b_v;
            }
        }
    }
    c
}

/// Row-major matrix multiply with the second operand transposed:
/// `C = A(m×k) · Bᵀ` where `b` is stored as `(n × k)`.
pub fn matmul_bt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "matmul_bt: A size mismatch");
    assert_eq!(b.len(), n * k, "matmul_bt: B size mismatch");
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (av, bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Direct 2-D convolution of one `[C, H, W]` item, the reference the
/// im2col + GEMM lowering is verified against.
///
/// `weight` is stored `(out_channels × patch)` with patch index
/// `c·k² + ky·k + kx`; each output element accumulates its products in
/// ascending patch order (the same per-element order the lowering
/// produces), then adds the bias.
pub fn conv2d_direct(
    item: &[f32],
    weight: &[f32],
    bias: &[f32],
    out_channels: usize,
    geometry: &ConvGeometry,
) -> Vec<f32> {
    let g = geometry;
    let (oh, ow) = g.output_hw();
    let patch = g.patch();
    assert_eq!(item.len(), g.in_channels * g.height * g.width);
    assert_eq!(weight.len(), out_channels * patch);
    assert_eq!(bias.len(), out_channels);
    let mut out = vec![0.0f32; out_channels * oh * ow];
    for oc in 0..out_channels {
        let w_row = &weight[oc * patch..(oc + 1) * patch];
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for c in 0..g.in_channels {
                    let channel = &item[c * g.height * g.width..][..g.height * g.width];
                    for ky in 0..g.kernel {
                        let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                        for kx in 0..g.kernel {
                            let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                            let w_val = w_row[c * g.kernel * g.kernel + ky * g.kernel + kx];
                            if w_val == 0.0 {
                                continue;
                            }
                            if iy < 0 || iy >= g.height as isize || ix < 0 || ix >= g.width as isize
                            {
                                continue;
                            }
                            acc += w_val * channel[iy as usize * g.width + ix as usize];
                        }
                    }
                }
                out[oc * oh * ow + oy * ow + ox] = acc + bias[oc];
            }
        }
    }
    out
}
