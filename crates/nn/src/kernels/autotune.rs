//! Measured GEMM block-size selection, memoized per shape class.
//!
//! PR 4 picked the GEMM block sizes (`ROW_BLOCK = 32`, `COL_BLOCK = 256`)
//! by eye; this module picks them by *measurement*.  Each distinct GEMM
//! shape class — the op kind plus a bucketed problem shape — is swept once
//! per process across a small candidate set, the fastest candidate wins,
//! and the winner is memoized in a process-wide table (plus an optional
//! on-disk layer under `VVD_AUTOTUNE_DIR`, so a fleet of worker processes
//! sweeps each class once cluster-wide instead of once per process).
//!
//! ## Why tuning is determinism-safe
//!
//! Tile sizes only partition the *output*: every output element is still
//! produced by one straight, ascending-`k` accumulation chain from a
//! `+0.0` start, identical for every candidate (see the
//! [`super`] module docs).  The sweep therefore picks *speed*, never
//! *values* — which is exactly why the winner may legitimately differ from
//! machine to machine and run to run while every digest stays bit-stable.
//! The kernel proptests pin this: all candidate tiles must be bit-identical
//! to the naive references on randomized shapes.
//!
//! ## Wall-clock containment
//!
//! This is one of the two modules in the workspace allowed to read the
//! wall clock outside bench code (`vvd-analyze`'s `timing-modules`
//! allowlist): timing here only ever selects among bit-identical
//! schedules, so it cannot leak into results.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use super::gemm::{gemm_at_tiled, gemm_bt_tiled, gemm_tiled, COL_BLOCK, ROW_BLOCK};

/// Block sizes for one GEMM invocation: how the output is partitioned.
///
/// Every field choice yields bit-identical results (tiles only partition
/// the output; accumulation order per element is fixed) — the struct is
/// purely a speed knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct GemmTiles {
    /// Row-tile height used by the dot-product (`Bᵀ`) kernel.
    pub row_block: usize,
    /// Column-panel width used by the streaming (`NN`/`AᵀB`) kernels.
    pub col_block: usize,
}

/// The hand-picked PR 4 block sizes — the fallback when a shape is too
/// small to be worth sweeping, and the baseline the bench snapshot
/// compares tuned winners against.
pub const DEFAULT_TILES: GemmTiles = GemmTiles {
    row_block: ROW_BLOCK,
    col_block: COL_BLOCK,
};

/// Which GEMM kernel a shape class belongs to — the three kernels stream
/// memory differently, so they are tuned independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GemmOp {
    /// `C = A · B` (forward / im2col batched path).
    Nn,
    /// `C = Aᵀ · B` (backward data path).
    At,
    /// `C = A · Bᵀ` (backward weight / dot-product path).
    Bt,
}

impl GemmOp {
    /// Stable lowercase name, used in disk-layer file names and reports.
    pub fn name(self) -> &'static str {
        match self {
            GemmOp::Nn => "nn",
            GemmOp::At => "at",
            GemmOp::Bt => "bt",
        }
    }
}

/// A memoization key: the op kind plus the problem shape with the batch
/// dimension `m` bucketed to its next power of two (serve batch sizes
/// wobble tick to tick; `k`/`n` come from the model geometry and are
/// stable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ShapeClass {
    /// Kernel kind.
    pub op: GemmOp,
    /// `m` rounded up to a power of two (the sweep measures at this size).
    pub m_bucket: usize,
    /// Exact inner dimension.
    pub k: usize,
    /// Exact output columns.
    pub n: usize,
}

/// Problems below this many multiply-adds are not worth sweeping: the
/// kernel finishes in microseconds and every candidate ties, so the
/// default tiles are used without measurement.
const MIN_TUNE_WORK: usize = 1 << 21;

/// Timed repetitions per candidate; the minimum is kept (least-noise
/// estimator for a deterministic workload).
const SWEEP_REPS: usize = 2;

/// The candidate tile set for one kernel kind.  The first entry is
/// [`DEFAULT_TILES`], so a sweep can only ever *improve* on the hand-picked
/// sizes (ties keep the earliest — i.e. default — candidate).
pub fn candidates(op: GemmOp) -> Vec<GemmTiles> {
    match op {
        // The NN / AᵀB kernels stream column panels; sweep the panel width.
        GemmOp::Nn | GemmOp::At => [256usize, 64, 128, 512]
            .iter()
            .map(|&col_block| GemmTiles {
                row_block: ROW_BLOCK,
                col_block,
            })
            .collect(),
        // The Bᵀ kernel tiles output rows; sweep the tile height.
        GemmOp::Bt => [32usize, 8, 16, 64]
            .iter()
            .map(|&row_block| GemmTiles {
                row_block,
                col_block: COL_BLOCK,
            })
            .collect(),
    }
}

/// The shape class a concrete `(m, k, n)` problem falls into.
pub fn class_of(op: GemmOp, m: usize, k: usize, n: usize) -> ShapeClass {
    ShapeClass {
        op,
        m_bucket: m.max(1).next_power_of_two(),
        k,
        n,
    }
}

fn table() -> &'static Mutex<BTreeMap<ShapeClass, GemmTiles>> {
    static TABLE: OnceLock<Mutex<BTreeMap<ShapeClass, GemmTiles>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lookup(class: &ShapeClass) -> Option<GemmTiles> {
    table()
        .lock()
        .expect("autotune table mutex poisoned")
        .get(class)
        .copied()
}

fn memoize(class: ShapeClass, tiles: GemmTiles) {
    table()
        .lock()
        .expect("autotune table mutex poisoned")
        .insert(class, tiles);
}

/// The block sizes to use for one GEMM invocation: the memoized winner of
/// the shape class, sweeping it first if this is the class's first
/// above-threshold visit.  Sub-threshold problems short-circuit to
/// [`DEFAULT_TILES`] without measurement.
pub fn tiles_for(op: GemmOp, m: usize, k: usize, n: usize) -> GemmTiles {
    if m.saturating_mul(k).saturating_mul(n) < MIN_TUNE_WORK {
        return DEFAULT_TILES;
    }
    tune_class(class_of(op, m, k, n))
}

/// Forces a sweep-backed decision for the class of `(m, k, n)` regardless
/// of the work threshold — the bench snapshot and CI smoke use this to
/// exercise the sweep on shapes the serve path makes hot.
pub fn tune_now(op: GemmOp, m: usize, k: usize, n: usize) -> GemmTiles {
    tune_class(class_of(op, m, k, n))
}

fn tune_class(class: ShapeClass) -> GemmTiles {
    if let Some(tiles) = lookup(&class) {
        return tiles;
    }
    if let Some(tiles) = load_disk(&class) {
        memoize(class, tiles);
        return tiles;
    }
    let tiles = sweep(&class);
    store_disk(&class, tiles);
    memoize(class, tiles);
    tiles
}

/// A snapshot of every memoized decision, for bench reporting.
pub fn report() -> Vec<(ShapeClass, GemmTiles)> {
    table()
        .lock()
        .expect("autotune table mutex poisoned")
        .iter()
        .map(|(c, t)| (*c, *t))
        .collect()
}

/// Deterministic dense test operand (same recipe as the kernel unit
/// tests): the sweep's inputs never involve entropy, only its timings do.
fn pattern(len: usize, seed: f32) -> Vec<f32> {
    (0..len).map(|i| ((i as f32) * 0.37 + seed).sin()).collect()
}

/// Times one candidate on the class's representative shape and returns the
/// best-of-[`SWEEP_REPS`] duration.
fn time_candidate(
    class: &ShapeClass,
    tiles: GemmTiles,
    a: &[f32],
    b: &[f32],
) -> std::time::Duration {
    let (m, k, n) = (class.m_bucket, class.k, class.n);
    let mut best = std::time::Duration::MAX;
    for _ in 0..SWEEP_REPS {
        let start = Instant::now();
        let c = match class.op {
            GemmOp::Nn => gemm_tiled(a, b, m, k, n, tiles),
            GemmOp::At => gemm_at_tiled(a, b, m, k, n, tiles),
            GemmOp::Bt => gemm_bt_tiled(a, b, m, k, n, tiles),
        };
        let elapsed = start.elapsed();
        std::hint::black_box(&c);
        best = best.min(elapsed);
    }
    best
}

/// Sweeps every candidate for the class and returns the fastest; ties keep
/// the earliest candidate (the default), so noise can only flip a decision
/// between schedules that are bit-identical anyway.
fn sweep(class: &ShapeClass) -> GemmTiles {
    let (m, k, n) = (class.m_bucket, class.k, class.n);
    let (a_len, b_len) = match class.op {
        GemmOp::Nn => (m * k, k * n),
        GemmOp::At => (k * m, k * n),
        GemmOp::Bt => (m * k, n * k),
    };
    let a = pattern(a_len, 0.1);
    let b = pattern(b_len, 0.7);
    let mut best_tiles = DEFAULT_TILES;
    let mut best_time = std::time::Duration::MAX;
    for tiles in candidates(class.op) {
        let t = time_candidate(class, tiles, &a, &b);
        if t < best_time {
            best_time = t;
            best_tiles = tiles;
        }
    }
    best_tiles
}

/// File name of a class's disk-layer entry.
fn disk_file(class: &ShapeClass) -> String {
    format!(
        "gemm-{}-{}x{}x{}.tiles",
        class.op.name(),
        class.m_bucket,
        class.k,
        class.n
    )
}

/// Serializes a decision for the disk layer (`"row_block col_block"`).
fn format_tiles(tiles: GemmTiles) -> String {
    format!("{} {}\n", tiles.row_block, tiles.col_block)
}

/// Parses a disk-layer entry; `None` on any malformed content.
fn parse_tiles(s: &str) -> Option<GemmTiles> {
    let mut it = s.split_whitespace();
    let row_block = it.next()?.parse::<usize>().ok()?;
    let col_block = it.next()?.parse::<usize>().ok()?;
    if it.next().is_some() {
        return None;
    }
    Some(GemmTiles {
        row_block,
        col_block,
    })
}

/// Loads a class's decision from the `VVD_AUTOTUNE_DIR` layer, if mounted.
/// Entries that fail to parse — or name tiles outside the candidate set
/// (e.g. written by a different build) — are ignored, like a corrupt
/// model-cache file: the class is simply re-swept.
fn load_disk(class: &ShapeClass) -> Option<GemmTiles> {
    let dir = vvd_dsp::autotune_dir()?;
    let content = std::fs::read_to_string(dir.join(disk_file(class))).ok()?;
    parse_tiles(&content).filter(|t| candidates(class.op).contains(t))
}

/// Publishes a decision to the `VVD_AUTOTUNE_DIR` layer, if mounted.
/// Write-to-temp + rename, so concurrent processes never observe a torn
/// entry; failures are ignored (the disk layer is an optimization, never
/// a correctness dependency).
fn store_disk(class: &ShapeClass, tiles: GemmTiles) {
    let Some(dir) = vvd_dsp::autotune_dir() else {
        return;
    };
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let tmp = dir.join(format!(".{}.{}.tmp", disk_file(class), std::process::id()));
    if std::fs::write(&tmp, format_tiles(tiles)).is_ok() {
        let _ = std::fs::rename(&tmp, dir.join(disk_file(class)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tiles_lead_every_candidate_set() {
        for op in [GemmOp::Nn, GemmOp::At, GemmOp::Bt] {
            let c = candidates(op);
            assert!(!c.is_empty());
            assert_eq!(c[0], DEFAULT_TILES, "ties must keep the default");
        }
    }

    #[test]
    fn small_problems_skip_the_sweep() {
        // Far below MIN_TUNE_WORK: must return the default without
        // measuring (and without touching the memo table).
        assert_eq!(tiles_for(GemmOp::Nn, 4, 8, 16), DEFAULT_TILES);
    }

    #[test]
    fn tune_now_returns_a_candidate_and_memoizes() {
        let tiles = tune_now(GemmOp::Bt, 24, 48, 40);
        assert!(candidates(GemmOp::Bt).contains(&tiles));
        let class = class_of(GemmOp::Bt, 24, 48, 40);
        assert_eq!(lookup(&class), Some(tiles));
        // Second call is a memo hit returning the same decision.
        assert_eq!(tune_now(GemmOp::Bt, 24, 48, 40), tiles);
    }

    #[test]
    fn class_buckets_batch_dimension_only() {
        let a = class_of(GemmOp::Nn, 5, 72, 300);
        let b = class_of(GemmOp::Nn, 8, 72, 300);
        assert_eq!(a, b, "m in (4,8] buckets to 8");
        assert_ne!(a, class_of(GemmOp::Nn, 9, 72, 300));
        assert_ne!(a, class_of(GemmOp::Nn, 5, 73, 300), "k is exact");
    }

    #[test]
    fn disk_entry_round_trips_and_rejects_garbage() {
        let tiles = GemmTiles {
            row_block: 16,
            col_block: 128,
        };
        assert_eq!(parse_tiles(&format_tiles(tiles)), Some(tiles));
        assert_eq!(parse_tiles(""), None);
        assert_eq!(parse_tiles("12"), None);
        assert_eq!(parse_tiles("a b"), None);
        assert_eq!(parse_tiles("1 2 3"), None);
    }
}
