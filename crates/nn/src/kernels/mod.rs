//! The compute kernels behind the layers: cache-blocked GEMM and the
//! im2col convolution lowering.
//!
//! Every layer's arithmetic bottoms out in one of the kernels here.  The
//! kernels are written around one hard invariant:
//!
//! > **Per-output-element accumulation order is preserved.**  Each output
//! > element is produced by exactly the same sequence of floating-point
//! > additions as the naive reference kernels in [`mod@reference`], so the
//! > blocked kernels are *bit-identical* to the references — blocking,
//! > batching and worker threads only reorder work *between* output
//! > elements, never *within* one.
//!
//! This is what lets the evaluation goldens (`tests/parity_golden.rs`,
//! `tests/scenario_golden.rs`) survive the kernel rewrite unchanged, and
//! what makes a cached trained model indistinguishable from a freshly
//! trained one.
//!
//! Two well-definedness notes the property tests rely on:
//!
//! * Skipping a multiplicand that is exactly `±0.0` is bit-equivalent to
//!   adding its product, because an accumulator that starts at `+0.0` and
//!   only ever has values added to it can never become `-0.0` (IEEE 754
//!   round-to-nearest: `x + y == -0.0` only when both `x` and `y` are
//!   `-0.0`).  The kernels therefore use zero-skips freely for speed.
//!   The equivalence assumes finite data: a skipped `0.0` that would have
//!   multiplied an `Inf`/`NaN` suppresses the `NaN` a no-skip kernel
//!   produces.  Training that reaches non-finite values is broken either
//!   way, so the kernels do not pay to preserve `NaN` propagation.
//! * Worker threads only ever write disjoint, contiguous row chunks of the
//!   output, so the result is bit-identical at any worker count.

pub mod autotune;
mod gemm;
mod im2col;
pub mod reference;

pub use gemm::{gemm, gemm_at, gemm_at_tiled, gemm_bt, gemm_bt_strided, gemm_bt_tiled, gemm_tiled};
pub use im2col::{col2im_item, im2col, im2col_batch, ConvGeometry};

/// Number of workers available to the kernels: the `VVD_WORKERS`
/// environment variable when set to a positive integer, the hardware
/// parallelism otherwise.
///
/// This is [`vvd_dsp::workers::worker_budget`] — the single ambient-env
/// site that owns the worker-budget concern; worker counts never change
/// any result — chunks are disjoint and per-element accumulation order is
/// preserved — so the override exists purely to pin the fan-out width,
/// e.g. for CI's fixed-worker-count matrix.
pub fn hardware_workers() -> usize {
    vvd_dsp::workers::worker_budget()
}

/// Runs `f` over contiguous row chunks of the `m × n` row-major buffer `c`,
/// fanning the chunks out to [`std::thread::scope`] workers when more than
/// one chunk is worth spawning.
///
/// `f(first_row, rows, chunk)` receives the index of its first row, its row
/// count and the mutable chunk.  Chunks are disjoint, so the worker count
/// cannot affect any result; `min_rows` bounds the smallest chunk a worker
/// is spawned for.
pub(crate) fn run_row_chunks<F>(c: &mut [f32], m: usize, n: usize, min_rows: usize, f: F)
where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    if m == 0 {
        return;
    }
    let workers = hardware_workers().min(m.div_ceil(min_rows.max(1))).max(1);
    if workers <= 1 {
        f(0, m, c);
        return;
    }
    let chunk_rows = m.div_ceil(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = c;
        let mut row = 0usize;
        while row < m {
            let rows = chunk_rows.min(m - row);
            let (head, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            let first = row;
            scope.spawn(move || f(first, rows, head));
            row += rows;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_chunks_cover_every_row_exactly_once() {
        let mut c = vec![0.0f32; 7 * 3];
        run_row_chunks(&mut c, 7, 3, 1, |first, rows, chunk| {
            for r in 0..rows {
                for v in &chunk[r * 3..(r + 1) * 3] {
                    assert_eq!(*v, 0.0);
                }
                let _ = first;
            }
            chunk.iter_mut().for_each(|v| *v += 1.0);
        });
        assert!(c.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn empty_output_is_a_no_op() {
        let mut c: Vec<f32> = Vec::new();
        run_row_chunks(&mut c, 0, 4, 1, |_, _, _| panic!("no rows to visit"));
    }
}
