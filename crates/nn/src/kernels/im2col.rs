//! The im2col convolution lowering, with stride and zero-padding, batched
//! over a whole mini-batch.
//!
//! A convolution over `[N, C, H, W]` is lowered to one GEMM: the batched
//! column matrix is `(patch × N·oh·ow)` with the columns of sample `i`
//! occupying the contiguous column range `[i·oh·ow, (i+1)·oh·ow)` of every
//! row, so `weights (out_c × patch) · columns` computes the whole batch's
//! forward pass in a single [`super::gemm`] call.

use super::run_row_chunks;

/// Geometry of a 2-D convolution lowering (square kernel, symmetric
/// zero-padding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride (both dimensions).
    pub stride: usize,
    /// Zero-padding (both dimensions, both sides).
    pub pad: usize,
}

impl ConvGeometry {
    /// Geometry of a stride-1, valid-padding convolution (the paper's CNN).
    pub fn valid(in_channels: usize, height: usize, width: usize, kernel: usize) -> Self {
        ConvGeometry {
            in_channels,
            height,
            width,
            kernel,
            stride: 1,
            pad: 0,
        }
    }

    /// Output spatial size.
    ///
    /// # Panics
    /// Panics when the kernel does not fit the padded input or the stride
    /// is zero.
    pub fn output_hw(&self) -> (usize, usize) {
        assert!(self.stride >= 1, "stride must be at least 1");
        assert!(
            self.height + 2 * self.pad >= self.kernel && self.width + 2 * self.pad >= self.kernel,
            "kernel larger than the padded input"
        );
        (
            (self.height + 2 * self.pad - self.kernel) / self.stride + 1,
            (self.width + 2 * self.pad - self.kernel) / self.stride + 1,
        )
    }

    /// Rows of the column matrix: `in_channels · kernel²`.
    pub fn patch(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Elements of one input item: `in_channels · height · width`.
    pub fn item_len(&self) -> usize {
        self.in_channels * self.height * self.width
    }
}

/// Lowers one `[C, H, W]` item to its `(patch × oh·ow)` column matrix.
pub fn im2col(item: &[f32], geometry: &ConvGeometry) -> Vec<f32> {
    im2col_batch(item, 1, geometry)
}

/// Lowers a batch of `n` items (stored back to back) to the batched
/// `(patch × n·oh·ow)` column matrix, filling patch-row chunks on scoped
/// worker threads (disjoint rows, bit-identical at any worker count).
pub fn im2col_batch(input: &[f32], n: usize, geometry: &ConvGeometry) -> Vec<f32> {
    let g = *geometry;
    assert_eq!(input.len(), n * g.item_len(), "im2col: input size mismatch");
    let (oh, ow) = g.output_hw();
    let ohow = oh * ow;
    let n_cols = n * ohow;
    let patch = g.patch();
    let mut col = vec![0.0f32; patch * n_cols];
    if n_cols == 0 {
        return col;
    }
    run_row_chunks(&mut col, patch, n_cols, 8, |first, _rows, chunk| {
        for (r, col_row) in chunk.chunks_mut(n_cols).enumerate() {
            let p = first + r;
            let c = p / (g.kernel * g.kernel);
            let ky = (p / g.kernel) % g.kernel;
            let kx = p % g.kernel;
            for i in 0..n {
                let channel =
                    &input[i * g.item_len() + c * g.height * g.width..][..g.height * g.width];
                fill_patch_row(&mut col_row[i * ohow..(i + 1) * ohow], channel, &g, ky, kx);
            }
        }
    });
    col
}

/// Fills one sample's stretch of a patch row: `dst[oy·ow + ox] =
/// channel[oy·stride + ky − pad][ox·stride + kx − pad]` (zero outside).
fn fill_patch_row(dst: &mut [f32], channel: &[f32], g: &ConvGeometry, ky: usize, kx: usize) {
    let (oh, ow) = g.output_hw();
    for oy in 0..oh {
        let iy = (oy * g.stride + ky) as isize - g.pad as isize;
        let row_dst = &mut dst[oy * ow..(oy + 1) * ow];
        if iy < 0 || iy >= g.height as isize {
            continue; // stays zero
        }
        let src_row = &channel[iy as usize * g.width..][..g.width];
        if g.stride == 1 {
            // Contiguous copy of the in-bounds overlap.
            let ix0 = kx as isize - g.pad as isize;
            let ox_start = (-ix0).max(0) as usize;
            let ox_end = ow.min(((g.width as isize) - ix0).max(0) as usize);
            if ox_start < ox_end {
                row_dst[ox_start..ox_end].copy_from_slice(
                    &src_row[(ix0 + ox_start as isize) as usize..(ix0 + ox_end as isize) as usize],
                );
            }
        } else {
            for (ox, d) in row_dst.iter_mut().enumerate() {
                let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                if ix >= 0 && ix < g.width as isize {
                    *d = src_row[ix as usize];
                }
            }
        }
    }
}

/// Accumulates one sample's gradient columns back into its input-gradient
/// item (`+=`), reading the sample's column range out of the batched
/// `(patch × n_cols)` matrix at `col_base = i·oh·ow`.
///
/// Additions per input element happen in ascending `(c, ky, kx, oy, ox)`
/// order — the order the pre-kernel per-sample `col2im` used.
pub fn col2im_item(
    col: &[f32],
    n_cols: usize,
    col_base: usize,
    geometry: &ConvGeometry,
    out: &mut [f32],
) {
    let g = geometry;
    let (oh, ow) = g.output_hw();
    assert_eq!(out.len(), g.item_len(), "col2im: output size mismatch");
    for c in 0..g.in_channels {
        let channel = &mut out[c * g.height * g.width..][..g.height * g.width];
        for ky in 0..g.kernel {
            for kx in 0..g.kernel {
                let p = c * g.kernel * g.kernel + ky * g.kernel + kx;
                let row = &col[p * n_cols + col_base..p * n_cols + col_base + oh * ow];
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    if iy < 0 || iy >= g.height as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        if ix < 0 || ix >= g.width as isize {
                            continue;
                        }
                        channel[iy as usize * g.width + ix as usize] += row[oy * ow + ox];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(c: usize, h: usize, w: usize) -> Vec<f32> {
        (0..c * h * w).map(|i| i as f32 * 0.25 - 3.0).collect()
    }

    #[test]
    fn valid_stride1_matches_manual_patches() {
        let g = ConvGeometry::valid(1, 3, 3, 2);
        let x = item(1, 3, 3);
        let col = im2col(&x, &g);
        let (oh, ow) = g.output_hw();
        assert_eq!((oh, ow), (2, 2));
        // Patch row (ky=0, kx=0) reads the top-left 2x2 positions.
        assert_eq!(&col[0..4], &[x[0], x[1], x[3], x[4]]);
        // Patch row (ky=1, kx=1) reads the bottom-right positions.
        assert_eq!(&col[3 * 4..4 * 4], &[x[4], x[5], x[7], x[8]]);
    }

    #[test]
    fn padding_produces_zero_border_columns() {
        let g = ConvGeometry {
            in_channels: 1,
            height: 2,
            width: 2,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let col = im2col(&x, &g);
        let (oh, ow) = g.output_hw();
        assert_eq!((oh, ow), (2, 2));
        // Patch position (ky=0, kx=0) looks one up-left of each output: the
        // only in-bounds read is for output (1,1), which sees input (0,0).
        assert_eq!(&col[0..4], &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn batch_is_the_concatenation_of_per_sample_columns() {
        let g = ConvGeometry {
            in_channels: 2,
            height: 4,
            width: 5,
            kernel: 2,
            stride: 2,
            pad: 1,
        };
        let a = item(2, 4, 5);
        let b: Vec<f32> = a.iter().map(|v| v * -0.5 + 1.0).collect();
        let mut both = a.clone();
        both.extend_from_slice(&b);
        let batched = im2col_batch(&both, 2, &g);
        let col_a = im2col(&a, &g);
        let col_b = im2col(&b, &g);
        let (oh, ow) = g.output_hw();
        let ohow = oh * ow;
        for p in 0..g.patch() {
            assert_eq!(
                &batched[p * 2 * ohow..p * 2 * ohow + ohow],
                &col_a[p * ohow..(p + 1) * ohow]
            );
            assert_eq!(
                &batched[p * 2 * ohow + ohow..(p + 1) * 2 * ohow],
                &col_b[p * ohow..(p + 1) * ohow]
            );
        }
    }

    #[test]
    fn col2im_is_the_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y.
        let g = ConvGeometry {
            in_channels: 1,
            height: 4,
            width: 4,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let x = item(1, 4, 4);
        let col_x = im2col(&x, &g);
        let y: Vec<f32> = (0..col_x.len()).map(|i| (i as f32 * 0.11).cos()).collect();
        let lhs: f64 = col_x
            .iter()
            .zip(y.iter())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let mut back = vec![0.0f32; g.item_len()];
        let (oh, ow) = g.output_hw();
        col2im_item(&y, oh * ow, 0, &g, &mut back);
        let rhs: f64 = x
            .iter()
            .zip(back.iter())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }
}
