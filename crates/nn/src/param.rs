//! Trainable parameters.
//!
//! Each layer owns its [`Parameter`]s; a parameter bundles the value, the
//! accumulated gradient and the optimizer moment buffers so that optimizers
//! can be stateless apart from their global step counter.

use serde::{Deserialize, Serialize};

/// A trainable parameter tensor (flattened storage; the owning layer knows
/// its logical shape).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Parameter {
    /// Current value.
    pub value: Vec<f32>,
    /// Gradient accumulated by the current backward pass.
    pub grad: Vec<f32>,
    /// First-moment buffer (Adam/Nadam).
    pub m: Vec<f32>,
    /// Second-moment buffer (Adam/Nadam).
    pub v: Vec<f32>,
}

impl Parameter {
    /// Creates a parameter from initial values.
    pub fn new(value: Vec<f32>) -> Self {
        let n = value.len();
        Parameter {
            value,
            grad: vec![0.0; n],
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    /// Number of scalar values.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// `true` when the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Clears the gradient accumulator.
    pub fn zero_grad(&mut self) {
        for g in self.grad.iter_mut() {
            *g = 0.0;
        }
    }

    /// L2 norm of the gradient (useful for tests and debugging).
    pub fn grad_norm(&self) -> f32 {
        self.grad.iter().map(|g| g * g).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_allocates_buffers() {
        let p = Parameter::new(vec![1.0, -2.0, 3.0]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.grad, vec![0.0; 3]);
        assert_eq!(p.m, vec![0.0; 3]);
        assert_eq!(p.v, vec![0.0; 3]);
        assert!(!p.is_empty());
    }

    #[test]
    fn zero_grad_clears_accumulator() {
        let mut p = Parameter::new(vec![1.0, 1.0]);
        p.grad = vec![0.5, -0.5];
        assert!(p.grad_norm() > 0.0);
        p.zero_grad();
        assert_eq!(p.grad, vec![0.0, 0.0]);
        assert_eq!(p.grad_norm(), 0.0);
    }
}
