//! Optimizers.
//!
//! The paper trains with the Nadam optimizer (Adam with Nesterov momentum),
//! initial learning rate 1e-4 and the Keras default schedule
//! `lr_t = lr / (1 + decay · t)` with `decay = 0.004` applied per update.
//! SGD and plain Adam are provided for comparison and tests.

use crate::param::Parameter;
use serde::{Deserialize, Serialize};

/// A gradient-descent style optimizer that updates one [`Parameter`] at a
/// time (all state that is per-parameter lives inside the parameter's moment
/// buffers).
pub trait Optimizer {
    /// Applies one update to a parameter using its accumulated gradient.
    fn update(&self, param: &mut Parameter);

    /// Advances the global step counter (call once per mini-batch, after all
    /// parameters have been updated).
    fn advance(&mut self);

    /// Current effective learning rate (after any decay schedule).
    fn learning_rate(&self) -> f32;
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    step: u64,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            step: 0,
        }
    }
}

impl Optimizer for Sgd {
    fn update(&self, param: &mut Parameter) {
        for i in 0..param.len() {
            if self.momentum > 0.0 {
                param.m[i] = self.momentum * param.m[i] + param.grad[i];
                param.value[i] -= self.lr * param.m[i];
            } else {
                param.value[i] -= self.lr * param.grad[i];
            }
        }
    }

    fn advance(&mut self) {
        self.step += 1;
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adam optimizer (Kingma & Ba).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Base learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical stabiliser.
    pub epsilon: f32,
    /// Learning-rate decay per step (Keras-style `lr / (1 + decay * t)`).
    pub decay: f32,
    step: u64,
}

impl Adam {
    /// Creates an Adam optimizer with the usual defaults.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            decay: 0.0,
            step: 0,
        }
    }

    fn effective_lr(&self) -> f32 {
        self.lr / (1.0 + self.decay * self.step as f32)
    }
}

impl Optimizer for Adam {
    fn update(&self, param: &mut Parameter) {
        let t = (self.step + 1) as f32;
        let lr = self.effective_lr();
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for i in 0..param.len() {
            let g = param.grad[i];
            param.m[i] = self.beta1 * param.m[i] + (1.0 - self.beta1) * g;
            param.v[i] = self.beta2 * param.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = param.m[i] / bc1;
            let v_hat = param.v[i] / bc2;
            param.value[i] -= lr * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }

    fn advance(&mut self) {
        self.step += 1;
    }

    fn learning_rate(&self) -> f32 {
        self.effective_lr()
    }
}

/// Nadam optimizer: Adam with Nesterov momentum, as used by the paper
/// (initial learning rate 1e-4, decay 0.004).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Nadam {
    /// Base learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical stabiliser.
    pub epsilon: f32,
    /// Learning-rate decay per step (Keras-style `lr / (1 + decay * t)`).
    pub decay: f32,
    step: u64,
}

impl Nadam {
    /// Creates a Nadam optimizer with the paper's hyper-parameters.
    pub fn paper_defaults() -> Self {
        Nadam::new(1e-4, 0.004)
    }

    /// Creates a Nadam optimizer.
    pub fn new(lr: f32, decay: f32) -> Self {
        Nadam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            decay,
            step: 0,
        }
    }

    fn effective_lr(&self) -> f32 {
        self.lr / (1.0 + self.decay * self.step as f32)
    }
}

impl Optimizer for Nadam {
    fn update(&self, param: &mut Parameter) {
        let t = (self.step + 1) as f32;
        let lr = self.effective_lr();
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc1_next = 1.0 - self.beta1.powf(t + 1.0);
        let bc2 = 1.0 - self.beta2.powf(t);
        for i in 0..param.len() {
            let g = param.grad[i];
            param.m[i] = self.beta1 * param.m[i] + (1.0 - self.beta1) * g;
            param.v[i] = self.beta2 * param.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = param.m[i] / bc1_next;
            let v_hat = param.v[i] / bc2;
            // Nesterov look-ahead on the first moment.
            let m_nesterov = self.beta1 * m_hat + (1.0 - self.beta1) * g / bc1;
            param.value[i] -= lr * m_nesterov / (v_hat.sqrt() + self.epsilon);
        }
    }

    fn advance(&mut self) {
        self.step += 1;
    }

    fn learning_rate(&self) -> f32 {
        self.effective_lr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x - 3)^2 with each optimizer and check convergence.
    fn minimise<O: Optimizer>(mut opt: O, steps: usize) -> f32 {
        let mut p = Parameter::new(vec![0.0]);
        for _ in 0..steps {
            p.zero_grad();
            p.grad[0] = 2.0 * (p.value[0] - 3.0);
            opt.update(&mut p);
            opt.advance();
        }
        p.value[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = minimise(Sgd::new(0.1, 0.0), 200);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges_faster_than_plain() {
        let plain = minimise(Sgd::new(0.02, 0.0), 60);
        let with_momentum = minimise(Sgd::new(0.02, 0.9), 60);
        assert!((with_momentum - 3.0).abs() < (plain - 3.0).abs());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = minimise(Adam::new(0.1), 500);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn nadam_converges_on_quadratic() {
        let x = minimise(Nadam::new(0.1, 0.0), 500);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn learning_rate_decay_reduces_lr() {
        let mut n = Nadam::paper_defaults();
        let lr0 = n.learning_rate();
        for _ in 0..100 {
            n.advance();
        }
        assert!(n.learning_rate() < lr0);
        assert!((n.learning_rate() - 1e-4 / 1.4).abs() < 1e-7);
    }

    #[test]
    fn paper_defaults_match_section_4() {
        let n = Nadam::paper_defaults();
        assert!((n.lr - 1e-4).abs() < 1e-12);
        assert!((n.decay - 0.004).abs() < 1e-12);
    }
}
