//! # vvd-nn
//!
//! A small, self-contained, CPU-only neural-network library built for the
//! Veni Vidi Dixi reproduction.
//!
//! The paper trains a Keras/TensorFlow CNN (Fig. 8) that maps 50 × 90 depth
//! images to 22 real outputs (the real/imaginary parts of an 11-tap channel
//! impulse response).  The thin Rust ML ecosystem is the main reproduction
//! gate called out in the calibration bands, so instead of binding to an
//! external framework this crate implements the required pieces from
//! scratch:
//!
//! * a dense row-major [`tensor::Tensor`] with an `[N, C, H, W]` layout
//!   convention for image batches,
//! * cache-blocked GEMM and batched im2col lowering kernels that are
//!   bit-identical to their naive references ([`kernels`]),
//! * layers: 2-D convolution (batched im2col + GEMM), average / max
//!   pooling, fully connected, ReLU, flatten, batch normalisation and
//!   dropout ([`layers`]),
//! * mean-squared-error loss ([`loss`]),
//! * SGD, Adam and Nadam optimizers (the paper uses Nadam, lr 1e-4, decay
//!   0.004) ([`optim`]),
//! * a [`model::Sequential`] container and a [`train::Trainer`] that keeps
//!   the weights of the best validation epoch, exactly like the paper's
//!   model-selection procedure,
//! * weight (de)serialisation via `serde` ([`serialize`]).
//!
//! The implementation favours clarity and testability over raw speed; the
//! evaluation presets in `vvd-testbed` size the network and dataset so that
//! end-to-end runs remain laptop-scale.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod init;
pub mod kernels;
pub mod layers;
pub mod loss;
pub mod model;
pub mod optim;
pub mod param;
pub mod serialize;
pub mod tensor;
pub mod train;

pub use layers::{AvgPool2d, BatchNorm2d, Conv2d, Dense, Dropout, Flatten, Layer, MaxPool2d, Relu};
pub use loss::mse;
pub use model::Sequential;
pub use optim::{Adam, Nadam, Optimizer, Sgd};
pub use param::Parameter;
pub use tensor::Tensor;
pub use train::{TrainConfig, TrainReport, Trainer};
