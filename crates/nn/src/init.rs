//! Weight initialisation.
//!
//! Glorot (Xavier) uniform initialisation, the Keras default that the
//! paper's model inherits, plus He initialisation for ReLU-heavy stacks.

use rand::Rng;
use rand_distr::{Distribution, Normal, Uniform};

/// Glorot/Xavier uniform initialisation: `U(-limit, limit)` with
/// `limit = sqrt(6 / (fan_in + fan_out))`.
pub fn glorot_uniform<R: Rng + ?Sized>(
    fan_in: usize,
    fan_out: usize,
    n: usize,
    rng: &mut R,
) -> Vec<f32> {
    let limit = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
    let dist = Uniform::new_inclusive(-limit, limit);
    (0..n).map(|_| dist.sample(rng) as f32).collect()
}

/// He normal initialisation: `N(0, sqrt(2 / fan_in))`.
pub fn he_normal<R: Rng + ?Sized>(fan_in: usize, n: usize, rng: &mut R) -> Vec<f32> {
    let std = (2.0 / fan_in.max(1) as f64).sqrt();
    let dist = Normal::new(0.0, std).expect("valid std");
    (0..n).map(|_| dist.sample(rng) as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn glorot_respects_limit() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = glorot_uniform(100, 50, 10_000, &mut rng);
        let limit = (6.0f64 / 150.0).sqrt() as f32;
        assert!(w.iter().all(|x| x.abs() <= limit + 1e-6));
        // Roughly zero mean.
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < 0.01);
    }

    #[test]
    fn he_normal_has_expected_std() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = he_normal(50, 50_000, &mut rng);
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        let var: f32 = w.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / w.len() as f32;
        let expected = 2.0 / 50.0;
        assert!((var - expected as f32).abs() < 0.005, "var {var}");
    }

    #[test]
    fn different_seeds_give_different_weights() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            glorot_uniform(4, 4, 16, &mut a),
            glorot_uniform(4, 4, 16, &mut b)
        );
    }
}
