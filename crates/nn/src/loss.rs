//! Loss functions.
//!
//! The paper trains and model-selects with mean squared error between the
//! predicted and the (normalised) perfect channel impulse response.

use crate::tensor::Tensor;

/// Mean squared error and its gradient with respect to the prediction.
///
/// Returns `(loss, grad)` where the loss is averaged over every element of
/// the batch and the gradient has the prediction's shape.
pub fn mse(prediction: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(
        prediction.shape(),
        target.shape(),
        "MSE shape mismatch: {:?} vs {:?}",
        prediction.shape(),
        target.shape()
    );
    let n = prediction.len().max(1) as f32;
    let mut loss = 0.0f32;
    let mut grad = vec![0.0f32; prediction.len()];
    for (i, (p, t)) in prediction
        .data()
        .iter()
        .zip(target.data().iter())
        .enumerate()
    {
        let d = p - t;
        loss += d * d;
        grad[i] = 2.0 * d / n;
    }
    (loss / n, Tensor::from_vec(prediction.shape(), grad))
}

/// Mean squared error only (no gradient), for validation-set evaluation.
pub fn mse_value(prediction: &Tensor, target: &Tensor) -> f32 {
    mse(prediction, target).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_zero_loss() {
        let p = Tensor::from_vec(&[2, 3], vec![1.0, -2.0, 0.5, 0.0, 3.0, -1.0]);
        let (loss, grad) = mse(&p, &p);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn known_value() {
        let p = Tensor::from_vec(&[1, 2], vec![1.0, 2.0]);
        let t = Tensor::from_vec(&[1, 2], vec![0.0, 0.0]);
        let (loss, grad) = mse(&p, &t);
        assert!((loss - 2.5).abs() < 1e-6);
        assert!((grad.data()[0] - 1.0).abs() < 1e-6);
        assert!((grad.data()[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_numerical_derivative() {
        let p_data = vec![0.3, -0.7, 1.2, 0.0];
        let t = Tensor::from_vec(&[2, 2], vec![0.1, 0.1, 0.1, 0.1]);
        let p = Tensor::from_vec(&[2, 2], p_data.clone());
        let (_, grad) = mse(&p, &t);
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut plus = p_data.clone();
            plus[i] += eps;
            let mut minus = p_data.clone();
            minus[i] -= eps;
            let lp = mse_value(&Tensor::from_vec(&[2, 2], plus), &t);
            let lm = mse_value(&Tensor::from_vec(&[2, 2], minus), &t);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grad.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let p = Tensor::zeros(&[1, 2]);
        let t = Tensor::zeros(&[2, 1]);
        let _ = mse(&p, &t);
    }
}
