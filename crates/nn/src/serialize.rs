//! Model-weight serialisation.
//!
//! The paper publishes its trained Keras model alongside the dataset; the
//! reproduction offers the same ability by snapshotting a model's parameter
//! state to JSON (self-describing, diff-able, no extra dependencies beyond
//! `serde_json`).

use crate::model::Sequential;
use serde::{Deserialize, Serialize};

/// A serialisable snapshot of a model's trainable parameters and
/// non-trainable buffers together with a free-form architecture tag used to
/// detect mismatched loads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelCheckpoint {
    /// Identifier of the architecture the weights belong to.
    pub architecture: String,
    /// Flattened parameter values in layer order.
    pub parameters: Vec<Vec<f32>>,
    /// Non-trainable buffers (batch-norm running statistics) in layer
    /// order.  Empty for models without buffered layers; an empty list
    /// leaves the target model's buffers at their initial values.
    ///
    /// The field is required: checkpoints written by the buffer-less v1
    /// format do not parse (the vendored serde derive has no per-field
    /// defaulting).  No v1 checkpoints are persisted anywhere — the format
    /// only goes to disk via the model cache introduced together with this
    /// field.
    pub buffers: Vec<Vec<f32>>,
}

impl ModelCheckpoint {
    /// Captures the current weights and buffers of a model.
    pub fn capture(architecture: &str, model: &mut Sequential) -> Self {
        ModelCheckpoint {
            architecture: architecture.to_string(),
            parameters: model.state(),
            buffers: model.buffers_state(),
        }
    }

    /// Restores the weights (and buffers, when present) into a
    /// freshly-built model of the same architecture.
    ///
    /// # Errors
    /// Returns an error string if the architecture tag, the parameter
    /// layout or the buffer layout does not match.
    pub fn restore(&self, architecture: &str, model: &mut Sequential) -> Result<(), String> {
        if self.architecture != architecture {
            return Err(format!(
                "checkpoint architecture '{}' does not match '{architecture}'",
                self.architecture
            ));
        }
        let current = model.state();
        if current.len() != self.parameters.len()
            || current
                .iter()
                .zip(self.parameters.iter())
                .any(|(a, b)| a.len() != b.len())
        {
            return Err("checkpoint parameter layout does not match the model".to_string());
        }
        if !self.buffers.is_empty() {
            let buffers = model.buffers_state();
            if buffers.len() != self.buffers.len()
                || buffers
                    .iter()
                    .zip(self.buffers.iter())
                    .any(|(a, b)| a.len() != b.len())
            {
                return Err("checkpoint buffer layout does not match the model".to_string());
            }
        }
        model.load_state(&self.parameters);
        if !self.buffers.is_empty() {
            model.load_buffers_state(&self.buffers);
        }
        Ok(())
    }

    /// Serialises the checkpoint to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialisation cannot fail")
    }

    /// Parses a checkpoint from JSON.
    ///
    /// # Errors
    /// Returns the underlying `serde_json` error message on malformed input.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new()
            .add(Dense::new(3, 5, &mut rng))
            .add(Relu::new())
            .add(Dense::new(5, 2, &mut rng))
    }

    #[test]
    fn json_roundtrip_restores_predictions() {
        let mut original = model(0);
        let x = Tensor::from_vec(&[1, 3], vec![0.1, -0.2, 0.7]);
        let expected = original.predict(&x);

        let checkpoint = ModelCheckpoint::capture("mlp-3-5-2", &mut original);
        let json = checkpoint.to_json();
        let parsed = ModelCheckpoint::from_json(&json).unwrap();

        let mut restored = model(99); // different random init
        assert_ne!(restored.predict(&x).data(), expected.data());
        parsed.restore("mlp-3-5-2", &mut restored).unwrap();
        assert_eq!(restored.predict(&x).data(), expected.data());
    }

    #[test]
    fn architecture_mismatch_is_rejected() {
        let mut m = model(1);
        let checkpoint = ModelCheckpoint::capture("arch-a", &mut m);
        let mut other = model(2);
        assert!(checkpoint.restore("arch-b", &mut other).is_err());
    }

    #[test]
    fn layout_mismatch_is_rejected() {
        let mut m = model(1);
        let checkpoint = ModelCheckpoint::capture("arch", &mut m);
        let mut rng = StdRng::seed_from_u64(5);
        let mut different = Sequential::new().add(Dense::new(3, 4, &mut rng));
        assert!(checkpoint.restore("arch", &mut different).is_err());
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(ModelCheckpoint::from_json("not json").is_err());
    }

    mod full_stack_roundtrip {
        use super::*;
        use crate::layers::{AvgPool2d, BatchNorm2d, Conv2d, Dropout, Flatten, MaxPool2d};
        use crate::loss::mse;
        use crate::optim::Sgd;

        /// A model using every layer type in `layers/`: Conv2d, BatchNorm2d,
        /// ReLU, AvgPool2d, MaxPool2d, Dropout, Flatten, Dense.
        fn every_layer_model(seed: u64) -> Sequential {
            let mut rng = StdRng::seed_from_u64(seed);
            Sequential::new()
                .add(Conv2d::new(1, 3, 3, &mut rng))
                .add(BatchNorm2d::new(3))
                .add(Relu::new())
                .add(AvgPool2d::new(2))
                .add(Conv2d::new(3, 4, 3, &mut rng))
                .add(Relu::new())
                .add(MaxPool2d::new(2))
                .add(Dropout::new(0.25, seed))
                .add(Flatten::new())
                .add(Dense::new(4 * 2 * 2, 6, &mut rng))
                .add(Relu::new())
                .add(Dense::new(6, 2, &mut rng))
        }

        fn probe() -> Tensor {
            Tensor::from_vec(
                &[2, 1, 14, 14],
                (0..2 * 14 * 14).map(|i| (i as f32 * 0.17).sin()).collect(),
            )
        }

        #[test]
        fn roundtrip_covers_every_layer_type_bit_exactly() {
            let mut original = every_layer_model(1);
            // Train a little so batch-norm accumulates non-trivial running
            // statistics (they live in buffers, not parameters).
            let mut opt = Sgd::new(0.01, 0.0);
            let x = probe();
            for _ in 0..5 {
                original.zero_grad();
                let y = original.forward(&x, true);
                let (_, grad) = mse(&y, &Tensor::zeros(y.shape()));
                original.backward(&grad);
                original.step(&mut opt);
            }
            let expected = original.predict(&x);

            let json = ModelCheckpoint::capture("every-layer", &mut original).to_json();
            let parsed = ModelCheckpoint::from_json(&json).unwrap();
            assert!(
                !parsed.buffers.is_empty(),
                "batch-norm running stats must be captured"
            );

            let mut restored = every_layer_model(99); // different random init
            assert_ne!(restored.predict(&x).data(), expected.data());
            parsed.restore("every-layer", &mut restored).unwrap();
            assert_eq!(
                restored.predict(&x).data(),
                expected.data(),
                "deserialize(serialize(model)) must predict bit-identically"
            );
        }

        #[test]
        fn buffer_layout_mismatch_is_rejected() {
            let mut m = every_layer_model(2);
            let mut checkpoint = ModelCheckpoint::capture("every-layer", &mut m);
            checkpoint.buffers.pop();
            let mut other = every_layer_model(3);
            assert!(checkpoint.restore("every-layer", &mut other).is_err());
        }
    }
}
