//! Model-weight serialisation.
//!
//! The paper publishes its trained Keras model alongside the dataset; the
//! reproduction offers the same ability by snapshotting a model's parameter
//! state to JSON (self-describing, diff-able, no extra dependencies beyond
//! `serde_json`).

use crate::model::Sequential;
use serde::{Deserialize, Serialize};

/// A serialisable snapshot of a model's trainable parameters together with a
/// free-form architecture tag used to detect mismatched loads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelCheckpoint {
    /// Identifier of the architecture the weights belong to.
    pub architecture: String,
    /// Flattened parameter values in layer order.
    pub parameters: Vec<Vec<f32>>,
}

impl ModelCheckpoint {
    /// Captures the current weights of a model.
    pub fn capture(architecture: &str, model: &mut Sequential) -> Self {
        ModelCheckpoint {
            architecture: architecture.to_string(),
            parameters: model.state(),
        }
    }

    /// Restores the weights into a freshly-built model of the same
    /// architecture.
    ///
    /// # Errors
    /// Returns an error string if the architecture tag or the parameter
    /// layout does not match.
    pub fn restore(&self, architecture: &str, model: &mut Sequential) -> Result<(), String> {
        if self.architecture != architecture {
            return Err(format!(
                "checkpoint architecture '{}' does not match '{architecture}'",
                self.architecture
            ));
        }
        let current = model.state();
        if current.len() != self.parameters.len()
            || current
                .iter()
                .zip(self.parameters.iter())
                .any(|(a, b)| a.len() != b.len())
        {
            return Err("checkpoint parameter layout does not match the model".to_string());
        }
        model.load_state(&self.parameters);
        Ok(())
    }

    /// Serialises the checkpoint to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialisation cannot fail")
    }

    /// Parses a checkpoint from JSON.
    ///
    /// # Errors
    /// Returns the underlying `serde_json` error message on malformed input.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new()
            .add(Dense::new(3, 5, &mut rng))
            .add(Relu::new())
            .add(Dense::new(5, 2, &mut rng))
    }

    #[test]
    fn json_roundtrip_restores_predictions() {
        let mut original = model(0);
        let x = Tensor::from_vec(&[1, 3], vec![0.1, -0.2, 0.7]);
        let expected = original.predict(&x);

        let checkpoint = ModelCheckpoint::capture("mlp-3-5-2", &mut original);
        let json = checkpoint.to_json();
        let parsed = ModelCheckpoint::from_json(&json).unwrap();

        let mut restored = model(99); // different random init
        assert_ne!(restored.predict(&x).data(), expected.data());
        parsed.restore("mlp-3-5-2", &mut restored).unwrap();
        assert_eq!(restored.predict(&x).data(), expected.data());
    }

    #[test]
    fn architecture_mismatch_is_rejected() {
        let mut m = model(1);
        let checkpoint = ModelCheckpoint::capture("arch-a", &mut m);
        let mut other = model(2);
        assert!(checkpoint.restore("arch-b", &mut other).is_err());
    }

    #[test]
    fn layout_mismatch_is_rejected() {
        let mut m = model(1);
        let checkpoint = ModelCheckpoint::capture("arch", &mut m);
        let mut rng = StdRng::seed_from_u64(5);
        let mut different = Sequential::new().add(Dense::new(3, 4, &mut rng));
        assert!(checkpoint.restore("arch", &mut different).is_err());
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(ModelCheckpoint::from_json("not json").is_err());
    }
}
