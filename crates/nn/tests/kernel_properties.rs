//! Property tests pinning the blocked kernels to the naive references —
//! *bit-identical*, not approximately equal — across randomized shapes,
//! strides and paddings, and pinning batched passes to their per-sample
//! equivalents.
//!
//! These are the proofs behind the kernel-refactor guarantee: blocking,
//! batching and threading never change a single bit of any result, which
//! is why the evaluation goldens survive the rewrite and why cached
//! trained models are indistinguishable from fresh ones.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vvd_nn::kernels::{self, reference, ConvGeometry};
use vvd_nn::layers::Layer;
use vvd_nn::{AvgPool2d, Conv2d, Dense, Flatten, Relu, Sequential, Tensor};

/// Deterministic test data: finite values in (-2, 2) with exact zeros (and
/// negative zeros) sprinkled in to exercise the kernels' zero-skips.
fn data(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| match rng.gen_range(0u8..12) {
            0 => 0.0,
            1 => -0.0,
            _ => rng.gen_range(-2.0f32..2.0),
        })
        .collect()
}

proptest! {
    #[test]
    fn blocked_gemm_is_bit_identical_to_naive(
        dims in (1usize..12, 1usize..80, 1usize..600),
        seed in 0u64..1_000_000,
    ) {
        let (m, k, n) = dims;
        let a = data(m * k, seed);
        let b = data(k * n, seed.wrapping_add(1));
        prop_assert_eq!(
            kernels::gemm(&a, &b, m, k, n),
            reference::matmul(&a, &b, m, k, n)
        );
    }

    #[test]
    fn blocked_gemm_at_is_bit_identical_to_naive(
        dims in (1usize..80, 1usize..12, 1usize..600),
        seed in 0u64..1_000_000,
    ) {
        let (m, k, n) = dims;
        let a = data(k * m, seed);
        let b = data(k * n, seed.wrapping_add(2));
        prop_assert_eq!(
            kernels::gemm_at(&a, &b, m, k, n),
            reference::matmul_at(&a, &b, m, k, n)
        );
    }

    #[test]
    fn tiled_gemm_bt_is_bit_identical_to_naive(
        dims in (1usize..70, 1usize..90, 1usize..40),
        seed in 0u64..1_000_000,
    ) {
        let (m, k, n) = dims;
        let a = data(m * k, seed);
        let b = data(n * k, seed.wrapping_add(3));
        prop_assert_eq!(
            kernels::gemm_bt(&a, &b, m, k, n),
            reference::matmul_bt(&a, &b, m, k, n)
        );
    }

    /// Every autotune candidate tile produces bit-identical output for all
    /// three GEMM orientations on randomized shapes — the property that
    /// makes wall-clock tile selection safe: whichever candidate the sweep
    /// picks, the digests cannot move.
    #[test]
    fn every_autotune_candidate_tile_is_bit_identical(
        dims in (1usize..40, 1usize..60, 1usize..90),
        seed in 0u64..1_000_000,
    ) {
        use vvd_nn::kernels::autotune::{candidates, GemmOp};
        let (m, k, n) = dims;
        let a = data(m * k, seed);
        let b = data(k * n, seed.wrapping_add(4));
        let bt = data(n * k, seed.wrapping_add(5));
        let nn_ref = reference::matmul(&a, &b, m, k, n);
        for tiles in candidates(GemmOp::Nn) {
            prop_assert_eq!(&kernels::gemm_tiled(&a, &b, m, k, n, tiles), &nn_ref);
        }
        let at = data(k * m, seed.wrapping_add(6));
        let at_ref = reference::matmul_at(&at, &b, m, k, n);
        for tiles in candidates(GemmOp::At) {
            prop_assert_eq!(&kernels::gemm_at_tiled(&at, &b, m, k, n, tiles), &at_ref);
        }
        let bt_ref = reference::matmul_bt(&a, &bt, m, k, n);
        for tiles in candidates(GemmOp::Bt) {
            prop_assert_eq!(&kernels::gemm_bt_tiled(&a, &bt, m, k, n, tiles), &bt_ref);
        }
    }

    /// im2col + GEMM convolution (any stride, any padding) is bit-identical
    /// to the direct convolution reference.
    #[test]
    fn lowered_convolution_matches_direct_reference(
        channels in (1usize..4, 1usize..5),
        hw in (1usize..12, 1usize..12),
        ksp in (1usize..5, 1usize..4, 0usize..3),
        seed in 0u64..1_000_000,
    ) {
        let (in_channels, out_channels) = channels;
        let (height, width) = hw;
        let (kernel, stride, pad) = ksp;
        prop_assume!(height + 2 * pad >= kernel && width + 2 * pad >= kernel);
        let geometry = ConvGeometry { in_channels, height, width, kernel, stride, pad };
        let (oh, ow) = geometry.output_hw();
        let patch = geometry.patch();
        let item = data(geometry.item_len(), seed);
        let weight = data(out_channels * patch, seed.wrapping_add(4));
        let bias = data(out_channels, seed.wrapping_add(5));

        let col = kernels::im2col(&item, &geometry);
        let mut lowered = kernels::gemm(&weight, &col, out_channels, patch, oh * ow);
        for oc in 0..out_channels {
            for v in &mut lowered[oc * oh * ow..(oc + 1) * oh * ow] {
                *v += bias[oc];
            }
        }
        let direct = reference::conv2d_direct(&item, &weight, &bias, out_channels, &geometry);
        prop_assert_eq!(lowered, direct);
    }

    /// One batched forward pass through the full layer stack equals the
    /// concatenation of per-sample passes, bit for bit.
    #[test]
    fn batched_forward_equals_per_sample_forward(
        n in 1usize..5,
        hw in (9usize..14, 9usize..14),
        seed in 0u64..1_000_000,
    ) {
        let (h, w) = hw;
        let mut rng = StdRng::seed_from_u64(seed);
        let model = Sequential::new()
            .add(Conv2d::new(1, 3, 3, &mut rng))
            .add(Relu::new())
            .add(AvgPool2d::new(2))
            .add(Flatten::new())
            .add(Dense::new(3 * ((h - 2) / 2) * ((w - 2) / 2), 7, &mut rng))
            .add(Relu::new())
            .add(Dense::new(7, 2, &mut rng));

        let batch = Tensor::from_vec(&[n, 1, h, w], data(n * h * w, seed.wrapping_add(6)));
        let batched = model.infer(&batch);
        prop_assert_eq!(batched.shape(), &[n, 2]);

        let mut concatenated: Vec<f32> = Vec::new();
        for i in 0..n {
            let item = Tensor::from_vec(&[1, 1, h, w], batch.item(i).to_vec());
            concatenated.extend_from_slice(model.infer(&item).data());
        }
        prop_assert_eq!(batched.data(), &concatenated[..]);
    }

    /// One batched backward pass accumulates exactly the gradients of the
    /// per-sample passes applied in sample order.
    #[test]
    fn batched_backward_equals_per_sample_backward(
        n in 1usize..5,
        channels in (1usize..3, 1usize..4),
        hw in (4usize..8, 4usize..8),
        kernel in 2usize..4,
        seed in 0u64..1_000_000,
    ) {
        let (in_channels, out_channels) = channels;
        let (h, w) = hw;
        prop_assume!(h >= kernel && w >= kernel);
        let (oh, ow) = (h + 1 - kernel, w + 1 - kernel);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut batched = Conv2d::new(in_channels, out_channels, kernel, &mut rng);
        let mut per_sample = batched.clone();

        let x = Tensor::from_vec(
            &[n, in_channels, h, w],
            data(n * in_channels * h * w, seed.wrapping_add(7)),
        );
        let g = Tensor::from_vec(
            &[n, out_channels, oh, ow],
            data(n * out_channels * oh * ow, seed.wrapping_add(8)),
        );

        let _ = batched.forward(&x, true);
        let gi = batched.backward(&g);

        let mut gi_concat: Vec<f32> = Vec::new();
        for i in 0..n {
            let xi = Tensor::from_vec(&[1, in_channels, h, w], x.item(i).to_vec());
            let gsi = Tensor::from_vec(&[1, out_channels, oh, ow], g.item(i).to_vec());
            let _ = per_sample.forward(&xi, true);
            gi_concat.extend_from_slice(per_sample.backward(&gsi).data());
        }

        let batched_params: Vec<Vec<f32>> = batched
            .parameters()
            .into_iter()
            .map(|p| p.grad.clone())
            .collect();
        let per_sample_params: Vec<Vec<f32>> = per_sample
            .parameters()
            .into_iter()
            .map(|p| p.grad.clone())
            .collect();
        prop_assert_eq!(batched_params, per_sample_params);
        prop_assert_eq!(gi.data(), &gi_concat[..]);
    }
}
