//! The generic streaming evaluation core.
//!
//! One function, [`stream_estimators`], replays a combination's test set
//! packet by packet over a set of boxed
//! [`ChannelEstimator`](vvd_estimation::ChannelEstimator)s: fit on the
//! training sets, then per packet *estimate → decode → score → observe*.
//! Both the Figs. 11–15 technique comparison (`crate::evaluate`) and the
//! Figs. 16–17 aging sweeps (`crate::aging`) are thin layers over this
//! core, so a new estimator — registered by spec string, any AR order, any
//! fallback chain — runs through every experiment without harness edits.
//!
//! Estimators are independent by construction (no shared state after
//! fitting), so the streaming phase optionally fans out over worker threads
//! with [`std::thread::scope`]; the per-estimator arithmetic is identical
//! either way, which makes the parallel results bit-identical to the
//! sequential ones.
//!
//! The per-session serving pipeline in `vvd-serve` replays this module's
//! per-packet arithmetic verbatim (its [`EstimatorTrace`]s are
//! bit-comparable to [`stream_estimators`]' ones) and reuses
//! [`CombinationDatasets`] and [`training_cirs`] to fit its sessions —
//! which is what the serve-vs-sequential golden test pins down.
//!
//! On top of the per-combination core, [`run_scenario_sweep`] fans the
//! same machinery out over a (scenario × estimator) grid: each scenario
//! spec generates its own campaign (batched CIR/waveform synthesis on
//! worker threads, see `crate::campaign`), every estimator spec streams
//! through every combination of it, and the scenarios themselves are
//! spread round-robin over workers with the remaining cores divided among
//! them as synthesis threads — so one call evaluates, say, 4 scenarios ×
//! 14 techniques × all combinations without leaving cores idle.  One
//! content-addressed model cache is shared across the whole grid, so grid
//! cells whose VVD trainings have identical provenance train once and hit
//! the cache afterwards ([`run_scenario_sweep_report`] returns the
//! hit/miss accounting alongside the outcomes).

use crate::campaign::{Campaign, FrameRecord, MeasurementSet};
use crate::combinations::{combinations_for, SetCombination};
use crate::evaluate::{
    evaluate_specs_with_cache, CombinationResult, EvalOptions, EvaluationSummary,
};
use std::fmt;
use vvd_channel::scenario::{BoxedScenario, ScenarioRegistry, SpecParseError};
use vvd_core::VvdVariant;
use vvd_dsp::FirFilter;
use vvd_estimation::decode::decode_with_reference;
use vvd_estimation::estimator::{
    BoxedEstimator, Estimate, EstimateRequest, FrameSource, PacketObservation, TrainingContext,
    VvdDatasetSource, VvdModelPool,
};
use vvd_estimation::ls::preamble_estimate;
use vvd_estimation::phase::align_mean_phase;
use vvd_estimation::EqualizerConfig;
use vvd_estimation::{ModelCache, ModelCacheStats};
use vvd_phy::{DecodeOutcome, Receiver};

/// An estimator plus the label its results are reported under.
pub struct LabeledEstimator {
    /// Metric key (a paper label for canonical techniques, the spec string
    /// otherwise).
    pub label: String,
    /// The estimator instance (single-use; see the trait's state lifecycle).
    pub estimator: BoxedEstimator,
}

impl LabeledEstimator {
    /// Pairs an estimator with a label.
    pub fn new(label: impl Into<String>, estimator: BoxedEstimator) -> Self {
        LabeledEstimator {
            label: label.into(),
            estimator,
        }
    }
}

/// Options of one streaming run.
#[derive(Debug, Clone, Copy)]
pub struct StreamOptions {
    /// Index of the first test packet that is scored; earlier packets are
    /// only streamed through [`ChannelEstimator::observe`] (estimator
    /// warm-up, cf. the paper's 200-packet Kalman warm-up).
    ///
    /// [`ChannelEstimator::observe`]: vvd_estimation::ChannelEstimator::observe
    pub score_from: usize,
    /// Stream estimators on worker threads (capped at the available
    /// parallelism).  Results are bit-identical to the sequential path.
    pub parallel: bool,
}

/// Per-estimator result of a streaming run.
#[derive(Debug, Clone)]
pub struct EstimatorTrace {
    /// The estimator's label.
    pub label: String,
    /// Decode outcomes of the scored packets for which the estimator
    /// produced a decodable result (everything except [`Estimate::Skip`]).
    pub scored: Vec<DecodeOutcome>,
    /// The (phase-aligned) estimates actually used on scored packets, for
    /// the Eq.-9 MSE.
    pub estimates: Vec<FirFilter>,
    /// The matching perfect estimates.
    pub truths: Vec<FirFilter>,
    /// One outcome per scored packet *including* skips (recorded as
    /// zero-sized losses), aligned across estimators — the Fig.-15 time
    /// series is assembled from these.
    pub per_packet: Vec<DecodeOutcome>,
}

/// Builds the VVD training/validation datasets of a combination, on demand
/// per variant (the [`VvdModelPool`] caches the trained models).
pub struct CombinationDatasets<'a> {
    campaign: &'a Campaign,
    combination: &'a SetCombination,
}

impl<'a> CombinationDatasets<'a> {
    /// Dataset source over a campaign's combination.
    pub fn new(campaign: &'a Campaign, combination: &'a SetCombination) -> Self {
        CombinationDatasets {
            campaign,
            combination,
        }
    }
}

impl VvdDatasetSource for CombinationDatasets<'_> {
    fn datasets(&self, variant: VvdVariant) -> (vvd_core::VvdDataset, vvd_core::VvdDataset) {
        let cfg = &self.campaign.config;
        let train = crate::evaluate::build_vvd_dataset(
            self.campaign,
            &self.combination.training,
            variant,
            cfg.max_vvd_training_samples,
        );
        let validation = crate::evaluate::build_vvd_dataset(
            self.campaign,
            &[self.combination.validation],
            variant,
            if cfg.max_vvd_training_samples > 0 {
                cfg.max_vvd_training_samples / 4
            } else {
                0
            },
        );
        (train, validation)
    }
}

/// The chronological sequence of (phase-aligned) perfect channel estimates
/// of the combination's training sets — what time-series estimators fit on.
pub fn training_cirs(campaign: &Campaign, combination: &SetCombination) -> Vec<FirFilter> {
    combination
        .training
        .iter()
        .flat_map(|&set_id| campaign.set(set_id).packets.iter())
        .map(|p| p.aligned_cir.clone())
        .collect()
}

/// Median channel energy of the training sequence, the "unblocked"
/// reference of the Fig.-15 LoS-blockage indicator.
///
/// # Panics
/// Panics when the training sequence is empty — every combination must
/// contribute at least one training packet; a silent fallback would skew
/// every blockage classification.
pub fn nominal_energy(training_cirs: &[FirFilter]) -> f64 {
    assert!(
        !training_cirs.is_empty(),
        "cannot derive the nominal channel energy from an empty training set"
    );
    let mut energies: Vec<f64> = training_cirs.iter().map(|c| c.energy()).collect();
    energies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    energies[energies.len() / 2]
}

/// [`FrameSource`] over a measurement set's frame records.
struct SetFrames<'a>(&'a [FrameRecord]);

impl FrameSource for SetFrames<'_> {
    fn frame(&self, index: usize) -> &vvd_vision::DepthImage {
        &self.0[index].image
    }
    fn n_frames(&self) -> usize {
        self.0.len()
    }
}

/// Fits the estimators on the combination's training data and streams the
/// test set through them, returning one trace per estimator (input order).
///
/// Fitting is sequential — expensive artefacts are shared through the
/// caller's `pool`, and the pool trains each variant deterministically on
/// first use.  The streaming phase runs per-estimator and, with
/// [`StreamOptions::parallel`], fans contiguous chunks of estimators out to
/// `std::thread::scope` workers; every worker only touches its own
/// estimators, so scheduling cannot affect the results.
pub fn stream_estimators(
    campaign: &Campaign,
    combination: &SetCombination,
    mut estimators: Vec<LabeledEstimator>,
    cirs: &[FirFilter],
    pool: &VvdModelPool<'_>,
    options: &StreamOptions,
) -> Vec<EstimatorTrace> {
    // --- Fit phase (sequential, deterministic order) --------------------
    let ctx = TrainingContext::new(cirs).with_vvd(pool);
    for labeled in &mut estimators {
        labeled.estimator.fit(&ctx);
    }

    // --- Streaming phase ------------------------------------------------
    let workers = if options.parallel {
        vvd_dsp::worker_budget().min(estimators.len().max(1))
    } else {
        1
    };

    if workers <= 1 {
        return stream_chunk(campaign, combination, estimators, options);
    }

    // Deterministic contiguous chunks; traces are re-assembled in input
    // order, so the grouping is invisible in the results.
    let chunk_size = estimators.len().div_ceil(workers);
    let mut chunks: Vec<Vec<LabeledEstimator>> = Vec::new();
    let mut rest = estimators;
    while !rest.is_empty() {
        let tail = rest.split_off(rest.len().min(chunk_size));
        chunks.push(rest);
        rest = tail;
    }

    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || stream_chunk(campaign, combination, chunk, options)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("streaming worker panicked"))
            .collect()
    })
}

/// Streams the full test set through a chunk of estimators with one shared
/// packet scan: the received waveform, its preamble-based LS estimate and
/// (when needed) the synchronisation offset are computed once per packet
/// and reused by every estimator of the chunk — the per-estimator
/// arithmetic is untouched, so chunking cannot change any result.
fn stream_chunk(
    campaign: &Campaign,
    combination: &SetCombination,
    chunk: Vec<LabeledEstimator>,
    options: &StreamOptions,
) -> Vec<EstimatorTrace> {
    let cfg = &campaign.config;
    let receiver = Receiver::new(cfg.phy);
    let eq = cfg.equalizer;
    let test_set: &MeasurementSet = campaign.set(combination.test);
    let frames = SetFrames(&test_set.frames);

    let (labels, mut estimators): (Vec<String>, Vec<BoxedEstimator>) = chunk
        .into_iter()
        .map(|labeled| (labeled.label, labeled.estimator))
        .unzip();
    let wants_preamble_obs: Vec<bool> = estimators
        .iter()
        .map(|e| e.wants_preamble_observations())
        .collect();
    let any_wants_preamble = wants_preamble_obs.iter().any(|&w| w);

    let mut traces: Vec<EstimatorTrace> = labels
        .into_iter()
        .map(|label| EstimatorTrace {
            label,
            scored: Vec::new(),
            estimates: Vec::new(),
            truths: Vec::new(),
            per_packet: Vec::new(),
        })
        .collect();

    for (k, record) in test_set.packets.iter().enumerate() {
        let score = k >= options.score_from;

        // The received waveform (and the preamble-based LS estimate derived
        // from it) is regenerated once per packet, and only when the packet
        // is decoded or some estimator asked for preamble observations.
        let regen = if score || any_wants_preamble {
            let (tx, received) = campaign.received_waveform(combination.test, record.index);
            let preamble_est = preamble_estimate(&tx, received.as_slice(), eq.channel_taps).ok();
            Some((tx, received, preamble_est))
        } else {
            None
        };
        // Synchronisation offset, computed at most once per packet (only
        // bypass decoding needs it).
        let mut sync_offset: Option<usize> = None;

        for (i, estimator) in estimators.iter_mut().enumerate() {
            let trace = &mut traces[i];
            if score {
                let (tx, received, preamble_est) =
                    regen.as_ref().expect("scored packets are regenerated");
                let request = EstimateRequest {
                    packet_index: k,
                    perfect_cir: &record.perfect_cir,
                    preamble_estimate: preamble_est.as_ref(),
                    preamble_detected: record.preamble_detected,
                    frame_index: record.frame_index,
                    frames: &frames,
                };
                match estimator.estimate(&request) {
                    Estimate::Bypass => {
                        let offset = *sync_offset.get_or_insert_with(|| {
                            receiver.synchronize(received.as_slice(), tx).offset
                        });
                        let outcome = receiver.decode_standard(&received.as_slice()[offset..], tx);
                        trace.scored.push(outcome);
                        trace.per_packet.push(outcome);
                    }
                    Estimate::Ready { cir, align_phase } => {
                        let config = EqualizerConfig {
                            align_phase: align_phase && eq.align_phase,
                            ..eq
                        };
                        let outcome = decode_with_reference(
                            &receiver,
                            tx,
                            received.as_slice(),
                            &cir,
                            preamble_est.as_ref(),
                            &config,
                        );
                        trace.scored.push(outcome);
                        trace.per_packet.push(outcome);
                        // Eq.-9 MSE bookkeeping: compare the estimate as it
                        // was actually used (after alignment) with the
                        // perfect one.
                        let aligned = match (config.align_phase, preamble_est.as_ref()) {
                            (true, Some(reference)) => align_mean_phase(&cir, reference).0,
                            _ => cir.clone(),
                        };
                        trace.estimates.push(aligned);
                        trace.truths.push(record.perfect_cir.clone());
                    }
                    Estimate::Lost => {
                        let outcome = DecodeOutcome::lost(
                            tx.psdu_chips().len(),
                            tx.frame.psdu_symbols().len(),
                        );
                        trace.scored.push(outcome);
                        trace.per_packet.push(outcome);
                    }
                    Estimate::Skip => {
                        // Not scored; recorded as a zero-sized loss so the
                        // per-packet streams stay aligned across estimators.
                        trace.per_packet.push(DecodeOutcome::lost(0, 0));
                    }
                }
            }

            let observation = PacketObservation {
                perfect_cir: &record.perfect_cir,
                aligned_cir: &record.aligned_cir,
                preamble_estimate: if wants_preamble_obs[i] {
                    regen.as_ref().and_then(|(_, _, pre)| pre.as_ref())
                } else {
                    None
                },
            };
            estimator.observe(&observation);
        }
    }

    traces
}

// ---------------------------------------------------------------------------
// Scenario × estimator sweeps
// ---------------------------------------------------------------------------

/// A spec failed to validate before a sweep started (no compute is spent
/// on a sweep with an invalid cell).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepSpecError {
    /// A scenario spec was rejected by the [`ScenarioRegistry`].
    Scenario(SpecParseError),
    /// An estimator spec was rejected by the
    /// [`EstimatorRegistry`](vvd_estimation::EstimatorRegistry).
    Estimator(vvd_estimation::registry::SpecError),
}

impl fmt::Display for SweepSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepSpecError::Scenario(e) => write!(f, "{e}"),
            SweepSpecError::Estimator(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SweepSpecError {}

impl From<SpecParseError> for SweepSpecError {
    fn from(e: SpecParseError) -> Self {
        SweepSpecError::Scenario(e)
    }
}

impl From<vvd_estimation::registry::SpecError> for SweepSpecError {
    fn from(e: vvd_estimation::registry::SpecError) -> Self {
        SweepSpecError::Estimator(e)
    }
}

/// Everything one scenario contributed to a sweep.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Canonical spec of the scenario (also the campaign label).
    pub scenario: String,
    /// Per-combination results, keyed exactly like
    /// [`crate::evaluate::evaluate_specs`] keys them.
    pub results: Vec<CombinationResult>,
    /// Box statistics over the combinations.
    pub summary: EvaluationSummary,
    /// `true` when the scenario produced no physical blockers (static
    /// camera view): estimators whose
    /// [`uses_camera`](vvd_estimation::ChannelEstimator::uses_camera) is
    /// `true` can at best learn the mean channel here.
    pub camera_blind: bool,
}

/// A scenario sweep's outcomes plus the shared model-cache accounting.
#[derive(Debug)]
pub struct SweepReport {
    /// Per-scenario outcomes, in input order.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Usage counters of the model cache shared across the whole grid —
    /// every hit is a CNN training the sweep did *not* repeat.
    pub model_cache: ModelCacheStats,
}

/// Runs the full (scenario × estimator) grid: every estimator spec is
/// streamed through every combination of every scenario's campaign.
///
/// All specs are validated up front — an invalid cell fails the call
/// before any campaign is generated.  With [`EvalOptions::parallel`],
/// scenarios are spread round-robin over `std::thread::scope` workers and
/// the remaining hardware parallelism is divided among them as each
/// worker's campaign-synthesis thread budget (a 2-scenario sweep on 16
/// cores runs 2 scenario workers with 8 synthesis threads each); inner
/// estimator streaming stays sequential per worker to avoid a third
/// fan-out level.  With a single scenario the inner pipeline fans out over
/// estimators instead.  Either way the outcome list is in input order and
/// bit-identical to the sequential path.
///
/// One content-addressed [`ModelCache`] is shared across the entire grid:
/// cells whose VVD trainings have identical provenance (same variant,
/// hyper-parameters and training data — e.g. several estimator specs
/// wrapping the same `vvd:…` head, or every age of an aging column) train
/// once; see [`run_scenario_sweep_report`] for the hit/miss accounting.
pub fn run_scenario_sweep(
    config: &crate::config::EvalConfig,
    scenario_specs: &[&str],
    estimator_specs: &[&str],
    options: &EvalOptions,
) -> Result<Vec<ScenarioOutcome>, SweepSpecError> {
    run_scenario_sweep_report(config, scenario_specs, estimator_specs, options)
        .map(|report| report.outcomes)
}

/// [`run_scenario_sweep`], additionally reporting the shared model cache's
/// hit/miss/eviction counters.
///
/// Setting `VVD_MODEL_CACHE_DIR` persists trained models to that
/// directory and consults it on misses.  Cache hits (memory or disk) run
/// no training, so the corresponding
/// [`CombinationResult::vvd_reports`] entries are absent — on a fully warm
/// disk cache every cell's report list is empty.  Decoded results are
/// unaffected: a hit returns the bit-identical model a fresh training
/// would have produced.
pub fn run_scenario_sweep_report(
    config: &crate::config::EvalConfig,
    scenario_specs: &[&str],
    estimator_specs: &[&str],
    options: &EvalOptions,
) -> Result<SweepReport, SweepSpecError> {
    // Validate every cell before spending compute.
    let estimator_registry = vvd_estimation::EstimatorRegistry::new();
    for spec in estimator_specs {
        estimator_registry.build(spec)?;
    }
    let scenario_registry = ScenarioRegistry::new().with_cir_config(config.cir);
    let mut scenarios: Vec<BoxedScenario> = scenario_specs
        .iter()
        .map(|spec| scenario_registry.build(spec))
        .collect::<Result<_, _>>()?;

    // One model cache for the whole grid, shared across scenario workers.
    // With `VVD_MODEL_CACHE_DIR` set, trained models also persist to disk,
    // so re-running a sweep (or running sibling figure benches over the
    // same campaigns) skips every training whose provenance is on disk —
    // bit-identically, since a key collision requires identical variant,
    // hyper-parameters, seed and dataset content.
    let cache = match std::env::var_os("VVD_MODEL_CACHE_DIR") {
        Some(dir) => ModelCache::new().with_disk_dir(std::path::PathBuf::from(dir)),
        None => ModelCache::new(),
    };

    let available = vvd_dsp::worker_budget();
    let workers = if options.parallel {
        available.min(scenarios.len().max(1))
    } else {
        1
    };

    if workers <= 1 {
        let synthesis_workers = if options.parallel { available } else { 1 };
        let outcomes = scenarios
            .iter_mut()
            .map(|scenario| {
                evaluate_scenario(
                    config,
                    scenario,
                    estimator_specs,
                    options,
                    synthesis_workers,
                    &cache,
                )
            })
            .collect();
        return Ok(SweepReport {
            outcomes,
            model_cache: cache.stats(),
        });
    }

    // Round-robin over workers; each worker evaluates its scenarios with a
    // sequential inner pipeline but a share of the synthesis threads, and
    // results are stitched back in input order.
    let synthesis_workers = (available / workers).max(1);
    let inner = EvalOptions { parallel: false };
    let mut indexed: Vec<(usize, ScenarioOutcome)> = std::thread::scope(|scope| {
        let inner = &inner;
        let cache = &cache;
        // Distribute the stateful scenario objects round-robin, by mutable
        // reference (each lives on exactly one worker).
        let mut buckets: Vec<Vec<(usize, &mut BoxedScenario)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (i, scenario) in scenarios.iter_mut().enumerate() {
            buckets[i % workers].push((i, scenario));
        }
        let worker_handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(i, scenario)| {
                            (
                                i,
                                evaluate_scenario(
                                    config,
                                    scenario,
                                    estimator_specs,
                                    inner,
                                    synthesis_workers,
                                    cache,
                                ),
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        worker_handles
            .into_iter()
            .flat_map(|h| h.join().expect("scenario sweep worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|(i, _)| *i);
    Ok(SweepReport {
        outcomes: indexed.into_iter().map(|(_, outcome)| outcome).collect(),
        model_cache: cache.stats(),
    })
}

/// Evaluates one scenario cell of a sweep: generate the campaign (with the
/// given synthesis-thread budget), stream every estimator spec through
/// every combination (resolving VVD trainings through the sweep-wide model
/// cache), aggregate.
fn evaluate_scenario(
    config: &crate::config::EvalConfig,
    scenario: &mut BoxedScenario,
    estimator_specs: &[&str],
    options: &EvalOptions,
    synthesis_workers: usize,
    cache: &ModelCache,
) -> ScenarioOutcome {
    let campaign = Campaign::generate_scenario_with(config, scenario.as_mut(), synthesis_workers);
    let camera_blind = campaign
        .sets
        .iter()
        .all(|set| set.frames.iter().all(|f| f.blockers.is_empty()));

    let combos = combinations_for(config.n_sets, config.n_combinations);
    let results: Vec<CombinationResult> = combos
        .iter()
        .map(|combo| {
            evaluate_specs_with_cache(&campaign, combo, estimator_specs, options, Some(cache))
                .expect("sweep specs are validated before evaluation starts")
        })
        .collect();
    let summary = EvaluationSummary::from_results(&results);

    ScenarioOutcome {
        scenario: campaign.scenario.clone(),
        results,
        summary,
        camera_blind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalConfig;
    use vvd_estimation::estimator::{GroundTruth, Previous, Standard};

    fn smoke() -> (Campaign, SetCombination) {
        let campaign = Campaign::generate(&EvalConfig::smoke());
        let combo = crate::combinations::combinations_for(campaign.config.n_sets, 1)
            .into_iter()
            .next()
            .unwrap();
        (campaign, combo)
    }

    fn run(campaign: &Campaign, combo: &SetCombination, parallel: bool) -> Vec<EstimatorTrace> {
        let cirs = training_cirs(campaign, combo);
        let source = CombinationDatasets::new(campaign, combo);
        let pool = VvdModelPool::new(&campaign.config.vvd, &source);
        let estimators = vec![
            LabeledEstimator::new("standard", Box::new(Standard)),
            LabeledEstimator::new("ground-truth", Box::new(GroundTruth)),
            LabeledEstimator::new("previous", Box::new(Previous::packets(1))),
        ];
        stream_estimators(
            campaign,
            combo,
            estimators,
            &cirs,
            &pool,
            &StreamOptions {
                score_from: campaign.config.kalman_warmup_packets,
                parallel,
            },
        )
    }

    #[test]
    fn traces_are_aligned_and_ordered() {
        let (campaign, combo) = smoke();
        let traces = run(&campaign, &combo, false);
        assert_eq!(traces.len(), 3);
        assert_eq!(traces[0].label, "standard");
        let scored_packets =
            campaign.config.packets_per_set - campaign.config.kalman_warmup_packets;
        for t in &traces {
            assert_eq!(t.per_packet.len(), scored_packets);
        }
        // Standard decoding decodes everything, produces no estimates.
        assert_eq!(traces[0].scored.len(), scored_packets);
        assert!(traces[0].estimates.is_empty());
        // Ground truth scores everything with estimates.
        assert_eq!(traces[1].estimates.len(), scored_packets);
        assert_eq!(traces[1].truths.len(), scored_packets);
    }

    #[test]
    fn parallel_streaming_is_bit_identical_to_sequential() {
        let (campaign, combo) = smoke();
        let sequential = run(&campaign, &combo, false);
        let parallel = run(&campaign, &combo, true);
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.scored, p.scored);
            assert_eq!(s.per_packet, p.per_packet);
            assert_eq!(s.estimates.len(), p.estimates.len());
            for (a, b) in s.estimates.iter().zip(&p.estimates) {
                assert_eq!(a.taps(), b.taps());
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn nominal_energy_rejects_an_empty_training_sequence() {
        let _ = nominal_energy(&[]);
    }

    #[test]
    fn scenario_sweep_covers_the_grid_in_input_order() {
        let mut cfg = EvalConfig::smoke();
        cfg.n_sets = 3;
        cfg.packets_per_set = 16;
        cfg.kalman_warmup_packets = 2;
        let scenarios = ["paper", "rayleigh:doppler=10", "paper+snr-offset:db=10"];
        let estimators = ["ground-truth", "previous:100ms"];
        let outcomes = run_scenario_sweep(
            &cfg,
            &scenarios,
            &estimators,
            &crate::evaluate::EvalOptions::default(),
        )
        .unwrap();
        assert_eq!(outcomes.len(), 3);
        for (outcome, spec) in outcomes.iter().zip(&scenarios) {
            assert_eq!(outcome.scenario, *spec);
            assert_eq!(outcome.results.len(), cfg.n_combinations);
            for result in &outcome.results {
                assert_eq!(result.metrics.len(), estimators.len());
                for metrics in result.metrics.values() {
                    assert!((0.0..=1.0).contains(&metrics.per));
                    assert!(metrics.packets > 0);
                }
            }
        }
        // Camera-blindness is a property of the scenario, not the specs.
        assert!(!outcomes[0].camera_blind);
        assert!(outcomes[1].camera_blind);
        assert!(!outcomes[2].camera_blind);
        // 10 dB of extra SNR headroom can only help the stale estimator.
        let per_of =
            |o: &ScenarioOutcome, label: &str| o.summary.per.get(label).map(|s| s.mean).unwrap();
        assert!(
            per_of(&outcomes[2], "100ms Previous") <= per_of(&outcomes[0], "100ms Previous") + 1e-9
        );
    }

    #[test]
    fn scenario_sweep_parallel_matches_sequential() {
        let mut cfg = EvalConfig::smoke();
        cfg.n_sets = 3;
        cfg.packets_per_set = 12;
        cfg.kalman_warmup_packets = 2;
        let scenarios = ["paper", "rician:k=6,doppler=30"];
        let estimators = ["ground-truth", "standard"];
        let run = |parallel: bool| {
            run_scenario_sweep(
                &cfg,
                &scenarios,
                &estimators,
                &crate::evaluate::EvalOptions { parallel },
            )
            .unwrap()
        };
        let sequential = run(false);
        let parallel = run(true);
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.scenario, p.scenario);
            assert_eq!(s.camera_blind, p.camera_blind);
            for (rs, rp) in s.results.iter().zip(&p.results) {
                assert_eq!(rs.metrics, rp.metrics);
            }
        }
    }

    #[test]
    fn sweep_shares_trainings_across_cells_through_the_model_cache() {
        let mut cfg = EvalConfig::smoke();
        cfg.packets_per_set = 24;
        cfg.kalman_warmup_packets = 2;
        cfg.max_vvd_training_samples = 30;
        let scenarios = ["paper", "rician:k=6,doppler=30"];
        let estimators = ["vvd:current", "fallback:preamble,vvd:current"];
        let report = run_scenario_sweep_report(
            &cfg,
            &scenarios,
            &estimators,
            &crate::evaluate::EvalOptions::default(),
        )
        .unwrap();
        assert_eq!(report.outcomes.len(), 2);
        let stats = report.model_cache;
        // Each scenario's combination trains VVD-Current once (a miss);
        // the fallback's inner vvd:current head shares that training
        // through the cache (a hit per shared training config).
        assert_eq!(stats.misses, 2, "one training per scenario");
        assert!(
            stats.hits >= 2,
            "every cell sharing a training config must hit the cache, got {stats}"
        );
        // The shared model decodes identically for both specs: the pure
        // vvd:current column and the fallback's vvd arm disagree only
        // where the preamble primary produced the estimate.
        for outcome in &report.outcomes {
            assert_eq!(outcome.results.len(), cfg.n_combinations);
        }
    }

    #[test]
    fn scenario_sweep_rejects_invalid_cells_before_computing() {
        let cfg = EvalConfig::smoke();
        let options = crate::evaluate::EvalOptions::default();
        match run_scenario_sweep(&cfg, &["warp-drive"], &["standard"], &options) {
            Err(SweepSpecError::Scenario(e)) => assert!(!e.to_string().is_empty()),
            other => panic!("expected a scenario spec error, got {other:?}"),
        }
        match run_scenario_sweep(&cfg, &["paper"], &["nonsense"], &options) {
            Err(SweepSpecError::Estimator(e)) => assert!(!e.to_string().is_empty()),
            other => panic!("expected an estimator spec error, got {other:?}"),
        }
    }
}
