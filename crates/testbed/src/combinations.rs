//! Set combinations (Table 2 of the paper).
//!
//! Evaluation is cross-validated over 15 combinations of the 15 measurement
//! sets; each combination uses 13 sets for training, one for validation and
//! one for testing.  The exact assignment of the paper's Table 2 is encoded
//! verbatim; for campaigns with fewer sets a round-robin equivalent with the
//! same structure (disjoint validation/test set, all remaining sets used for
//! training) is generated.

use serde::{Deserialize, Serialize};

/// One train/validation/test split (set identifiers are 1-based, matching
/// the paper's numbering).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetCombination {
    /// 1-based combination number.
    pub number: usize,
    /// Training set identifiers.
    pub training: Vec<usize>,
    /// Validation set identifier.
    pub validation: usize,
    /// Test set identifier.
    pub test: usize,
}

/// The paper's Table 2: `(validation, test)` pairs for combinations 1..=15;
/// the training sets are all remaining sets.
const TABLE_2: [(usize, usize); 15] = [
    (6, 8),
    (11, 15),
    (14, 9),
    (5, 2),
    (12, 4),
    (10, 1),
    (9, 6),
    (13, 3),
    (8, 5),
    (4, 7),
    (3, 10),
    (7, 11),
    (13, 12),
    (2, 13),
    (1, 14),
];

/// Builds a combination from a validation/test choice over `n_sets` sets.
fn combination(number: usize, validation: usize, test: usize, n_sets: usize) -> SetCombination {
    let training = (1..=n_sets)
        .filter(|&s| s != validation && s != test)
        .collect();
    SetCombination {
        number,
        training,
        validation,
        test,
    }
}

/// The paper's 15 combinations (requires a 15-set campaign).
pub fn paper_combinations() -> Vec<SetCombination> {
    TABLE_2
        .iter()
        .enumerate()
        .map(|(i, &(validation, test))| combination(i + 1, validation, test, 15))
        .collect()
}

/// Combinations for a campaign of `n_sets` sets, limited to `n_combinations`
/// entries.  With 15 sets this returns (a prefix of) the paper's Table 2;
/// otherwise a round-robin assignment with the same structure is generated.
///
/// # Panics
/// Panics if `n_sets < 3` (training, validation and test must be disjoint).
pub fn combinations_for(n_sets: usize, n_combinations: usize) -> Vec<SetCombination> {
    assert!(n_sets >= 3, "need at least 3 sets for disjoint splits");
    if n_sets == 15 {
        return paper_combinations()
            .into_iter()
            .take(n_combinations)
            .collect();
    }
    (0..n_combinations.min(n_sets))
        .map(|i| {
            let test = (i % n_sets) + 1;
            let validation = (test % n_sets) + 1;
            combination(i + 1, validation, test, n_sets)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_has_15_disjoint_combinations() {
        let combos = paper_combinations();
        assert_eq!(combos.len(), 15);
        for c in &combos {
            assert_eq!(c.training.len(), 13);
            assert_ne!(c.validation, c.test);
            assert!(!c.training.contains(&c.validation));
            assert!(!c.training.contains(&c.test));
            // All sets accounted for.
            let mut all = c.training.clone();
            all.push(c.validation);
            all.push(c.test);
            all.sort_unstable();
            assert_eq!(all, (1..=15).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_set_appears_as_a_test_set_once_in_table2() {
        let combos = paper_combinations();
        let mut tests: Vec<usize> = combos.iter().map(|c| c.test).collect();
        tests.sort_unstable();
        tests.dedup();
        assert_eq!(tests.len(), 15, "every set is tested exactly once");
    }

    #[test]
    fn table2_matches_selected_rows_of_the_paper() {
        let combos = paper_combinations();
        // Combination 1: validation 6, test 8.
        assert_eq!(combos[0].validation, 6);
        assert_eq!(combos[0].test, 8);
        // Combination 4: validation 5, test 2.
        assert_eq!(combos[3].validation, 5);
        assert_eq!(combos[3].test, 2);
        // Combination 15: validation 1, test 14.
        assert_eq!(combos[14].validation, 1);
        assert_eq!(combos[14].test, 14);
    }

    #[test]
    fn generated_combinations_for_small_campaigns_are_valid() {
        let combos = combinations_for(5, 3);
        assert_eq!(combos.len(), 3);
        for c in &combos {
            assert_ne!(c.validation, c.test);
            assert_eq!(c.training.len(), 3);
            assert!(!c.training.contains(&c.validation));
            assert!(!c.training.contains(&c.test));
            assert!(c.test >= 1 && c.test <= 5);
        }
        // Distinct test sets across combinations.
        let tests: std::collections::BTreeSet<usize> = combos.iter().map(|c| c.test).collect();
        assert_eq!(tests.len(), 3);
    }

    #[test]
    #[should_panic]
    fn too_few_sets_panics() {
        let _ = combinations_for(2, 1);
    }
}
