//! Random-waypoint mobility of the single human.
//!
//! The paper constrains the human to a movement area that the camera fully
//! covers (Fig. 2) and keeps them "always mobile during the measurements".
//! A random-waypoint process over that area with pedestrian speeds captures
//! both properties.

use rand::Rng;
use vvd_channel::Room;

/// A random-waypoint trajectory generator over the room's movement area.
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    area: [f64; 4],
    min_speed: f64,
    max_speed: f64,
    position: (f64, f64),
    target: (f64, f64),
    speed: f64,
}

impl RandomWaypoint {
    /// Creates a generator for the room's movement area with pedestrian
    /// speeds (0.4–1.4 m/s).
    pub fn new<R: Rng + ?Sized>(room: &Room, rng: &mut R) -> Self {
        let area = room.movement_area;
        let position = Self::sample_point(area, rng);
        let target = Self::sample_point(area, rng);
        let mut walker = RandomWaypoint {
            area,
            min_speed: 0.4,
            max_speed: 1.4,
            position,
            target,
            speed: 0.0,
        };
        walker.speed = walker.sample_speed(rng);
        walker
    }

    fn sample_point<R: Rng + ?Sized>(area: [f64; 4], rng: &mut R) -> (f64, f64) {
        let [x0, x1, y0, y1] = area;
        (rng.gen_range(x0..x1), rng.gen_range(y0..y1))
    }

    fn sample_speed<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.gen_range(self.min_speed..self.max_speed)
    }

    /// Current position.
    pub fn position(&self) -> (f64, f64) {
        self.position
    }

    /// Advances the walker by `dt` seconds, picking a new waypoint whenever
    /// the current one is reached.
    pub fn step<R: Rng + ?Sized>(&mut self, dt: f64, rng: &mut R) -> (f64, f64) {
        let mut remaining = dt * self.speed;
        while remaining > 0.0 {
            let dx = self.target.0 - self.position.0;
            let dy = self.target.1 - self.position.1;
            let dist = (dx * dx + dy * dy).sqrt();
            if dist <= remaining {
                self.position = self.target;
                remaining -= dist;
                self.target = Self::sample_point(self.area, rng);
                self.speed = self.sample_speed(rng);
            } else {
                self.position.0 += dx / dist * remaining;
                self.position.1 += dy / dist * remaining;
                remaining = 0.0;
            }
        }
        self.position
    }

    /// Generates positions sampled every `dt` seconds for `steps` steps
    /// (including the starting position as the first sample).
    pub fn trajectory<R: Rng + ?Sized>(
        &mut self,
        dt: f64,
        steps: usize,
        rng: &mut R,
    ) -> Vec<(f64, f64)> {
        let mut out = Vec::with_capacity(steps);
        out.push(self.position);
        for _ in 1..steps {
            out.push(self.step(dt, rng));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn positions_stay_inside_the_movement_area() {
        let room = Room::laboratory();
        let mut rng = StdRng::seed_from_u64(1);
        let mut walker = RandomWaypoint::new(&room, &mut rng);
        let [x0, x1, y0, y1] = room.movement_area;
        for _ in 0..2000 {
            let (x, y) = walker.step(1.0 / 30.0, &mut rng);
            assert!((x0 - 1e-9..=x1 + 1e-9).contains(&x));
            assert!((y0 - 1e-9..=y1 + 1e-9).contains(&y));
        }
    }

    #[test]
    fn walker_actually_moves() {
        let room = Room::laboratory();
        let mut rng = StdRng::seed_from_u64(2);
        let mut walker = RandomWaypoint::new(&room, &mut rng);
        let start = walker.position();
        let traj = walker.trajectory(1.0 / 30.0, 300, &mut rng);
        let total: f64 = traj
            .windows(2)
            .map(|w| ((w[1].0 - w[0].0).powi(2) + (w[1].1 - w[0].1).powi(2)).sqrt())
            .sum();
        assert!(total > 1.0, "walker moved only {total} m in 10 s");
        assert_eq!(traj[0], start);
    }

    #[test]
    fn per_step_displacement_is_bounded_by_max_speed() {
        let room = Room::laboratory();
        let mut rng = StdRng::seed_from_u64(3);
        let mut walker = RandomWaypoint::new(&room, &mut rng);
        let dt = 0.1;
        let traj = walker.trajectory(dt, 500, &mut rng);
        for w in traj.windows(2) {
            let d = ((w[1].0 - w[0].0).powi(2) + (w[1].1 - w[0].1).powi(2)).sqrt();
            assert!(d <= 1.4 * dt + 1e-9, "step displacement {d}");
        }
    }

    #[test]
    fn different_seeds_give_different_trajectories() {
        let room = Room::laboratory();
        let mut rng_a = StdRng::seed_from_u64(10);
        let mut rng_b = StdRng::seed_from_u64(11);
        let mut wa = RandomWaypoint::new(&room, &mut rng_a);
        let mut wb = RandomWaypoint::new(&room, &mut rng_b);
        let ta = wa.trajectory(0.1, 50, &mut rng_a);
        let tb = wb.trajectory(0.1, 50, &mut rng_b);
        assert_ne!(ta, tb);
    }
}
