//! Blocker mobility models (re-exported).
//!
//! The random-waypoint walker (and its crowd/trace generalisations) moved
//! into [`vvd_channel::mobility`] so that
//! [`ChannelScenario`](vvd_channel::ChannelScenario) implementations can
//! drive blocker movement without depending on the evaluation harness;
//! this module re-exports them so existing `vvd_testbed::mobility` users
//! keep compiling.

pub use vvd_channel::mobility::{Crowd, MobilityTrace, RandomWaypoint};
