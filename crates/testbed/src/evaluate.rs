//! Per-combination evaluation of channel estimation techniques.
//!
//! This is the harness behind Figs. 11–15: for one train/validation/test
//! split it fits every requested estimator on the training sets, replays
//! the test set packet by packet through the generic streaming core
//! (`crate::stream`), and accumulates PER / CER / MSE.  Results of several
//! combinations are then summarised as box statistics exactly like the
//! paper's box plots.
//!
//! There is no per-technique dispatch here: every estimator — the 14 paper
//! techniques included — is built by the
//! [`EstimatorRegistry`], either from a [`Technique`] or from a spec string
//! such as `"kalman:ar=7"` or `"fallback:preamble,vvd:current"`
//! ([`evaluate_specs`]), so new scenarios need zero harness edits.

use crate::campaign::Campaign;
use crate::combinations::{combinations_for, SetCombination};
use crate::stream::{
    nominal_energy, stream_estimators, training_cirs, CombinationDatasets, EstimatorTrace,
    LabeledEstimator, StreamOptions,
};
use std::collections::BTreeMap;
use vvd_core::{VvdDataset, VvdSample, VvdTrainingReport, VvdVariant};
use vvd_dsp::stats::BoxStats;
use vvd_estimation::estimator::VvdModelPool;
use vvd_estimation::metrics::{chip_error_rate, mean_squared_error, packet_error_rate};
use vvd_estimation::registry::SpecError;
use vvd_estimation::{EstimatorRegistry, ModelCache, Technique};

/// Aggregate metrics of one technique over one test set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechniqueMetrics {
    /// Packet error rate.
    pub per: f64,
    /// Chip error rate.
    pub cer: f64,
    /// Mean squared error against the perfect estimate (None for techniques
    /// that do not produce a channel estimate, e.g. standard decoding).
    pub mse: Option<f64>,
    /// Number of packets scored.
    pub packets: usize,
}

/// One point of the Fig.-15 time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimePoint {
    /// Packet transmission time within the test set (seconds).
    pub time_s: f64,
    /// Whether VVD-Current decoded the packet successfully.
    pub vvd_success: bool,
    /// Whether the ground-truth estimate decoded the packet successfully.
    pub ground_truth_success: bool,
    /// Line-of-sight blockage indicator (channel energy relative to the
    /// nominal unblocked channel, < 0.5 means strongly shadowed).
    pub los_blocked: bool,
}

/// Result of evaluating one set combination.
#[derive(Debug, Clone)]
pub struct CombinationResult {
    /// The evaluated combination.
    pub combination: SetCombination,
    /// Metrics per estimator label.
    pub metrics: BTreeMap<String, TechniqueMetrics>,
    /// Packet-by-packet decoding time series (Fig. 15).
    pub time_series: Vec<TimePoint>,
    /// Training reports of the VVD variants trained for this combination.
    pub vvd_reports: Vec<VvdTrainingReport>,
}

impl CombinationResult {
    /// Convenience accessor by technique.
    pub fn metric(&self, technique: Technique) -> Option<&TechniqueMetrics> {
        self.metrics.get(technique.label())
    }
}

/// Box-plot statistics over the per-combination means, per technique —
/// the exact quantity drawn in Figs. 11–14.
#[derive(Debug, Clone, Default)]
pub struct EvaluationSummary {
    /// PER box statistics per technique label.
    pub per: BTreeMap<String, BoxStats>,
    /// CER box statistics per technique label.
    pub cer: BTreeMap<String, BoxStats>,
    /// MSE box statistics per technique label (only for estimate-producing
    /// techniques).
    pub mse: BTreeMap<String, BoxStats>,
}

impl EvaluationSummary {
    /// Aggregates a set of combination results.
    pub fn from_results(results: &[CombinationResult]) -> Self {
        let mut per: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        let mut cer: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        let mut mse: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for result in results {
            for (label, m) in &result.metrics {
                per.entry(label.clone()).or_default().push(m.per);
                cer.entry(label.clone()).or_default().push(m.cer);
                if let Some(v) = m.mse {
                    mse.entry(label.clone()).or_default().push(v);
                }
            }
        }
        let to_stats = |m: BTreeMap<String, Vec<f64>>| {
            m.into_iter()
                .map(|(k, v)| (k, BoxStats::from_samples(&v)))
                .collect()
        };
        EvaluationSummary {
            per: to_stats(per),
            cer: to_stats(cer),
            mse: to_stats(mse),
        }
    }
}

/// Execution options of the evaluation.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Evaluate estimators (and combinations in [`run_evaluation_with`]) on
    /// worker threads.  The results are bit-identical to the sequential
    /// path; the default follows the available parallelism.
    pub parallel: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions { parallel: true }
    }
}

/// Builds the VVD dataset for a set of measurement sets and a prediction
/// horizon: each packet is paired with the frame captured
/// `variant.image_lag_frames()` frames before its synchronised frame, and
/// the target is the packet's (phase-aligned) perfect estimate.
pub fn build_vvd_dataset(
    campaign: &Campaign,
    set_ids: &[usize],
    variant: VvdVariant,
    max_samples: usize,
) -> VvdDataset {
    let mut dataset = VvdDataset::new();
    let mut count = 0usize;
    'outer: for &set_id in set_ids {
        let set = campaign.set(set_id);
        for packet in &set.packets {
            let lag = variant.image_lag_frames();
            if packet.frame_index < lag {
                continue;
            }
            let frame = &set.frames[packet.frame_index - lag];
            dataset.push(VvdSample {
                image: frame.image.clone(),
                target_cir: packet.aligned_cir.clone(),
            });
            count += 1;
            if max_samples > 0 && count >= max_samples {
                break 'outer;
            }
        }
    }
    dataset
}

/// Evaluates one set combination with the given techniques (estimators are
/// built through the default registry).
pub fn evaluate_combination(
    campaign: &Campaign,
    combination: &SetCombination,
    techniques: &[Technique],
) -> CombinationResult {
    evaluate_combination_with(campaign, combination, techniques, &EvalOptions::default())
}

/// [`evaluate_combination`] with explicit execution options.
pub fn evaluate_combination_with(
    campaign: &Campaign,
    combination: &SetCombination,
    techniques: &[Technique],
    options: &EvalOptions,
) -> CombinationResult {
    evaluate_combination_with_cache(campaign, combination, techniques, options, None)
}

/// [`evaluate_combination_with`] resolving VVD trainings through a shared
/// [`ModelCache`].
pub fn evaluate_combination_with_cache(
    campaign: &Campaign,
    combination: &SetCombination,
    techniques: &[Technique],
    options: &EvalOptions,
    cache: Option<&ModelCache>,
) -> CombinationResult {
    let registry = EstimatorRegistry::new();
    let estimators = techniques
        .iter()
        .map(|&t| LabeledEstimator::new(t.label(), registry.technique(t)))
        .collect();
    evaluate_estimators_with_cache(campaign, combination, estimators, options, cache)
}

/// Evaluates one set combination with estimators built from registry spec
/// strings; each result is keyed by the technique label when the spec names
/// a canonical technique, and by the spec string itself otherwise.
pub fn evaluate_specs(
    campaign: &Campaign,
    combination: &SetCombination,
    specs: &[&str],
    options: &EvalOptions,
) -> Result<CombinationResult, SpecError> {
    evaluate_specs_with_cache(campaign, combination, specs, options, None)
}

/// [`evaluate_specs`] resolving VVD trainings through a shared
/// [`ModelCache`] — cells of a sweep that share training provenance train
/// once and hit the cache afterwards.
pub fn evaluate_specs_with_cache(
    campaign: &Campaign,
    combination: &SetCombination,
    specs: &[&str],
    options: &EvalOptions,
    cache: Option<&ModelCache>,
) -> Result<CombinationResult, SpecError> {
    let registry = EstimatorRegistry::new();
    let estimators = specs
        .iter()
        .map(|&spec| {
            let label = spec
                .parse::<Technique>()
                .map(|t| t.label().to_string())
                .unwrap_or_else(|_| spec.trim().to_string());
            Ok(LabeledEstimator::new(label, registry.build(spec)?))
        })
        .collect::<Result<Vec<_>, SpecError>>()?;
    Ok(evaluate_estimators_with_cache(
        campaign,
        combination,
        estimators,
        options,
        cache,
    ))
}

/// Evaluates one set combination with pre-built estimators — the most
/// general entry point (custom estimators, custom labels).
pub fn evaluate_estimators(
    campaign: &Campaign,
    combination: &SetCombination,
    estimators: Vec<LabeledEstimator>,
    options: &EvalOptions,
) -> CombinationResult {
    evaluate_estimators_with_cache(campaign, combination, estimators, options, None)
}

/// [`evaluate_estimators`] resolving VVD trainings through a shared
/// [`ModelCache`] (`None` = a private per-call cache, the historical
/// behaviour).
pub fn evaluate_estimators_with_cache(
    campaign: &Campaign,
    combination: &SetCombination,
    estimators: Vec<LabeledEstimator>,
    options: &EvalOptions,
    cache: Option<&ModelCache>,
) -> CombinationResult {
    let cfg = &campaign.config;
    let cirs = training_cirs(campaign, combination);
    let reference_energy = nominal_energy(&cirs);
    let source = CombinationDatasets::new(campaign, combination);
    let pool = match cache {
        Some(cache) => VvdModelPool::with_cache(&cfg.vvd, &source, cache),
        None => VvdModelPool::new(&cfg.vvd, &source),
    };

    let score_from = cfg.kalman_warmup_packets;
    let traces = stream_estimators(
        campaign,
        combination,
        estimators,
        &cirs,
        &pool,
        &StreamOptions {
            score_from,
            parallel: options.parallel,
        },
    );
    let vvd_reports = pool.reports();

    let mut metrics = BTreeMap::new();
    for trace in &traces {
        let mse = if trace.estimates.is_empty() {
            None
        } else {
            Some(mean_squared_error(&trace.estimates, &trace.truths))
        };
        metrics.insert(
            trace.label.clone(),
            TechniqueMetrics {
                per: packet_error_rate(&trace.scored),
                cer: chip_error_rate(&trace.scored),
                mse,
                packets: trace.scored.len(),
            },
        );
    }

    let time_series =
        build_time_series(campaign, combination, &traces, score_from, reference_energy);

    CombinationResult {
        combination: combination.clone(),
        metrics,
        time_series,
        vvd_reports,
    }
}

/// Assembles the Fig.-15 success/fail time series when both VVD-Current and
/// the ground truth were evaluated.  `score_from` must be the
/// [`StreamOptions::score_from`] the traces were produced with — it maps
/// the per-packet trace indices back to packet records.
fn build_time_series(
    campaign: &Campaign,
    combination: &SetCombination,
    traces: &[EstimatorTrace],
    score_from: usize,
    reference_energy: f64,
) -> Vec<TimePoint> {
    let by_label = |label: &str| traces.iter().find(|t| t.label == label);
    let (Some(vvd), Some(gt)) = (
        by_label(Technique::VvdCurrent.label()),
        by_label(Technique::GroundTruth.label()),
    ) else {
        return Vec::new();
    };
    let test_set = campaign.set(combination.test);
    vvd.per_packet
        .iter()
        .zip(&gt.per_packet)
        .enumerate()
        .map(|(i, (v, g))| {
            let record = &test_set.packets[score_from + i];
            TimePoint {
                time_s: record.time_s,
                vvd_success: !v.is_packet_error(),
                ground_truth_success: !g.is_packet_error(),
                los_blocked: record.realization.fir.energy() < 0.5 * reference_energy,
            }
        })
        .collect()
}

/// Runs the evaluation over the configured number of combinations and
/// aggregates the box statistics.
pub fn run_evaluation(
    campaign: &Campaign,
    techniques: &[Technique],
) -> (Vec<CombinationResult>, EvaluationSummary) {
    run_evaluation_with(campaign, techniques, &EvalOptions::default())
}

/// [`run_evaluation`] with explicit execution options; combinations are
/// evaluated concurrently when `options.parallel` allows.
pub fn run_evaluation_with(
    campaign: &Campaign,
    techniques: &[Technique],
    options: &EvalOptions,
) -> (Vec<CombinationResult>, EvaluationSummary) {
    run_evaluation_with_cache(campaign, techniques, options, None)
}

/// [`run_evaluation_with`] resolving every combination's VVD trainings
/// through one shared [`ModelCache`]: combinations whose training splits
/// coincide (or repeated evaluations over the same campaign) train once.
pub fn run_evaluation_with_cache(
    campaign: &Campaign,
    techniques: &[Technique],
    options: &EvalOptions,
    cache: Option<&ModelCache>,
) -> (Vec<CombinationResult>, EvaluationSummary) {
    let combos = combinations_for(campaign.config.n_sets, campaign.config.n_combinations);
    let workers = if options.parallel {
        vvd_dsp::worker_budget().min(combos.len().max(1))
    } else {
        1
    };

    let results: Vec<CombinationResult> = if workers <= 1 {
        combos
            .iter()
            .map(|c| evaluate_combination_with_cache(campaign, c, techniques, options, cache))
            .collect()
    } else {
        // Deterministic round-robin assignment; results are stitched back
        // in combination order, so worker count and scheduling are
        // invisible in the output.  The combination workers already use the
        // available parallelism, so each inner evaluation streams its
        // estimators sequentially instead of fanning out a second time.
        let inner = EvalOptions { parallel: false };
        std::thread::scope(|scope| {
            let combos = &combos;
            let inner = &inner;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        combos
                            .iter()
                            .enumerate()
                            .skip(w)
                            .step_by(workers)
                            .map(|(i, c)| {
                                (
                                    i,
                                    evaluate_combination_with_cache(
                                        campaign, c, techniques, inner, cache,
                                    ),
                                )
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut indexed: Vec<(usize, CombinationResult)> = handles
                .into_iter()
                .flat_map(|h| h.join().expect("evaluation worker panicked"))
                .collect();
            indexed.sort_by_key(|(i, _)| *i);
            indexed.into_iter().map(|(_, r)| r).collect()
        })
    };

    let summary = EvaluationSummary::from_results(&results);
    (results, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalConfig;

    fn smoke_campaign() -> Campaign {
        Campaign::generate(&EvalConfig::smoke())
    }

    #[test]
    fn classical_techniques_produce_sane_ordering() {
        let campaign = smoke_campaign();
        let combos = combinations_for(campaign.config.n_sets, 1);
        let techniques = [
            Technique::StandardDecoding,
            Technique::GroundTruth,
            Technique::PreambleBasedGenie,
            Technique::Previous100ms,
        ];
        let result = evaluate_combination(&campaign, &combos[0], &techniques);
        let gt = result.metric(Technique::GroundTruth).unwrap();
        let std_dec = result.metric(Technique::StandardDecoding).unwrap();
        assert!(gt.packets > 0);
        // Both are valid rates; the ground-truth estimate stays close to the
        // stale 100 ms estimate or better (standard decoding is excluded from
        // strict ordering checks, see EXPERIMENTS.md).
        assert!((0.0..=1.0).contains(&std_dec.per));
        let prev = result.metric(Technique::Previous100ms).unwrap();
        assert!(gt.per <= prev.per + 0.05);
        assert!(gt.cer <= prev.cer + 1e-3);
        // MSE exists for estimate-producing techniques only.
        assert!(gt.mse.is_some());
        assert!(std_dec.mse.is_none());
    }

    #[test]
    fn vvd_pipeline_runs_end_to_end_on_smoke_config() {
        let campaign = smoke_campaign();
        let combos = combinations_for(campaign.config.n_sets, 1);
        let techniques = [
            Technique::GroundTruth,
            Technique::VvdCurrent,
            Technique::PreambleVvdCombined,
        ];
        let result = evaluate_combination(&campaign, &combos[0], &techniques);
        let vvd = result.metric(Technique::VvdCurrent).unwrap();
        assert!(vvd.packets > 0);
        assert!(vvd.mse.is_some());
        // VVD-Current and the combined technique share one trained model
        // through the pool: exactly one training report.
        assert_eq!(result.vvd_reports.len(), 1);
        // The time series exists when both VVD and ground truth are evaluated.
        assert!(!result.time_series.is_empty());
        // The combined technique can only be better or equal in PER terms
        // than pure VVD plus preamble losses — sanity: it is a valid rate.
        let combined = result.metric(Technique::PreambleVvdCombined).unwrap();
        assert!((0.0..=1.0).contains(&combined.per));
    }

    #[test]
    fn summary_aggregates_over_combinations() {
        let campaign = smoke_campaign();
        let techniques = [Technique::GroundTruth, Technique::StandardDecoding];
        let combos = combinations_for(campaign.config.n_sets, 2);
        let results: Vec<CombinationResult> = combos
            .iter()
            .map(|c| evaluate_combination(&campaign, c, &techniques))
            .collect();
        let summary = EvaluationSummary::from_results(&results);
        let gt_stats = summary.per.get(Technique::GroundTruth.label()).unwrap();
        assert_eq!(gt_stats.n, 2);
        assert!(gt_stats.min <= gt_stats.max);
        assert!(summary.mse.contains_key(Technique::GroundTruth.label()));
        assert!(!summary
            .mse
            .contains_key(Technique::StandardDecoding.label()));
    }

    #[test]
    fn vvd_dataset_pairs_packets_with_lagged_frames() {
        let campaign = smoke_campaign();
        let ds_current = build_vvd_dataset(&campaign, &[1], VvdVariant::Current, 0);
        let ds_future = build_vvd_dataset(&campaign, &[1], VvdVariant::Future100ms, 0);
        assert!(!ds_current.is_empty());
        // The future variant skips packets whose synchronised frame has no
        // 3-frames-earlier predecessor, so it has at most as many samples.
        assert!(ds_future.len() <= ds_current.len());
        assert_eq!(ds_current.image_height(), 50);
        assert_eq!(
            ds_current.channel_taps(),
            campaign.config.equalizer.channel_taps
        );
    }

    #[test]
    fn spec_strings_evaluate_like_their_techniques() {
        let campaign = smoke_campaign();
        let combos = combinations_for(campaign.config.n_sets, 1);
        let options = EvalOptions::default();
        let by_technique = evaluate_combination(
            &campaign,
            &combos[0],
            &[Technique::GroundTruth, Technique::Previous100ms],
        );
        let by_spec = evaluate_specs(
            &campaign,
            &combos[0],
            &["ground-truth", "previous:100ms", "previous:300ms"],
            &options,
        )
        .unwrap();
        // Canonical specs are keyed by the paper label and agree exactly.
        assert_eq!(
            by_spec.metric(Technique::GroundTruth).unwrap(),
            by_technique.metric(Technique::GroundTruth).unwrap()
        );
        assert_eq!(
            by_spec.metric(Technique::Previous100ms).unwrap(),
            by_technique.metric(Technique::Previous100ms).unwrap()
        );
        // Non-canonical specs are keyed by the spec string.
        let custom = by_spec.metrics.get("previous:300ms").unwrap();
        assert!((0.0..=1.0).contains(&custom.per));
        assert!(custom.packets > 0);
        // Unknown specs surface as errors, not panics.
        assert!(evaluate_specs(&campaign, &combos[0], &["nope"], &options).is_err());
    }
}
