//! Per-combination evaluation of all channel estimation techniques.
//!
//! This is the harness behind Figs. 11–15: for one train/validation/test
//! split it trains the learning-based estimators on the training sets,
//! replays the test set packet by packet, produces the channel estimate of
//! every technique, pushes it through the shared decoding pipeline and
//! accumulates PER / CER / MSE.  Results of several combinations are then
//! summarised as box statistics exactly like the paper's box plots.

use crate::campaign::Campaign;
use crate::combinations::{combinations_for, SetCombination};
use std::collections::BTreeMap;
use vvd_core::{VvdDataset, VvdModel, VvdSample, VvdTrainingReport, VvdVariant};
use vvd_dsp::stats::BoxStats;
use vvd_dsp::FirFilter;
use vvd_estimation::decode::decode_with_estimate;
use vvd_estimation::ls::preamble_estimate;
use vvd_estimation::metrics::{chip_error_rate, mean_squared_error, packet_error_rate};
use vvd_estimation::phase::align_mean_phase;
use vvd_estimation::{EqualizerConfig, KalmanChannelEstimator, Technique};
use vvd_phy::{DecodeOutcome, Receiver};

/// Aggregate metrics of one technique over one test set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechniqueMetrics {
    /// Packet error rate.
    pub per: f64,
    /// Chip error rate.
    pub cer: f64,
    /// Mean squared error against the perfect estimate (None for techniques
    /// that do not produce a channel estimate, e.g. standard decoding).
    pub mse: Option<f64>,
    /// Number of packets scored.
    pub packets: usize,
}

/// One point of the Fig.-15 time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimePoint {
    /// Packet transmission time within the test set (seconds).
    pub time_s: f64,
    /// Whether VVD-Current decoded the packet successfully.
    pub vvd_success: bool,
    /// Whether the ground-truth estimate decoded the packet successfully.
    pub ground_truth_success: bool,
    /// Line-of-sight blockage indicator (channel energy relative to the
    /// nominal unblocked channel, < 0.5 means strongly shadowed).
    pub los_blocked: bool,
}

/// Result of evaluating one set combination.
#[derive(Debug, Clone)]
pub struct CombinationResult {
    /// The evaluated combination.
    pub combination: SetCombination,
    /// Metrics per technique.
    pub metrics: BTreeMap<String, TechniqueMetrics>,
    /// Packet-by-packet decoding time series (Fig. 15).
    pub time_series: Vec<TimePoint>,
    /// Training reports of the VVD variants trained for this combination.
    pub vvd_reports: Vec<VvdTrainingReport>,
}

impl CombinationResult {
    /// Convenience accessor by technique.
    pub fn metric(&self, technique: Technique) -> Option<&TechniqueMetrics> {
        self.metrics.get(technique.label())
    }
}

/// Box-plot statistics over the per-combination means, per technique —
/// the exact quantity drawn in Figs. 11–14.
#[derive(Debug, Clone, Default)]
pub struct EvaluationSummary {
    /// PER box statistics per technique label.
    pub per: BTreeMap<String, BoxStats>,
    /// CER box statistics per technique label.
    pub cer: BTreeMap<String, BoxStats>,
    /// MSE box statistics per technique label (only for estimate-producing
    /// techniques).
    pub mse: BTreeMap<String, BoxStats>,
}

impl EvaluationSummary {
    /// Aggregates a set of combination results.
    pub fn from_results(results: &[CombinationResult]) -> Self {
        let mut per: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        let mut cer: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        let mut mse: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for result in results {
            for (label, m) in &result.metrics {
                per.entry(label.clone()).or_default().push(m.per);
                cer.entry(label.clone()).or_default().push(m.cer);
                if let Some(v) = m.mse {
                    mse.entry(label.clone()).or_default().push(v);
                }
            }
        }
        let to_stats = |m: BTreeMap<String, Vec<f64>>| {
            m.into_iter()
                .map(|(k, v)| (k, BoxStats::from_samples(&v)))
                .collect()
        };
        EvaluationSummary {
            per: to_stats(per),
            cer: to_stats(cer),
            mse: to_stats(mse),
        }
    }
}

/// Builds the VVD dataset for a set of measurement sets and a prediction
/// horizon: each packet is paired with the frame captured
/// `variant.image_lag_frames()` frames before its synchronised frame, and
/// the target is the packet's (phase-aligned) perfect estimate.
pub fn build_vvd_dataset(
    campaign: &Campaign,
    set_ids: &[usize],
    variant: VvdVariant,
    max_samples: usize,
) -> VvdDataset {
    let mut dataset = VvdDataset::new();
    let mut count = 0usize;
    'outer: for &set_id in set_ids {
        let set = campaign.set(set_id);
        for packet in &set.packets {
            let lag = variant.image_lag_frames();
            if packet.frame_index < lag {
                continue;
            }
            let frame = &set.frames[packet.frame_index - lag];
            dataset.push(VvdSample {
                image: frame.image.clone(),
                target_cir: packet.aligned_cir.clone(),
            });
            count += 1;
            if max_samples > 0 && count >= max_samples {
                break 'outer;
            }
        }
    }
    dataset
}

/// Trains the VVD variants needed by the requested techniques.
fn train_vvd_models(
    campaign: &Campaign,
    combination: &SetCombination,
    techniques: &[Technique],
) -> (BTreeMap<&'static str, VvdModel>, Vec<VvdTrainingReport>) {
    let mut needed: Vec<VvdVariant> = Vec::new();
    let push = |v: VvdVariant, needed: &mut Vec<VvdVariant>| {
        if !needed.contains(&v) {
            needed.push(v);
        }
    };
    for t in techniques {
        match t {
            Technique::VvdCurrent | Technique::PreambleVvdCombined => {
                push(VvdVariant::Current, &mut needed)
            }
            Technique::VvdFuture33ms => push(VvdVariant::Future33ms, &mut needed),
            Technique::VvdFuture100ms => push(VvdVariant::Future100ms, &mut needed),
            _ => {}
        }
    }

    let mut models = BTreeMap::new();
    let mut reports = Vec::new();
    let cfg = &campaign.config;
    for variant in needed {
        let train = build_vvd_dataset(
            campaign,
            &combination.training,
            variant,
            cfg.max_vvd_training_samples,
        );
        let validation = build_vvd_dataset(
            campaign,
            &[combination.validation],
            variant,
            if cfg.max_vvd_training_samples > 0 {
                cfg.max_vvd_training_samples / 4
            } else {
                0
            },
        );
        let (model, report) = VvdModel::train(variant, &cfg.vvd, &train, &validation);
        reports.push(report);
        models.insert(variant.label(), model);
    }
    (models, reports)
}

/// Evaluates one set combination with the given techniques.
pub fn evaluate_combination(
    campaign: &Campaign,
    combination: &SetCombination,
    techniques: &[Technique],
) -> CombinationResult {
    let cfg = &campaign.config;
    let receiver = Receiver::new(cfg.phy);
    let eq = cfg.equalizer;
    let eq_no_phase = EqualizerConfig {
        align_phase: false,
        ..eq
    };

    // --- Training phase -------------------------------------------------
    let training_cirs: Vec<FirFilter> = combination
        .training
        .iter()
        .flat_map(|&set_id| campaign.set(set_id).packets.iter())
        .map(|p| p.aligned_cir.clone())
        .collect();

    let needs_kalman = |order: usize| {
        techniques.iter().any(|t| {
            matches!(
                (t, order),
                (Technique::KalmanAr1, 1)
                    | (Technique::KalmanAr5, 5)
                    | (Technique::KalmanAr20, 20)
                    | (Technique::PreambleKalmanCombined, 20)
            )
        })
    };
    let mut kalman1 = needs_kalman(1).then(|| KalmanChannelEstimator::fit(&training_cirs, 1));
    let mut kalman5 = needs_kalman(5).then(|| KalmanChannelEstimator::fit(&training_cirs, 5));
    let mut kalman20 = needs_kalman(20).then(|| KalmanChannelEstimator::fit(&training_cirs, 20));

    let (mut vvd_models, vvd_reports) = train_vvd_models(campaign, combination, techniques);

    // --- Test phase -----------------------------------------------------
    let test_set = campaign.set(combination.test);
    let nominal_energy = {
        // Median channel energy of the training sets as the "unblocked"
        // reference for the LoS-blockage indicator of the time series.
        let mut energies: Vec<f64> = training_cirs.iter().map(|c| c.energy()).collect();
        energies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        energies.get(energies.len() / 2).copied().unwrap_or(1.0)
    };

    let mut outcomes: BTreeMap<String, Vec<DecodeOutcome>> = BTreeMap::new();
    let mut estimates: BTreeMap<String, Vec<FirFilter>> = BTreeMap::new();
    let mut truths: BTreeMap<String, Vec<FirFilter>> = BTreeMap::new();
    let mut time_series = Vec::new();

    for (k, record) in test_set.packets.iter().enumerate() {
        let (tx, received) = campaign.received_waveform(combination.test, record.index);
        let sync = receiver.synchronize(received.as_slice(), &tx);
        let preamble_est = preamble_estimate(&tx, received.as_slice(), eq.channel_taps).ok();

        let score = k >= cfg.kalman_warmup_packets;
        let mut packet_outcomes: BTreeMap<&'static str, DecodeOutcome> = BTreeMap::new();

        for &technique in techniques {
            // Produce the channel estimate (None = no estimate, packet lost
            // or technique skipped for this packet).
            let estimate: Option<(FirFilter, &EqualizerConfig)> = match technique {
                Technique::StandardDecoding => None,
                Technique::GroundTruth => Some((record.perfect_cir.clone(), &eq_no_phase)),
                Technique::PreambleBased => {
                    if record.preamble_detected {
                        preamble_est.clone().map(|e| (e, &eq_no_phase))
                    } else {
                        None
                    }
                }
                Technique::PreambleBasedGenie => preamble_est.clone().map(|e| (e, &eq_no_phase)),
                Technique::Previous100ms => {
                    (k >= 1).then(|| (test_set.packets[k - 1].perfect_cir.clone(), &eq))
                }
                Technique::Previous500ms => {
                    (k >= 5).then(|| (test_set.packets[k - 5].perfect_cir.clone(), &eq))
                }
                Technique::KalmanAr1 => kalman1.as_ref().map(|f| (f.predicted_cir(), &eq)),
                Technique::KalmanAr5 => kalman5.as_ref().map(|f| (f.predicted_cir(), &eq)),
                Technique::KalmanAr20 => kalman20.as_ref().map(|f| (f.predicted_cir(), &eq)),
                Technique::VvdCurrent | Technique::VvdFuture33ms | Technique::VvdFuture100ms => {
                    let variant = match technique {
                        Technique::VvdCurrent => VvdVariant::Current,
                        Technique::VvdFuture33ms => VvdVariant::Future33ms,
                        _ => VvdVariant::Future100ms,
                    };
                    vvd_models.get_mut(variant.label()).and_then(|model| {
                        let lag = variant.image_lag_frames();
                        (record.frame_index >= lag).then(|| {
                            let frame = &test_set.frames[record.frame_index - lag];
                            (model.predict_cir(&frame.image), &eq)
                        })
                    })
                }
                Technique::PreambleVvdCombined => {
                    if record.preamble_detected {
                        preamble_est.clone().map(|e| (e, &eq_no_phase))
                    } else {
                        vvd_models
                            .get_mut(VvdVariant::Current.label())
                            .map(|model| {
                                let frame = &test_set.frames[record.frame_index];
                                (model.predict_cir(&frame.image), &eq)
                            })
                    }
                }
                Technique::PreambleKalmanCombined => {
                    if record.preamble_detected {
                        preamble_est.clone().map(|e| (e, &eq_no_phase))
                    } else {
                        kalman20.as_ref().map(|f| (f.predicted_cir(), &eq))
                    }
                }
            };

            // Decode.
            let outcome = match (&technique, &estimate) {
                (Technique::StandardDecoding, _) => {
                    receiver.decode_standard(&received.as_slice()[sync.offset..], &tx)
                }
                (_, Some((est, config))) => {
                    decode_with_estimate(&receiver, &tx, received.as_slice(), est, config)
                }
                (_, None) => {
                    // Techniques that cannot produce an estimate yet
                    // (insufficient history) are skipped; a failed preamble
                    // detection for the preamble-based technique is a lost
                    // packet.
                    if technique == Technique::PreambleBased {
                        DecodeOutcome::lost(tx.psdu_chips().len(), tx.frame.psdu_symbols().len())
                    } else {
                        packet_outcomes.insert(technique.label(), DecodeOutcome::lost(0, 0));
                        continue;
                    }
                }
            };

            if score {
                outcomes
                    .entry(technique.label().to_string())
                    .or_default()
                    .push(outcome);
                // MSE bookkeeping: compare the (phase-aligned) estimate that
                // was actually used against the perfect estimate.
                if let Some((est, config)) = &estimate {
                    let aligned = if config.align_phase {
                        match &preamble_est {
                            Some(reference) => align_mean_phase(est, reference).0,
                            None => est.clone(),
                        }
                    } else {
                        est.clone()
                    };
                    estimates
                        .entry(technique.label().to_string())
                        .or_default()
                        .push(aligned);
                    truths
                        .entry(technique.label().to_string())
                        .or_default()
                        .push(record.perfect_cir.clone());
                }
            }
            packet_outcomes.insert(technique.label(), outcome);
        }

        // Kalman filters observe the perfect estimate of this packet after
        // decoding (semi-blind operation, Sec. 5.3).
        for filter in [&mut kalman1, &mut kalman5, &mut kalman20]
            .into_iter()
            .flatten()
        {
            filter.observe(&record.aligned_cir);
        }

        if score {
            let vvd_success = packet_outcomes
                .get(Technique::VvdCurrent.label())
                .map(|o| !o.is_packet_error());
            let gt_success = packet_outcomes
                .get(Technique::GroundTruth.label())
                .map(|o| !o.is_packet_error());
            if let (Some(vvd), Some(gt)) = (vvd_success, gt_success) {
                time_series.push(TimePoint {
                    time_s: record.time_s,
                    vvd_success: vvd,
                    ground_truth_success: gt,
                    los_blocked: record.realization.fir.energy() < 0.5 * nominal_energy,
                });
            }
        }
    }

    // --- Aggregate ------------------------------------------------------
    let mut metrics = BTreeMap::new();
    for &technique in techniques {
        let label = technique.label().to_string();
        let outs = outcomes.get(&label).cloned().unwrap_or_default();
        let mse = match (estimates.get(&label), truths.get(&label)) {
            (Some(est), Some(truth)) if !est.is_empty() => Some(mean_squared_error(est, truth)),
            _ => None,
        };
        metrics.insert(
            label,
            TechniqueMetrics {
                per: packet_error_rate(&outs),
                cer: chip_error_rate(&outs),
                mse,
                packets: outs.len(),
            },
        );
    }

    CombinationResult {
        combination: combination.clone(),
        metrics,
        time_series,
        vvd_reports,
    }
}

/// Runs the evaluation over the configured number of combinations and
/// aggregates the box statistics.
pub fn run_evaluation(
    campaign: &Campaign,
    techniques: &[Technique],
) -> (Vec<CombinationResult>, EvaluationSummary) {
    let combos = combinations_for(campaign.config.n_sets, campaign.config.n_combinations);
    let results: Vec<CombinationResult> = combos
        .iter()
        .map(|c| evaluate_combination(campaign, c, techniques))
        .collect();
    let summary = EvaluationSummary::from_results(&results);
    (results, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalConfig;

    fn smoke_campaign() -> Campaign {
        Campaign::generate(&EvalConfig::smoke())
    }

    #[test]
    fn classical_techniques_produce_sane_ordering() {
        let campaign = smoke_campaign();
        let combos = combinations_for(campaign.config.n_sets, 1);
        let techniques = [
            Technique::StandardDecoding,
            Technique::GroundTruth,
            Technique::PreambleBasedGenie,
            Technique::Previous100ms,
        ];
        let result = evaluate_combination(&campaign, &combos[0], &techniques);
        let gt = result.metric(Technique::GroundTruth).unwrap();
        let std_dec = result.metric(Technique::StandardDecoding).unwrap();
        assert!(gt.packets > 0);
        // Both are valid rates; the ground-truth estimate stays close to the
        // stale 100 ms estimate or better (standard decoding is excluded from
        // strict ordering checks, see EXPERIMENTS.md).
        assert!((0.0..=1.0).contains(&std_dec.per));
        let prev = result.metric(Technique::Previous100ms).unwrap();
        assert!(gt.per <= prev.per + 0.05);
        assert!(gt.cer <= prev.cer + 1e-3);
        // MSE exists for estimate-producing techniques only.
        assert!(gt.mse.is_some());
        assert!(std_dec.mse.is_none());
    }

    #[test]
    fn vvd_pipeline_runs_end_to_end_on_smoke_config() {
        let campaign = smoke_campaign();
        let combos = combinations_for(campaign.config.n_sets, 1);
        let techniques = [
            Technique::GroundTruth,
            Technique::VvdCurrent,
            Technique::PreambleVvdCombined,
        ];
        let result = evaluate_combination(&campaign, &combos[0], &techniques);
        let vvd = result.metric(Technique::VvdCurrent).unwrap();
        assert!(vvd.packets > 0);
        assert!(vvd.mse.is_some());
        assert!(!result.vvd_reports.is_empty());
        // The time series exists when both VVD and ground truth are evaluated.
        assert!(!result.time_series.is_empty());
        // The combined technique can only be better or equal in PER terms
        // than pure VVD plus preamble losses — sanity: it is a valid rate.
        let combined = result.metric(Technique::PreambleVvdCombined).unwrap();
        assert!((0.0..=1.0).contains(&combined.per));
    }

    #[test]
    fn summary_aggregates_over_combinations() {
        let campaign = smoke_campaign();
        let techniques = [Technique::GroundTruth, Technique::StandardDecoding];
        let combos = combinations_for(campaign.config.n_sets, 2);
        let results: Vec<CombinationResult> = combos
            .iter()
            .map(|c| evaluate_combination(&campaign, c, &techniques))
            .collect();
        let summary = EvaluationSummary::from_results(&results);
        let gt_stats = summary.per.get(Technique::GroundTruth.label()).unwrap();
        assert_eq!(gt_stats.n, 2);
        assert!(gt_stats.min <= gt_stats.max);
        assert!(summary.mse.contains_key(Technique::GroundTruth.label()));
        assert!(!summary
            .mse
            .contains_key(Technique::StandardDecoding.label()));
    }

    #[test]
    fn vvd_dataset_pairs_packets_with_lagged_frames() {
        let campaign = smoke_campaign();
        let ds_current = build_vvd_dataset(&campaign, &[1], VvdVariant::Current, 0);
        let ds_future = build_vvd_dataset(&campaign, &[1], VvdVariant::Future100ms, 0);
        assert!(!ds_current.is_empty());
        // The future variant skips packets whose synchronised frame has no
        // 3-frames-earlier predecessor, so it has at most as many samples.
        assert!(ds_future.len() <= ds_current.len());
        assert_eq!(ds_current.image_height(), 50);
        assert_eq!(
            ds_current.channel_taps(),
            campaign.config.equalizer.channel_taps
        );
    }
}
