//! # vvd-testbed
//!
//! Measurement-campaign simulator and evaluation harness for the Veni Vidi
//! Dixi reproduction.
//!
//! The original paper evaluates on a hardware trace: 22,704 IEEE 802.15.4
//! packets captured with a USRP sniffer in a laboratory while a single
//! human moves, synchronised (via an LED blink) with the frames of a ZED
//! depth camera, split into 15 measurement sets and evaluated over the 15
//! train/validation/test combinations of Table 2.  This crate rebuilds that
//! campaign on top of the simulators in the other crates and reproduces the
//! paper's experiments:
//!
//! * [`mobility`] — blocker mobility models (now re-exported from
//!   `vvd_channel::mobility`, where the scenario engine lives),
//! * [`campaign`] — per-packet channel realisations, per-frame depth
//!   images, packet↔frame association and the perfect (ground-truth) LS
//!   estimates; the environment is any
//!   [`vvd_channel::ChannelScenario`] built from a spec
//!   string (`"paper"`, `"room:large,humans=4,speed=1.5"`,
//!   `"rician:k=6,doppler=30"`, overlays like `"paper+burst-noise:p=0.01"`),
//!   with frame rendering and per-packet waveform synthesis batched across
//!   `std::thread::scope` workers,
//! * [`combinations`] — Table 2 (the 15 set combinations) plus generated
//!   equivalents for reduced campaign sizes,
//! * [`stream`] — the generic streaming core that fits boxed
//!   `ChannelEstimator`s and replays a test set through them
//!   (estimate → decode → score → observe), optionally on worker threads,
//!   plus the (scenario × estimator) sweep driver
//!   [`stream::run_scenario_sweep`],
//! * [`evaluate`] — the per-combination comparison of estimation
//!   techniques (PER / CER / MSE, Figs. 11–14), the packet-by-packet time
//!   series of Fig. 15 and the box-plot aggregation over combinations; all
//!   estimators are built through the `EstimatorRegistry` (spec strings
//!   included),
//! * [`aging`] — the estimate-aging sweeps of Figs. 16–17, as aged
//!   estimators over the same streaming core,
//! * [`hypothesis`] — the Sec.-3.1 hypothesis test behind Fig. 5,
//! * [`report`] — plain-text tables/series used by the `vvd-bench`
//!   reproduction harnesses,
//! * [`config`] — the `quick`/`paper` evaluation presets that scale the
//!   campaign to the available compute.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod aging;
pub mod campaign;
pub mod combinations;
pub mod config;
pub mod evaluate;
pub mod hypothesis;
pub mod mobility;
pub mod report;
pub mod stream;

pub use campaign::{Campaign, FrameRecord, MeasurementSet, PacketRecord};
pub use combinations::{combinations_for, SetCombination};
pub use config::EvalConfig;
pub use evaluate::{
    evaluate_combination, evaluate_combination_with, evaluate_combination_with_cache,
    evaluate_estimators, evaluate_estimators_with_cache, evaluate_specs, evaluate_specs_with_cache,
    run_evaluation, run_evaluation_with, run_evaluation_with_cache, CombinationResult, EvalOptions,
    EvaluationSummary, TechniqueMetrics,
};
pub use mobility::RandomWaypoint;
pub use stream::{
    run_scenario_sweep, run_scenario_sweep_report, stream_estimators, EstimatorTrace,
    LabeledEstimator, ScenarioOutcome, StreamOptions, SweepReport, SweepSpecError,
};
