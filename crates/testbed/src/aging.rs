//! Estimate-aging experiments (Figs. 16 and 17).
//!
//! "In order to validate the instantaneous value of the information we have
//! used an old channel estimation to either compare the difference with the
//! recent channel estimation or to decode a recent packet." — the sweep
//! varies the age of the estimate from 0 (original) to 20 s and reports MSE
//! and PER for the Preamble-Genie estimate and for VVD.
//!
//! Each `(technique, age)` pair is just another [`ChannelEstimator`]
//! ([`AgedPreamble`] buffering past preamble estimates, [`Vvd::aged`]
//! reading an older depth frame), streamed through the same generic core as
//! the Figs. 11–15 comparison; the VVD network is trained once per sweep
//! and shared across all ages through the [`VvdModelPool`].
//!
//! [`ChannelEstimator`]: vvd_estimation::ChannelEstimator

use crate::campaign::Campaign;
use crate::combinations::SetCombination;
use crate::evaluate::EvalOptions;
use crate::stream::{
    stream_estimators, training_cirs, CombinationDatasets, LabeledEstimator, StreamOptions,
};
use vvd_core::VvdVariant;
use vvd_estimation::estimator::{AgedPreamble, BoxedEstimator, Inactive, Vvd, VvdModelPool};
use vvd_estimation::metrics::{mean_squared_error, packet_error_rate};
use vvd_estimation::{ModelCache, Technique};

/// The ages swept in Figs. 16–17, in seconds (0 = "Original").
pub const PAPER_AGES_S: [f64; 8] = [0.0, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0];

/// Result of the aging sweep for one technique.
#[derive(Debug, Clone)]
pub struct AgingCurve {
    /// Technique the curve belongs to (Preamble-Genie or VVD-Current).
    pub technique: Technique,
    /// Ages in seconds (first entry 0 = original).
    pub ages_s: Vec<f64>,
    /// MSE against the current perfect estimate, per age (Fig. 16).
    pub mse: Vec<f64>,
    /// Packet error rate when decoding with the aged estimate (Fig. 17).
    pub per: Vec<f64>,
}

/// Builds the aged estimator modelling `technique` at the given lags.
/// Techniques outside the paper's Figs. 16–17 pair are inert (every packet
/// skipped), matching the published sweeps.
fn aged_estimator(technique: Technique, lag_packets: usize, lag_frames: usize) -> BoxedEstimator {
    match technique {
        Technique::PreambleBasedGenie => Box::new(AgedPreamble::packets(lag_packets)),
        Technique::VvdCurrent => Box::new(Vvd::aged(VvdVariant::Current, lag_frames)),
        _ => Box::new(Inactive),
    }
}

/// Runs the aging sweep on one combination's test set.
///
/// For age `Δ`, packet `k` (at time `t`) is decoded with the estimate derived
/// from the packet/frame at time `t − Δ`; packets whose history does not
/// reach back far enough are skipped so every age uses the same packets.
pub fn aging_sweep(
    campaign: &Campaign,
    combination: &SetCombination,
    ages_s: &[f64],
    techniques: &[Technique],
) -> Vec<AgingCurve> {
    aging_sweep_with(
        campaign,
        combination,
        ages_s,
        techniques,
        &EvalOptions::default(),
    )
}

/// [`aging_sweep`] with explicit execution options.
pub fn aging_sweep_with(
    campaign: &Campaign,
    combination: &SetCombination,
    ages_s: &[f64],
    techniques: &[Technique],
    options: &EvalOptions,
) -> Vec<AgingCurve> {
    aging_sweep_cached(campaign, combination, ages_s, techniques, options, None)
}

/// [`aging_sweep_with`] resolving VVD trainings through a shared
/// [`ModelCache`] — every age of the sweep (and any other consumer of the
/// cache) reuses the one training of each provenance.
pub fn aging_sweep_cached(
    campaign: &Campaign,
    combination: &SetCombination,
    ages_s: &[f64],
    techniques: &[Technique],
    options: &EvalOptions,
    cache: Option<&ModelCache>,
) -> Vec<AgingCurve> {
    let cfg = &campaign.config;
    let packet_period = cfg.packet_period_s();
    let frame_period = cfg.frame_period_s();

    let max_age = ages_s.iter().cloned().fold(0.0f64, f64::max);
    let max_lag_packets = (max_age / packet_period).round() as usize;
    let score_from = max_lag_packets.max(cfg.kalman_warmup_packets);

    // One dataset source + model pool for the whole sweep: the VVD network
    // is trained on the first age that needs it; every later age's fit is
    // a model-cache hit on the same training provenance.
    let cirs = training_cirs(campaign, combination);
    let source = CombinationDatasets::new(campaign, combination);
    let pool = match cache {
        Some(cache) => VvdModelPool::with_cache(&cfg.vvd, &source, cache),
        None => VvdModelPool::new(&cfg.vvd, &source),
    };

    let mut curves: Vec<AgingCurve> = techniques
        .iter()
        .map(|&t| AgingCurve {
            technique: t,
            ages_s: ages_s.to_vec(),
            mse: Vec::with_capacity(ages_s.len()),
            per: Vec::with_capacity(ages_s.len()),
        })
        .collect();

    for &age in ages_s {
        let lag_packets = (age / packet_period).round() as usize;
        let lag_frames = (age / frame_period).round() as usize;
        let estimators = techniques
            .iter()
            .map(|&t| LabeledEstimator::new(t.label(), aged_estimator(t, lag_packets, lag_frames)))
            .collect();
        let traces = stream_estimators(
            campaign,
            combination,
            estimators,
            &cirs,
            &pool,
            &StreamOptions {
                score_from,
                parallel: options.parallel,
            },
        );
        for (curve, trace) in curves.iter_mut().zip(&traces) {
            let mse = if trace.estimates.is_empty() {
                0.0
            } else {
                mean_squared_error(&trace.estimates, &trace.truths)
            };
            curve.mse.push(mse);
            curve.per.push(packet_error_rate(&trace.scored));
        }
    }
    curves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinations::combinations_for;
    use crate::config::EvalConfig;

    #[test]
    fn preamble_genie_mse_grows_with_age() {
        let mut cfg = EvalConfig::smoke();
        cfg.packets_per_set = 60;
        cfg.kalman_warmup_packets = 2;
        let campaign = Campaign::generate(&cfg);
        let combos = combinations_for(cfg.n_sets, 1);
        let curves = aging_sweep(
            &campaign,
            &combos[0],
            &[0.0, 0.5, 2.0],
            &[Technique::PreambleBasedGenie],
        );
        assert_eq!(curves.len(), 1);
        let c = &curves[0];
        assert_eq!(c.mse.len(), 3);
        // A 2-second-old estimate must be worse (in MSE) than the fresh one.
        assert!(
            c.mse[2] > c.mse[0],
            "aged MSE {} should exceed fresh MSE {}",
            c.mse[2],
            c.mse[0]
        );
        // PER values are valid rates.
        assert!(c.per.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn paper_age_grid_matches_figure_16() {
        assert_eq!(PAPER_AGES_S.len(), 8);
        assert_eq!(PAPER_AGES_S[0], 0.0);
        assert_eq!(PAPER_AGES_S[7], 20.0);
    }
}
