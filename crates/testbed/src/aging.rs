//! Estimate-aging experiments (Figs. 16 and 17).
//!
//! "In order to validate the instantaneous value of the information we have
//! used an old channel estimation to either compare the difference with the
//! recent channel estimation or to decode a recent packet." — the sweep
//! varies the age of the estimate from 0 (original) to 20 s and reports MSE
//! and PER for the Preamble-Genie estimate and for VVD.

use crate::campaign::Campaign;
use crate::combinations::SetCombination;
use crate::evaluate::build_vvd_dataset;
use vvd_core::{VvdModel, VvdVariant};
use vvd_dsp::FirFilter;
use vvd_estimation::decode::decode_with_estimate;
use vvd_estimation::ls::preamble_estimate;
use vvd_estimation::metrics::{mean_squared_error, packet_error_rate};
use vvd_estimation::phase::align_mean_phase;
use vvd_estimation::{EqualizerConfig, Technique};
use vvd_phy::Receiver;

/// The ages swept in Figs. 16–17, in seconds (0 = "Original").
pub const PAPER_AGES_S: [f64; 8] = [0.0, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0];

/// Result of the aging sweep for one technique.
#[derive(Debug, Clone)]
pub struct AgingCurve {
    /// Technique the curve belongs to (Preamble-Genie or VVD-Current).
    pub technique: Technique,
    /// Ages in seconds (first entry 0 = original).
    pub ages_s: Vec<f64>,
    /// MSE against the current perfect estimate, per age (Fig. 16).
    pub mse: Vec<f64>,
    /// Packet error rate when decoding with the aged estimate (Fig. 17).
    pub per: Vec<f64>,
}

/// Runs the aging sweep on one combination's test set.
///
/// For age `Δ`, packet `k` (at time `t`) is decoded with the estimate derived
/// from the packet/frame at time `t − Δ`; packets whose history does not
/// reach back far enough are skipped so every age uses the same packets.
pub fn aging_sweep(
    campaign: &Campaign,
    combination: &SetCombination,
    ages_s: &[f64],
    techniques: &[Technique],
) -> Vec<AgingCurve> {
    let cfg = &campaign.config;
    let receiver = Receiver::new(cfg.phy);
    let eq = cfg.equalizer;
    let eq_no_phase = EqualizerConfig {
        align_phase: false,
        ..eq
    };
    let test_set = campaign.set(combination.test);
    let packet_period = cfg.packet_period_s();
    let frame_period = cfg.frame_period_s();

    let max_age = ages_s.iter().cloned().fold(0.0f64, f64::max);
    let max_lag_packets = (max_age / packet_period).round() as usize;

    // Train a VVD-Current model if requested.
    let mut vvd_model: Option<VvdModel> = if techniques.contains(&Technique::VvdCurrent) {
        let train = build_vvd_dataset(
            campaign,
            &combination.training,
            VvdVariant::Current,
            cfg.max_vvd_training_samples,
        );
        let validation = build_vvd_dataset(
            campaign,
            &[combination.validation],
            VvdVariant::Current,
            if cfg.max_vvd_training_samples > 0 {
                cfg.max_vvd_training_samples / 4
            } else {
                0
            },
        );
        Some(VvdModel::train(VvdVariant::Current, &cfg.vvd, &train, &validation).0)
    } else {
        None
    };

    let mut curves: Vec<AgingCurve> = techniques
        .iter()
        .map(|&t| AgingCurve {
            technique: t,
            ages_s: ages_s.to_vec(),
            mse: Vec::with_capacity(ages_s.len()),
            per: Vec::with_capacity(ages_s.len()),
        })
        .collect();

    for &age in ages_s {
        let lag_packets = (age / packet_period).round() as usize;
        let lag_frames = (age / frame_period).round() as usize;

        for (ci, &technique) in techniques.iter().enumerate() {
            let mut estimates = Vec::new();
            let mut truths = Vec::new();
            let mut outcomes = Vec::new();

            for (k, record) in test_set.packets.iter().enumerate() {
                if k < max_lag_packets || k < cfg.kalman_warmup_packets {
                    continue;
                }
                let (tx, received) = campaign.received_waveform(combination.test, record.index);
                let estimate: Option<FirFilter> = match technique {
                    Technique::PreambleBasedGenie => {
                        let old = &test_set.packets[k - lag_packets];
                        let (old_tx, old_received) =
                            campaign.received_waveform(combination.test, old.index);
                        preamble_estimate(&old_tx, old_received.as_slice(), eq.channel_taps).ok()
                    }
                    Technique::VvdCurrent => vvd_model.as_mut().and_then(|model| {
                        (record.frame_index >= lag_frames).then(|| {
                            let frame = &test_set.frames[record.frame_index - lag_frames];
                            model.predict_cir(&frame.image)
                        })
                    }),
                    _ => None,
                };
                let Some(estimate) = estimate else { continue };

                // Aged estimates always need the Eq.-8 phase alignment since
                // the crystal phase of the current packet differs.
                let config = if lag_packets == 0 && technique == Technique::PreambleBasedGenie {
                    &eq_no_phase
                } else {
                    &eq
                };
                let outcome =
                    decode_with_estimate(&receiver, &tx, received.as_slice(), &estimate, config);
                outcomes.push(outcome);

                let aligned = if config.align_phase {
                    match preamble_estimate(&tx, received.as_slice(), eq.channel_taps) {
                        Ok(reference) => align_mean_phase(&estimate, &reference).0,
                        Err(_) => estimate.clone(),
                    }
                } else {
                    estimate.clone()
                };
                estimates.push(aligned);
                truths.push(record.perfect_cir.clone());
            }

            let mse = if estimates.is_empty() {
                0.0
            } else {
                mean_squared_error(&estimates, &truths)
            };
            curves[ci].mse.push(mse);
            curves[ci].per.push(packet_error_rate(&outcomes));
        }
    }
    curves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinations::combinations_for;
    use crate::config::EvalConfig;

    #[test]
    fn preamble_genie_mse_grows_with_age() {
        let mut cfg = EvalConfig::smoke();
        cfg.packets_per_set = 60;
        cfg.kalman_warmup_packets = 2;
        let campaign = Campaign::generate(&cfg);
        let combos = combinations_for(cfg.n_sets, 1);
        let curves = aging_sweep(
            &campaign,
            &combos[0],
            &[0.0, 0.5, 2.0],
            &[Technique::PreambleBasedGenie],
        );
        assert_eq!(curves.len(), 1);
        let c = &curves[0];
        assert_eq!(c.mse.len(), 3);
        // A 2-second-old estimate must be worse (in MSE) than the fresh one.
        assert!(
            c.mse[2] > c.mse[0],
            "aged MSE {} should exceed fresh MSE {}",
            c.mse[2],
            c.mse[0]
        );
        // PER values are valid rates.
        assert!(c.per.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn paper_age_grid_matches_figure_16() {
        assert_eq!(PAPER_AGES_S.len(), 8);
        assert_eq!(PAPER_AGES_S[0], 0.0);
        assert_eq!(PAPER_AGES_S[7], 20.0);
    }
}
