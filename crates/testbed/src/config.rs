//! Evaluation configuration and presets.
//!
//! All experiment harnesses are parameterised by [`EvalConfig`].  The
//! `paper()` preset matches the published campaign dimensions (15 sets,
//! ~1,500 packets per set, 127-byte PSDUs, the full Fig.-8 CNN); the
//! `quick()` preset shrinks everything so that tests and `cargo bench`
//! finish on a laptop while preserving the qualitative shape of the
//! results, and `smoke()` is a minimal configuration for unit tests.

use serde::{Deserialize, Serialize};
use vvd_channel::CirConfig;
use vvd_core::VvdConfig;
use vvd_estimation::EqualizerConfig;
use vvd_phy::PhyConfig;

/// Full configuration of a simulated measurement campaign and its
/// evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// PHY configuration (PSDU length, samples per chip, preamble
    /// threshold).
    pub phy: PhyConfig,
    /// Channel synthesis configuration.
    pub cir: CirConfig,
    /// VVD CNN / training configuration.
    pub vvd: VvdConfig,
    /// Equalization configuration shared by all techniques.
    pub equalizer: EqualizerConfig,
    /// Nominal SNR in dB, defined against the unblocked (nominal) channel.
    pub snr_db: f64,
    /// Number of measurement sets in the campaign (paper: 15).
    pub n_sets: usize,
    /// Number of packets per measurement set (paper: ~1,500 on average).
    pub packets_per_set: usize,
    /// Number of set combinations evaluated (paper: 15).
    pub n_combinations: usize,
    /// Packets at the start of each test set excluded while the Kalman
    /// filters converge (paper: 200).
    pub kalman_warmup_packets: usize,
    /// Cap on the number of training samples per VVD variant (0 = no cap);
    /// lets the quick preset bound CNN training time.
    pub max_vvd_training_samples: usize,
    /// Base RNG seed of the campaign.
    pub seed: u64,
}

impl EvalConfig {
    /// Full-scale configuration matching the paper's campaign dimensions.
    pub fn paper() -> Self {
        EvalConfig {
            phy: PhyConfig::default(),
            cir: CirConfig::default(),
            vvd: VvdConfig::paper(),
            equalizer: EqualizerConfig::default(),
            snr_db: -5.0,
            n_sets: 15,
            packets_per_set: 1500,
            n_combinations: 15,
            kalman_warmup_packets: 200,
            max_vvd_training_samples: 0,
            seed: 2019,
        }
    }

    /// Laptop-scale configuration used by the reproduction benches: shorter
    /// packets, fewer sets/packets/combinations and the reduced CNN, chosen
    /// so a full figure regeneration stays in the minutes range.
    pub fn quick() -> Self {
        EvalConfig {
            phy: PhyConfig::short_packets(32),
            cir: CirConfig::default(),
            vvd: VvdConfig::quick(),
            equalizer: EqualizerConfig::default(),
            snr_db: -5.0,
            n_sets: 5,
            packets_per_set: 150,
            n_combinations: 3,
            kalman_warmup_packets: 20,
            max_vvd_training_samples: 360,
            seed: 2019,
        }
    }

    /// The `tiny` preset used by the bench smoke runs and the pipeline
    /// parity test: the smallest campaign that still exercises every code
    /// path of an experiment (3 sets, 60 packets/set, 2 combinations,
    /// reduced CNN).
    pub fn tiny() -> Self {
        let mut cfg = EvalConfig::quick();
        cfg.n_sets = 3;
        cfg.packets_per_set = 60;
        cfg.n_combinations = 2;
        cfg.kalman_warmup_packets = 10;
        cfg.max_vvd_training_samples = 120;
        cfg.vvd.epochs = 8;
        cfg
    }

    /// Minimal configuration for unit and integration tests.
    pub fn smoke() -> Self {
        let mut vvd = VvdConfig::quick();
        vvd.conv_filters = 4;
        vvd.dense_units = 24;
        vvd.epochs = 4;
        EvalConfig {
            phy: PhyConfig::short_packets(16),
            cir: CirConfig::default(),
            vvd,
            equalizer: EqualizerConfig::default(),
            snr_db: -5.0,
            n_sets: 3,
            packets_per_set: 40,
            n_combinations: 1,
            kalman_warmup_packets: 5,
            max_vvd_training_samples: 60,
            seed: 7,
        }
    }

    /// Packet transmission period (the paper sends one packet every 100 ms).
    pub fn packet_period_s(&self) -> f64 {
        0.1
    }

    /// Camera frame period (30 fps).
    pub fn frame_period_s(&self) -> f64 {
        1.0 / 30.0
    }

    /// Duration of one measurement set in seconds.
    pub fn set_duration_s(&self) -> f64 {
        self.packets_per_set as f64 * self.packet_period_s()
    }

    /// Total number of packets in the campaign.
    pub fn total_packets(&self) -> usize {
        self.n_sets * self.packets_per_set
    }
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_matches_campaign_dimensions() {
        let cfg = EvalConfig::paper();
        assert_eq!(cfg.n_sets, 15);
        assert_eq!(cfg.n_combinations, 15);
        assert_eq!(cfg.phy.psdu_octets, 127);
        assert_eq!(cfg.kalman_warmup_packets, 200);
        assert_eq!(cfg.total_packets(), 22_500);
    }

    #[test]
    fn quick_preset_is_smaller_in_every_dimension() {
        let quick = EvalConfig::quick();
        let paper = EvalConfig::paper();
        assert!(quick.n_sets <= paper.n_sets);
        assert!(quick.packets_per_set < paper.packets_per_set);
        assert!(quick.n_combinations < paper.n_combinations);
        assert!(quick.phy.psdu_octets < paper.phy.psdu_octets);
        assert!(quick.vvd.epochs < paper.vvd.epochs);
    }

    #[test]
    fn timing_helpers() {
        let cfg = EvalConfig::smoke();
        assert_eq!(cfg.packet_period_s(), 0.1);
        assert!((cfg.set_duration_s() - 4.0).abs() < 1e-12);
        assert!((cfg.frame_period_s() - 0.03333).abs() < 1e-4);
    }
}
