//! The Sec.-3.1 hypothesis test (Figs. 4–5).
//!
//! Hypothesis 1: moving an object changes the amplitude and phase of the
//! multipath components.  Hypothesis 2: if the mobile object is at the same
//! place at two different times, the MPCs are similar (up to a mean phase
//! shift caused by the crystals).  The test compares the perfect LS channel
//! estimates of three scenarios: a control placement, a displaced placement
//! and a repeat of the control placement at a later time.

use crate::config::EvalConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vvd_channel::noise::{component_std_for_noise_power, noise_power_for_snr};
use vvd_channel::{apply_channel, ChannelRealization, CirSynthesizer, Human, Room};
use vvd_dsp::{Complex, FirFilter};
use vvd_estimation::ls::perfect_estimate;
use vvd_estimation::phase::{align_mean_phase, phase_aligned_mse};
use vvd_phy::{modulate_frame, PsduBuilder};

/// Channel estimates of the three hypothesis-test scenarios.
#[derive(Debug, Clone)]
pub struct HypothesisTest {
    /// Control placement (e.g. Frame 497 from Set 2 in the paper).
    pub control: FirFilter,
    /// Displaced placement (hypothesis 1; Frame 780 from Set 5).
    pub displaced: FirFilter,
    /// Same placement as the control, captured later with mobility in
    /// between (hypothesis 2; Frame 4266 from Set 5), already mean-phase
    /// aligned to the control as in Fig. 5b.
    pub repeat_aligned: FirFilter,
    /// Phase-aligned MSE between control and repeat (should be small).
    pub control_vs_repeat_mse: f64,
    /// Phase-aligned MSE between control and displaced (should be large).
    pub control_vs_displaced_mse: f64,
}

impl HypothesisTest {
    /// Per-tap amplitudes of the three estimates (Fig. 5a).
    pub fn tap_amplitudes(&self) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let amp = |f: &FirFilter| f.taps().iter().map(|t| t.abs()).collect();
        (
            amp(&self.control),
            amp(&self.displaced),
            amp(&self.repeat_aligned),
        )
    }

    /// `true` when the two hypotheses hold on this instance: the repeated
    /// placement is substantially closer to the control than the displaced
    /// placement is (the paper draws the same qualitative conclusion from
    /// Fig. 5 — "a lot closer but there is no perfect match").
    pub fn hypotheses_hold(&self) -> bool {
        self.control_vs_repeat_mse * 2.0 < self.control_vs_displaced_mse
    }
}

/// Runs the hypothesis test: the control and repeat scenarios place the
/// human blocking the LoS from a distance (equidistant from TX and RX), the
/// displaced scenario places the human directly in front of the receiver.
pub fn run_hypothesis_test(config: &EvalConfig) -> HypothesisTest {
    let room = Room::laboratory();
    let synth = CirSynthesizer::new(room.clone(), config.cir);
    let builder = PsduBuilder::new(&config.phy);
    let tx = modulate_frame(&config.phy, &builder.build(0));

    // The hypothesis test mimics the paper's Fig.-5 inspection of individual
    // strong measurements (full 127-byte packets integrated by the LS fit);
    // with the shorter smoke/quick packets the equivalent estimation quality
    // is obtained by granting this experiment a 15 dB higher SNR than the
    // campaign operating point.
    let nominal = synth.nominal_cir();
    let noise_std = component_std_for_noise_power(noise_power_for_snr(
        tx.waveform.power() * nominal.energy(),
        config.snr_db + 15.0,
    ));

    // Scenario placements mirroring Fig. 4: control and repeat block the LoS
    // from the middle of the room; the displaced human has moved away from
    // the TX–RX line towards the scatterers on the north side, so a different
    // subset of MPCs is affected.
    let control_pos = Human::at(4.0, 3.2);
    let displaced_pos = Human::at(5.6, 4.4);

    let estimate = |human: &Human, seed: u64| -> FirFilter {
        let mut rng = StdRng::seed_from_u64(config.seed ^ seed);
        let cir = synth.cir(human, &mut rng);
        let realization = ChannelRealization {
            fir: cir,
            phase_offset: rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI),
            noise_std,
        };
        let received = apply_channel(&tx.waveform, &realization, &mut rng);
        perfect_estimate(&tx, received.as_slice(), config.equalizer.channel_taps).unwrap_or_else(
            |_| FirFilter::from_taps(&vec![Complex::ZERO; config.equalizer.channel_taps]),
        )
    };

    let control = estimate(&control_pos, 0xC0);
    let displaced = estimate(&displaced_pos, 0xD1);
    // "Repeat": same placement, an hour later — different noise, different
    // crystal phase, mobility in between (modelled by a fresh seed).
    let repeat = estimate(&control_pos, 0x4E);

    let control_vs_repeat_mse = phase_aligned_mse(&repeat, &control);
    let control_vs_displaced_mse = phase_aligned_mse(&displaced, &control);
    let (repeat_aligned, _) = align_mean_phase(&repeat, &control);

    HypothesisTest {
        control,
        displaced,
        repeat_aligned,
        control_vs_repeat_mse,
        control_vs_displaced_mse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypotheses_hold_on_the_default_configuration() {
        let test = run_hypothesis_test(&EvalConfig::smoke());
        assert!(
            test.hypotheses_hold(),
            "repeat MSE {} vs displaced MSE {}",
            test.control_vs_repeat_mse,
            test.control_vs_displaced_mse
        );
    }

    #[test]
    fn tap_amplitudes_have_the_configured_length() {
        let cfg = EvalConfig::smoke();
        let test = run_hypothesis_test(&cfg);
        let (c, d, r) = test.tap_amplitudes();
        assert_eq!(c.len(), cfg.equalizer.channel_taps);
        assert_eq!(d.len(), cfg.equalizer.channel_taps);
        assert_eq!(r.len(), cfg.equalizer.channel_taps);
        // Dominant taps sit in the middle of the window, as in Fig. 5a.
        let dom = c
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((3..=8).contains(&dom), "dominant tap at {dom}");
    }

    #[test]
    fn displacement_changes_the_channel_more_than_remeasurement() {
        let test = run_hypothesis_test(&EvalConfig::smoke());
        assert!(test.control_vs_displaced_mse > test.control_vs_repeat_mse);
    }
}
