//! Plain-text reporting helpers used by the figure/table reproduction
//! benches.
//!
//! Every harness in `vvd-bench` prints the same rows/series the paper
//! reports; these helpers keep the formatting consistent.

use crate::evaluate::{CombinationResult, EvaluationSummary, TimePoint};
use vvd_dsp::stats::BoxStats;
use vvd_estimation::Technique;

/// Formats one box-statistics row: `label  min q1 median q3 max mean`.
pub fn format_box_row(label: &str, stats: &BoxStats) -> String {
    format!(
        "{label:<28} {:>10.4e} {:>10.4e} {:>10.4e} {:>10.4e} {:>10.4e} {:>10.4e}",
        stats.min, stats.q1, stats.median, stats.q3, stats.max, stats.mean
    )
}

/// Formats a metric table (PER / CER / MSE) for the given techniques in the
/// given order, skipping techniques without data.
pub fn format_metric_table(
    title: &str,
    summary_metric: &std::collections::BTreeMap<String, BoxStats>,
    order: &[Technique],
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{title}\n{:<28} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
        "technique", "min", "q1", "median", "q3", "max", "mean"
    ));
    for technique in order {
        if let Some(stats) = summary_metric.get(technique.label()) {
            out.push_str(&format_box_row(technique.label(), stats));
            out.push('\n');
        }
    }
    out
}

/// Formats the Fig.-15 success/fail time series: one character per packet,
/// `#` = success, `.` = failure, with the VVD row above the ground-truth row.
pub fn format_time_series(points: &[TimePoint]) -> String {
    let vvd: String = points
        .iter()
        .map(|p| if p.vvd_success { '#' } else { '.' })
        .collect();
    let gt: String = points
        .iter()
        .map(|p| if p.ground_truth_success { '#' } else { '.' })
        .collect();
    let blocked: String = points
        .iter()
        .map(|p| if p.los_blocked { 'B' } else { ' ' })
        .collect();
    format!("VVD-Current : {vvd}\nGround Truth: {gt}\nLoS blocked : {blocked}\n")
}

/// Formats the per-combination PER of one technique (one row per
/// combination), useful for Fig.-11 style outputs.
pub fn format_per_combination(results: &[CombinationResult], technique: Technique) -> String {
    let mut out = format!("{}\n", technique.label());
    for r in results {
        if let Some(m) = r.metric(technique) {
            out.push_str(&format!(
                "  combination {:>2} (test set {:>2}): PER {:.4}  CER {:.4}  packets {}\n",
                r.combination.number, r.combination.test, m.per, m.cer, m.packets
            ));
        }
    }
    out
}

/// Formats the whole evaluation summary (PER, CER, MSE tables) in the
/// paper's Fig.-12/13/14 order.
pub fn format_summary(summary: &EvaluationSummary, order: &[Technique]) -> String {
    let mut out = String::new();
    out.push_str(&format_metric_table(
        "Packet Error Rate (Fig. 12)",
        &summary.per,
        order,
    ));
    out.push('\n');
    out.push_str(&format_metric_table(
        "Chip Error Rate (Fig. 13)",
        &summary.cer,
        order,
    ));
    out.push('\n');
    out.push_str(&format_metric_table(
        "Mean Squared Error (Fig. 14)",
        &summary.mse,
        order,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn box_row_contains_all_fields() {
        let stats = BoxStats::from_samples(&[0.1, 0.2, 0.3]);
        let row = format_box_row("Test", &stats);
        assert!(row.starts_with("Test"));
        assert!(row.contains("2.0000e-1"));
    }

    #[test]
    fn metric_table_respects_order_and_skips_missing() {
        let mut metric = BTreeMap::new();
        metric.insert(
            Technique::GroundTruth.label().to_string(),
            BoxStats::from_samples(&[0.01]),
        );
        let table = format_metric_table(
            "PER",
            &metric,
            &[Technique::StandardDecoding, Technique::GroundTruth],
        );
        assert!(table.contains("Ground Truth"));
        assert!(!table.contains("Standard Decoding"));
        assert!(table.starts_with("PER"));
    }

    #[test]
    fn time_series_marks_success_and_failure() {
        let points = vec![
            TimePoint {
                time_s: 0.0,
                vvd_success: true,
                ground_truth_success: true,
                los_blocked: false,
            },
            TimePoint {
                time_s: 0.1,
                vvd_success: false,
                ground_truth_success: true,
                los_blocked: true,
            },
        ];
        let s = format_time_series(&points);
        assert!(s.contains("VVD-Current : #."));
        assert!(s.contains("Ground Truth: ##"));
        assert!(s.contains("LoS blocked :  B"));
    }
}
