//! Measurement-campaign simulation.
//!
//! One [`Campaign`] mirrors the structure of the published trace: a number
//! of measurement sets, each containing a packet every 100 ms and a depth
//! frame every 33.3 ms, with every packet associated to the frame captured
//! closest to its transmission time (the LED-blink synchronisation of
//! Fig. 3).  For every packet the campaign stores the block-fading channel
//! realisation, the perfect (ground-truth) LS estimate obtained from the
//! simulated sniffer capture, and the preamble-detection outcome; the raw
//! waveform itself is regenerated on demand from the stored noise seed so
//! that campaigns stay small in memory.
//!
//! The environment itself is pluggable: [`Campaign::generate`] runs the
//! paper's scenario, while [`Campaign::generate_spec`] /
//! [`Campaign::generate_scenario`] accept any
//! [`vvd_channel::ChannelScenario`] — crowds, stochastic
//! fading, noise overlays — built from a spec string such as
//! `"room:large,humans=4,speed=1.5"` (see `vvd_channel::scenario`).
//!
//! # Determinism and parallelism
//!
//! Generation has two phases per set.  The *scenario phase* is sequential:
//! it drives the scenario's RNG stream (trajectory, per-packet CIR, crystal
//! phase) in transmission order, exactly like the pre-scenario harness, so
//! `"paper"` campaigns are bit-identical to the historical ones
//! (`tests/scenario_golden.rs`).  The *synthesis phase* — depth-image
//! rendering, waveform modulation, channel application, LS estimation,
//! synchronisation — is embarrassingly parallel across frames and packets
//! (each packet's receiver noise comes from its own seeded RNG) and fans
//! out over `std::thread::scope` workers; its outputs are identical at any
//! worker count.

use crate::config::EvalConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vvd_channel::noise::{component_std_for_noise_power, noise_power_for_snr};
use vvd_channel::scenario::{PacketChannel, PaperScenario, ScenarioRegistry, SpecParseError};
use vvd_channel::{apply_channel, ChannelRealization, ChannelScenario, Room};
use vvd_dsp::{CVec, Complex, FirFilter};
use vvd_estimation::ls::perfect_estimate;
use vvd_phy::{modulate_frame, ModulatedFrame, PsduBuilder, Receiver};
use vvd_vision::scene::{Aabb, Plane, Scene, Vec3, VerticalCylinder};
use vvd_vision::{preprocess, render_depth, DepthImage, PinholeCamera, PreprocessConfig};

/// One camera frame of a measurement set.
#[derive(Debug, Clone)]
pub struct FrameRecord {
    /// Frame index within the set.
    pub index: usize,
    /// Capture time relative to the start of the set (seconds).
    pub time_s: f64,
    /// Preprocessed (cropped, normalised) depth image.
    pub image: DepthImage,
    /// Blocker positions at capture time, in blocker order (empty for
    /// scenarios without physical blockers; the paper's scenario has one).
    pub blockers: Vec<(f64, f64)>,
}

/// One transmitted packet of a measurement set.
#[derive(Debug, Clone)]
pub struct PacketRecord {
    /// Packet index within the set.
    pub index: usize,
    /// Transmission time relative to the start of the set (seconds).
    pub time_s: f64,
    /// Sequence number carried in the PSDU.
    pub sequence: u16,
    /// Blocker positions at transmission time, in blocker order.
    pub blockers: Vec<(f64, f64)>,
    /// Block-fading channel realisation of this packet.
    pub realization: ChannelRealization,
    /// Seed used to regenerate the receiver noise of this packet.
    pub noise_seed: u64,
    /// Perfect channel estimation (LS over the whole packet) — the paper's
    /// ground truth, including the packet's crystal phase offset.
    pub perfect_cir: FirFilter,
    /// The perfect estimate with the crystal phase offset removed; this is
    /// the "channel state" history used for training time-series predictors
    /// and VVD (the per-packet phase is re-attached at decode time via the
    /// Eq.-8 alignment).
    pub aligned_cir: FirFilter,
    /// Whether the preamble correlation exceeded the detection threshold.
    pub preamble_detected: bool,
    /// Peak normalized preamble correlation.
    pub preamble_correlation: f64,
    /// Index of the camera frame synchronised with this packet.
    pub frame_index: usize,
}

/// One measurement set ("take") of the campaign.
#[derive(Debug, Clone)]
pub struct MeasurementSet {
    /// 1-based set identifier (matching Table 2's numbering).
    pub set_id: usize,
    /// Packets in transmission order.
    pub packets: Vec<PacketRecord>,
    /// Camera frames in capture order.
    pub frames: Vec<FrameRecord>,
}

/// A complete simulated measurement campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The configuration the campaign was generated with.
    pub config: EvalConfig,
    /// Canonical spec of the scenario the campaign was generated from
    /// (`"paper"` for [`Campaign::generate`]).
    pub scenario: String,
    /// The room geometry shared by the radio and camera simulators.
    pub room: Room,
    /// The measurement sets.
    pub sets: Vec<MeasurementSet>,
}

/// Builds the depth-camera scene for the room with the given blockers
/// standing in it (each rendered as the standard human cylinder).
pub fn build_scene(room: &Room, blockers: &[(f64, f64)]) -> Scene {
    let mut scene = Scene {
        planes: vec![
            Plane::Z(0.0),
            Plane::X(0.0),
            Plane::X(room.width),
            Plane::Y(room.depth),
        ],
        boxes: room
            .scatterers
            .iter()
            .map(|s| Aabb::from_footprint(s.position.x, s.position.y, s.half_extent, s.height))
            .collect(),
        cylinders: Vec::new(),
        max_depth: 12.0,
    };
    for &(x, y) in blockers {
        scene.cylinders.push(VerticalCylinder {
            x,
            y,
            radius: 0.25,
            z_min: 0.0,
            z_max: 1.8,
        });
    }
    scene
}

/// The surveillance camera of the room.
pub fn build_camera(room: &Room) -> PinholeCamera {
    PinholeCamera::surveillance(
        Vec3::new(room.camera.x, room.camera.y, room.camera.z),
        Vec3::new(
            room.camera_target.x,
            room.camera_target.y,
            room.camera_target.z,
        ),
    )
}

/// Renders the preprocessed depth image of the room with the given
/// blockers standing in it.
pub fn render_preprocessed(
    room: &Room,
    camera: &PinholeCamera,
    blockers: &[(f64, f64)],
) -> DepthImage {
    let scene = build_scene(room, blockers);
    let raw = render_depth(&scene, camera);
    preprocess(&raw, &PreprocessConfig::default())
}

/// Sequential-phase output for one packet: everything the scenario decided,
/// before the (parallel) waveform synthesis.
struct PacketDraw {
    time_s: f64,
    blockers: Vec<(f64, f64)>,
    channel: PacketChannel,
    frame_index: usize,
}

impl Campaign {
    /// Generates a campaign of the paper's scenario (laboratory room,
    /// single random-waypoint human) according to the configuration.
    pub fn generate(config: &EvalConfig) -> Campaign {
        let mut scenario = PaperScenario::new(config.cir);
        Self::generate_scenario(config, &mut scenario)
    }

    /// Generates a campaign of the scenario described by `spec` (built
    /// through the default [`ScenarioRegistry`] with this configuration's
    /// CIR settings), e.g. `"rician:k=6,doppler=30"` or
    /// `"paper+burst-noise:p=0.01"`.
    pub fn generate_spec(config: &EvalConfig, spec: &str) -> Result<Campaign, SpecParseError> {
        let registry = ScenarioRegistry::new().with_cir_config(config.cir);
        let mut scenario = registry.build(spec)?;
        Ok(Self::generate_scenario(config, &mut scenario))
    }

    /// Generates a campaign of an arbitrary scenario, fanning the per-set
    /// synthesis work out over the available parallelism.
    pub fn generate_scenario(config: &EvalConfig, scenario: &mut dyn ChannelScenario) -> Campaign {
        Self::generate_scenario_with(config, scenario, vvd_dsp::worker_budget())
    }

    /// [`generate_scenario`](Self::generate_scenario) with an explicit
    /// synthesis worker count (1 = fully sequential).  The output is
    /// bit-identical at every worker count; the knob exists for tests and
    /// for embedding into outer parallel sweeps.
    pub fn generate_scenario_with(
        config: &EvalConfig,
        scenario: &mut dyn ChannelScenario,
        workers: usize,
    ) -> Campaign {
        let room = scenario.room().clone();
        let camera = build_camera(&room);
        let receiver = Receiver::new(config.phy);
        let builder = PsduBuilder::new(&config.phy);

        // Noise level calibrated against the scenario's nominal (unblocked)
        // channel.
        let nominal = scenario.nominal_cir();
        let probe = modulate_frame(&config.phy, &builder.build(0));
        let nominal_rx_power = probe.waveform.power() * nominal.energy();
        let noise_std =
            component_std_for_noise_power(noise_power_for_snr(nominal_rx_power, config.snr_db));

        let mut sets = Vec::with_capacity(config.n_sets);
        for set_idx in 0..config.n_sets {
            let set_id = set_idx + 1;
            let mut rng = StdRng::seed_from_u64(config.seed ^ (set_id as u64 * 0x9E37_79B9));

            // --- Scenario phase (sequential, owns the RNG stream) --------
            // Blocker trajectory at the camera frame rate; packet-time
            // positions are interpolated from it.
            let duration = config.set_duration_s();
            let n_frames = (duration / config.frame_period_s()).ceil() as usize + 4;
            let snapshots = scenario.begin_set(config.frame_period_s(), n_frames, &mut rng);

            let draws: Vec<PacketDraw> = (0..config.packets_per_set)
                .map(|k| {
                    let time_s = k as f64 * config.packet_period_s();
                    let blockers =
                        interpolate_snapshot(&snapshots, config.frame_period_s(), time_s);
                    let channel = scenario.packet_channel(time_s, &blockers, &mut rng);
                    let frame_index =
                        nearest_frame(snapshots.len(), config.frame_period_s(), time_s);
                    PacketDraw {
                        time_s,
                        blockers,
                        channel,
                        frame_index,
                    }
                })
                .collect();

            // --- Synthesis phase (parallel, pure per item) ---------------
            let frames: Vec<FrameRecord> =
                par_map(&snapshots, workers, |i, blockers| FrameRecord {
                    index: i,
                    time_s: i as f64 * config.frame_period_s(),
                    image: render_preprocessed(&room, &camera, blockers),
                    blockers: blockers.clone(),
                });

            let packets: Vec<PacketRecord> = par_map(&draws, workers, |k, draw| {
                let realization = ChannelRealization {
                    fir: draw.channel.fir.clone(),
                    phase_offset: draw.channel.phase_offset,
                    noise_std: noise_std * draw.channel.noise_scale,
                };
                let noise_seed = config.seed
                    ^ (set_id as u64).wrapping_mul(0x517C_C1B7_2722_0A95)
                    ^ (k as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);

                let sequence = (k % u16::MAX as usize) as u16;
                let tx = modulate_frame(&config.phy, &builder.build(sequence));
                let mut noise_rng = StdRng::seed_from_u64(noise_seed);
                let received = apply_channel(&tx.waveform, &realization, &mut noise_rng);

                let perfect_cir =
                    perfect_estimate(&tx, received.as_slice(), config.equalizer.channel_taps)
                        .unwrap_or_else(|_| {
                            FirFilter::from_taps(&vec![
                                Complex::ZERO;
                                config.equalizer.channel_taps
                            ])
                        });
                let aligned_cir = perfect_cir.rotated(Complex::cis(-draw.channel.phase_offset));
                let sync = receiver.synchronize(received.as_slice(), &tx);

                PacketRecord {
                    index: k,
                    time_s: draw.time_s,
                    sequence,
                    blockers: draw.blockers.clone(),
                    realization,
                    noise_seed,
                    perfect_cir,
                    aligned_cir,
                    preamble_detected: sync.preamble_detected,
                    preamble_correlation: sync.correlation,
                    frame_index: draw.frame_index,
                }
            });

            sets.push(MeasurementSet {
                set_id,
                packets,
                frames,
            });
        }

        Campaign {
            config: *config,
            scenario: scenario.spec(),
            room,
            sets,
        }
    }

    /// Returns the measurement set with the given 1-based identifier.
    pub fn set(&self, set_id: usize) -> &MeasurementSet {
        &self.sets[set_id - 1]
    }

    /// Regenerates the transmitted frame and the raw received waveform of a
    /// packet (bit-identical to what was used during generation).
    pub fn received_waveform(&self, set_id: usize, packet_index: usize) -> (ModulatedFrame, CVec) {
        let record = &self.set(set_id).packets[packet_index];
        let builder = PsduBuilder::new(&self.config.phy);
        let tx = modulate_frame(&self.config.phy, &builder.build(record.sequence));
        let mut rng = StdRng::seed_from_u64(record.noise_seed);
        let received = apply_channel(&tx.waveform, &record.realization, &mut rng);
        (tx, received)
    }

    /// Total number of packets across all sets.
    pub fn total_packets(&self) -> usize {
        self.sets.iter().map(|s| s.packets.len()).sum::<usize>()
    }
}

/// Maps `f` over `items` on up to `workers` scoped threads, preserving
/// input order.  `f` must be pure per item — with that, the output is
/// identical at every worker count.
fn par_map<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk_size = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .enumerate()
            .map(|(c, chunk)| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(i, t)| f(c * chunk_size + i, t))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("campaign synthesis worker panicked"))
            .collect()
    })
}

/// Element-wise linear interpolation of the blocker positions at an
/// arbitrary time from the frame-rate trajectory (blocker `j` of
/// consecutive snapshots is the same person).
///
/// When the two bracketing snapshots disagree in length — a scenario whose
/// population changes mid-set, e.g. a replayed `MobilityTrace` with people
/// entering or leaving — blending would pair positions of different
/// people, so the nearer snapshot is used as-is instead (piecewise
/// constant across the membership change).
fn interpolate_snapshot(
    snapshots: &[Vec<(f64, f64)>],
    frame_period: f64,
    time_s: f64,
) -> Vec<(f64, f64)> {
    if snapshots.is_empty() {
        return Vec::new();
    }
    let idx = time_s / frame_period;
    let lo = (idx.floor() as usize).min(snapshots.len() - 1);
    let hi = (lo + 1).min(snapshots.len() - 1);
    let frac = idx - lo as f64;
    if snapshots[lo].len() != snapshots[hi].len() {
        let nearest = if frac < 0.5 { lo } else { hi };
        return snapshots[nearest].clone();
    }
    snapshots[lo]
        .iter()
        .zip(&snapshots[hi])
        .map(|(a, b)| (a.0 + (b.0 - a.0) * frac, a.1 + (b.1 - a.1) * frac))
        .collect()
}

/// Index of the camera frame captured closest to the given time.
fn nearest_frame(n_frames: usize, frame_period: f64, time_s: f64) -> usize {
    ((time_s / frame_period).round() as usize).min(n_frames.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_campaign() -> Campaign {
        let mut cfg = EvalConfig::smoke();
        cfg.n_sets = 2;
        cfg.packets_per_set = 12;
        Campaign::generate(&cfg)
    }

    #[test]
    fn campaign_has_expected_structure() {
        let campaign = tiny_campaign();
        assert_eq!(campaign.scenario, "paper");
        assert_eq!(campaign.sets.len(), 2);
        assert_eq!(campaign.total_packets(), 24);
        for set in &campaign.sets {
            assert_eq!(set.packets.len(), 12);
            assert!(set.frames.len() >= 36, "expected ≥3 frames per packet");
            // Packet ↔ frame association points inside the frame list.
            for p in &set.packets {
                assert!(p.frame_index < set.frames.len());
                let frame_time = set.frames[p.frame_index].time_s;
                assert!((frame_time - p.time_s).abs() <= 0.017 + 1e-9);
            }
        }
    }

    #[test]
    fn images_are_paper_sized_and_normalised() {
        let campaign = tiny_campaign();
        let frame = &campaign.sets[0].frames[0];
        assert_eq!(frame.image.height(), 50);
        assert_eq!(frame.image.width(), 90);
        assert!(frame.image.max() <= 1.0 + 1e-6);
        assert!(frame.image.min() >= 0.0);
    }

    #[test]
    fn received_waveform_regeneration_is_deterministic() {
        let campaign = tiny_campaign();
        let (tx_a, rx_a) = campaign.received_waveform(1, 3);
        let (tx_b, rx_b) = campaign.received_waveform(1, 3);
        assert_eq!(tx_a.frame.psdu, tx_b.frame.psdu);
        assert_eq!(rx_a, rx_b);
        // And the stored perfect CIR matches a re-estimation from the
        // regenerated waveform.
        let record = &campaign.sets[0].packets[3];
        let re_est = perfect_estimate(
            &tx_a,
            rx_a.as_slice(),
            campaign.config.equalizer.channel_taps,
        )
        .unwrap();
        assert!(re_est.taps().squared_error(record.perfect_cir.taps()) < 1e-18);
    }

    #[test]
    fn ground_truth_estimates_track_the_true_channel() {
        // At the campaign's low operating SNR the LS estimate of a deeply
        // body-shadowed packet is noise-dominated, so the check is on the
        // median relative error across packets rather than on every packet.
        let campaign = tiny_campaign();
        let mut rels: Vec<f64> = Vec::new();
        for set in &campaign.sets {
            for p in &set.packets {
                let truth = p.realization.effective_fir();
                rels.push(p.perfect_cir.taps().squared_error(truth.taps()) / truth.energy());
            }
        }
        rels.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = rels[rels.len() / 2];
        assert!(median < 1.0, "median relative estimation error {median}");
    }

    #[test]
    fn aligned_cir_removes_the_crystal_phase() {
        let campaign = tiny_campaign();
        let p = &campaign.sets[0].packets[0];
        let expected = p
            .perfect_cir
            .rotated(Complex::cis(-p.realization.phase_offset));
        assert!(expected.taps().squared_error(p.aligned_cir.taps()) < 1e-24);
    }

    #[test]
    fn most_preambles_are_detected() {
        let campaign = tiny_campaign();
        let total: usize = campaign.sets.iter().map(|s| s.packets.len()).sum();
        let detected: usize = campaign
            .sets
            .iter()
            .flat_map(|s| s.packets.iter())
            .filter(|p| p.preamble_detected)
            .count();
        assert!(
            detected * 3 >= total,
            "fewer than a third of the preambles detected ({detected}/{total})"
        );
    }

    #[test]
    fn different_sets_have_different_trajectories() {
        let campaign = tiny_campaign();
        let a = &campaign.sets[0].packets[5].blockers;
        let b = &campaign.sets[1].packets[5].blockers;
        assert_ne!(a, b);
    }

    #[test]
    fn worker_count_does_not_change_the_campaign() {
        let mut cfg = EvalConfig::smoke();
        cfg.n_sets = 1;
        cfg.packets_per_set = 8;
        let mut sequential_scenario = PaperScenario::new(cfg.cir);
        let sequential = Campaign::generate_scenario_with(&cfg, &mut sequential_scenario, 1);
        let mut parallel_scenario = PaperScenario::new(cfg.cir);
        let parallel = Campaign::generate_scenario_with(&cfg, &mut parallel_scenario, 7);
        assert_eq!(sequential.sets.len(), parallel.sets.len());
        for (s, p) in sequential.sets.iter().zip(&parallel.sets) {
            assert_eq!(s.packets.len(), p.packets.len());
            for (a, b) in s.packets.iter().zip(&p.packets) {
                assert_eq!(a.perfect_cir.taps(), b.perfect_cir.taps());
                assert_eq!(a.realization, b.realization);
                assert_eq!(a.preamble_detected, b.preamble_detected);
                assert_eq!(a.blockers, b.blockers);
            }
            for (a, b) in s.frames.iter().zip(&p.frames) {
                assert_eq!(a.image.data(), b.image.data());
            }
        }
    }

    #[test]
    fn spec_generation_labels_the_campaign_and_validates() {
        let mut cfg = EvalConfig::smoke();
        cfg.n_sets = 1;
        cfg.packets_per_set = 6;
        let campaign = Campaign::generate_spec(&cfg, "rayleigh:doppler=10").unwrap();
        assert_eq!(campaign.scenario, "rayleigh:doppler=10");
        // No physical blockers: frames and packets carry empty positions.
        assert!(campaign.sets[0]
            .frames
            .iter()
            .all(|f| f.blockers.is_empty()));
        assert!(campaign.sets[0]
            .packets
            .iter()
            .all(|p| p.blockers.is_empty()));
        assert!(Campaign::generate_spec(&cfg, "nonsense").is_err());
    }

    #[test]
    fn membership_changes_interpolate_piecewise_constant() {
        // Equal-length snapshots blend linearly.
        let steady = vec![vec![(0.0, 0.0)], vec![(1.0, 2.0)]];
        assert_eq!(interpolate_snapshot(&steady, 1.0, 0.5), vec![(0.5, 1.0)]);
        // A person appears between samples: no cross-person blending — the
        // nearer snapshot wins wholesale.
        let changing = vec![vec![(0.0, 0.0)], vec![(1.0, 2.0), (5.0, 5.0)]];
        assert_eq!(interpolate_snapshot(&changing, 1.0, 0.25), vec![(0.0, 0.0)]);
        assert_eq!(
            interpolate_snapshot(&changing, 1.0, 0.75),
            vec![(1.0, 2.0), (5.0, 5.0)]
        );
    }

    #[test]
    fn crowd_campaigns_render_every_blocker() {
        let mut cfg = EvalConfig::smoke();
        cfg.n_sets = 1;
        cfg.packets_per_set = 6;
        let campaign = Campaign::generate_spec(&cfg, "room:lab,humans=3,speed=1").unwrap();
        let set = &campaign.sets[0];
        assert!(set.frames.iter().all(|f| f.blockers.len() == 3));
        assert!(set.packets.iter().all(|p| p.blockers.len() == 3));
        // A crowd of three darkens the depth image relative to an empty
        // room somewhere in the set.
        let room = &campaign.room;
        let camera = build_camera(room);
        let empty = render_preprocessed(room, &camera, &[]);
        assert!(set
            .frames
            .iter()
            .any(|f| f.image.mean_abs_diff(&empty) > 1e-4));
    }
}
