//! Reliability and accuracy metrics (Sec. 5.5).
//!
//! * **Packet error rate** — erroneous packets / transmitted packets,
//! * **Chip error rate** — erroneous chips / transmitted chips (computed on
//!   the equalized signal before despreading),
//! * **Mean squared error** — Eq. 9, the per-tap squared distance between an
//!   estimate and the perfect (ground-truth) channel estimate.

use vvd_dsp::FirFilter;
use vvd_phy::DecodeOutcome;

/// Packet error rate over a set of decode outcomes (0 for an empty set).
pub fn packet_error_rate(outcomes: &[DecodeOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes.iter().filter(|o| o.is_packet_error()).count() as f64 / outcomes.len() as f64
}

/// Chip error rate over a set of decode outcomes: total erroneous chips over
/// total transmitted chips (0 for an empty set).
pub fn chip_error_rate(outcomes: &[DecodeOutcome]) -> f64 {
    let total: usize = outcomes.iter().map(|o| o.chip_count).sum();
    if total == 0 {
        return 0.0;
    }
    let errors: usize = outcomes.iter().map(|o| o.chip_errors).sum();
    errors as f64 / total as f64
}

/// Mean squared error between a sequence of estimates and the corresponding
/// perfect estimates (Eq. 9): the squared tap differences summed over real
/// and imaginary parts, averaged over taps and packets.
///
/// # Panics
/// Panics if the two sequences differ in length or any pair differs in tap
/// count.
pub fn mean_squared_error(estimates: &[FirFilter], ground_truth: &[FirFilter]) -> f64 {
    assert_eq!(
        estimates.len(),
        ground_truth.len(),
        "MSE requires matching sequences"
    );
    if estimates.is_empty() {
        return 0.0;
    }
    let mut acc = 0.0;
    let mut taps_total = 0usize;
    for (est, truth) in estimates.iter().zip(ground_truth.iter()) {
        assert_eq!(est.len(), truth.len(), "MSE requires matching tap counts");
        acc += est.taps().squared_error(truth.taps());
        taps_total += truth.len();
    }
    acc / taps_total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vvd_dsp::Complex;

    fn outcome(crc_ok: bool, chip_errors: usize) -> DecodeOutcome {
        DecodeOutcome {
            crc_ok,
            chip_errors,
            chip_count: 100,
            symbol_errors: 0,
        }
    }

    #[test]
    fn per_counts_failed_packets() {
        let outcomes = vec![
            outcome(true, 0),
            outcome(false, 10),
            outcome(true, 2),
            outcome(false, 50),
        ];
        assert_eq!(packet_error_rate(&outcomes), 0.5);
        assert_eq!(packet_error_rate(&[]), 0.0);
    }

    #[test]
    fn cer_is_total_chip_errors_over_total_chips() {
        let outcomes = vec![outcome(true, 1), outcome(false, 9)];
        assert!((chip_error_rate(&outcomes) - 0.05).abs() < 1e-12);
        assert_eq!(chip_error_rate(&[]), 0.0);
    }

    #[test]
    fn mse_matches_eq9_for_known_values() {
        let truth = vec![FirFilter::from_taps(&[
            Complex::new(1.0, 0.0),
            Complex::new(0.0, 1.0),
        ])];
        let est = vec![FirFilter::from_taps(&[
            Complex::new(1.0, 0.5),
            Complex::new(0.0, 1.0),
        ])];
        // One tap off by 0.5 in imaginary part: squared error 0.25 over 2 taps.
        assert!((mean_squared_error(&est, &truth) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn perfect_estimates_have_zero_mse() {
        let truth: Vec<FirFilter> = (0..5)
            .map(|k| FirFilter::from_taps(&[Complex::new(k as f64, -(k as f64))]))
            .collect();
        assert_eq!(mean_squared_error(&truth, &truth), 0.0);
    }

    #[test]
    fn empty_sequences_give_zero() {
        assert_eq!(mean_squared_error(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_sequence_lengths_panic() {
        let a = vec![FirFilter::identity()];
        let _ = mean_squared_error(&a, &[]);
    }
}
