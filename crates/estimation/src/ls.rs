//! Least-squares FIR channel estimation (Eq. 4–5 of the paper).
//!
//! Every data-driven estimate in the paper is an LS fit of an `N`-tap FIR
//! filter to a stretch of received samples whose transmitted counterpart is
//! known: the whole packet for the "perfect" (ground-truth) estimate, the
//! synchronisation header for the preamble-based estimate.

use vvd_dsp::convolution::convolution_matrix;
use vvd_dsp::solve::{least_squares, SolveError};
use vvd_dsp::{CVec, Complex, FirFilter};
use vvd_phy::ModulatedFrame;

/// Number of channel taps the paper estimates.
pub const PAPER_TAPS: usize = 11;

/// Least-squares estimate of an `n_taps` FIR channel from a known reference
/// signal and the corresponding received samples.
///
/// `received` must contain at least `reference.len()` samples; ideally it
/// holds the full `reference.len() + n_taps - 1` convolution support, and it
/// is zero-padded if shorter (the trailing transient carries little energy).
///
/// # Errors
/// Propagates [`SolveError`] when the reference is degenerate (all zeros or
/// shorter than the requested number of taps).
pub fn ls_estimate(
    reference: &[Complex],
    received: &[Complex],
    n_taps: usize,
) -> Result<FirFilter, SolveError> {
    let x = convolution_matrix(reference, n_taps);
    let needed = x.rows();
    let mut y = CVec(received.to_vec());
    if y.len() < needed {
        y = y.resized(needed);
    } else if y.len() > needed {
        y = CVec(received[..needed].to_vec());
    }
    least_squares(&x, &y).map(FirFilter::new)
}

/// The paper's "perfect channel estimation" / ground truth: an LS fit using
/// the *entire* transmitted waveform as the reference (practically
/// impossible at a real receiver, implemented as the baseline).
pub fn perfect_estimate(
    tx: &ModulatedFrame,
    received: &[Complex],
    n_taps: usize,
) -> Result<FirFilter, SolveError> {
    ls_estimate(tx.full_waveform(), received, n_taps)
}

/// Preamble-based channel estimation: an LS fit using only the known
/// synchronisation header (preamble + SFD) as the reference — the practical
/// pilot-aided technique.
pub fn preamble_estimate(
    tx: &ModulatedFrame,
    received: &[Complex],
    n_taps: usize,
) -> Result<FirFilter, SolveError> {
    ls_estimate(tx.shr_waveform(), received, n_taps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vvd_dsp::convolution::convolve_full;
    use vvd_phy::{modulate_frame, PhyConfig, PsduBuilder};

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    fn test_channel() -> FirFilter {
        let mut taps = vec![Complex::ZERO; 7];
        taps[2] = c(0.9, 0.3);
        taps[3] = c(0.25, -0.15);
        taps[5] = c(0.0, 0.1);
        FirFilter::from_taps(&taps)
    }

    #[test]
    fn recovers_known_channel_from_clean_signal() {
        let cfg = PhyConfig::short_packets(8);
        let tx = modulate_frame(&cfg, &PsduBuilder::new(&cfg).build(1));
        let channel = test_channel();
        let received = channel.filter_full(tx.full_waveform());
        let est = perfect_estimate(&tx, received.as_slice(), 7).unwrap();
        let err = est.taps().squared_error(channel.taps()) / channel.energy();
        assert!(err < 1e-18, "relative error {err}");
    }

    #[test]
    fn preamble_estimate_recovers_channel_too() {
        let cfg = PhyConfig::short_packets(8);
        let tx = modulate_frame(&cfg, &PsduBuilder::new(&cfg).build(1));
        let channel = test_channel();
        let received = channel.filter_full(tx.full_waveform());
        let est = preamble_estimate(&tx, received.as_slice(), 7).unwrap();
        // The last N-1 observation rows also contain energy from the first
        // data chips that follow the SHR, which the SHR-only reference cannot
        // model; the estimate is therefore close but not exact (same effect
        // as at a real receiver).
        let err = est.taps().squared_error(channel.taps()) / channel.energy();
        assert!(err < 1e-2, "relative error {err}");
    }

    #[test]
    fn perfect_estimate_is_closer_than_preamble_under_noise() {
        // With noise, more reference samples mean a better LS fit on average.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let cfg = PhyConfig::short_packets(16);
        let tx = modulate_frame(&cfg, &PsduBuilder::new(&cfg).build(2));
        let channel = test_channel();
        let clean = channel.filter_full(tx.full_waveform());
        let mut rng = StdRng::seed_from_u64(1);
        let noisy = CVec(
            clean
                .iter()
                .map(|&s| s + c(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5) * 0.05)
                .collect(),
        );
        let perfect = perfect_estimate(&tx, noisy.as_slice(), 7).unwrap();
        let preamble = preamble_estimate(&tx, noisy.as_slice(), 7).unwrap();
        let pe = perfect.taps().squared_error(channel.taps());
        let pre = preamble.taps().squared_error(channel.taps());
        assert!(pe < pre, "perfect {pe} should beat preamble {pre}");
    }

    #[test]
    fn short_received_vector_is_padded() {
        let reference = [c(1.0, 0.0), c(-1.0, 0.0), c(1.0, 0.0), c(1.0, 0.0)];
        let channel = [c(0.5, 0.5), c(0.1, 0.0)];
        let received = convolve_full(&reference, &channel);
        // Pass only the first few samples; estimation should still work
        // approximately because most of the energy is early.
        let est = ls_estimate(&reference, &received.as_slice()[..4], 2).unwrap();
        assert_eq!(est.len(), 2);
    }

    #[test]
    fn degenerate_reference_is_an_error() {
        let reference = [Complex::ZERO; 8];
        let received = [Complex::ZERO; 10];
        assert!(ls_estimate(&reference, &received, 3).is_err());
    }

    #[test]
    fn estimating_more_taps_than_needed_zero_pads() {
        let cfg = PhyConfig::short_packets(8);
        let tx = modulate_frame(&cfg, &PsduBuilder::new(&cfg).build(1));
        let channel = FirFilter::from_taps(&[c(1.0, 0.0)]);
        let received = channel.filter_full(tx.full_waveform());
        let est = perfect_estimate(&tx, received.as_slice(), PAPER_TAPS).unwrap();
        assert_eq!(est.len(), PAPER_TAPS);
        assert!((est.taps()[0] - Complex::ONE).abs() < 1e-9);
        for k in 1..PAPER_TAPS {
            assert!(est.taps()[k].abs() < 1e-9);
        }
    }
}
