//! Serializable estimator state: the streaming half of an estimator's
//! lifecycle, detached from its fitted half.
//!
//! A checkpointed serve session must restore its estimator *exactly* —
//! resumed traces are pinned bit-identical to uninterrupted ones — but the
//! fitted artefacts (Kalman AR coefficients and noise covariances, VVD
//! network weights) are deterministic functions of the training data and
//! are rebuilt by re-fitting on resume, with [`crate::ModelCache`]
//! absorbing the cost of VVD retraining.  What a checkpoint must carry is
//! only the state that *streaming* accumulated:
//!
//! * observation histories ([`Previous`](crate::estimator::Previous),
//!   [`AgedPreamble`](crate::estimator::AgedPreamble)),
//! * per-tap filter state, covariance and observed history
//!   ([`Kalman`](crate::estimator::Kalman)),
//! * the training-provenance [`ModelKey`] ([`Vvd`](crate::estimator::Vvd)) — weights
//!   rehydrate through the cache, the key pins that the rehydrated model
//!   is the one the checkpoint saw,
//! * the recursive product of the above for
//!   [`Fallback`](crate::estimator::Fallback) combinators.
//!
//! [`EstimatorState`] is that state as a plain data tree;
//! [`ChannelEstimator::save_state`](crate::ChannelEstimator::save_state) /
//! [`load_state`](crate::ChannelEstimator::load_state) move estimators in
//! and out of it.  Loading validates shape (kind, dimensions, model keys)
//! and reports a typed [`StateError`] instead of panicking — checkpoints
//! cross process boundaries and may be stale or mismatched.

use std::error::Error;
use std::fmt;
use vvd_core::ModelKey;
use vvd_dsp::{Complex, FirFilter};

/// Streaming state of one per-tap Kalman filter, exported from
/// [`KalmanTapFilter`](crate::kalman::KalmanTapFilter).
///
/// The AR model (transition matrix, noise covariances) is a fit product
/// and deliberately absent: it is rebuilt by re-fitting.  The order is
/// implied by `state.len()`.
#[derive(Debug, Clone, PartialEq)]
pub struct KalmanTapState {
    /// State estimate `[h[k], h[k-1], ..., h[k-p+1]]` (length = AR order).
    pub state: Vec<Complex>,
    /// Error covariance, row-major `order × order`.
    pub cov: Vec<Complex>,
    /// Recent observations, newest first (length ≤ AR order).
    pub history: Vec<Complex>,
}

/// The serializable streaming state of a
/// [`ChannelEstimator`](crate::ChannelEstimator), one variant per state
/// shape a built-in estimator can have.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimatorState {
    /// No streaming state ([`Standard`](crate::estimator::Standard),
    /// [`GroundTruth`](crate::estimator::GroundTruth), [`Preamble`](crate::estimator::Preamble),
    /// [`Inactive`](crate::estimator::Inactive), and an unfitted
    /// [`Kalman`](crate::estimator::Kalman)).
    Stateless,
    /// Perfect-estimate history of a [`Previous`](crate::estimator::Previous)
    /// estimator, oldest first.
    Previous {
        /// The buffered perfect CIRs (length ≤ lag).
        history: Vec<FirFilter>,
    },
    /// Preamble-estimate history of an
    /// [`AgedPreamble`](crate::estimator::AgedPreamble) estimator, oldest first
    /// (`None` entries are packets whose LS fit failed).
    AgedPreamble {
        /// The buffered preamble estimates (length ≤ lag).
        history: Vec<Option<FirFilter>>,
    },
    /// Per-tap filter states of a fitted [`Kalman`](crate::estimator::Kalman)
    /// estimator.
    Kalman {
        /// One state per channel tap.
        taps: Vec<KalmanTapState>,
    },
    /// Training provenance of a [`Vvd`](crate::estimator::Vvd) estimator's model
    /// (`None` before fit).  The weights themselves rehydrate through the
    /// shared [`ModelCache`](crate::ModelCache) on re-fit; the key pins
    /// that the rehydrated model matches the checkpointed one.
    Vvd {
        /// Content key of the fitted model.
        key: Option<ModelKey>,
    },
    /// Recursive state of a [`Fallback`](crate::estimator::Fallback) combinator.
    Fallback {
        /// State of the primary arm.
        primary: Box<EstimatorState>,
        /// State of the secondary arm.
        secondary: Box<EstimatorState>,
    },
}

impl EstimatorState {
    /// Short name of the state's shape, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            EstimatorState::Stateless => "stateless",
            EstimatorState::Previous { .. } => "previous",
            EstimatorState::AgedPreamble { .. } => "aged-preamble",
            EstimatorState::Kalman { .. } => "kalman",
            EstimatorState::Vvd { .. } => "vvd",
            EstimatorState::Fallback { .. } => "fallback",
        }
    }
}

/// Why an estimator rejected a state in
/// [`load_state`](crate::ChannelEstimator::load_state).
#[derive(Debug, Clone, PartialEq)]
pub enum StateError {
    /// The state's shape does not match the estimator.
    Kind {
        /// Shape the estimator expected.
        expected: &'static str,
        /// Shape the state actually had.
        found: &'static str,
    },
    /// The state describes a fitted estimator but this instance has not
    /// been fitted (`load_state` is only valid after `fit`).
    Unfitted {
        /// The estimator that is missing its fit.
        estimator: &'static str,
    },
    /// A dimension of the state disagrees with the fitted estimator.
    Dimension {
        /// What disagreed.
        context: String,
    },
    /// The checkpointed model key does not match the re-fitted model —
    /// the resumed workload trained a *different* model, so replay would
    /// not reproduce the checkpointed trajectory.
    ModelKey {
        /// Key the checkpoint recorded.
        expected: String,
        /// Key the re-fitted model has.
        found: String,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Kind { expected, found } => {
                write!(
                    f,
                    "estimator state kind mismatch: expected {expected}, found {found}"
                )
            }
            StateError::Unfitted { estimator } => {
                write!(
                    f,
                    "{estimator} estimator must be fitted before loading state"
                )
            }
            StateError::Dimension { context } => {
                write!(f, "estimator state dimension mismatch: {context}")
            }
            StateError::ModelKey { expected, found } => {
                write!(
                    f,
                    "VVD model key mismatch: checkpoint recorded {expected}, re-fit produced {found}"
                )
            }
        }
    }
}

impl Error for StateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_distinct() {
        let states = [
            EstimatorState::Stateless,
            EstimatorState::Previous {
                history: Vec::new(),
            },
            EstimatorState::AgedPreamble {
                history: Vec::new(),
            },
            EstimatorState::Kalman { taps: Vec::new() },
            EstimatorState::Vvd { key: None },
            EstimatorState::Fallback {
                primary: Box::new(EstimatorState::Stateless),
                secondary: Box::new(EstimatorState::Stateless),
            },
        ];
        let mut kinds: Vec<&str> = states.iter().map(|s| s.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), states.len());
    }

    #[test]
    fn errors_render_their_context() {
        let e = StateError::Kind {
            expected: "kalman",
            found: "previous",
        };
        assert!(e.to_string().contains("kalman"));
        assert!(e.to_string().contains("previous"));
        let d = StateError::Dimension {
            context: "7 taps vs 3".into(),
        };
        assert!(d.to_string().contains("7 taps vs 3"));
    }
}
