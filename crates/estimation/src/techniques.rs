//! The canonical list of channel estimation techniques compared in the
//! paper (Sec. 5).
//!
//! The enum is the single source of truth for technique names and for which
//! techniques appear in which figure; the evaluation harness in
//! `vvd-testbed` iterates over these values.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A channel estimation technique from the paper's comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technique {
    /// IEEE 802.15.4 standard decoding: no estimation, no equalization.
    StandardDecoding,
    /// Perfect channel estimation from the whole received signal
    /// (impractical baseline / ground truth).
    GroundTruth,
    /// LS estimate from the synchronisation header, only when the preamble
    /// is detected.
    PreambleBased,
    /// Preamble-based estimation with an always-detected preamble (genie).
    PreambleBasedGenie,
    /// Perfect estimate of the packet received 100 ms earlier.
    Previous100ms,
    /// Perfect estimate of the packet received 500 ms earlier.
    Previous500ms,
    /// Kalman filter over an AR(1) tap model.
    KalmanAr1,
    /// Kalman filter over an AR(5) tap model.
    KalmanAr5,
    /// Kalman filter over an AR(20) tap model.
    KalmanAr20,
    /// VVD predicting the current channel from the current depth image.
    VvdCurrent,
    /// VVD predicting the channel 33.3 ms into the future.
    VvdFuture33ms,
    /// VVD predicting the channel 100 ms into the future.
    VvdFuture100ms,
    /// Preamble-based when the preamble is detected, VVD-Current otherwise.
    PreambleVvdCombined,
    /// Preamble-based when the preamble is detected, Kalman AR(20) otherwise.
    PreambleKalmanCombined,
}

impl Technique {
    /// Every technique implemented in the reproduction.
    pub const ALL: [Technique; 14] = [
        Technique::StandardDecoding,
        Technique::GroundTruth,
        Technique::PreambleBased,
        Technique::PreambleBasedGenie,
        Technique::Previous100ms,
        Technique::Previous500ms,
        Technique::KalmanAr1,
        Technique::KalmanAr5,
        Technique::KalmanAr20,
        Technique::VvdCurrent,
        Technique::VvdFuture33ms,
        Technique::VvdFuture100ms,
        Technique::PreambleVvdCombined,
        Technique::PreambleKalmanCombined,
    ];

    /// The ten techniques shown in Figures 12–14, in the paper's plotting
    /// order (worst-to-best along the x axis).
    pub const FIGURE_12_ORDER: [Technique; 10] = [
        Technique::StandardDecoding,
        Technique::PreambleBased,
        Technique::Previous500ms,
        Technique::Previous100ms,
        Technique::KalmanAr20,
        Technique::VvdCurrent,
        Technique::PreambleKalmanCombined,
        Technique::PreambleVvdCombined,
        Technique::PreambleBasedGenie,
        Technique::GroundTruth,
    ];

    /// The VVD variants compared in Fig. 11a.
    pub const VVD_VARIANTS: [Technique; 3] = [
        Technique::VvdFuture100ms,
        Technique::VvdFuture33ms,
        Technique::VvdCurrent,
    ];

    /// The Kalman variants compared in Fig. 11b.
    pub const KALMAN_VARIANTS: [Technique; 3] = [
        Technique::KalmanAr1,
        Technique::KalmanAr5,
        Technique::KalmanAr20,
    ];

    /// `true` when the technique is blind, i.e. it never looks at the
    /// received signal it is decoding (Sec. 5.5, footnote 10).
    pub fn is_blind(&self) -> bool {
        matches!(
            self,
            Technique::Previous100ms
                | Technique::Previous500ms
                | Technique::KalmanAr1
                | Technique::KalmanAr5
                | Technique::KalmanAr20
                | Technique::VvdCurrent
                | Technique::VvdFuture33ms
                | Technique::VvdFuture100ms
        )
    }

    /// `true` when the technique requires the preamble of the current packet
    /// to be detected in order to produce an estimate.
    pub fn requires_preamble_detection(&self) -> bool {
        matches!(self, Technique::PreambleBased)
    }

    /// `true` when the technique uses camera images.
    pub fn uses_camera(&self) -> bool {
        matches!(
            self,
            Technique::VvdCurrent
                | Technique::VvdFuture33ms
                | Technique::VvdFuture100ms
                | Technique::PreambleVvdCombined
        )
    }

    /// The short label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Technique::StandardDecoding => "Standard Decoding",
            Technique::GroundTruth => "Ground Truth",
            Technique::PreambleBased => "Preamble Based",
            Technique::PreambleBasedGenie => "Preamble Based-Genie",
            Technique::Previous100ms => "100ms Previous",
            Technique::Previous500ms => "500ms Previous",
            Technique::KalmanAr1 => "Kalman AR(1)",
            Technique::KalmanAr5 => "Kalman AR(5)",
            Technique::KalmanAr20 => "Kalman AR(20)",
            Technique::VvdCurrent => "VVD-Current",
            Technique::VvdFuture33ms => "VVD-33.3ms Future",
            Technique::VvdFuture100ms => "VVD-100ms Future",
            Technique::PreambleVvdCombined => "Preamble-VVD Combined",
            Technique::PreambleKalmanCombined => "Preamble-Kalman Combined",
        }
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_techniques_are_distinct_and_labelled() {
        let labels: HashSet<&str> = Technique::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), Technique::ALL.len());
    }

    #[test]
    fn figure12_set_is_a_subset_of_all() {
        for t in Technique::FIGURE_12_ORDER {
            assert!(Technique::ALL.contains(&t));
        }
        assert_eq!(Technique::FIGURE_12_ORDER.len(), 10);
    }

    #[test]
    fn blind_classification_matches_the_paper() {
        assert!(Technique::VvdCurrent.is_blind());
        assert!(Technique::KalmanAr20.is_blind());
        assert!(Technique::Previous100ms.is_blind());
        assert!(!Technique::PreambleBased.is_blind());
        assert!(!Technique::GroundTruth.is_blind());
        assert!(!Technique::StandardDecoding.is_blind());
    }

    #[test]
    fn only_preamble_based_requires_detection() {
        let requiring: Vec<Technique> = Technique::ALL
            .iter()
            .copied()
            .filter(|t| t.requires_preamble_detection())
            .collect();
        assert_eq!(requiring, vec![Technique::PreambleBased]);
    }

    #[test]
    fn camera_usage_matches_vvd_family() {
        assert!(Technique::VvdCurrent.uses_camera());
        assert!(Technique::PreambleVvdCombined.uses_camera());
        assert!(!Technique::PreambleKalmanCombined.uses_camera());
        assert!(!Technique::GroundTruth.uses_camera());
    }

    #[test]
    fn display_uses_paper_labels() {
        assert_eq!(Technique::VvdFuture33ms.to_string(), "VVD-33.3ms Future");
        assert_eq!(
            Technique::PreambleBasedGenie.to_string(),
            "Preamble Based-Genie"
        );
    }
}
