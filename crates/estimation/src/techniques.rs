//! The canonical list of channel estimation techniques compared in the
//! paper (Sec. 5).
//!
//! The enum is the single source of truth for technique names and for which
//! techniques appear in which figure; the evaluation harness in
//! `vvd-testbed` iterates over these values.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A channel estimation technique from the paper's comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technique {
    /// IEEE 802.15.4 standard decoding: no estimation, no equalization.
    StandardDecoding,
    /// Perfect channel estimation from the whole received signal
    /// (impractical baseline / ground truth).
    GroundTruth,
    /// LS estimate from the synchronisation header, only when the preamble
    /// is detected.
    PreambleBased,
    /// Preamble-based estimation with an always-detected preamble (genie).
    PreambleBasedGenie,
    /// Perfect estimate of the packet received 100 ms earlier.
    Previous100ms,
    /// Perfect estimate of the packet received 500 ms earlier.
    Previous500ms,
    /// Kalman filter over an AR(1) tap model.
    KalmanAr1,
    /// Kalman filter over an AR(5) tap model.
    KalmanAr5,
    /// Kalman filter over an AR(20) tap model.
    KalmanAr20,
    /// VVD predicting the current channel from the current depth image.
    VvdCurrent,
    /// VVD predicting the channel 33.3 ms into the future.
    VvdFuture33ms,
    /// VVD predicting the channel 100 ms into the future.
    VvdFuture100ms,
    /// Preamble-based when the preamble is detected, VVD-Current otherwise.
    PreambleVvdCombined,
    /// Preamble-based when the preamble is detected, Kalman AR(20) otherwise.
    PreambleKalmanCombined,
}

impl Technique {
    /// Every technique implemented in the reproduction.
    pub const ALL: [Technique; 14] = [
        Technique::StandardDecoding,
        Technique::GroundTruth,
        Technique::PreambleBased,
        Technique::PreambleBasedGenie,
        Technique::Previous100ms,
        Technique::Previous500ms,
        Technique::KalmanAr1,
        Technique::KalmanAr5,
        Technique::KalmanAr20,
        Technique::VvdCurrent,
        Technique::VvdFuture33ms,
        Technique::VvdFuture100ms,
        Technique::PreambleVvdCombined,
        Technique::PreambleKalmanCombined,
    ];

    /// The ten techniques shown in Figures 12–14, in the paper's plotting
    /// order (worst-to-best along the x axis).
    pub const FIGURE_12_ORDER: [Technique; 10] = [
        Technique::StandardDecoding,
        Technique::PreambleBased,
        Technique::Previous500ms,
        Technique::Previous100ms,
        Technique::KalmanAr20,
        Technique::VvdCurrent,
        Technique::PreambleKalmanCombined,
        Technique::PreambleVvdCombined,
        Technique::PreambleBasedGenie,
        Technique::GroundTruth,
    ];

    /// The VVD variants compared in Fig. 11a.
    pub const VVD_VARIANTS: [Technique; 3] = [
        Technique::VvdFuture100ms,
        Technique::VvdFuture33ms,
        Technique::VvdCurrent,
    ];

    /// The Kalman variants compared in Fig. 11b.
    pub const KALMAN_VARIANTS: [Technique; 3] = [
        Technique::KalmanAr1,
        Technique::KalmanAr5,
        Technique::KalmanAr20,
    ];

    /// `true` when the technique is blind, i.e. it never looks at the
    /// received signal it is decoding (Sec. 5.5, footnote 10).
    pub fn is_blind(&self) -> bool {
        matches!(
            self,
            Technique::Previous100ms
                | Technique::Previous500ms
                | Technique::KalmanAr1
                | Technique::KalmanAr5
                | Technique::KalmanAr20
                | Technique::VvdCurrent
                | Technique::VvdFuture33ms
                | Technique::VvdFuture100ms
        )
    }

    /// `true` when the technique *cannot produce any estimate* without the
    /// preamble of the current packet being detected — a missed preamble is
    /// a lost packet.  This is only the pure preamble-based technique: the
    /// `Preamble-* Combined` techniques consume the detection outcome too,
    /// but fall back to a blind estimator instead of losing the packet (see
    /// [`Technique::consumes_preamble_detection`]), and the genie variant
    /// ignores detection by definition.
    pub fn requires_preamble_detection(&self) -> bool {
        matches!(self, Technique::PreambleBased)
    }

    /// `true` when the technique's per-packet behaviour depends on the
    /// preamble-detection outcome: the pure preamble-based technique (which
    /// loses the packet on a miss) and both `Preamble-* Combined`
    /// techniques (which switch to their fallback arm on a miss).
    pub fn consumes_preamble_detection(&self) -> bool {
        matches!(
            self,
            Technique::PreambleBased
                | Technique::PreambleVvdCombined
                | Technique::PreambleKalmanCombined
        )
    }

    /// `true` when the technique uses camera images.
    pub fn uses_camera(&self) -> bool {
        matches!(
            self,
            Technique::VvdCurrent
                | Technique::VvdFuture33ms
                | Technique::VvdFuture100ms
                | Technique::PreambleVvdCombined
        )
    }

    /// The canonical registry spec string of the technique (see
    /// `crate::registry` for the grammar).  Every spec string parses back
    /// to the technique via [`FromStr`](std::str::FromStr).
    pub fn spec_str(&self) -> &'static str {
        match self {
            Technique::StandardDecoding => "standard",
            Technique::GroundTruth => "ground-truth",
            Technique::PreambleBased => "preamble",
            Technique::PreambleBasedGenie => "preamble:genie",
            Technique::Previous100ms => "previous:100ms",
            Technique::Previous500ms => "previous:500ms",
            Technique::KalmanAr1 => "kalman:ar=1",
            Technique::KalmanAr5 => "kalman:ar=5",
            Technique::KalmanAr20 => "kalman:ar=20",
            Technique::VvdCurrent => "vvd:current",
            Technique::VvdFuture33ms => "vvd:future33ms",
            Technique::VvdFuture100ms => "vvd:future100ms",
            Technique::PreambleVvdCombined => "fallback:preamble,vvd:current",
            Technique::PreambleKalmanCombined => "fallback:preamble,kalman:ar=20",
        }
    }

    /// The short label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Technique::StandardDecoding => "Standard Decoding",
            Technique::GroundTruth => "Ground Truth",
            Technique::PreambleBased => "Preamble Based",
            Technique::PreambleBasedGenie => "Preamble Based-Genie",
            Technique::Previous100ms => "100ms Previous",
            Technique::Previous500ms => "500ms Previous",
            Technique::KalmanAr1 => "Kalman AR(1)",
            Technique::KalmanAr5 => "Kalman AR(5)",
            Technique::KalmanAr20 => "Kalman AR(20)",
            Technique::VvdCurrent => "VVD-Current",
            Technique::VvdFuture33ms => "VVD-33.3ms Future",
            Technique::VvdFuture100ms => "VVD-100ms Future",
            Technique::PreambleVvdCombined => "Preamble-VVD Combined",
            Technique::PreambleKalmanCombined => "Preamble-Kalman Combined",
        }
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// A string did not name a canonical paper technique.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTechniqueError {
    input: String,
}

impl fmt::Display for ParseTechniqueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`{}` is not a canonical technique; expected a paper label (e.g. \
             `Kalman AR(20)`) or a canonical spec string (e.g. `kalman:ar=20` \
             — arbitrary specs build through the EstimatorRegistry instead)",
            self.input
        )
    }
}

impl std::error::Error for ParseTechniqueError {}

impl std::str::FromStr for Technique {
    type Err = ParseTechniqueError;

    /// Parses a paper label ([`Technique::label`]) or a canonical spec
    /// string ([`Technique::spec_str`]); [`fmt::Display`] and
    /// [`Technique::spec_str`] both round-trip.  Spec strings that build a
    /// valid but non-canonical estimator (e.g. `kalman:ar=7`) are errors
    /// here — only the registry handles those.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        Technique::ALL
            .into_iter()
            .find(|t| s == t.label() || s == t.spec_str())
            .ok_or_else(|| ParseTechniqueError {
                input: s.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn all_techniques_are_distinct_and_labelled() {
        let labels: BTreeSet<&str> = Technique::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), Technique::ALL.len());
    }

    #[test]
    fn figure12_set_is_a_subset_of_all() {
        for t in Technique::FIGURE_12_ORDER {
            assert!(Technique::ALL.contains(&t));
        }
        assert_eq!(Technique::FIGURE_12_ORDER.len(), 10);
    }

    #[test]
    fn blind_classification_matches_the_paper() {
        assert!(Technique::VvdCurrent.is_blind());
        assert!(Technique::KalmanAr20.is_blind());
        assert!(Technique::Previous100ms.is_blind());
        assert!(!Technique::PreambleBased.is_blind());
        assert!(!Technique::GroundTruth.is_blind());
        assert!(!Technique::StandardDecoding.is_blind());
    }

    #[test]
    fn preamble_detection_classification_over_all_techniques() {
        // Table-driven: (technique, requires detection to produce any
        // estimate, consumes the detection outcome at all).
        let table = [
            (Technique::StandardDecoding, false, false),
            (Technique::GroundTruth, false, false),
            (Technique::PreambleBased, true, true),
            (Technique::PreambleBasedGenie, false, false),
            (Technique::Previous100ms, false, false),
            (Technique::Previous500ms, false, false),
            (Technique::KalmanAr1, false, false),
            (Technique::KalmanAr5, false, false),
            (Technique::KalmanAr20, false, false),
            (Technique::VvdCurrent, false, false),
            (Technique::VvdFuture33ms, false, false),
            (Technique::VvdFuture100ms, false, false),
            (Technique::PreambleVvdCombined, false, true),
            (Technique::PreambleKalmanCombined, false, true),
        ];
        assert_eq!(table.len(), Technique::ALL.len());
        for (technique, requires, consumes) in table {
            assert!(Technique::ALL.contains(&technique));
            assert_eq!(
                technique.requires_preamble_detection(),
                requires,
                "requires_preamble_detection({technique})"
            );
            assert_eq!(
                technique.consumes_preamble_detection(),
                consumes,
                "consumes_preamble_detection({technique})"
            );
            // Requiring detection implies consuming it.
            assert!(!requires || consumes);
        }
    }

    #[test]
    fn spec_strings_round_trip_for_every_technique() {
        for t in Technique::ALL {
            assert_eq!(t.spec_str().parse::<Technique>().unwrap(), t);
            assert_eq!(t.to_string().parse::<Technique>().unwrap(), t);
            assert_eq!(t.label().parse::<Technique>().unwrap(), t);
        }
        assert_eq!(
            "kalman:ar=20".parse::<Technique>().unwrap(),
            Technique::KalmanAr20
        );
        // Valid estimator specs that are not canonical techniques fail here.
        assert!("kalman:ar=7".parse::<Technique>().is_err());
        assert!("previous:1000ms".parse::<Technique>().is_err());
        assert!("gibberish".parse::<Technique>().is_err());
    }

    #[test]
    fn camera_usage_matches_vvd_family() {
        assert!(Technique::VvdCurrent.uses_camera());
        assert!(Technique::PreambleVvdCombined.uses_camera());
        assert!(!Technique::PreambleKalmanCombined.uses_camera());
        assert!(!Technique::GroundTruth.uses_camera());
    }

    #[test]
    fn display_uses_paper_labels() {
        assert_eq!(Technique::VvdFuture33ms.to_string(), "VVD-33.3ms Future");
        assert_eq!(
            Technique::PreambleBasedGenie.to_string(),
            "Preamble Based-Genie"
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// `Display` ⇄ `FromStr` and `spec_str` ⇄ `FromStr` round-trip
            /// for every technique, also with surrounding whitespace.
            #[test]
            fn parse_round_trips(
                index in 0usize..Technique::ALL.len(),
                pad_left in 0usize..3,
                pad_right in 0usize..3,
            ) {
                let t = Technique::ALL[index];
                for text in [t.spec_str().to_string(), t.to_string()] {
                    let padded =
                        format!("{}{}{}", " ".repeat(pad_left), text, " ".repeat(pad_right));
                    prop_assert_eq!(padded.parse::<Technique>().unwrap(), t);
                }
            }

            /// Arbitrary strings never panic the parser, and anything that
            /// parses must round-trip to a string it parses from.
            #[test]
            fn parser_is_total(
                bytes in proptest::collection::vec(any::<u8>(), 0..24),
            ) {
                let s = String::from_utf8_lossy(&bytes).into_owned();
                if let Ok(t) = s.parse::<Technique>() {
                    prop_assert_eq!(t.spec_str().parse::<Technique>().unwrap(), t);
                }
            }
        }
    }
}
