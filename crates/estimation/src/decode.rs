//! The shared decoding pipeline: estimate → phase-align → zero-force →
//! despread → FCS check.
//!
//! Section 5 of the paper stresses that "the only difference between the
//! compared techniques stems from the estimation part": every technique
//! (except standard decoding) pushes its channel estimate through the same
//! ZF equalization and despreading.  [`decode_with_estimate`] is that common
//! path.

use crate::ls::preamble_estimate;
use crate::phase::align_mean_phase;
use crate::zf::ZfEqualizer;
use serde::{Deserialize, Serialize};
use vvd_dsp::{Complex, FirFilter};
use vvd_phy::{DecodeOutcome, ModulatedFrame, Receiver};

/// Configuration of the equalization stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EqualizerConfig {
    /// Number of taps of the zero-forcing equalizer (`L` in Eq. 6).
    pub equalizer_taps: usize,
    /// Number of channel taps every estimate is expressed in (`N`, 11 in the
    /// paper).
    pub channel_taps: usize,
    /// Whether to align the mean phase of the supplied estimate to the
    /// received block via the preamble (Eq. 8, footnote 4).  Blind estimates
    /// need this because the per-packet crystal offset is not part of their
    /// prediction.
    pub align_phase: bool,
}

impl Default for EqualizerConfig {
    fn default() -> Self {
        EqualizerConfig {
            equalizer_taps: 21,
            channel_taps: 11,
            align_phase: true,
        }
    }
}

/// Decodes one packet using an externally supplied channel estimate.
///
/// `received` is the raw captured block (full convolution support).  If the
/// estimate is degenerate (all zeros — e.g. an untrained predictor) the
/// packet is counted as lost.
pub fn decode_with_estimate(
    receiver: &Receiver,
    tx: &ModulatedFrame,
    received: &[Complex],
    estimate: &FirFilter,
    cfg: &EqualizerConfig,
) -> DecodeOutcome {
    let reference = if cfg.align_phase {
        preamble_estimate(tx, received, estimate.len()).ok()
    } else {
        None
    };
    decode_with_reference(receiver, tx, received, estimate, reference.as_ref(), cfg)
}

/// Like [`decode_with_estimate`], but with the preamble-based alignment
/// reference supplied by the caller instead of being re-estimated from the
/// received block.
///
/// The streaming evaluation pipeline computes one preamble estimate per
/// packet and reuses it across every technique (and for the Eq.-9 MSE
/// bookkeeping), instead of refitting it inside each technique's decode.
/// Passing `None` while `cfg.align_phase` is set skips the alignment, which
/// mirrors an LS fit failure in [`decode_with_estimate`].
pub fn decode_with_reference(
    receiver: &Receiver,
    tx: &ModulatedFrame,
    received: &[Complex],
    estimate: &FirFilter,
    reference: Option<&FirFilter>,
    cfg: &EqualizerConfig,
) -> DecodeOutcome {
    let lost = || DecodeOutcome::lost(tx.psdu_chips().len(), tx.frame.psdu_symbols().len());

    if estimate.energy() == 0.0 {
        return lost();
    }

    // Mean phase alignment against a rough preamble-based estimate of the
    // current packet (always computable at the receiver since the SHR is
    // known a priori).
    let aligned = match (cfg.align_phase, reference) {
        (true, Some(reference)) => align_mean_phase(estimate, reference).0,
        _ => estimate.clone(),
    };

    let equalizer = match ZfEqualizer::design(&aligned, cfg.equalizer_taps) {
        Ok(eq) => eq,
        Err(_) => return lost(),
    };
    let equalized = equalizer.equalize(received, tx.full_waveform().len());
    receiver.decode_aligned(equalized.as_slice(), tx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vvd_channel::{apply_channel, ChannelRealization};
    use vvd_dsp::CVec;
    use vvd_phy::{modulate_frame, PhyConfig, PsduBuilder};

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    fn multipath_channel() -> FirFilter {
        let mut taps = vec![Complex::ZERO; 11];
        taps[5] = c(1.1e-3, 0.5e-3);
        taps[6] = c(0.5e-3, -0.4e-3);
        taps[7] = c(-0.2e-3, 0.15e-3);
        taps[3] = c(0.1e-3, 0.1e-3);
        FirFilter::from_taps(&taps)
    }

    fn setup(
        seed: u64,
        noise_std: f64,
        phase: f64,
    ) -> (PhyConfig, ModulatedFrame, CVec, FirFilter) {
        let cfg = PhyConfig::short_packets(24);
        let tx = modulate_frame(&cfg, &PsduBuilder::new(&cfg).build(7));
        let channel = multipath_channel();
        let realization = ChannelRealization {
            fir: channel.clone(),
            phase_offset: phase,
            noise_std,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let received = apply_channel(&tx.waveform, &realization, &mut rng);
        (cfg, tx, received, realization.effective_fir())
    }

    #[test]
    fn perfect_estimate_decodes_cleanly() {
        let (cfg, tx, received, effective) = setup(1, 0.0, 0.9);
        let receiver = Receiver::new(cfg);
        let out = decode_with_estimate(
            &receiver,
            &tx,
            received.as_slice(),
            &effective,
            &EqualizerConfig::default(),
        );
        assert!(out.crc_ok, "chip errors: {}", out.chip_errors);
        assert_eq!(out.chip_errors, 0);
    }

    #[test]
    fn standard_decoding_fails_where_equalization_succeeds() {
        // With this much multipath (relative tap ~0.45 of main) plus noise,
        // decoding without equalization produces chip errors while the
        // ZF-equalized path stays clean.
        let (cfg, tx, received, effective) = setup(3, 2.0e-5, 0.4);
        let receiver = Receiver::new(cfg);
        let standard = receiver.decode_standard(received.as_slice(), &tx);
        let equalized = decode_with_estimate(
            &receiver,
            &tx,
            received.as_slice(),
            &effective,
            &EqualizerConfig::default(),
        );
        assert!(
            equalized.chip_errors < standard.chip_errors,
            "equalized {} vs standard {}",
            equalized.chip_errors,
            standard.chip_errors
        );
    }

    #[test]
    fn stale_estimate_without_phase_alignment_is_worse() {
        // The estimate comes from "another packet" with a different crystal
        // phase; without Eq.-8 alignment the equalizer rotates the
        // constellation and chips break.
        let (cfg, tx, received, _) = setup(5, 0.0, 1.3);
        let receiver = Receiver::new(cfg);
        // Estimate with the *wrong* phase (e.g. from a previous packet).
        let stale = multipath_channel().rotated(Complex::cis(-0.8));
        let with_alignment = decode_with_estimate(
            &receiver,
            &tx,
            received.as_slice(),
            &stale,
            &EqualizerConfig::default(),
        );
        let without_alignment = decode_with_estimate(
            &receiver,
            &tx,
            received.as_slice(),
            &stale,
            &EqualizerConfig {
                align_phase: false,
                ..EqualizerConfig::default()
            },
        );
        assert!(with_alignment.chip_errors < without_alignment.chip_errors);
        assert!(with_alignment.crc_ok);
    }

    #[test]
    fn zero_estimate_counts_as_lost_packet() {
        let (cfg, tx, received, _) = setup(7, 0.0, 0.0);
        let receiver = Receiver::new(cfg);
        let zero = FirFilter::from_taps(&[Complex::ZERO; 11]);
        let out = decode_with_estimate(
            &receiver,
            &tx,
            received.as_slice(),
            &zero,
            &EqualizerConfig::default(),
        );
        assert!(out.is_packet_error());
        assert_eq!(out.chip_errors, out.chip_count);
    }

    #[test]
    fn noisy_channel_with_good_estimate_still_decodes() {
        let (cfg, tx, received, effective) = setup(11, 4.0e-5, -0.6);
        let receiver = Receiver::new(cfg);
        let out = decode_with_estimate(
            &receiver,
            &tx,
            received.as_slice(),
            &effective,
            &EqualizerConfig::default(),
        );
        // DSSS redundancy absorbs residual chip errors: the packet decodes.
        assert!(out.crc_ok, "chip errors {}", out.chip_errors);
    }
}
