//! Pluggable estimator registry and the spec-string grammar.
//!
//! The registry builds boxed
//! [`ChannelEstimator`](crate::ChannelEstimator)s from a [`Technique`] or
//! from a parsable *spec string*, so new evaluation scenarios (a new AR
//! order, a new staleness lag, a new fallback chain) need zero harness
//! edits:
//!
//! ```text
//! standard                      IEEE 802.15.4 decoding, no equalization
//! ground-truth                  perfect full-packet LS estimate
//! preamble                      SHR-based LS, gated on preamble detection
//! preamble:genie                SHR-based LS, always-detected preamble
//! previous:<N>ms                perfect estimate from N ms ago (N ≥ 100,
//!                               multiple of the 100 ms packet period)
//! kalman:ar=<p>                 Kalman filter over an AR(p) tap model
//! vvd:current                   VVD at the synchronised frame
//! vvd:future33ms                VVD predicting 33.3 ms ahead
//! vvd:future100ms               VVD predicting 100 ms ahead
//! fallback:<primary>,<spec>     primary when available, else <spec>
//! ```
//!
//! In `fallback` the primary spec must not contain a comma; the secondary
//! may be any spec, so chains nest to the right:
//! `fallback:preamble,fallback:kalman:ar=5,vvd:current`.
//!
//! Custom estimators register a factory under a new head name with
//! [`EstimatorRegistry::register`]; see `examples/custom_estimator.rs`.

use crate::estimator::{
    BoxedEstimator, Fallback, GroundTruth, Kalman, Preamble, Previous, Standard, Vvd,
};
use crate::techniques::Technique;
use std::collections::BTreeMap;
use std::fmt;
use vvd_core::VvdVariant;

/// Milliseconds between two packets (the paper transmits at 10 Hz).
pub const PACKET_PERIOD_MS: usize = 100;

/// A spec string failed to parse or referenced an unknown estimator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    spec: String,
    reason: String,
}

impl SpecError {
    /// Creates an error describing why `spec` was rejected (public so
    /// custom factories can report their own parse failures).
    pub fn new(spec: &str, reason: impl Into<String>) -> Self {
        SpecError {
            spec: spec.to_string(),
            reason: reason.into(),
        }
    }

    /// The offending spec string.
    pub fn spec(&self) -> &str {
        &self.spec
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid estimator spec `{}`: {}", self.spec, self.reason)
    }
}

impl std::error::Error for SpecError {}

/// A factory building an estimator from the argument part of a spec string
/// (everything after the first `:`; empty when there is none).
pub type EstimatorFactory =
    Box<dyn Fn(&EstimatorRegistry, &str) -> Result<BoxedEstimator, SpecError> + Send + Sync>;

/// Builds boxed channel estimators by name.
///
/// [`EstimatorRegistry::new`] pre-registers a factory per built-in
/// estimator family; [`EstimatorRegistry::register`] adds (or overrides)
/// one.
pub struct EstimatorRegistry {
    factories: BTreeMap<String, EstimatorFactory>,
}

impl EstimatorRegistry {
    /// A registry with every built-in estimator family registered.
    pub fn new() -> Self {
        let mut registry = EstimatorRegistry {
            factories: BTreeMap::new(),
        };
        registry.register("standard", |_, args| {
            expect_no_args("standard", args)?;
            Ok(Box::new(Standard))
        });
        registry.register("ground-truth", |_, args| {
            expect_no_args("ground-truth", args)?;
            Ok(Box::new(GroundTruth))
        });
        registry.register("preamble", |_, args| match args {
            "" => Ok(Box::new(Preamble::detected()) as BoxedEstimator),
            "genie" => Ok(Box::new(Preamble::genie())),
            other => Err(SpecError::new(
                &format!("preamble:{other}"),
                "expected `preamble` or `preamble:genie`",
            )),
        });
        registry.register("previous", |_, args| {
            let spec = format!("previous:{args}");
            let ms: usize = args
                .strip_suffix("ms")
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| SpecError::new(&spec, "expected `previous:<N>ms`"))?;
            if ms == 0 || !ms.is_multiple_of(PACKET_PERIOD_MS) {
                return Err(SpecError::new(
                    &spec,
                    format!("the lag must be a positive multiple of the {PACKET_PERIOD_MS} ms packet period"),
                ));
            }
            Ok(Box::new(Previous::packets(ms / PACKET_PERIOD_MS)))
        });
        registry.register("kalman", |_, args| {
            let spec = format!("kalman:{args}");
            let order: usize = args
                .strip_prefix("ar=")
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| SpecError::new(&spec, "expected `kalman:ar=<order>`"))?;
            if order == 0 {
                return Err(SpecError::new(&spec, "the AR order must be at least 1"));
            }
            Ok(Box::new(Kalman::ar(order)))
        });
        registry.register("vvd", |_, args| {
            let variant = match args {
                "current" => VvdVariant::Current,
                "future33ms" => VvdVariant::Future33ms,
                "future100ms" => VvdVariant::Future100ms,
                other => {
                    return Err(SpecError::new(
                        &format!("vvd:{other}"),
                        "expected `vvd:current`, `vvd:future33ms` or `vvd:future100ms`",
                    ))
                }
            };
            Ok(Box::new(Vvd::new(variant)))
        });
        registry.register("fallback", |registry, args| {
            let spec = format!("fallback:{args}");
            let (primary, secondary) = args.split_once(',').ok_or_else(|| {
                SpecError::new(&spec, "expected `fallback:<primary>,<secondary>`")
            })?;
            Ok(Box::new(Fallback::new(
                registry.build(primary)?,
                registry.build(secondary)?,
            )))
        });
        registry
    }

    /// Registers (or overrides) a factory under a head name.  The factory
    /// receives the registry itself (for recursive specs) and the argument
    /// part of the spec string.
    pub fn register<F>(&mut self, name: &str, factory: F)
    where
        F: Fn(&EstimatorRegistry, &str) -> Result<BoxedEstimator, SpecError>
            + Send
            + Sync
            + 'static,
    {
        self.factories.insert(name.to_string(), Box::new(factory));
    }

    /// The registered head names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.factories.keys().map(String::as_str).collect()
    }

    /// Builds an estimator from a spec string.
    pub fn build(&self, spec: &str) -> Result<BoxedEstimator, SpecError> {
        let spec = spec.trim();
        let (head, args) = match spec.split_once(':') {
            Some((head, args)) => (head, args),
            None => (spec, ""),
        };
        let factory = self.factories.get(head).ok_or_else(|| {
            SpecError::new(
                spec,
                format!(
                    "unknown estimator `{head}` (registered: {})",
                    self.names().join(", ")
                ),
            )
        })?;
        factory(self, args)
    }

    /// Builds the estimator of a canonical paper technique.
    pub fn technique(&self, technique: Technique) -> BoxedEstimator {
        self.build(technique.spec_str())
            .expect("canonical technique specs always parse")
    }
}

impl Default for EstimatorRegistry {
    fn default() -> Self {
        Self::new()
    }
}

fn expect_no_args(head: &str, args: &str) -> Result<(), SpecError> {
    if args.is_empty() {
        Ok(())
    } else {
        Err(SpecError::new(
            &format!("{head}:{args}"),
            format!("`{head}` takes no arguments"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{Estimate, EstimateRequest, FrameSource, PacketObservation};
    use vvd_dsp::{Complex, FirFilter};
    use vvd_vision::DepthImage;

    #[test]
    fn every_canonical_technique_builds() {
        let registry = EstimatorRegistry::new();
        for technique in Technique::ALL {
            let _ = registry.technique(technique);
        }
    }

    #[test]
    fn arbitrary_orders_and_lags_parse() {
        let registry = EstimatorRegistry::new();
        assert!(registry.build("kalman:ar=7").is_ok());
        assert!(registry.build("previous:1500ms").is_ok());
        assert!(registry.build("fallback:preamble,vvd:current").is_ok());
        // Right-nested fallback chains.
        assert!(registry
            .build("fallback:preamble,fallback:kalman:ar=5,vvd:current")
            .is_ok());
        // Whitespace around the spec is tolerated.
        assert!(registry.build("  standard  ").is_ok());
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        let registry = EstimatorRegistry::new();
        for bad in [
            "kalman",
            "kalman:ar=0",
            "kalman:ar=x",
            "previous:0ms",
            "previous:150ms",
            "previous:5",
            "vvd",
            "vvd:later",
            "fallback:preamble",
            "nonsense",
            "standard:loud",
            "preamble:maybe",
        ] {
            let err = match registry.build(bad) {
                Err(err) => err,
                Ok(_) => panic!("`{bad}` should be rejected"),
            };
            assert!(
                !err.to_string().is_empty() && !err.spec().is_empty(),
                "{bad} should produce a descriptive error"
            );
        }
        // Unknown names list the registered ones.
        let err = match registry.build("nonsense") {
            Err(err) => err,
            Ok(_) => panic!("`nonsense` should be rejected"),
        };
        assert!(err.to_string().contains("standard"));
    }

    #[test]
    fn custom_estimators_can_be_registered_and_composed() {
        struct Fixed(FirFilter);
        impl crate::estimator::ChannelEstimator for Fixed {
            fn estimate(&mut self, _req: &EstimateRequest<'_>) -> Estimate {
                Estimate::aligned(self.0.clone())
            }
        }

        let mut registry = EstimatorRegistry::new();
        registry.register("fixed", |_, args| {
            let gain: f64 = args
                .parse()
                .map_err(|_| SpecError::new(&format!("fixed:{args}"), "expected `fixed:<gain>`"))?;
            Ok(Box::new(Fixed(FirFilter::from_taps(&[Complex::new(
                gain, 0.0,
            )]))))
        });

        struct NoFrames;
        impl FrameSource for NoFrames {
            fn frame(&self, _index: usize) -> &DepthImage {
                unreachable!()
            }
            fn n_frames(&self) -> usize {
                0
            }
        }
        let perfect = FirFilter::from_taps(&[Complex::ONE]);
        let frames = NoFrames;
        let req = EstimateRequest {
            packet_index: 0,
            perfect_cir: &perfect,
            preamble_estimate: None,
            preamble_detected: false,
            frame_index: 0,
            frames: &frames,
        };

        // Standalone.
        let mut custom = registry.build("fixed:0.25").unwrap();
        match custom.estimate(&req) {
            Estimate::Ready { cir, .. } => assert_eq!(cir.taps()[0], Complex::new(0.25, 0.0)),
            other => panic!("unexpected estimate {other:?}"),
        }

        // Composed through the generic fallback combinator.
        let mut combined = registry.build("fallback:preamble,fixed:2.0").unwrap();
        combined.observe(&PacketObservation {
            perfect_cir: &perfect,
            aligned_cir: &perfect,
            preamble_estimate: None,
        });
        match combined.estimate(&req) {
            Estimate::Ready { cir, .. } => assert_eq!(cir.taps()[0], Complex::new(2.0, 0.0)),
            other => panic!("unexpected estimate {other:?}"),
        }
    }

    #[test]
    fn camera_dependence_classification_over_all_techniques() {
        // Table-driven: which built estimators depend on informative camera
        // frames (the VVD family and the combinator that can delegate to
        // it) — used by scenario sweeps to annotate estimator × scenario
        // cells on camera-blind scenarios (`rician:…`, `rayleigh:…`).
        let table = [
            (Technique::StandardDecoding, false),
            (Technique::GroundTruth, false),
            (Technique::PreambleBased, false),
            (Technique::PreambleBasedGenie, false),
            (Technique::Previous100ms, false),
            (Technique::Previous500ms, false),
            (Technique::KalmanAr1, false),
            (Technique::KalmanAr5, false),
            (Technique::KalmanAr20, false),
            (Technique::VvdCurrent, true),
            (Technique::VvdFuture33ms, true),
            (Technique::VvdFuture100ms, true),
            (Technique::PreambleVvdCombined, true),
            (Technique::PreambleKalmanCombined, false),
        ];
        assert_eq!(table.len(), Technique::ALL.len());
        let registry = EstimatorRegistry::new();
        for (technique, uses_camera) in table {
            assert!(Technique::ALL.contains(&technique));
            assert_eq!(
                registry.technique(technique).uses_camera(),
                uses_camera,
                "uses_camera({technique})"
            );
        }
        // Nesting propagates through fallback chains.
        assert!(registry
            .build("fallback:preamble,fallback:kalman:ar=5,vvd:current")
            .unwrap()
            .uses_camera());
        assert!(!registry
            .build("fallback:preamble,kalman:ar=5")
            .unwrap()
            .uses_camera());
    }

    #[test]
    fn registered_names_are_listed() {
        let registry = EstimatorRegistry::new();
        let names = registry.names();
        for expected in [
            "standard",
            "ground-truth",
            "preamble",
            "previous",
            "kalman",
            "vvd",
            "fallback",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }
}
