//! The first-class channel-estimator API.
//!
//! Section 5 of the paper compares fourteen techniques that differ *only* in
//! where the channel estimate comes from; everything downstream (phase
//! alignment, ZF equalization, despreading, metrics) is shared.  This module
//! captures that contract as one trait, [`ChannelEstimator`]: a stateful,
//! streaming, per-packet estimator that is
//!
//! 1. fitted once on the training sets ([`ChannelEstimator::fit`]),
//! 2. asked for an [`Estimate`] before each test packet is decoded
//!    ([`ChannelEstimator::estimate`]), and
//! 3. fed the packet's ground-truth observation afterwards
//!    ([`ChannelEstimator::observe`]) — the "semi-blind" operation of
//!    Sec. 5.3 in which the estimate for packet `k` never looks at packet
//!    `k` itself.
//!
//! Every paper technique is implemented as an estimator here ([`Standard`],
//! [`GroundTruth`], [`Preamble`], [`Previous`], [`Kalman`] for any AR order,
//! [`Vvd`] for any prediction horizon, and the generic [`Fallback`]
//! combinator that subsumes the paper's two `Preamble-* Combined`
//! techniques).  The evaluation harness in `vvd-testbed` drives boxed
//! estimators through one generic streaming pipeline; new techniques plug in
//! through the [`crate::registry::EstimatorRegistry`] without harness edits.
//!
//! # State lifecycle
//!
//! An estimator instance is single-use: `fit` is called exactly once before
//! the test set is streamed, `observe` is called once per test packet in
//! transmission order (including warm-up packets that are never scored), and
//! `estimate` may be skipped for packets the harness does not score.  Two
//! estimators never share *mutable* state — when two techniques need the
//! same expensive artefact (a trained VVD network), the [`VvdModelPool`]
//! trains it once through a content-addressed [`ModelCache`] and hands each
//! estimator an [`std::sync::Arc`]-shared reference to the immutable
//! trained weights (prediction takes `&self`, so sharing is safe; any
//! per-estimator mutable state stays in the estimator itself).

use crate::cache::{ModelCache, ModelCacheStats};
use crate::kalman::KalmanChannelEstimator;
use crate::state::{EstimatorState, StateError};
use std::cell::RefCell;
use std::collections::VecDeque;
use vvd_core::{ModelKey, VvdConfig, VvdDataset, VvdModel, VvdTrainingReport, VvdVariant};
use vvd_dsp::FirFilter;
use vvd_vision::DepthImage;

/// A boxed, heap-allocated channel estimator (the currency of the registry
/// and of the streaming evaluation pipeline).
pub type BoxedEstimator = Box<dyn ChannelEstimator>;

/// Provides the depth frames of the set being streamed, by frame index.
///
/// The evaluation harness implements this for its measurement sets; the
/// indirection keeps `vvd-estimation` independent of how campaigns store
/// frames.
pub trait FrameSource {
    /// The preprocessed depth image of the frame with the given index.
    fn frame(&self, index: usize) -> &DepthImage;
    /// Number of frames available.
    fn n_frames(&self) -> usize;
}

impl FrameSource for [DepthImage] {
    fn frame(&self, index: usize) -> &DepthImage {
        &self[index]
    }
    fn n_frames(&self) -> usize {
        self.len()
    }
}

/// Builds the image → CIR datasets a [`VvdModelPool`] trains on.
///
/// Implemented by the harness (which owns the campaign data); the pool calls
/// it at most once per [`VvdVariant`].
pub trait VvdDatasetSource: Sync {
    /// Returns the `(training, validation)` datasets for the variant.
    fn datasets(&self, variant: VvdVariant) -> (VvdDataset, VvdDataset);
}

/// Lazily trains [`VvdModel`]s through a content-addressed [`ModelCache`].
///
/// Estimators request models during [`ChannelEstimator::fit`].  Each
/// request builds the variant's datasets, digests them into a
/// [`ModelKey`], and asks the cache: the first request for a given
/// training provenance trains (deterministically, from the config seed),
/// every later request — from another estimator, another age of an aging
/// sweep, or another cell of a scenario grid sharing the same training
/// data — is a cache hit handing back the `Arc`-shared trained weights.
///
/// By default each pool owns a private cache (the historical
/// train-once-per-variant behaviour); [`VvdModelPool::with_cache`] shares
/// one cache across pools, which is how sweeps reuse trainings across grid
/// cells.  Training reports are recorded only when a training actually
/// ran, in training order.
pub struct VvdModelPool<'a> {
    config: &'a VvdConfig,
    source: &'a dyn VvdDatasetSource,
    owned_cache: Option<ModelCache>,
    shared_cache: Option<&'a ModelCache>,
    /// Variant → key memo: a pool's dataset source is fixed for its
    /// lifetime, so the (dataset build + content digest) cost is paid once
    /// per variant and repeat requests go straight to the cache lookup.
    keys: RefCell<Vec<(VvdVariant, ModelKey)>>,
    reports: RefCell<Vec<VvdTrainingReport>>,
}

impl<'a> VvdModelPool<'a> {
    /// Creates a pool over a dataset source with a private model cache.
    pub fn new(config: &'a VvdConfig, source: &'a dyn VvdDatasetSource) -> Self {
        VvdModelPool {
            config,
            source,
            owned_cache: Some(ModelCache::new()),
            shared_cache: None,
            keys: RefCell::new(Vec::new()),
            reports: RefCell::new(Vec::new()),
        }
    }

    /// Creates a pool that resolves models through a shared cache —
    /// trainings with identical provenance are shared across every pool
    /// (and thread) using the same cache.
    pub fn with_cache(
        config: &'a VvdConfig,
        source: &'a dyn VvdDatasetSource,
        cache: &'a ModelCache,
    ) -> Self {
        VvdModelPool {
            config,
            source,
            owned_cache: None,
            shared_cache: Some(cache),
            keys: RefCell::new(Vec::new()),
            reports: RefCell::new(Vec::new()),
        }
    }

    fn cache(&self) -> &ModelCache {
        self.shared_cache
            .unwrap_or_else(|| self.owned_cache.as_ref().expect("pool always has a cache"))
    }

    /// Returns the model for the variant, training it when its provenance
    /// has not been seen before (by this pool's cache).
    ///
    /// The first request per variant builds the datasets and digests their
    /// content into the [`ModelKey`]; repeat requests reuse the memoized
    /// key, so a cache hit costs a map lookup and an `Arc` clone (the
    /// datasets are rebuilt only if the cache has to train again, e.g.
    /// after an eviction).
    ///
    /// # Panics
    /// Panics if the dataset source produces an empty training set
    /// (mirroring [`VvdModel::train`]).
    pub fn model(&self, variant: VvdVariant) -> VvdModel {
        let memoized = self
            .keys
            .borrow()
            .iter()
            .find(|(v, _)| *v == variant)
            .map(|(_, k)| *k);
        let (model, report) = match memoized {
            Some(key) => self.cache().get_or_train(key, || {
                let (train, validation) = self.source.datasets(variant);
                VvdModel::train(variant, self.config, &train, &validation)
            }),
            None => {
                let (train, validation) = self.source.datasets(variant);
                let key = ModelKey::for_training(variant, self.config, &train, &validation);
                self.keys.borrow_mut().push((variant, key));
                self.cache().get_or_train(key, || {
                    VvdModel::train(variant, self.config, &train, &validation)
                })
            }
        };
        if let Some(report) = report {
            self.reports.borrow_mut().push(report);
        }
        model
    }

    /// Training reports of every training this pool actually ran, in
    /// training order (cache hits run no training and add no report).
    pub fn reports(&self) -> Vec<VvdTrainingReport> {
        self.reports.borrow().clone()
    }

    /// Usage counters of the backing cache.
    pub fn cache_stats(&self) -> ModelCacheStats {
        self.cache().stats()
    }
}

/// Everything an estimator may consume while fitting on the training sets.
pub struct TrainingContext<'a> {
    training_cirs: &'a [FirFilter],
    vvd: Option<&'a VvdModelPool<'a>>,
}

impl<'a> TrainingContext<'a> {
    /// A context over the chronological sequence of (phase-aligned) perfect
    /// channel estimates of the training sets.
    pub fn new(training_cirs: &'a [FirFilter]) -> Self {
        TrainingContext {
            training_cirs,
            vvd: None,
        }
    }

    /// Attaches a VVD model pool (required by [`Vvd`] estimators).
    pub fn with_vvd(mut self, pool: &'a VvdModelPool<'a>) -> Self {
        self.vvd = Some(pool);
        self
    }

    /// The chronological training CIR sequence.
    pub fn training_cirs(&self) -> &'a [FirFilter] {
        self.training_cirs
    }

    /// The VVD model pool.
    ///
    /// # Panics
    /// Panics when the harness did not attach a pool — a VVD estimator
    /// cannot train without one.
    pub fn vvd(&self) -> &'a VvdModelPool<'a> {
        self.vvd.expect(
            "this estimator needs a VVD model pool, attach one with TrainingContext::with_vvd",
        )
    }
}

/// Ground-truth information about a packet that has just been processed,
/// fed to estimators after decoding (semi-blind operation: the estimate for
/// packet `k` is formed from packets `0..k` only).
pub struct PacketObservation<'a> {
    /// The packet's perfect (full-packet LS) estimate, including its crystal
    /// phase offset.
    pub perfect_cir: &'a FirFilter,
    /// The perfect estimate with the crystal phase removed — the channel
    /// state history that time-series predictors track.
    pub aligned_cir: &'a FirFilter,
    /// The packet's own preamble-based estimate.  Only populated when the
    /// estimator opted in via
    /// [`ChannelEstimator::wants_preamble_observations`]; `None` also when
    /// the LS fit failed.
    pub preamble_estimate: Option<&'a FirFilter>,
}

/// Everything an estimator may look at when estimating the channel of the
/// packet about to be decoded.
pub struct EstimateRequest<'a> {
    /// Index of the packet within the test set.
    pub packet_index: usize,
    /// The packet's perfect estimate (only the impractical [`GroundTruth`]
    /// baseline reads this).
    pub perfect_cir: &'a FirFilter,
    /// LS estimate from the packet's synchronisation header, when the fit
    /// succeeded.
    pub preamble_estimate: Option<&'a FirFilter>,
    /// Whether the preamble correlation exceeded the detection threshold.
    pub preamble_detected: bool,
    /// Index of the camera frame synchronised with this packet.
    pub frame_index: usize,
    /// Depth frames of the test set.
    pub frames: &'a dyn FrameSource,
}

/// The outcome of [`ChannelEstimator::estimate`] for one packet: the tap
/// vector plus the equalizer policy and the availability of the estimate.
#[derive(Debug, Clone, PartialEq)]
pub enum Estimate {
    /// Decode with the plain IEEE 802.15.4 receiver: no estimate, no
    /// equalization (the paper's "standard decoding" baseline).
    Bypass,
    /// No estimate is available for this packet (insufficient history, no
    /// synchronised frame, …); the packet is not scored for this estimator.
    Skip,
    /// The packet could not be received at all (e.g. its preamble was not
    /// detected): it is scored as a full loss.
    Lost,
    /// A channel estimate for the shared align → equalize → despread
    /// pipeline.
    Ready {
        /// The FIR channel estimate.
        cir: FirFilter,
        /// Whether the Eq.-8 mean-phase alignment should run before
        /// equalization.  Blind estimates need it (their prediction cannot
        /// know the packet's crystal phase); estimates derived from the
        /// current packet itself must skip it.  The harness combines this
        /// with its equalizer configuration: alignment runs only when both
        /// agree.
        align_phase: bool,
    },
}

/// A VVD forward pass an estimator would run for the packet about to be
/// decoded, surfaced through [`ChannelEstimator::vvd_plan`] so that serving
/// layers can coalesce same-model plans from *many* concurrent estimator
/// instances into one [`VvdModel::predict_batch`] call.
///
/// The model is `Arc`-shared (cloning is a refcount bump) and carries its
/// training-provenance [`ModelKey`] — the batch grouping key: plans whose
/// models share a key are interchangeable, since equal provenance implies
/// bit-identical weights.
pub struct VvdInferencePlan {
    /// The trained model the estimator would run.
    pub model: VvdModel,
    /// Index of the input frame in the request's
    /// [`frames`](EstimateRequest::frames) source, with the estimator's lag
    /// already applied.
    pub frame_index: usize,
}

impl Estimate {
    /// Convenience constructor for an estimate that wants phase alignment.
    pub fn aligned(cir: FirFilter) -> Self {
        Estimate::Ready {
            cir,
            align_phase: true,
        }
    }

    /// Convenience constructor for an estimate that already carries the
    /// packet's phase.
    pub fn phased(cir: FirFilter) -> Self {
        Estimate::Ready {
            cir,
            align_phase: false,
        }
    }
}

/// A stateful, streaming, per-packet channel estimator — the uniform
/// interface every technique of the paper's comparison implements.
///
/// See the [module documentation](self) for the state lifecycle contract.
pub trait ChannelEstimator: Send {
    /// Fits the estimator on the training sets.  Called exactly once,
    /// before any `observe`/`estimate` call.  The default is a no-op for
    /// estimators that need no training.
    fn fit(&mut self, ctx: &TrainingContext<'_>) {
        let _ = ctx;
    }

    /// Feeds the ground truth of the packet that was just processed.
    /// Called once per test packet in transmission order, after
    /// [`ChannelEstimator::estimate`] (when it ran) for the same packet.
    /// The default is a no-op for stateless estimators.
    fn observe(&mut self, obs: &PacketObservation<'_>) {
        let _ = obs;
    }

    /// Produces the channel estimate for the packet about to be decoded.
    /// May be skipped by the harness for packets that are not scored
    /// (warm-up), so implementations must keep their estimation state in
    /// [`ChannelEstimator::observe`] (internal scratch buffers are fine
    /// here).
    fn estimate(&mut self, req: &EstimateRequest<'_>) -> Estimate;

    /// `true` when [`PacketObservation::preamble_estimate`] must be
    /// populated (it costs a waveform regeneration + LS fit per packet, so
    /// it is opt-in).
    fn wants_preamble_observations(&self) -> bool {
        false
    }

    /// `true` when [`estimate`](ChannelEstimator::estimate) for this
    /// request would *defer* — return [`Estimate::Skip`] or
    /// [`Estimate::Lost`] instead of producing an estimate or decoding.
    ///
    /// A pure lookahead (no state changes) that combinators use to plan
    /// batched work only for the arm that will actually run: a fallback
    /// whose primary will produce an estimate must not pay for its
    /// secondary's NN forward pass.  Implementations must answer exactly
    /// what `estimate` would do for the same request and state; the
    /// conservative default (`false` — "I will produce") only ever costs
    /// missed batching opportunities, never correctness, because an arm
    /// that receives no prediction computes inline.
    fn would_defer(&self, req: &EstimateRequest<'_>) -> bool {
        let _ = req;
        false
    }

    /// The VVD forward pass this estimator would run inside
    /// [`estimate`](ChannelEstimator::estimate) for this packet, if any.
    ///
    /// This is the *batched-inference hook*: a serving layer calls it for
    /// every concurrent session before decoding a tick's packets, groups
    /// the returned plans by the model's content key, runs one
    /// [`VvdModel::predict_batch`] per group, and hands each estimator its
    /// prediction back through
    /// [`estimate_with_vvd`](ChannelEstimator::estimate_with_vvd) —
    /// amortising the NN forward pass that dominates per-packet cost.
    /// `predict_batch` is bit-identical to per-image prediction, so the
    /// batched path produces exactly the estimates the unbatched one would.
    ///
    /// Must be pure (no state changes) and consistent with `estimate`: a
    /// returned plan describes exactly the prediction `estimate` would
    /// compute itself.  The default (for estimators that never run a VVD
    /// network) is `None`.  Combinators expose at most the plan of one arm
    /// and are responsible for routing the prediction back to that arm.
    fn vvd_plan(&self, req: &EstimateRequest<'_>) -> Option<VvdInferencePlan> {
        let _ = req;
        None
    }

    /// [`estimate`](ChannelEstimator::estimate) with an externally computed
    /// VVD prediction — the output of the forward pass this estimator
    /// planned via [`vvd_plan`](ChannelEstimator::vvd_plan) for the *same*
    /// request.
    ///
    /// Passing `Some(prediction)` is only valid when `vvd_plan` returned a
    /// plan for this request and `prediction` is that plan's model output;
    /// with `None` (or for estimators without a plan) this is exactly
    /// `estimate`.
    fn estimate_with_vvd(
        &mut self,
        req: &EstimateRequest<'_>,
        prediction: Option<&FirFilter>,
    ) -> Estimate {
        let _ = prediction;
        self.estimate(req)
    }

    /// Exports the estimator's *streaming* state — everything `observe`
    /// has accumulated since `fit` — as a serializable
    /// [`EstimatorState`] tree.
    ///
    /// Fit products (AR models, trained network weights) are deliberately
    /// excluded: they are deterministic functions of the training data and
    /// are rebuilt by re-fitting on resume (VVD weights through the shared
    /// [`ModelCache`], whose [`ModelKey`] the state records as a
    /// provenance pin).  The default, for estimators with no streaming
    /// state, is [`EstimatorState::Stateless`].
    fn save_state(&self) -> EstimatorState {
        EstimatorState::Stateless
    }

    /// Restores previously saved streaming state into this estimator.
    ///
    /// Only valid on an estimator that has been fitted the same way as the
    /// one the state was saved from (same spec, same training data) — the
    /// checkpoint/resume contract of the serving layer.  Loading validates
    /// the state's shape against this instance and leaves the estimator
    /// untouched on error.
    ///
    /// # Errors
    /// [`StateError::Kind`] on a shape mismatch, plus the estimator's own
    /// dimension/provenance checks.
    fn load_state(&mut self, state: &EstimatorState) -> Result<(), StateError> {
        match state {
            EstimatorState::Stateless => Ok(()),
            other => Err(StateError::Kind {
                expected: "stateless",
                found: other.kind(),
            }),
        }
    }

    /// `true` when the *quality* of this estimator's estimates depends on
    /// the camera frames carrying information about the channel (the
    /// VVD family, and combinators that can delegate to it).
    ///
    /// Estimate *availability* is unaffected — a VVD estimator always
    /// produces an estimate when a frame exists — but on scenarios whose
    /// channel dynamics have no visible cause (`rician:…`, `rayleigh:…`,
    /// where `ChannelScenario::begin_set` returns empty blocker snapshots
    /// and the camera watches a static room) a camera-based estimator can
    /// at best learn the mean channel.  Scenario sweeps use this flag to
    /// annotate such estimator × scenario cells; it changes no decoding
    /// behaviour.
    fn uses_camera(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// Built-in estimators
// ---------------------------------------------------------------------------

/// IEEE 802.15.4 standard decoding: no estimation, no equalization.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl ChannelEstimator for Standard {
    fn estimate(&mut self, _req: &EstimateRequest<'_>) -> Estimate {
        Estimate::Bypass
    }
}

/// Perfect channel estimation from the whole received packet (impractical
/// upper baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct GroundTruth;

impl ChannelEstimator for GroundTruth {
    fn estimate(&mut self, req: &EstimateRequest<'_>) -> Estimate {
        Estimate::phased(req.perfect_cir.clone())
    }
}

/// LS estimation from the synchronisation header of the current packet.
///
/// The practical variant ([`Preamble::detected`]) only produces an estimate
/// when the preamble was actually detected — a missed preamble is a lost
/// packet.  The genie variant ([`Preamble::genie`]) assumes an
/// always-detected preamble.
#[derive(Debug, Clone, Copy)]
pub struct Preamble {
    genie: bool,
}

impl Preamble {
    /// Preamble-based estimation gated on real preamble detection.
    pub fn detected() -> Self {
        Preamble { genie: false }
    }

    /// Preamble-based estimation with an always-detected preamble.
    pub fn genie() -> Self {
        Preamble { genie: true }
    }
}

impl ChannelEstimator for Preamble {
    fn would_defer(&self, req: &EstimateRequest<'_>) -> bool {
        if self.genie {
            req.preamble_estimate.is_none()
        } else {
            !req.preamble_detected || req.preamble_estimate.is_none()
        }
    }

    fn estimate(&mut self, req: &EstimateRequest<'_>) -> Estimate {
        if self.genie {
            match req.preamble_estimate {
                Some(est) => Estimate::phased(est.clone()),
                None => Estimate::Skip,
            }
        } else if !req.preamble_detected {
            Estimate::Lost
        } else {
            match req.preamble_estimate {
                Some(est) => Estimate::phased(est.clone()),
                None => Estimate::Lost,
            }
        }
    }
}

/// The perfect estimate of the packet received `lag` packets earlier (the
/// paper's "100 ms previous" / "500 ms previous" baselines at one packet
/// per 100 ms).
#[derive(Debug, Clone)]
pub struct Previous {
    lag: usize,
    history: VecDeque<FirFilter>,
}

impl Previous {
    /// A stale-estimate baseline lagging by the given number of packets.
    ///
    /// # Panics
    /// Panics when `lag` is zero (that would be the ground truth).
    pub fn packets(lag: usize) -> Self {
        assert!(
            lag >= 1,
            "Previous estimator needs a lag of at least one packet"
        );
        Previous {
            lag,
            history: VecDeque::with_capacity(lag),
        }
    }

    /// The lag in packets.
    pub fn lag(&self) -> usize {
        self.lag
    }
}

impl ChannelEstimator for Previous {
    fn would_defer(&self, _req: &EstimateRequest<'_>) -> bool {
        self.history.len() < self.lag
    }

    fn observe(&mut self, obs: &PacketObservation<'_>) {
        self.history.push_back(obs.perfect_cir.clone());
        if self.history.len() > self.lag {
            self.history.pop_front();
        }
    }

    fn estimate(&mut self, _req: &EstimateRequest<'_>) -> Estimate {
        if self.history.len() < self.lag {
            return Estimate::Skip;
        }
        Estimate::aligned(self.history.front().expect("non-empty history").clone())
    }

    fn save_state(&self) -> EstimatorState {
        EstimatorState::Previous {
            history: self.history.iter().cloned().collect(),
        }
    }

    fn load_state(&mut self, state: &EstimatorState) -> Result<(), StateError> {
        match state {
            EstimatorState::Previous { history } => {
                if history.len() > self.lag {
                    return Err(StateError::Dimension {
                        context: format!(
                            "Previous history length {} exceeds lag {}",
                            history.len(),
                            self.lag
                        ),
                    });
                }
                self.history = history.iter().cloned().collect();
                Ok(())
            }
            other => Err(StateError::Kind {
                expected: "previous",
                found: other.kind(),
            }),
        }
    }
}

/// Kalman filtering over an AR(p) tap model of *any* order (the paper's
/// appendix baselines use p ∈ {1, 5, 20}).
#[derive(Debug, Clone)]
pub struct Kalman {
    order: usize,
    filter: Option<KalmanChannelEstimator>,
}

impl Kalman {
    /// A Kalman estimator with the given AR model order.
    ///
    /// # Panics
    /// Panics when `order` is zero.
    pub fn ar(order: usize) -> Self {
        assert!(order >= 1, "AR order must be at least 1");
        Kalman {
            order,
            filter: None,
        }
    }

    /// The AR model order.
    pub fn order(&self) -> usize {
        self.order
    }

    fn filter(&self) -> &KalmanChannelEstimator {
        self.filter
            .as_ref()
            .expect("Kalman estimator used before fit()")
    }
}

impl ChannelEstimator for Kalman {
    fn fit(&mut self, ctx: &TrainingContext<'_>) {
        self.filter = Some(KalmanChannelEstimator::fit(ctx.training_cirs(), self.order));
    }

    fn observe(&mut self, obs: &PacketObservation<'_>) {
        self.filter
            .as_mut()
            .expect("Kalman estimator used before fit()")
            .observe(obs.aligned_cir);
    }

    fn estimate(&mut self, _req: &EstimateRequest<'_>) -> Estimate {
        Estimate::aligned(self.filter().predicted_cir())
    }

    fn save_state(&self) -> EstimatorState {
        match &self.filter {
            Some(filter) => EstimatorState::Kalman {
                taps: filter.export_states(),
            },
            None => EstimatorState::Stateless,
        }
    }

    fn load_state(&mut self, state: &EstimatorState) -> Result<(), StateError> {
        match (state, self.filter.as_mut()) {
            (EstimatorState::Kalman { taps }, Some(filter)) => filter.import_states(taps),
            (EstimatorState::Kalman { .. }, None) => Err(StateError::Unfitted {
                estimator: "Kalman",
            }),
            (EstimatorState::Stateless, None) => Ok(()),
            (other, _) => Err(StateError::Kind {
                expected: "kalman",
                found: other.kind(),
            }),
        }
    }
}

/// VVD: blind estimation from the depth frame synchronised with the packet,
/// for any prediction horizon, optionally further aged by a number of
/// camera frames (the Figs. 16–17 aging sweeps).
pub struct Vvd {
    variant: VvdVariant,
    extra_lag_frames: usize,
    model: Option<VvdModel>,
}

impl Vvd {
    /// A VVD estimator of the given prediction-horizon variant.
    pub fn new(variant: VvdVariant) -> Self {
        Vvd {
            variant,
            extra_lag_frames: 0,
            model: None,
        }
    }

    /// A VVD estimator whose input frame is additionally `extra_lag_frames`
    /// camera frames older than the variant's nominal horizon.
    pub fn aged(variant: VvdVariant, extra_lag_frames: usize) -> Self {
        Vvd {
            variant,
            extra_lag_frames,
            model: None,
        }
    }

    /// The prediction-horizon variant.
    pub fn variant(&self) -> VvdVariant {
        self.variant
    }

    fn lag_frames(&self) -> usize {
        self.variant.image_lag_frames() + self.extra_lag_frames
    }
}

impl ChannelEstimator for Vvd {
    fn fit(&mut self, ctx: &TrainingContext<'_>) {
        self.model = Some(ctx.vvd().model(self.variant));
    }

    fn estimate(&mut self, req: &EstimateRequest<'_>) -> Estimate {
        let lag = self.lag_frames();
        let model = self
            .model
            .as_ref()
            .expect("VVD estimator used before fit()");
        if req.frame_index < lag {
            return Estimate::Skip;
        }
        let image = req.frames.frame(req.frame_index - lag);
        Estimate::aligned(model.predict_cir(image))
    }

    fn would_defer(&self, req: &EstimateRequest<'_>) -> bool {
        req.frame_index < self.lag_frames()
    }

    fn vvd_plan(&self, req: &EstimateRequest<'_>) -> Option<VvdInferencePlan> {
        let lag = self.lag_frames();
        let model = self
            .model
            .as_ref()
            .expect("VVD estimator used before fit()");
        if req.frame_index < lag {
            return None;
        }
        Some(VvdInferencePlan {
            model: model.clone(),
            frame_index: req.frame_index - lag,
        })
    }

    fn estimate_with_vvd(
        &mut self,
        req: &EstimateRequest<'_>,
        prediction: Option<&FirFilter>,
    ) -> Estimate {
        match prediction {
            // The batched forward pass already ran; its output is exactly
            // what `estimate` would have computed (predict_batch is
            // bit-identical to per-image prediction).
            Some(cir) => Estimate::aligned(cir.clone()),
            None => self.estimate(req),
        }
    }

    fn uses_camera(&self) -> bool {
        true
    }

    fn save_state(&self) -> EstimatorState {
        EstimatorState::Vvd {
            key: self.model.as_ref().map(|m| m.key()),
        }
    }

    fn load_state(&mut self, state: &EstimatorState) -> Result<(), StateError> {
        let key_hex = |key: &Option<ModelKey>| match key {
            Some(k) => k.to_hex(),
            None => "unfitted".to_string(),
        };
        match state {
            EstimatorState::Vvd { key } => {
                // The weights already rehydrated through the model cache
                // when the resumed workload re-fitted; all that is left is
                // to pin the provenance: a different key means replay
                // would run a *different* network than the checkpoint saw.
                let current = self.model.as_ref().map(|m| m.key());
                if *key != current {
                    return Err(StateError::ModelKey {
                        expected: key_hex(key),
                        found: key_hex(&current),
                    });
                }
                Ok(())
            }
            other => Err(StateError::Kind {
                expected: "vvd",
                found: other.kind(),
            }),
        }
    }
}

/// Uses the primary estimator when it produces an estimate and falls back
/// to the secondary otherwise — the generic combinator behind the paper's
/// `Preamble-VVD Combined` and `Preamble-Kalman Combined` techniques.
///
/// A primary [`Estimate::Lost`] or [`Estimate::Skip`] defers to the
/// secondary; whatever the secondary returns (including `Skip`) is final.
///
/// One deliberate edge-case difference from the pre-registry harness: when
/// the preamble is *detected* but its LS fit fails, the old combined arms
/// skipped the packet while this combinator still falls back to the
/// secondary.  The SHR reference is a fixed non-degenerate waveform, so
/// that fit cannot fail on simulated campaigns (the parity test covers
/// this); if it ever could, decoding with the fallback estimate is the
/// better behaviour.
pub struct Fallback {
    primary: BoxedEstimator,
    secondary: BoxedEstimator,
}

impl Fallback {
    /// Combines two estimators.
    pub fn new(primary: BoxedEstimator, secondary: BoxedEstimator) -> Self {
        Fallback { primary, secondary }
    }
}

impl ChannelEstimator for Fallback {
    fn fit(&mut self, ctx: &TrainingContext<'_>) {
        self.primary.fit(ctx);
        self.secondary.fit(ctx);
    }

    fn observe(&mut self, obs: &PacketObservation<'_>) {
        self.primary.observe(obs);
        self.secondary.observe(obs);
    }

    fn estimate(&mut self, req: &EstimateRequest<'_>) -> Estimate {
        match self.primary.estimate(req) {
            Estimate::Skip | Estimate::Lost => self.secondary.estimate(req),
            available => available,
        }
    }

    fn would_defer(&self, req: &EstimateRequest<'_>) -> bool {
        self.primary.would_defer(req) && self.secondary.would_defer(req)
    }

    fn vvd_plan(&self, req: &EstimateRequest<'_>) -> Option<VvdInferencePlan> {
        // Plan only for the arm that will actually run: when the primary
        // will produce an estimate, the secondary's NN forward pass would
        // be computed and discarded — the lookahead suppresses it.
        if self.primary.would_defer(req) {
            self.secondary.vvd_plan(req)
        } else {
            self.primary.vvd_plan(req)
        }
    }

    fn estimate_with_vvd(
        &mut self,
        req: &EstimateRequest<'_>,
        prediction: Option<&FirFilter>,
    ) -> Estimate {
        // Route the prediction to the arm `vvd_plan` planned for — the
        // same pure condition, so the routing cannot disagree with the
        // planning.
        let (for_primary, for_secondary) = if self.primary.would_defer(req) {
            (None, prediction)
        } else {
            (prediction, None)
        };
        match self.primary.estimate_with_vvd(req, for_primary) {
            Estimate::Skip | Estimate::Lost => self.secondary.estimate_with_vvd(req, for_secondary),
            available => available,
        }
    }

    fn wants_preamble_observations(&self) -> bool {
        self.primary.wants_preamble_observations() || self.secondary.wants_preamble_observations()
    }

    fn uses_camera(&self) -> bool {
        self.primary.uses_camera() || self.secondary.uses_camera()
    }

    fn save_state(&self) -> EstimatorState {
        EstimatorState::Fallback {
            primary: Box::new(self.primary.save_state()),
            secondary: Box::new(self.secondary.save_state()),
        }
    }

    fn load_state(&mut self, state: &EstimatorState) -> Result<(), StateError> {
        match state {
            EstimatorState::Fallback { primary, secondary } => {
                self.primary.load_state(primary)?;
                self.secondary.load_state(secondary)
            }
            other => Err(StateError::Kind {
                expected: "fallback",
                found: other.kind(),
            }),
        }
    }
}

/// The preamble-based estimate of the packet received `lag` packets earlier
/// (the Figs. 16–17 "aged Preamble-Genie" sweeps).  With a lag of zero this
/// is exactly the genie preamble estimator.
#[derive(Debug, Clone)]
pub struct AgedPreamble {
    lag: usize,
    history: VecDeque<Option<FirFilter>>,
}

impl AgedPreamble {
    /// An aged genie preamble estimator lagging by the given number of
    /// packets.
    pub fn packets(lag: usize) -> Self {
        AgedPreamble {
            lag,
            history: VecDeque::with_capacity(lag),
        }
    }
}

impl ChannelEstimator for AgedPreamble {
    fn would_defer(&self, req: &EstimateRequest<'_>) -> bool {
        if self.lag == 0 {
            req.preamble_estimate.is_none()
        } else if self.history.len() < self.lag {
            // Still warming up: `estimate` skips until the history is as
            // deep as the lag, even though a front entry may exist.
            true
        } else {
            match self.history.front() {
                Some(est) => est.is_none(),
                None => true,
            }
        }
    }

    fn observe(&mut self, obs: &PacketObservation<'_>) {
        if self.lag == 0 {
            return;
        }
        self.history.push_back(obs.preamble_estimate.cloned());
        if self.history.len() > self.lag {
            self.history.pop_front();
        }
    }

    fn estimate(&mut self, req: &EstimateRequest<'_>) -> Estimate {
        if self.lag == 0 {
            // The fresh estimate carries the current packet's phase.
            return match req.preamble_estimate {
                Some(est) => Estimate::phased(est.clone()),
                None => Estimate::Skip,
            };
        }
        if self.history.len() < self.lag {
            return Estimate::Skip;
        }
        match self.history.front().expect("non-empty history") {
            // An estimate from another packet needs the Eq.-8 alignment:
            // the crystal phase of the current packet differs.
            Some(est) => Estimate::aligned(est.clone()),
            None => Estimate::Skip,
        }
    }

    fn wants_preamble_observations(&self) -> bool {
        self.lag > 0
    }

    fn save_state(&self) -> EstimatorState {
        EstimatorState::AgedPreamble {
            history: self.history.iter().cloned().collect(),
        }
    }

    fn load_state(&mut self, state: &EstimatorState) -> Result<(), StateError> {
        match state {
            EstimatorState::AgedPreamble { history } => {
                if history.len() > self.lag {
                    return Err(StateError::Dimension {
                        context: format!(
                            "AgedPreamble history length {} exceeds lag {}",
                            history.len(),
                            self.lag
                        ),
                    });
                }
                self.history = history.iter().cloned().collect();
                Ok(())
            }
            other => Err(StateError::Kind {
                expected: "aged-preamble",
                found: other.kind(),
            }),
        }
    }
}

/// An estimator that never produces an estimate (used by sweeps for
/// techniques they do not model; every packet is skipped, never lost).
#[derive(Debug, Clone, Copy, Default)]
pub struct Inactive;

impl ChannelEstimator for Inactive {
    fn would_defer(&self, _req: &EstimateRequest<'_>) -> bool {
        true
    }

    fn estimate(&mut self, _req: &EstimateRequest<'_>) -> Estimate {
        Estimate::Skip
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vvd_dsp::Complex;

    fn cir(scale: f64) -> FirFilter {
        FirFilter::from_taps(&[Complex::new(scale, 0.1), Complex::new(0.0, -scale)])
    }

    struct NoFrames;
    impl FrameSource for NoFrames {
        fn frame(&self, _index: usize) -> &DepthImage {
            panic!("no frames in this test")
        }
        fn n_frames(&self) -> usize {
            0
        }
    }

    fn request<'a>(
        frames: &'a dyn FrameSource,
        perfect: &'a FirFilter,
        preamble: Option<&'a FirFilter>,
        detected: bool,
    ) -> EstimateRequest<'a> {
        EstimateRequest {
            packet_index: 0,
            perfect_cir: perfect,
            preamble_estimate: preamble,
            preamble_detected: detected,
            frame_index: 0,
            frames,
        }
    }

    #[test]
    fn standard_bypasses_and_ground_truth_reports_perfect_cir() {
        let perfect = cir(1.0);
        let frames = NoFrames;
        let req = request(&frames, &perfect, None, true);
        assert_eq!(Standard.estimate(&req), Estimate::Bypass);
        assert_eq!(
            GroundTruth.estimate(&req),
            Estimate::phased(perfect.clone())
        );
    }

    #[test]
    fn preamble_detection_gating() {
        let perfect = cir(1.0);
        let pre = cir(0.5);
        let frames = NoFrames;

        let detected = request(&frames, &perfect, Some(&pre), true);
        let missed = request(&frames, &perfect, Some(&pre), false);
        let failed = request(&frames, &perfect, None, true);

        let mut practical = Preamble::detected();
        assert_eq!(practical.estimate(&detected), Estimate::phased(pre.clone()));
        assert_eq!(practical.estimate(&missed), Estimate::Lost);
        assert_eq!(practical.estimate(&failed), Estimate::Lost);

        let mut genie = Preamble::genie();
        assert_eq!(genie.estimate(&missed), Estimate::phased(pre.clone()));
        assert_eq!(genie.estimate(&failed), Estimate::Skip);
    }

    #[test]
    fn previous_estimator_replays_history_with_the_right_lag() {
        let frames = NoFrames;
        let mut prev = Previous::packets(2);
        let cirs: Vec<FirFilter> = (0..4).map(|k| cir(k as f64)).collect();
        for (k, c) in cirs.iter().enumerate() {
            let req = request(&frames, c, None, true);
            let est = prev.estimate(&req);
            if k < 2 {
                assert_eq!(est, Estimate::Skip, "packet {k} has no 2-deep history");
            } else {
                assert_eq!(est, Estimate::aligned(cirs[k - 2].clone()));
            }
            prev.observe(&PacketObservation {
                perfect_cir: c,
                aligned_cir: c,
                preamble_estimate: None,
            });
        }
    }

    #[test]
    fn kalman_estimator_fits_and_predicts() {
        let train: Vec<FirFilter> = (0..30).map(|k| cir(1.0 + 0.01 * k as f64)).collect();
        let mut kalman = Kalman::ar(2);
        kalman.fit(&TrainingContext::new(&train));
        let frames = NoFrames;
        let perfect = cir(1.3);
        for c in &train {
            kalman.observe(&PacketObservation {
                perfect_cir: c,
                aligned_cir: c,
                preamble_estimate: None,
            });
        }
        match kalman.estimate(&request(&frames, &perfect, None, true)) {
            Estimate::Ready { cir, align_phase } => {
                assert!(align_phase, "blind estimates need phase alignment");
                assert_eq!(cir.len(), 2);
                assert!(cir.energy() > 0.0);
            }
            other => panic!("expected an estimate, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn kalman_estimate_before_fit_panics() {
        let frames = NoFrames;
        let perfect = cir(1.0);
        let _ = Kalman::ar(1).estimate(&request(&frames, &perfect, None, true));
    }

    #[test]
    fn fallback_defers_to_secondary_on_loss_and_skip() {
        let perfect = cir(2.0);
        let pre = cir(0.5);
        let frames = NoFrames;

        let mut combined = Fallback::new(Box::new(Preamble::detected()), Box::new(GroundTruth));
        // Preamble detected: the primary wins (no phase alignment needed).
        let detected = request(&frames, &perfect, Some(&pre), true);
        assert_eq!(combined.estimate(&detected), Estimate::phased(pre.clone()));
        // Preamble missed: the secondary produces the estimate instead of a
        // lost packet.
        let missed = request(&frames, &perfect, Some(&pre), false);
        assert_eq!(
            combined.estimate(&missed),
            Estimate::phased(perfect.clone())
        );

        // Both unavailable: the secondary's Skip is final.
        let mut skipping = Fallback::new(Box::new(Preamble::detected()), Box::new(Inactive));
        assert_eq!(skipping.estimate(&missed), Estimate::Skip);
    }

    #[test]
    fn aged_preamble_buffers_observed_estimates() {
        let frames = NoFrames;
        let mut aged = AgedPreamble::packets(1);
        assert!(aged.wants_preamble_observations());
        let a = cir(1.0);
        let b = cir(2.0);
        let req = request(&frames, &a, Some(&b), true);
        assert_eq!(aged.estimate(&req), Estimate::Skip);
        aged.observe(&PacketObservation {
            perfect_cir: &a,
            aligned_cir: &a,
            preamble_estimate: Some(&b),
        });
        // One packet later the observed estimate surfaces, with alignment.
        assert_eq!(aged.estimate(&req), Estimate::aligned(b.clone()));

        // Lag zero behaves like the genie estimator on the current packet.
        let mut fresh = AgedPreamble::packets(0);
        assert!(!fresh.wants_preamble_observations());
        assert_eq!(fresh.estimate(&req), Estimate::phased(b.clone()));
    }

    struct Frames(Vec<DepthImage>);
    impl FrameSource for Frames {
        fn frame(&self, index: usize) -> &DepthImage {
            &self.0[index]
        }
        fn n_frames(&self) -> usize {
            self.0.len()
        }
    }

    struct FixedSource(VvdDataset);
    impl VvdDatasetSource for FixedSource {
        fn datasets(&self, _variant: VvdVariant) -> (VvdDataset, VvdDataset) {
            (self.0.clone(), VvdDataset::new())
        }
    }

    fn tiny_vvd_dataset() -> VvdDataset {
        let mut ds = VvdDataset::new();
        for k in 0..6 {
            let mut img = DepthImage::filled(30, 26, 0.8);
            img.set(4, (k * 3) % 20, 0.2);
            let mut taps = vec![vvd_dsp::Complex::ZERO; 3];
            taps[1] = vvd_dsp::Complex::new(1e-3 + 1e-5 * k as f64, -5e-4);
            ds.push(vvd_core::VvdSample {
                image: img,
                target_cir: FirFilter::from_taps(&taps),
            });
        }
        ds
    }

    fn tiny_vvd_config() -> VvdConfig {
        let mut cfg = VvdConfig::quick();
        cfg.conv_filters = 2;
        cfg.dense_units = 8;
        cfg.channel_taps = 3;
        cfg.epochs = 1;
        cfg
    }

    #[test]
    fn vvd_plan_and_injected_prediction_match_the_inline_estimate() {
        let ds = tiny_vvd_dataset();
        let cfg = tiny_vvd_config();
        let source = FixedSource(ds.clone());
        let pool = VvdModelPool::new(&cfg, &source);
        let mut vvd = Vvd::new(VvdVariant::Current);
        vvd.fit(&TrainingContext::new(&[]).with_vvd(&pool));

        let frames = Frames(ds.samples.iter().map(|s| s.image.clone()).collect());
        let perfect = cir(1.0);
        let req = EstimateRequest {
            packet_index: 0,
            perfect_cir: &perfect,
            preamble_estimate: None,
            preamble_detected: true,
            frame_index: 2,
            frames: &frames,
        };

        let plan = vvd.vvd_plan(&req).expect("a frame is available");
        assert_eq!(plan.frame_index, 2, "Current variant has no frame lag");
        // The plan's model is the fitted one (Arc-shared, same provenance).
        let prediction = plan.model.predict_cir(frames.frame(plan.frame_index));
        assert_eq!(
            vvd.estimate_with_vvd(&req, Some(&prediction)),
            vvd.estimate(&req),
            "an injected planned prediction must reproduce the inline path"
        );

        // Before enough frames exist the estimator neither plans nor
        // estimates.
        let mut aged = Vvd::aged(VvdVariant::Current, 5);
        aged.fit(&TrainingContext::new(&[]).with_vvd(&pool));
        assert!(aged.vvd_plan(&req).is_none());
        assert_eq!(aged.estimate_with_vvd(&req, None), Estimate::Skip);
    }

    #[test]
    fn fallback_routes_predictions_to_the_planning_arm() {
        let ds = tiny_vvd_dataset();
        let cfg = tiny_vvd_config();
        let source = FixedSource(ds.clone());
        let pool = VvdModelPool::new(&cfg, &source);
        let ctx = TrainingContext::new(&[]).with_vvd(&pool);
        let frames = Frames(ds.samples.iter().map(|s| s.image.clone()).collect());
        let perfect = cir(1.0);
        let pre = cir(0.5);

        // When the preamble primary will produce an estimate, the VVD
        // arm's forward pass is pure waste — the lookahead suppresses the
        // plan entirely, and the primary wins untouched.
        let mut combined = Fallback::new(
            Box::new(Preamble::detected()),
            Box::new(Vvd::new(VvdVariant::Current)),
        );
        combined.fit(&ctx);
        let detected = EstimateRequest {
            packet_index: 0,
            perfect_cir: &perfect,
            preamble_estimate: Some(&pre),
            preamble_detected: true,
            frame_index: 1,
            frames: &frames,
        };
        assert!(
            combined.vvd_plan(&detected).is_none(),
            "no NN work is planned when the primary will produce"
        );
        assert_eq!(
            combined.estimate_with_vvd(&detected, None),
            Estimate::phased(pre.clone())
        );

        // When the primary defers (missed preamble), the VVD arm plans —
        // and consumes the batch-computed prediction.
        let missed = EstimateRequest {
            preamble_detected: false,
            ..detected
        };
        let plan = combined
            .vvd_plan(&missed)
            .expect("the VVD arm plans when the primary defers");
        let prediction = plan.model.predict_cir(frames.frame(plan.frame_index));
        assert_eq!(
            combined.estimate_with_vvd(&missed, Some(&prediction)),
            Estimate::aligned(prediction.clone())
        );

        // Primary plans: the prediction goes to the first arm.
        let mut vvd_first = Fallback::new(
            Box::new(Vvd::new(VvdVariant::Current)),
            Box::new(GroundTruth),
        );
        vvd_first.fit(&ctx);
        assert_eq!(
            vvd_first.estimate_with_vvd(&missed, Some(&prediction)),
            Estimate::aligned(prediction.clone())
        );
    }

    #[test]
    fn would_defer_answers_exactly_what_estimate_does() {
        let perfect = cir(1.0);
        let pre = cir(0.5);
        let frames = NoFrames;
        let requests = [
            request(&frames, &perfect, Some(&pre), true),
            request(&frames, &perfect, Some(&pre), false),
            request(&frames, &perfect, None, true),
            request(&frames, &perfect, None, false),
        ];
        let mut estimators: Vec<(&str, BoxedEstimator)> = vec![
            ("standard", Box::new(Standard)),
            ("ground-truth", Box::new(GroundTruth)),
            ("preamble", Box::new(Preamble::detected())),
            ("preamble-genie", Box::new(Preamble::genie())),
            ("previous-empty", Box::new(Previous::packets(2))),
            ("aged-preamble-0", Box::new(AgedPreamble::packets(0))),
            ("aged-preamble-empty", Box::new(AgedPreamble::packets(1))),
            ("inactive", Box::new(Inactive)),
            (
                "fallback",
                Box::new(Fallback::new(
                    Box::new(Preamble::detected()),
                    Box::new(Inactive),
                )),
            ),
        ];
        for (label, estimator) in &mut estimators {
            for (i, req) in requests.iter().enumerate() {
                let lookahead = estimator.would_defer(req);
                let actual = matches!(estimator.estimate(req), Estimate::Skip | Estimate::Lost);
                assert_eq!(
                    lookahead, actual,
                    "{label}: would_defer disagrees with estimate on request {i}"
                );
            }
        }
        // Stateful estimators whose answers change as they observe.
        let mut prev = Previous::packets(1);
        let req = request(&frames, &perfect, Some(&pre), true);
        assert!(prev.would_defer(&req));
        prev.observe(&PacketObservation {
            perfect_cir: &perfect,
            aligned_cir: &perfect,
            preamble_estimate: None,
        });
        assert!(!prev.would_defer(&req));
        assert!(matches!(prev.estimate(&req), Estimate::Ready { .. }));

        // AgedPreamble through its whole state space: empty, partially
        // filled (front exists but estimate still skips), full with a
        // usable front, full with a failed-fit front.
        let mut aged = AgedPreamble::packets(2);
        let observations = [Some(&pre), Some(&pre), None];
        for obs in observations {
            assert_eq!(
                aged.would_defer(&req),
                matches!(aged.estimate(&req), Estimate::Skip | Estimate::Lost),
                "aged preamble lookahead diverged at history depth {}",
                aged.history.len()
            );
            aged.observe(&PacketObservation {
                perfect_cir: &perfect,
                aligned_cir: &perfect,
                preamble_estimate: obs,
            });
        }
        // Full history, successful front: produces.
        assert!(!aged.would_defer(&req));
        assert!(matches!(aged.estimate(&req), Estimate::Ready { .. }));
        // One more failed-fit observation pushes the None to the front.
        aged.observe(&PacketObservation {
            perfect_cir: &perfect,
            aligned_cir: &perfect,
            preamble_estimate: None,
        });
        assert!(aged.would_defer(&req));
        assert_eq!(aged.estimate(&req), Estimate::Skip);
    }

    #[test]
    fn streaming_state_round_trips_for_stateful_estimators() {
        let frames = NoFrames;
        let a = cir(1.0);
        let b = cir(2.0);

        // Previous: observe two packets, save, load into a fresh fitted
        // instance, and check the next estimate matches.
        let mut prev = Previous::packets(2);
        for c in [&a, &b] {
            prev.observe(&PacketObservation {
                perfect_cir: c,
                aligned_cir: c,
                preamble_estimate: None,
            });
        }
        let state = prev.save_state();
        let mut resumed = Previous::packets(2);
        resumed.load_state(&state).unwrap();
        assert_eq!(resumed.save_state(), state, "load→save is lossless");
        let req = request(&frames, &a, None, true);
        assert_eq!(resumed.estimate(&req), prev.estimate(&req));

        // AgedPreamble: history with a failed-fit hole survives the trip.
        let mut aged = AgedPreamble::packets(2);
        for obs in [Some(&b), None] {
            aged.observe(&PacketObservation {
                perfect_cir: &a,
                aligned_cir: &a,
                preamble_estimate: obs,
            });
        }
        let state = aged.save_state();
        let mut resumed = AgedPreamble::packets(2);
        resumed.load_state(&state).unwrap();
        assert_eq!(resumed.save_state(), state);
        assert_eq!(resumed.estimate(&req), aged.estimate(&req));
    }

    #[test]
    fn nested_fallback_state_round_trips_recursively() {
        let build = || {
            Fallback::new(
                Box::new(Previous::packets(1)),
                Box::new(Fallback::new(
                    Box::new(AgedPreamble::packets(1)),
                    Box::new(Kalman::ar(1)),
                )),
            )
        };
        let train: Vec<FirFilter> = (0..20).map(|k| cir(1.0 + 0.02 * k as f64)).collect();
        let ctx = TrainingContext::new(&train);
        let mut live = build();
        live.fit(&ctx);
        let pre = cir(0.5);
        for c in &train[..5] {
            live.observe(&PacketObservation {
                perfect_cir: c,
                aligned_cir: c,
                preamble_estimate: Some(&pre),
            });
        }
        let state = live.save_state();
        assert_eq!(state.kind(), "fallback");

        let mut resumed = build();
        resumed.fit(&ctx);
        resumed.load_state(&state).unwrap();
        assert_eq!(
            resumed.save_state(),
            state,
            "recursive load→save is lossless"
        );

        let frames = NoFrames;
        let perfect = cir(3.0);
        let req = request(&frames, &perfect, None, true);
        assert_eq!(resumed.estimate(&req), live.estimate(&req));
    }

    #[test]
    fn load_state_rejects_mismatched_kinds_and_unfitted_targets() {
        // Stateless estimators reject stateful snapshots...
        assert!(matches!(
            Standard.load_state(&EstimatorState::Kalman { taps: Vec::new() }),
            Err(StateError::Kind {
                expected: "stateless",
                ..
            })
        ));
        // ...and accept the stateless one.
        assert!(Standard.load_state(&EstimatorState::Stateless).is_ok());

        // A stateful snapshot into the wrong stateful estimator.
        let mut prev = Previous::packets(1);
        assert!(matches!(
            prev.load_state(&EstimatorState::AgedPreamble {
                history: Vec::new()
            }),
            Err(StateError::Kind {
                expected: "previous",
                ..
            })
        ));

        // A fitted-Kalman snapshot into an unfitted Kalman.
        let train: Vec<FirFilter> = (0..20).map(|k| cir(1.0 + 0.02 * k as f64)).collect();
        let mut fitted = Kalman::ar(1);
        fitted.fit(&TrainingContext::new(&train));
        let state = fitted.save_state();
        assert!(matches!(
            Kalman::ar(1).load_state(&state),
            Err(StateError::Unfitted {
                estimator: "Kalman"
            })
        ));

        // A history deeper than the lag cannot be loaded.
        let deep = EstimatorState::Previous {
            history: vec![cir(1.0), cir(2.0)],
        };
        assert!(matches!(
            Previous::packets(1).load_state(&deep),
            Err(StateError::Dimension { .. })
        ));
    }

    #[test]
    fn vvd_state_pins_the_model_key() {
        let ds = tiny_vvd_dataset();
        let cfg = tiny_vvd_config();
        let source = FixedSource(ds.clone());
        let pool = VvdModelPool::new(&cfg, &source);
        let mut vvd = Vvd::new(VvdVariant::Current);
        vvd.fit(&TrainingContext::new(&[]).with_vvd(&pool));
        let state = vvd.save_state();
        match &state {
            EstimatorState::Vvd { key: Some(_) } => {}
            other => panic!("fitted VVD state must carry a key, got {other:?}"),
        }

        // Same training provenance: the key matches and loading succeeds.
        let mut same = Vvd::new(VvdVariant::Current);
        same.fit(&TrainingContext::new(&[]).with_vvd(&pool));
        same.load_state(&state).unwrap();

        // Different provenance (different config seed): typed mismatch.
        let mut cfg2 = cfg;
        cfg2.seed = cfg.seed.wrapping_add(1);
        let pool2 = VvdModelPool::new(&cfg2, &source);
        let mut other = Vvd::new(VvdVariant::Current);
        other.fit(&TrainingContext::new(&[]).with_vvd(&pool2));
        assert!(matches!(
            other.load_state(&state),
            Err(StateError::ModelKey { .. })
        ));
        // An unfitted VVD mismatches a fitted snapshot the same way.
        assert!(matches!(
            Vvd::new(VvdVariant::Current).load_state(&state),
            Err(StateError::ModelKey { .. })
        ));
    }

    #[test]
    fn estimators_are_object_safe_and_send() {
        fn assert_send<T: Send>(_: &T) {}
        let boxed: Vec<BoxedEstimator> = vec![
            Box::new(Standard),
            Box::new(GroundTruth),
            Box::new(Preamble::genie()),
            Box::new(Previous::packets(1)),
            Box::new(Kalman::ar(5)),
            Box::new(Vvd::new(VvdVariant::Current)),
            Box::new(Fallback::new(Box::new(Standard), Box::new(GroundTruth))),
            Box::new(AgedPreamble::packets(3)),
            Box::new(Inactive),
        ];
        assert_send(&boxed);
        assert_eq!(boxed.len(), 9);
    }
}
