//! Kalman-filtering based channel estimation (paper Appendix).
//!
//! Each channel tap is modelled as an independent AR(p) process (the WSSUS
//! assumption lets the taps fade independently); the AR coefficients come
//! from the Yule–Walker fit on the training sets and the Kalman filter
//! predicts the next packet's tap value from the perfect estimates of the
//! previous packets.  The estimator is "semi-blind": the prediction used for
//! decoding packet `k` never looks at packet `k` itself.

use crate::ar::fit_ar_coefficients;
use crate::state::{KalmanTapState, StateError};
use vvd_dsp::solve::invert;
use vvd_dsp::{CMatrix, CVec, Complex, FirFilter};

/// Kalman filter tracking a single channel tap with an AR(p) state model.
#[derive(Debug, Clone)]
pub struct KalmanTapFilter {
    order: usize,
    /// Companion-form state transition matrix built from the AR coefficients.
    phi: CMatrix,
    /// State estimate `[h[k], h[k-1], ..., h[k-p+1]]`.
    state: CVec,
    /// Error covariance.
    cov: CMatrix,
    /// Process noise covariance.
    q: CMatrix,
    /// Observation noise covariance (small: observations are the perfect
    /// channel estimates, cf. the paper's footnote 13).
    u: CMatrix,
    /// Recent observations, newest first, used to form the observed state.
    history: Vec<Complex>,
}

impl KalmanTapFilter {
    /// Builds a tap filter from AR coefficients, the innovation variance of
    /// the AR fit and the (small) observation noise variance.
    pub fn new(phi_coeffs: &CVec, innovation_variance: f64, observation_variance: f64) -> Self {
        let p = phi_coeffs.len();
        assert!(p >= 1);
        let mut phi = CMatrix::zeros(p, p);
        for (j, &c) in phi_coeffs.iter().enumerate() {
            phi[(0, j)] = c;
        }
        for i in 1..p {
            phi[(i, i - 1)] = Complex::ONE;
        }
        let mut q = CMatrix::zeros(p, p);
        q[(0, 0)] = Complex::from_real(innovation_variance.max(1e-18));
        let u = CMatrix::identity(p).scale(observation_variance.max(1e-18));
        KalmanTapFilter {
            order: p,
            phi,
            state: CVec::zeros(p),
            cov: CMatrix::identity(p),
            q,
            u,
            history: Vec::new(),
        }
    }

    /// The filter's current one-step-ahead prediction of the tap value.
    pub fn predicted(&self) -> Complex {
        self.state[0]
    }

    /// Exports the filter's streaming state (state estimate, covariance,
    /// observation history) for checkpointing.  The AR model itself (Φ, Q,
    /// U) is a fit product and is rebuilt by re-fitting.
    pub fn export_state(&self) -> KalmanTapState {
        KalmanTapState {
            state: self.state.as_slice().to_vec(),
            cov: self.cov.data().to_vec(),
            history: self.history.clone(),
        }
    }

    /// Restores previously exported streaming state into this (fitted)
    /// filter.
    ///
    /// # Errors
    /// [`StateError::Dimension`] when the state was exported from a filter
    /// of a different AR order.
    pub fn import_state(&mut self, state: &KalmanTapState) -> Result<(), StateError> {
        if state.state.len() != self.order {
            return Err(StateError::Dimension {
                context: format!(
                    "Kalman state length {} vs AR order {}",
                    state.state.len(),
                    self.order
                ),
            });
        }
        if state.cov.len() != self.order * self.order {
            return Err(StateError::Dimension {
                context: format!(
                    "Kalman covariance length {} vs AR order {}",
                    state.cov.len(),
                    self.order
                ),
            });
        }
        if state.history.len() > self.order {
            return Err(StateError::Dimension {
                context: format!(
                    "Kalman history length {} exceeds AR order {}",
                    state.history.len(),
                    self.order
                ),
            });
        }
        self.state = CVec(state.state.clone());
        self.cov = CMatrix::from_vec(self.order, self.order, state.cov.clone());
        self.history = state.history.clone();
        Ok(())
    }

    /// Incorporates the observed (perfect-estimate) tap value for the current
    /// packet and advances the prediction to the next packet.
    pub fn observe(&mut self, observed: Complex) {
        // Observed state vector: newest observation plus previous ones.
        self.history.insert(0, observed);
        self.history.truncate(self.order);
        let mut z = CVec::zeros(self.order);
        for (i, &h) in self.history.iter().enumerate() {
            z[i] = h;
        }

        // Update step: K = P (P + U)^-1 ; x = x + K (z - x) ; P = (I - K) P.
        let gain = match invert(&self.cov.add(&self.u)) {
            Ok(inv) => self.cov.matmul(&inv),
            Err(_) => CMatrix::identity(self.order),
        };
        let innovation = z.sub(&self.state);
        self.state = self.state.add(&gain.matvec(&innovation));
        let identity = CMatrix::identity(self.order);
        self.cov = identity.sub(&gain).matmul(&self.cov);

        // Prediction step: x = Φ x ; P = Φ P Φᴴ + Q.
        self.state = self.phi.matvec(&self.state);
        self.cov = self
            .phi
            .matmul(&self.cov)
            .matmul(&self.phi.hermitian())
            .add(&self.q);
    }
}

/// Kalman channel estimator: one [`KalmanTapFilter`] per channel tap.
#[derive(Debug, Clone)]
pub struct KalmanChannelEstimator {
    taps: Vec<KalmanTapFilter>,
    order: usize,
}

impl KalmanChannelEstimator {
    /// Fits AR(p) models to every tap of the training CIR sequence and
    /// builds the per-tap Kalman filters.
    ///
    /// `training_cirs` is the sequence of perfect channel estimates from the
    /// training sets (chronological order); all must share the same tap
    /// count.
    ///
    /// # Panics
    /// Panics when the training sequence is empty.
    pub fn fit(training_cirs: &[FirFilter], order: usize) -> Self {
        assert!(!training_cirs.is_empty(), "empty Kalman training sequence");
        let n_taps = training_cirs[0].len();
        let mut taps = Vec::with_capacity(n_taps);
        for l in 0..n_taps {
            let sequence: Vec<Complex> = training_cirs.iter().map(|h| h.taps()[l]).collect();
            let phi = fit_ar_coefficients(&sequence, order);
            // Innovation variance: residual power of the one-step AR predictor.
            let mut residual = 0.0;
            let mut count = 0usize;
            for k in order..sequence.len() {
                let mut pred = Complex::ZERO;
                for (i, &c) in phi.iter().enumerate() {
                    pred += c * sequence[k - 1 - i];
                }
                residual += (sequence[k] - pred).norm_sqr();
                count += 1;
            }
            let innovation_var = if count > 0 {
                residual / count as f64
            } else {
                1e-12
            };
            let tap_power =
                sequence.iter().map(|v| v.norm_sqr()).sum::<f64>() / sequence.len() as f64;
            let observation_var = (tap_power * 1e-4).max(1e-18);
            taps.push(KalmanTapFilter::new(&phi, innovation_var, observation_var));
        }
        KalmanChannelEstimator { taps, order }
    }

    /// AR model order of this estimator.
    pub fn order(&self) -> usize {
        self.order
    }

    /// The blind prediction of the current packet's channel (made from past
    /// packets only).
    pub fn predicted_cir(&self) -> FirFilter {
        FirFilter::new(CVec(self.taps.iter().map(|t| t.predicted()).collect()))
    }

    /// Exports the streaming state of every tap filter, in tap order.
    pub fn export_states(&self) -> Vec<KalmanTapState> {
        self.taps.iter().map(|t| t.export_state()).collect()
    }

    /// Restores previously exported per-tap streaming states into this
    /// (fitted) estimator.
    ///
    /// # Errors
    /// [`StateError::Dimension`] when the tap count or any per-tap shape
    /// disagrees with this fit.
    pub fn import_states(&mut self, states: &[KalmanTapState]) -> Result<(), StateError> {
        if states.len() != self.taps.len() {
            return Err(StateError::Dimension {
                context: format!(
                    "Kalman tap count {} vs fitted {}",
                    states.len(),
                    self.taps.len()
                ),
            });
        }
        for (tap, state) in self.taps.iter_mut().zip(states) {
            tap.import_state(state)?;
        }
        Ok(())
    }

    /// Feeds the perfect channel estimate of the just-received packet into
    /// the filters and advances the prediction to the next packet.
    pub fn observe(&mut self, perfect_cir: &FirFilter) {
        assert_eq!(perfect_cir.len(), self.taps.len(), "CIR tap count mismatch");
        for (filter, &tap) in self.taps.iter_mut().zip(perfect_cir.taps().iter()) {
            filter.observe(tap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a slowly varying synthetic CIR sequence: each tap follows an
    /// AR(1) around a mean, mimicking block-fading with memory.
    fn synthetic_cir_sequence(n: usize, n_taps: usize) -> Vec<FirFilter> {
        let mut cirs = Vec::with_capacity(n);
        let mut values: Vec<Complex> = (0..n_taps)
            .map(|l| Complex::from_polar(1.0 / (l + 1) as f64, l as f64 * 0.7))
            .collect();
        for k in 0..n {
            for (l, v) in values.iter_mut().enumerate() {
                let drift = Complex::new(
                    ((k * 31 + l * 7) % 13) as f64 * 2e-3 - 1.2e-2,
                    ((k * 17 + l * 3) % 11) as f64 * 2e-3 - 1e-2,
                );
                *v = *v * 0.97 + drift;
            }
            cirs.push(FirFilter::new(CVec(values.clone())));
        }
        cirs
    }

    #[test]
    fn prediction_tracks_slowly_varying_channel() {
        let cirs = synthetic_cir_sequence(300, 4);
        let (train, test) = cirs.split_at(200);
        let mut kalman = KalmanChannelEstimator::fit(train, 1);
        // Warm up on the training tail.
        for cir in &train[150..] {
            kalman.observe(cir);
        }
        let mut mse_pred = 0.0;
        let mut mse_stale = 0.0;
        let stale = train.last().unwrap().clone();
        for cir in test {
            let pred = kalman.predicted_cir();
            mse_pred += pred.taps().squared_error(cir.taps());
            mse_stale += stale.taps().squared_error(cir.taps());
            kalman.observe(cir);
        }
        assert!(
            mse_pred < mse_stale,
            "Kalman ({mse_pred}) should beat a stale estimate ({mse_stale})"
        );
    }

    #[test]
    fn different_orders_produce_filters() {
        let cirs = synthetic_cir_sequence(120, 3);
        for order in [1usize, 5, 20] {
            let k = KalmanChannelEstimator::fit(&cirs, order);
            assert_eq!(k.order(), order);
            assert_eq!(k.predicted_cir().len(), 3);
        }
    }

    #[test]
    fn observing_constant_channel_converges_to_it() {
        let constant = FirFilter::from_taps(&[Complex::new(0.5, 0.2), Complex::new(0.1, -0.3)]);
        let train: Vec<FirFilter> = std::iter::repeat_n(constant.clone(), 50).collect();
        let mut kalman = KalmanChannelEstimator::fit(&train, 1);
        for _ in 0..30 {
            kalman.observe(&constant);
        }
        let pred = kalman.predicted_cir();
        let err = pred.taps().squared_error(constant.taps()) / constant.energy();
        assert!(err < 0.02, "prediction error ratio {err}");
    }

    #[test]
    fn exported_state_round_trips_and_resumes_bit_identically() {
        let cirs = synthetic_cir_sequence(120, 3);
        let (train, test) = cirs.split_at(80);
        let mut live = KalmanChannelEstimator::fit(train, 2);
        for cir in &test[..20] {
            live.observe(cir);
        }
        let states = live.export_states();

        // A freshly fitted filter that imports the state must continue the
        // exact same trajectory.
        let mut resumed = KalmanChannelEstimator::fit(train, 2);
        resumed.import_states(&states).unwrap();
        assert_eq!(resumed.export_states(), states, "import→export is lossless");
        for cir in &test[20..] {
            live.observe(cir);
            resumed.observe(cir);
            assert_eq!(
                live.predicted_cir(),
                resumed.predicted_cir(),
                "resumed filter diverged"
            );
        }
    }

    #[test]
    fn import_rejects_mismatched_shapes() {
        let cirs = synthetic_cir_sequence(60, 3);
        let mut k2 = KalmanChannelEstimator::fit(&cirs, 2);
        let from_order_1 = KalmanChannelEstimator::fit(&cirs, 1).export_states();
        assert!(matches!(
            k2.import_states(&from_order_1),
            Err(StateError::Dimension { .. })
        ));
        let mut short = k2.export_states();
        short.pop();
        assert!(matches!(
            k2.import_states(&short),
            Err(StateError::Dimension { .. })
        ));
    }

    #[test]
    #[should_panic]
    fn empty_training_panics() {
        let _ = KalmanChannelEstimator::fit(&[], 1);
    }

    #[test]
    #[should_panic]
    fn tap_count_mismatch_panics() {
        let cirs = synthetic_cir_sequence(20, 3);
        let mut kalman = KalmanChannelEstimator::fit(&cirs, 1);
        kalman.observe(&FirFilter::from_taps(&[Complex::ONE; 5]));
    }
}
