//! # vvd-estimation
//!
//! Wireless channel estimation, equalization and reliability metrics for the
//! Veni Vidi Dixi reproduction.
//!
//! The paper compares fourteen estimation techniques that all share one
//! decoding pipeline — least-squares FIR channel estimation (Eq. 4),
//! zero-forcing equalization (Eq. 6–7), mean-phase alignment (Eq. 8) — and
//! differ only in *where the channel estimate comes from*.  This crate
//! provides those shared pieces:
//!
//! * [`ls`] — the linear least-squares FIR estimator used for the perfect
//!   (ground-truth), preamble-based and training-set estimates,
//! * [`zf`] — zero-forcing equalizer design and application with
//!   configurable length and cursor position,
//! * [`phase`] — mean-phase-offset alignment between an externally supplied
//!   (blind) estimate and the received block,
//! * [`ar`] / [`kalman`] — Yule–Walker AR fitting and the per-tap Kalman
//!   filter used by the Kalman AR(p) baselines,
//! * [`decode`] — the one-call pipeline "estimate → align → equalize →
//!   despread → check FCS" shared by every technique,
//! * [`metrics`] — packet error rate, chip error rate and the Eq.-9 MSE,
//! * [`techniques`] — the canonical list of technique names used in the
//!   paper's figures,
//! * [`estimator`] — the first-class [`ChannelEstimator`] trait (stateful,
//!   streaming, per-packet) and the built-in estimator implementations of
//!   every paper technique, including the generic [`estimator::Fallback`]
//!   combinator,
//! * [`cache`] — the content-addressed [`ModelCache`] of trained VVD
//!   models (keyed by full training provenance, with hit/miss/eviction
//!   accounting and an optional on-disk layer) that the
//!   [`estimator::VvdModelPool`] resolves trainings through,
//! * [`registry`] — the pluggable [`EstimatorRegistry`] that builds boxed
//!   estimators from a [`Technique`] or from a spec string such as
//!   `"kalman:ar=7"` or `"fallback:preamble,vvd:current"`,
//! * [`state`] — the serializable [`EstimatorState`] tree that
//!   [`ChannelEstimator::save_state`]/[`ChannelEstimator::load_state`]
//!   move streaming estimators in and out of, which is what serve-session
//!   checkpoints persist.
//!
//! The streaming evaluation pipeline that drives boxed estimators over a
//! simulated measurement campaign lives in `vvd-testbed`.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod ar;
pub mod cache;
pub mod decode;
pub mod estimator;
pub mod kalman;
pub mod ls;
pub mod metrics;
pub mod phase;
pub mod registry;
pub mod state;
pub mod techniques;
pub mod zf;

pub use ar::fit_ar_coefficients;
pub use cache::{ModelCache, ModelCacheStats};
pub use decode::{decode_with_estimate, decode_with_reference, EqualizerConfig};
pub use estimator::{
    BoxedEstimator, ChannelEstimator, Estimate, EstimateRequest, FrameSource, PacketObservation,
    TrainingContext, VvdDatasetSource, VvdInferencePlan, VvdModelPool,
};
pub use kalman::KalmanChannelEstimator;
pub use ls::{ls_estimate, perfect_estimate, preamble_estimate};
pub use metrics::{chip_error_rate, mean_squared_error, packet_error_rate};
pub use phase::align_mean_phase;
pub use registry::{EstimatorRegistry, SpecError};
pub use state::{EstimatorState, KalmanTapState, StateError};
pub use techniques::Technique;
pub use zf::ZfEqualizer;
