//! Content-addressed cache of trained VVD models.
//!
//! Training a VVD CNN dominates end-to-end evaluation wall-clock, and
//! sweeps multiply the number of (scenario × estimator × combination)
//! trainings — many of which are *identical*: same variant, same
//! hyper-parameters, same training data.  [`ModelCache`] turns those
//! repeats into lookups.  Entries are keyed by [`ModelKey`], a digest of
//! the full training provenance (variant, architecture, training
//! configuration, dataset
//! content), so a hit is guaranteed to hand back a model that a fresh
//! training would have reproduced bit for bit — cached and fresh results
//! are indistinguishable.
//!
//! The cache is two-level: an in-memory map (optionally LRU-bounded) and an
//! optional on-disk directory of `<key>.json` files written with
//! [`VvdModel::to_json`], which persists trainings across processes.  All
//! operations are `&self` behind a mutex, so one cache can be shared across
//! the worker threads of a sweep.  Hit/miss/eviction counters are exposed
//! through [`ModelCache::stats`] and surfaced in sweep reports.

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::Mutex;
use vvd_core::{ModelKey, VvdModel, VvdTrainingReport};

/// Counters describing how a [`ModelCache`] has been used.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelCacheStats {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups answered from the on-disk store.
    pub disk_hits: u64,
    /// Lookups that had to train.
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Models currently held in memory.
    pub entries: usize,
}

impl ModelCacheStats {
    /// Total lookups served.
    pub fn lookups(&self) -> u64 {
        self.hits + self.disk_hits + self.misses
    }

    /// Accumulates another cache's counters — the cluster-wide view of a
    /// serve run whose worker processes each hold their own `ModelCache`
    /// over one shared disk directory.  `entries` sums resident models
    /// across the absorbed caches (they live in different processes).
    pub fn absorb(&mut self, other: &ModelCacheStats) {
        self.hits += other.hits;
        self.disk_hits += other.disk_hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.entries += other.entries;
    }
}

impl std::fmt::Display for ModelCacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} lookups: {} hits, {} disk hits, {} misses ({} trained), {} evictions, {} resident",
            self.lookups(),
            self.hits,
            self.disk_hits,
            self.misses,
            self.misses,
            self.evictions,
            self.entries
        )
    }
}

struct CacheInner {
    map: BTreeMap<ModelKey, VvdModel>,
    /// Keys in least-recently-used-first order.
    lru: VecDeque<ModelKey>,
    stats: ModelCacheStats,
}

/// A thread-safe, content-addressed store of trained [`VvdModel`]s.
pub struct ModelCache {
    inner: Mutex<CacheInner>,
    /// 0 = unbounded.
    capacity: usize,
    disk_dir: Option<PathBuf>,
}

impl ModelCache {
    /// An unbounded in-memory cache.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An in-memory cache holding at most `capacity` models (`0` =
    /// unbounded), evicting least-recently-used entries.
    pub fn with_capacity(capacity: usize) -> Self {
        ModelCache {
            inner: Mutex::new(CacheInner {
                map: BTreeMap::new(),
                lru: VecDeque::new(),
                stats: ModelCacheStats::default(),
            }),
            capacity,
            disk_dir: None,
        }
    }

    /// Adds an on-disk layer: misses consult `dir/<key>.json` before
    /// training, and freshly trained models are written there (best
    /// effort — I/O errors fall back to memory-only operation).
    pub fn with_disk_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.disk_dir = Some(dir.into());
        self
    }

    /// Returns the model for `key`, training it with `train` on a miss.
    ///
    /// The training report is returned only when a training actually ran
    /// (callers surface reports once per distinct training, exactly like
    /// the pre-cache harness did).  Models handed out are `Arc`-shared
    /// clones: no weight duplication.
    ///
    /// Training runs outside the cache lock, so concurrent misses on
    /// *different* keys train in parallel.  Two racing misses on the same
    /// key both train — deterministically to bit-identical weights, so
    /// whichever insert wins, every caller sees the same model.
    pub fn get_or_train(
        &self,
        key: ModelKey,
        train: impl FnOnce() -> (VvdModel, VvdTrainingReport),
    ) -> (VvdModel, Option<VvdTrainingReport>) {
        {
            let mut inner = self.inner.lock().expect("model cache poisoned");
            if let Some(model) = inner.map.get(&key).cloned() {
                inner.stats.hits += 1;
                touch(&mut inner.lru, key);
                return (model, None);
            }
        }

        if let Some(model) = self.load_from_disk(key) {
            let mut inner = self.inner.lock().expect("model cache poisoned");
            inner.stats.disk_hits += 1;
            self.insert_locked(&mut inner, key, model.clone());
            return (model, None);
        }

        let (model, report) = train();
        self.store_to_disk(key, &model);
        let mut inner = self.inner.lock().expect("model cache poisoned");
        inner.stats.misses += 1;
        self.insert_locked(&mut inner, key, model.clone());
        (model, Some(report))
    }

    /// A snapshot of the usage counters.
    pub fn stats(&self) -> ModelCacheStats {
        self.inner.lock().expect("model cache poisoned").stats
    }

    /// Number of models resident in memory.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("model cache poisoned").map.len()
    }

    /// `true` when no model is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn insert_locked(&self, inner: &mut CacheInner, key: ModelKey, model: VvdModel) {
        if inner.map.insert(key, model).is_none() {
            inner.lru.push_back(key);
        } else {
            touch(&mut inner.lru, key);
        }
        if self.capacity > 0 {
            while inner.map.len() > self.capacity {
                let Some(oldest) = inner.lru.pop_front() else {
                    break;
                };
                inner.map.remove(&oldest);
                inner.stats.evictions += 1;
            }
        }
        inner.stats.entries = inner.map.len();
    }

    fn disk_path(&self, key: ModelKey) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|dir| dir.join(format!("{}.json", key.to_hex())))
    }

    fn load_from_disk(&self, key: ModelKey) -> Option<VvdModel> {
        let path = self.disk_path(key)?;
        let json = std::fs::read_to_string(path).ok()?;
        VvdModel::from_json(&json).ok()
    }

    fn store_to_disk(&self, key: ModelKey, model: &VvdModel) {
        let Some(path) = self.disk_path(key) else {
            return;
        };
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        // Publish atomically (write + rename) so concurrent writers
        // sharing the directory — worker threads of this process or other
        // worker *processes* — never observe a torn file.  The temp name
        // must be unique per publish, not just per process: two handles in
        // one process racing the same key with a pid-only suffix would
        // interleave writes into one temp file and rename a torn document
        // into place.
        static PUBLISH_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = PUBLISH_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = path.with_extension(format!("tmp-{}-{seq}", std::process::id()));
        if std::fs::write(&tmp, model.to_json()).is_ok() && std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

impl Default for ModelCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Moves `key` to the most-recently-used end.
fn touch(lru: &mut VecDeque<ModelKey>, key: ModelKey) {
    if let Some(pos) = lru.iter().position(|k| *k == key) {
        lru.remove(pos);
    }
    lru.push_back(key);
}

#[cfg(test)]
mod tests {
    use super::*;
    use vvd_core::{VvdConfig, VvdDataset, VvdSample, VvdVariant};
    use vvd_dsp::{Complex, FirFilter};
    use vvd_vision::DepthImage;

    fn dataset(n: usize, offset: usize) -> VvdDataset {
        let mut ds = VvdDataset::new();
        for k in 0..n {
            let mut img = DepthImage::filled(30, 26, 0.8);
            img.set(4, (k * 3 + offset) % 20, 0.2);
            let mut taps = vec![Complex::ZERO; 3];
            taps[1] = Complex::new(1e-3 + 1e-5 * k as f64, -5e-4);
            ds.push(VvdSample {
                image: img,
                target_cir: FirFilter::from_taps(&taps),
            });
        }
        ds
    }

    fn config() -> VvdConfig {
        let mut cfg = VvdConfig::quick();
        cfg.conv_filters = 2;
        cfg.dense_units = 8;
        cfg.channel_taps = 3;
        cfg.epochs = 1;
        cfg
    }

    fn train_pair(offset: usize) -> (ModelKey, VvdModel, VvdTrainingReport) {
        let cfg = config();
        let train = dataset(6, offset);
        let key = ModelKey::for_training(VvdVariant::Current, &cfg, &train, &VvdDataset::new());
        let (model, report) =
            VvdModel::train(VvdVariant::Current, &cfg, &train, &VvdDataset::new());
        (key, model, report)
    }

    #[test]
    fn second_lookup_is_a_hit_with_identical_predictions() {
        let cache = ModelCache::new();
        let (key, model, report) = train_pair(0);
        let probe = dataset(1, 0).samples[0].image.clone();

        let (first, first_report) = cache.get_or_train(key, || (model.clone(), report.clone()));
        assert!(first_report.is_some(), "first lookup trains");
        let (second, second_report) = cache.get_or_train(key, || panic!("hit must not retrain"));
        assert!(second_report.is_none(), "second lookup hits");
        assert_eq!(
            first.predict_cir(&probe).taps(),
            second.predict_cir(&probe).taps()
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let cache = ModelCache::with_capacity(1);
        let (key_a, model_a, report_a) = train_pair(0);
        let (key_b, model_b, report_b) = train_pair(1);
        assert_ne!(key_a, key_b);
        let _ = cache.get_or_train(key_a, || (model_a.clone(), report_a.clone()));
        let _ = cache.get_or_train(key_b, || (model_b.clone(), report_b.clone()));
        assert_eq!(cache.len(), 1);
        // key_a was evicted: looking it up again must retrain.
        let (_, retrained) = cache.get_or_train(key_a, || (model_a.clone(), report_a.clone()));
        assert!(retrained.is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.misses, 3);
    }

    #[test]
    fn disk_layer_survives_a_new_cache_instance() {
        let dir = std::env::temp_dir().join(format!("vvd-model-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (key, model, report) = train_pair(2);
        let probe = dataset(1, 2).samples[0].image.clone();
        let expected = model.predict_cir(&probe);

        let warm = ModelCache::new().with_disk_dir(&dir);
        let _ = warm.get_or_train(key, || (model.clone(), report.clone()));
        assert_eq!(warm.stats().misses, 1);

        // A fresh cache over the same directory loads from disk.
        let cold = ModelCache::new().with_disk_dir(&dir);
        let (loaded, loaded_report) =
            cold.get_or_train(key, || panic!("disk hit must not retrain"));
        assert!(loaded_report.is_none());
        assert_eq!(cold.stats().disk_hits, 1);
        assert_eq!(
            loaded.predict_cir(&probe).taps(),
            expected.taps(),
            "disk-loaded model must predict bit-identically"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_display_is_informative() {
        let cache = ModelCache::new();
        let s = cache.stats().to_string();
        assert!(s.contains("0 lookups"));
    }

    #[test]
    fn capacity_zero_is_unbounded() {
        let cache = ModelCache::with_capacity(0);
        for offset in 0..3 {
            let (key, model, report) = train_pair(offset);
            let _ = cache.get_or_train(key, || (model.clone(), report.clone()));
        }
        let stats = cache.stats();
        assert_eq!(stats.evictions, 0, "capacity 0 must never evict");
        assert_eq!(stats.entries, 3);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn capacity_one_keeps_exactly_the_last_model_and_repeat_lookups_hit() {
        let cache = ModelCache::with_capacity(1);
        let (key, model, report) = train_pair(0);
        let _ = cache.get_or_train(key, || (model.clone(), report.clone()));
        // Re-looking-up the resident key must not evict it.
        for _ in 0..3 {
            let (_, retrained) = cache.get_or_train(key, || panic!("hit must not retrain"));
            assert!(retrained.is_none());
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (3, 1, 0));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn lru_order_follows_recency_of_use() {
        let cache = ModelCache::with_capacity(2);
        let (key_a, model_a, report_a) = train_pair(0);
        let (key_b, model_b, report_b) = train_pair(1);
        let (key_c, model_c, report_c) = train_pair(2);
        let _ = cache.get_or_train(key_a, || (model_a.clone(), report_a.clone()));
        let _ = cache.get_or_train(key_b, || (model_b.clone(), report_b.clone()));
        // Touch A so that B becomes the least recently used entry …
        let _ = cache.get_or_train(key_a, || panic!("A is resident"));
        // … and C's insertion must evict B, not A.
        let _ = cache.get_or_train(key_c, || (model_c.clone(), report_c.clone()));
        let (_, a_again) = cache.get_or_train(key_a, || panic!("A must have survived"));
        assert!(a_again.is_none());
        let (_, b_again) = cache.get_or_train(key_b, || (model_b.clone(), report_b.clone()));
        assert!(b_again.is_some(), "B was evicted and must retrain");
    }

    #[test]
    fn corrupt_and_truncated_disk_entries_degrade_to_misses() {
        let dir = std::env::temp_dir().join(format!(
            "vvd-model-cache-corrupt-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let (key, model, report) = train_pair(3);
        let probe = dataset(1, 3).samples[0].image.clone();
        let expected = model.predict_cir(&probe);
        let path = dir.join(format!("{}.json", key.to_hex()));

        for garbage in ["not json at all", "{\"variant\":", ""] {
            std::fs::write(&path, garbage).unwrap();
            let cache = ModelCache::new().with_disk_dir(&dir);
            let (loaded, retrained) = cache.get_or_train(key, || (model.clone(), report.clone()));
            assert!(
                retrained.is_some(),
                "a corrupt entry ({garbage:?}) must retrain, not panic"
            );
            let stats = cache.stats();
            assert_eq!(
                (stats.hits, stats.disk_hits, stats.misses),
                (0, 0, 1),
                "a corrupt entry counts as a plain miss"
            );
            assert_eq!(loaded.predict_cir(&probe).taps(), expected.taps());
        }

        // A truncated valid document (half of a real serialisation) is
        // also just a miss — and retraining heals the on-disk entry.
        let full = model.to_json();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let cache = ModelCache::new().with_disk_dir(&dir);
        let (_, retrained) = cache.get_or_train(key, || (model.clone(), report.clone()));
        assert!(retrained.is_some(), "a truncated entry must retrain");
        let healed = ModelCache::new().with_disk_dir(&dir);
        let (_, from_disk) = healed.get_or_train(key, || panic!("healed entry must load"));
        assert!(from_disk.is_none());
        assert_eq!(healed.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn racing_handles_on_one_disk_dir_publish_consistently() {
        // Two independent cache handles over ONE disk directory — the
        // in-process model of two worker processes sharing
        // `VVD_MODEL_CACHE_DIR`.  Both race publish/load on the same key
        // from several threads; whichever publish wins the rename, the
        // on-disk file must stay a complete, loadable document (atomic
        // publishes with per-publish temp names), and every handle's
        // counters must account each lookup exactly once.
        let dir =
            std::env::temp_dir().join(format!("vvd-model-cache-race-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (key, model, report) = train_pair(4);
        let probe = dataset(1, 4).samples[0].image.clone();
        let expected = model.predict_cir(&probe);

        let handle_a = ModelCache::new().with_disk_dir(&dir);
        let handle_b = ModelCache::new().with_disk_dir(&dir);
        let rounds = 8;
        std::thread::scope(|scope| {
            for cache in [&handle_a, &handle_b] {
                for _ in 0..2 {
                    scope.spawn(|| {
                        for _ in 0..rounds {
                            let (m, _) =
                                cache.get_or_train(key, || (model.clone(), report.clone()));
                            assert_eq!(m.predict_cir(&probe).taps(), expected.taps());
                        }
                    });
                }
            }
        });

        for cache in [&handle_a, &handle_b] {
            let stats = cache.stats();
            assert_eq!(
                stats.lookups(),
                2 * rounds,
                "every lookup is exactly one of hit/disk-hit/miss: {stats}"
            );
            assert_eq!(stats.entries, 1);
            assert_eq!(stats.evictions, 0);
        }

        // The loser of every publish race left no torn state behind: the
        // file loads, predicts bit-identically, and no temp files linger.
        let fresh = ModelCache::new().with_disk_dir(&dir);
        let (winner, retrained) = fresh.get_or_train(key, || panic!("published file must load"));
        assert!(retrained.is_none());
        assert_eq!(fresh.stats().disk_hits, 1);
        assert_eq!(winner.predict_cir(&probe).taps(), expected.taps());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|name| !name.ends_with(".json"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "publish races must clean up temp files: {leftovers:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_absorb_sums_per_worker_counters() {
        let mut total = ModelCacheStats::default();
        total.absorb(&ModelCacheStats {
            hits: 3,
            disk_hits: 1,
            misses: 2,
            evictions: 0,
            entries: 2,
        });
        total.absorb(&ModelCacheStats {
            hits: 1,
            disk_hits: 4,
            misses: 0,
            evictions: 1,
            entries: 1,
        });
        assert_eq!(
            total,
            ModelCacheStats {
                hits: 4,
                disk_hits: 5,
                misses: 2,
                evictions: 1,
                entries: 3,
            }
        );
        assert_eq!(total.lookups(), 11);
    }

    #[test]
    fn counters_stay_consistent_across_mixed_traffic() {
        let cache = ModelCache::with_capacity(1);
        let (key_a, model_a, report_a) = train_pair(0);
        let (key_b, model_b, report_b) = train_pair(1);
        let mut expected_lookups = 0u64;
        for _ in 0..3 {
            let _ = cache.get_or_train(key_a, || (model_a.clone(), report_a.clone()));
            let _ = cache.get_or_train(key_b, || (model_b.clone(), report_b.clone()));
            expected_lookups += 2;
        }
        let stats = cache.stats();
        assert_eq!(stats.lookups(), expected_lookups);
        assert_eq!(
            stats.hits + stats.disk_hits + stats.misses,
            expected_lookups
        );
        // Thrashing between two keys with capacity 1: every lookup misses
        // and every insert beyond the first evicts.
        assert_eq!(stats.misses, 6);
        assert_eq!(stats.evictions, 5);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.entries, cache.len());
        assert!(!cache.is_empty());
    }
}
