//! Mean phase-offset alignment between channel estimates (Eq. 8).
//!
//! Blind estimates (previous packet, Kalman prediction, VVD output) are
//! expressed in the phase reference of *their* source, while the received
//! block carries the current packet's crystal-induced phase offset.  The
//! paper aligns them by the correlation method of Eq. 8 using the known
//! parts of the received signal (footnote 4); this module provides that
//! alignment at the FIR-filter level.

use vvd_dsp::correlation::mean_phase_offset;
use vvd_dsp::{Complex, FirFilter};

/// Rotates `estimate` so that its mean phase matches `reference`
/// (`reference` is typically a rough preamble-based LS estimate of the
/// current packet).
///
/// Returns the rotated estimate together with the applied rotation angle.
pub fn align_mean_phase(estimate: &FirFilter, reference: &FirFilter) -> (FirFilter, f64) {
    assert_eq!(
        estimate.len(),
        reference.len(),
        "phase alignment requires equal tap counts"
    );
    // θ = arg{ h_ref · h_estᴴ }: rotating the estimate by θ aligns it with
    // the reference in the mean-phase sense.
    let theta = mean_phase_offset(reference.taps(), estimate.taps());
    (estimate.rotated(Complex::cis(theta)), theta)
}

/// Phase-aligned mean squared error between two estimates: the MSE after
/// removing the common mean phase rotation.  Used by the hypothesis test
/// (Fig. 5), where the constellation comparison is done "after the mean
/// phase shift is corrected".
pub fn phase_aligned_mse(a: &FirFilter, b: &FirFilter) -> f64 {
    let (aligned, _) = align_mean_phase(a, b);
    aligned.taps().squared_error(b.taps()) / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vvd_dsp::Complex;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    fn channel() -> FirFilter {
        FirFilter::from_taps(&[c(0.02, 0.0), c(0.8, 0.3), c(0.2, -0.4), c(0.05, 0.1)])
    }

    #[test]
    fn alignment_recovers_pure_rotation() {
        let h = channel();
        for &theta in &[-2.7f64, -1.0, 0.0, 0.8, 2.3] {
            let rotated = h.rotated(Complex::cis(theta));
            let (aligned, applied) = align_mean_phase(&rotated, &h);
            assert!(aligned.taps().squared_error(h.taps()) < 1e-24);
            // The applied rotation undoes the original one (mod 2π).
            let diff = (applied + theta).rem_euclid(2.0 * std::f64::consts::PI);
            assert!(diff < 1e-9 || (2.0 * std::f64::consts::PI - diff) < 1e-9);
        }
    }

    #[test]
    fn alignment_is_noop_for_already_aligned() {
        let h = channel();
        let (aligned, theta) = align_mean_phase(&h, &h);
        assert!(theta.abs() < 1e-12);
        assert_eq!(aligned, h);
    }

    #[test]
    fn phase_aligned_mse_ignores_common_rotation_but_sees_shape_changes() {
        let h = channel();
        let rotated = h.rotated(Complex::cis(1.3));
        assert!(phase_aligned_mse(&rotated, &h) < 1e-24);

        let mut different = h.taps().clone();
        different[1] += c(0.3, -0.3);
        let different = FirFilter::new(different);
        assert!(phase_aligned_mse(&different, &h) > 1e-3);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let a = FirFilter::from_taps(&[Complex::ONE; 3]);
        let b = FirFilter::from_taps(&[Complex::ONE; 4]);
        let _ = align_mean_phase(&a, &b);
    }
}
