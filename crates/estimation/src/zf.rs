//! Zero-forcing equalization (Eq. 6–7 of the paper).
//!
//! Given an estimated channel `ĥ`, the equalizer is the LS solution of
//! `Hᵏ c = u` where `Hᵏ` is the convolution matrix of the estimate and `u`
//! selects the overall cascade delay (the number of pre-cursor and
//! post-cursor taps).  The equalized signal is then re-aligned by that
//! cascade delay before matched-filter demodulation.

use vvd_dsp::convolution::convolution_matrix;
use vvd_dsp::solve::{least_squares, SolveError};
use vvd_dsp::{CVec, Complex, FirFilter};

/// A designed zero-forcing equalizer.
#[derive(Debug, Clone, PartialEq)]
pub struct ZfEqualizer {
    filter: FirFilter,
    cascade_delay: usize,
}

impl ZfEqualizer {
    /// Designs a ZF equalizer of `equalizer_taps` taps for the given channel
    /// estimate.
    ///
    /// The cascade delay (position of the `1` in `u`) defaults to
    /// `dominant_tap(ĥ) + equalizer_taps / 2`, which centres the equalizer
    /// around the channel's main tap; it can be overridden with
    /// [`ZfEqualizer::design_with_delay`].
    ///
    /// # Errors
    /// Fails when the channel estimate is degenerate (all-zero taps).
    pub fn design(channel_estimate: &FirFilter, equalizer_taps: usize) -> Result<Self, SolveError> {
        let dom = channel_estimate.dominant_tap().unwrap_or(0);
        let delay = dom + equalizer_taps / 2;
        Self::design_with_delay(channel_estimate, equalizer_taps, delay)
    }

    /// Designs a ZF equalizer with an explicit cascade delay.
    ///
    /// # Errors
    /// Fails when the channel estimate is degenerate (all-zero taps) or the
    /// requested delay lies outside the cascade response.
    pub fn design_with_delay(
        channel_estimate: &FirFilter,
        equalizer_taps: usize,
        cascade_delay: usize,
    ) -> Result<Self, SolveError> {
        assert!(equalizer_taps >= 1, "equalizer needs at least one tap");
        let n = channel_estimate.len();
        let cascade_len = n + equalizer_taps - 1;
        if cascade_delay >= cascade_len {
            return Err(SolveError::DimensionMismatch);
        }
        // H is the convolution matrix of the channel estimate for an
        // equalizer of length L: (L + N - 1) x L.
        let h = convolution_matrix(channel_estimate.taps().as_slice(), equalizer_taps);
        let mut u = CVec::zeros(cascade_len);
        u[cascade_delay] = Complex::ONE;
        let taps = least_squares(&h, &u)?;
        Ok(ZfEqualizer {
            filter: FirFilter::new(taps),
            cascade_delay,
        })
    }

    /// The equalizer's FIR taps.
    pub fn filter(&self) -> &FirFilter {
        &self.filter
    }

    /// The overall cascade delay the equalizer was designed for.
    pub fn cascade_delay(&self) -> usize {
        self.cascade_delay
    }

    /// Equalizes a received block and re-aligns it to the transmitted-sample
    /// timeline, returning `output_len` samples.
    ///
    /// `received` is the raw captured block (full convolution of the
    /// transmitted waveform with the physical channel); the output is the
    /// estimate of the transmitted waveform.
    pub fn equalize(&self, received: &[Complex], output_len: usize) -> CVec {
        let filtered = self.filter.filter_full(received);
        let mut out = CVec::zeros(output_len);
        for k in 0..output_len {
            let idx = k + self.cascade_delay;
            if idx < filtered.len() {
                out[k] = filtered[idx];
            }
        }
        out
    }

    /// Residual inter-symbol interference of the cascade `ĥ * c` relative to
    /// the ideal delayed impulse: `Σ_{k≠d} |cascade[k]|² / |cascade[d]|²`.
    ///
    /// A perfectly invertible channel gives ~0; values near or above 1 mean
    /// the equalizer cannot concentrate the energy (deep spectral nulls).
    pub fn residual_isi(&self, channel: &FirFilter) -> f64 {
        let cascade = channel.cascade(&self.filter);
        let taps = cascade.taps();
        let main = taps[self.cascade_delay.min(taps.len().saturating_sub(1))].norm_sqr();
        if main == 0.0 {
            return f64::INFINITY;
        }
        let rest: f64 = taps
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != self.cascade_delay)
            .map(|(_, v)| v.norm_sqr())
            .sum();
        rest / main
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    fn multipath_channel() -> FirFilter {
        let mut taps = vec![Complex::ZERO; 9];
        taps[3] = c(0.8, 0.4);
        taps[4] = c(0.3, -0.2);
        taps[6] = c(-0.15, 0.1);
        FirFilter::from_taps(&taps)
    }

    #[test]
    fn identity_channel_yields_identity_like_equalizer() {
        let channel = FirFilter::identity();
        let eq = ZfEqualizer::design(&channel, 5).unwrap();
        let x: Vec<Complex> = (0..32)
            .map(|i| c((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let received = channel.filter_full(&x);
        let out = eq.equalize(received.as_slice(), x.len());
        assert!(out.squared_error(&CVec(x)) < 1e-18);
    }

    #[test]
    fn equalizer_inverts_multipath_channel() {
        let channel = multipath_channel();
        let eq = ZfEqualizer::design(&channel, 31).unwrap();
        let x: Vec<Complex> = (0..256)
            .map(|i| {
                c(
                    ((i * 7) % 13) as f64 / 13.0 - 0.5,
                    ((i * 5) % 11) as f64 / 11.0 - 0.5,
                )
            })
            .collect();
        let received = channel.filter_full(&x);
        let out = eq.equalize(received.as_slice(), x.len());
        // Interior samples (away from edge transients) must match closely.
        let interior_err: f64 = (20..236).map(|k| (out[k] - x[k]).norm_sqr()).sum::<f64>() / 216.0;
        let signal_power: f64 = x.iter().map(|v| v.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!(
            interior_err / signal_power < 1e-2,
            "residual error ratio {}",
            interior_err / signal_power
        );
        assert!(eq.residual_isi(&channel) < 0.05);
    }

    #[test]
    fn residual_isi_detects_poor_equalization() {
        let channel = multipath_channel();
        // A 3-tap equalizer cannot invert a 9-tap channel well.
        let short = ZfEqualizer::design(&channel, 3).unwrap();
        let long = ZfEqualizer::design(&channel, 31).unwrap();
        assert!(short.residual_isi(&channel) > long.residual_isi(&channel));
    }

    #[test]
    fn degenerate_channel_estimate_is_an_error() {
        let zero = FirFilter::from_taps(&[Complex::ZERO; 4]);
        assert!(ZfEqualizer::design(&zero, 7).is_err());
    }

    #[test]
    fn invalid_delay_is_rejected() {
        let channel = FirFilter::identity();
        assert!(ZfEqualizer::design_with_delay(&channel, 5, 100).is_err());
    }

    #[test]
    fn equalize_pads_when_output_longer_than_filtered() {
        let channel = FirFilter::identity();
        let eq = ZfEqualizer::design(&channel, 3).unwrap();
        let out = eq.equalize(&[Complex::ONE; 4], 10);
        assert_eq!(out.len(), 10);
        assert_eq!(out[9], Complex::ZERO);
    }

    #[test]
    fn scaled_channel_estimate_scales_output_inversely() {
        // ZF with a known gain error produces an output scaled by 1/gain —
        // the despreader is scale-invariant so this is harmless, but the
        // behaviour should be deterministic.
        let channel = multipath_channel();
        let eq_true = ZfEqualizer::design(&channel, 21).unwrap();
        let eq_scaled = ZfEqualizer::design(&channel.scaled(2.0), 21).unwrap();
        let x = vec![Complex::ONE; 64];
        let received = channel.filter_full(&x);
        let a = eq_true.equalize(received.as_slice(), 64);
        let b = eq_scaled.equalize(received.as_slice(), 64);
        for k in 10..50 {
            assert!((a[k] - b[k].scale(2.0)).abs() < 1e-6);
        }
    }
}
