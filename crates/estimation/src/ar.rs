//! Autoregressive model fitting via the Yule–Walker equations (Eq. 12–14).
//!
//! For the Kalman baselines the paper fits an AR(p) process to each channel
//! tap using the autocorrelation coefficients of the perfect channel
//! estimates from the training sets, then drives a per-tap Kalman filter
//! with the resulting state-transition matrix.

use vvd_dsp::correlation::autocorrelation_coefficients;
use vvd_dsp::solve::{solve_linear, SolveError};
use vvd_dsp::{CMatrix, CVec, Complex};

/// Fits AR(p) coefficients `φ₁..φ_p` to a (complex) tap sequence with the
/// Yule–Walker equations: `R φ = r`.
///
/// Returns the AR coefficient vector.  When the tap sequence has (near) zero
/// energy or the autocorrelation matrix is singular the fit falls back to a
/// persistence model (`φ₁ = 1`, rest 0), which keeps downstream Kalman
/// filters well-defined for degenerate training data.
pub fn fit_ar_coefficients(tap_sequence: &[Complex], order: usize) -> CVec {
    assert!(order >= 1, "AR order must be at least 1");
    let fallback = || {
        let mut phi = CVec::zeros(order);
        phi[0] = Complex::ONE;
        phi
    };
    if tap_sequence.len() < order + 2 {
        return fallback();
    }
    let r = autocorrelation_coefficients(tap_sequence, order);
    if r[0].abs() == 0.0 {
        return fallback();
    }
    match solve_yule_walker(&r, order) {
        Ok(phi) => phi,
        Err(_) => fallback(),
    }
}

/// Solves the Yule–Walker system given autocorrelation coefficients
/// `r[0..=order]` (with `r[0] = 1`).
fn solve_yule_walker(r: &CVec, order: usize) -> Result<CVec, SolveError> {
    // R is the Hermitian Toeplitz matrix of coefficients r[0..order-1].
    let mut big_r = CMatrix::zeros(order, order);
    for i in 0..order {
        for j in 0..order {
            let lag = i as isize - j as isize;
            let v = if lag >= 0 {
                r[lag as usize]
            } else {
                r[(-lag) as usize].conj()
            };
            big_r[(i, j)] = v;
        }
    }
    let rhs = CVec((1..=order).map(|k| r[k]).collect());
    solve_linear(&big_r, &rhs)
}

/// One-step-ahead AR prediction `ĥ[k] = Σ φ_i h[k-i]` from the most recent
/// `order` observations (`history[0]` is the newest).
pub fn ar_predict(phi: &CVec, history: &[Complex]) -> Complex {
    let mut acc = Complex::ZERO;
    for (i, &coef) in phi.iter().enumerate() {
        if i < history.len() {
            acc += coef * history[i];
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generates a synthetic AR(1) sequence h[k] = a*h[k-1] + w[k].
    fn ar1_sequence(a: Complex, n: usize) -> Vec<Complex> {
        let mut seq = Vec::with_capacity(n);
        let mut h = Complex::new(1.0, 0.5);
        for k in 0..n {
            // Small deterministic "innovation" to keep the test reproducible.
            let w = Complex::new(
                ((k * 37 % 11) as f64 - 5.0) * 1e-3,
                ((k * 13 % 7) as f64 - 3.0) * 1e-3,
            );
            h = a * h + w;
            seq.push(h);
        }
        seq
    }

    #[test]
    fn recovers_ar1_coefficient() {
        let a = Complex::new(0.9, 0.05);
        let seq = ar1_sequence(a, 400);
        let phi = fit_ar_coefficients(&seq, 1);
        assert!(
            (phi[0] - a).abs() < 0.08,
            "estimated {} vs true {a}",
            phi[0]
        );
    }

    #[test]
    fn higher_order_fit_keeps_first_coefficient_dominant() {
        let a = Complex::new(0.85, 0.0);
        let seq = ar1_sequence(a, 400);
        let phi = fit_ar_coefficients(&seq, 5);
        assert_eq!(phi.len(), 5);
        assert!(phi[0].abs() > phi[2].abs());
        assert!(phi[0].abs() > phi[4].abs());
    }

    #[test]
    fn degenerate_sequences_fall_back_to_persistence() {
        let zeros = vec![Complex::ZERO; 50];
        let phi = fit_ar_coefficients(&zeros, 3);
        assert_eq!(phi[0], Complex::ONE);
        assert_eq!(phi[1], Complex::ZERO);

        let tiny = vec![Complex::new(1.0, 0.0); 3];
        let phi_short = fit_ar_coefficients(&tiny, 5);
        assert_eq!(phi_short[0], Complex::ONE);
    }

    #[test]
    fn prediction_of_constant_sequence_is_the_constant() {
        let seq = vec![Complex::new(0.7, -0.2); 100];
        let phi = fit_ar_coefficients(&seq, 1);
        let pred = ar_predict(&phi, &[Complex::new(0.7, -0.2)]);
        assert!((pred - Complex::new(0.7, -0.2)).abs() < 0.05);
    }

    #[test]
    fn prediction_handles_short_history() {
        let phi = CVec(vec![Complex::new(0.5, 0.0), Complex::new(0.3, 0.0)]);
        // Only one history sample available: second term ignored.
        let pred = ar_predict(&phi, &[Complex::new(2.0, 0.0)]);
        assert!((pred - Complex::new(1.0, 0.0)).abs() < 1e-12);
    }
}
