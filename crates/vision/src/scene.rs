//! Scene description and ray intersections.
//!
//! The rendered scene mirrors the laboratory of the measurement campaign:
//! a floor and walls, a handful of box-shaped metallic objects (PCs,
//! robots), and a cylinder for the single mobile human.  Only depth matters,
//! so primitives carry no material information.

use serde::{Deserialize, Serialize};

/// A 3-D vector / point used by the renderer (kept separate from the
/// channel crate's `Point3` to avoid a dependency cycle; the testbed
/// converts between them).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// Creates a vector.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Vector addition.
    #[allow(clippy::should_implement_trait)] // deliberate: keeps Vec3 a plain POD with explicit math helpers
    pub fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }

    /// Vector subtraction.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }

    /// Scalar multiplication.
    pub fn scale(self, k: f64) -> Vec3 {
        Vec3::new(self.x * k, self.y * k, self.z * k)
    }

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Unit vector (zero vector returned unchanged).
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n == 0.0 {
            self
        } else {
            self.scale(1.0 / n)
        }
    }
}

/// A ray with origin and (unit) direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Ray origin.
    pub origin: Vec3,
    /// Ray direction (assumed normalised).
    pub direction: Vec3,
}

/// An axis-aligned box.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Builds a box from centre, half-extents in x/y and height (z from 0).
    pub fn from_footprint(cx: f64, cy: f64, half_extent: f64, height: f64) -> Self {
        Aabb {
            min: Vec3::new(cx - half_extent, cy - half_extent, 0.0),
            max: Vec3::new(cx + half_extent, cy + half_extent, height),
        }
    }

    /// Distance along the ray to the nearest intersection, if any (slab
    /// method).
    pub fn intersect(&self, ray: &Ray) -> Option<f64> {
        let mut t_min = 0.0f64;
        let mut t_max = f64::INFINITY;
        let origin = [ray.origin.x, ray.origin.y, ray.origin.z];
        let dir = [ray.direction.x, ray.direction.y, ray.direction.z];
        let mins = [self.min.x, self.min.y, self.min.z];
        let maxs = [self.max.x, self.max.y, self.max.z];
        for i in 0..3 {
            if dir[i].abs() < 1e-12 {
                if origin[i] < mins[i] || origin[i] > maxs[i] {
                    return None;
                }
            } else {
                let inv = 1.0 / dir[i];
                let mut t0 = (mins[i] - origin[i]) * inv;
                let mut t1 = (maxs[i] - origin[i]) * inv;
                if t0 > t1 {
                    std::mem::swap(&mut t0, &mut t1);
                }
                t_min = t_min.max(t0);
                t_max = t_max.min(t1);
                if t_min > t_max {
                    return None;
                }
            }
        }
        if t_min > 1e-9 {
            Some(t_min)
        } else if t_max > 1e-9 {
            Some(t_max)
        } else {
            None
        }
    }
}

/// A finite vertical cylinder (axis parallel to z).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VerticalCylinder {
    /// Axis x position.
    pub x: f64,
    /// Axis y position.
    pub y: f64,
    /// Radius.
    pub radius: f64,
    /// Bottom z (usually 0).
    pub z_min: f64,
    /// Top z.
    pub z_max: f64,
}

impl VerticalCylinder {
    /// Distance along the ray to the nearest intersection with the lateral
    /// surface or the top cap, if any.
    pub fn intersect(&self, ray: &Ray) -> Option<f64> {
        let mut best: Option<f64> = None;

        // Lateral surface: solve quadratic in the xy-plane.
        let ox = ray.origin.x - self.x;
        let oy = ray.origin.y - self.y;
        let dx = ray.direction.x;
        let dy = ray.direction.y;
        let a = dx * dx + dy * dy;
        if a > 1e-12 {
            let b = 2.0 * (ox * dx + oy * dy);
            let c = ox * ox + oy * oy - self.radius * self.radius;
            let disc = b * b - 4.0 * a * c;
            if disc >= 0.0 {
                let sqrt_disc = disc.sqrt();
                for &t in &[(-b - sqrt_disc) / (2.0 * a), (-b + sqrt_disc) / (2.0 * a)] {
                    if t > 1e-9 {
                        let z = ray.origin.z + t * ray.direction.z;
                        if z >= self.z_min && z <= self.z_max {
                            best = Some(best.map_or(t, |cur: f64| cur.min(t)));
                        }
                    }
                }
            }
        }

        // Top cap (a disc at z_max).
        if ray.direction.z.abs() > 1e-12 {
            let t = (self.z_max - ray.origin.z) / ray.direction.z;
            if t > 1e-9 {
                let px = ray.origin.x + t * ray.direction.x - self.x;
                let py = ray.origin.y + t * ray.direction.y - self.y;
                if px * px + py * py <= self.radius * self.radius {
                    best = Some(best.map_or(t, |cur: f64| cur.min(t)));
                }
            }
        }
        best
    }
}

/// An axis-aligned plane (floor or wall) hit from the front side.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Plane {
    /// Horizontal plane z = value (the floor).
    Z(f64),
    /// Vertical plane x = value.
    X(f64),
    /// Vertical plane y = value.
    Y(f64),
}

impl Plane {
    /// Distance along the ray to the plane, if hit in front of the origin.
    pub fn intersect(&self, ray: &Ray) -> Option<f64> {
        let (target, origin, dir) = match self {
            Plane::Z(v) => (*v, ray.origin.z, ray.direction.z),
            Plane::X(v) => (*v, ray.origin.x, ray.direction.x),
            Plane::Y(v) => (*v, ray.origin.y, ray.direction.y),
        };
        if dir.abs() < 1e-12 {
            return None;
        }
        let t = (target - origin) / dir;
        if t > 1e-9 {
            Some(t)
        } else {
            None
        }
    }
}

/// The complete render scene.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scene {
    /// Background planes (floor and walls).
    pub planes: Vec<Plane>,
    /// Static box-shaped objects.
    pub boxes: Vec<Aabb>,
    /// Mobile cylinders (the human; empty when the room is empty).
    pub cylinders: Vec<VerticalCylinder>,
    /// Depth assigned to rays that hit nothing (metres).
    pub max_depth: f64,
}

impl Scene {
    /// An empty scene with only a floor plane.
    pub fn empty(max_depth: f64) -> Self {
        Scene {
            planes: vec![Plane::Z(0.0)],
            boxes: Vec::new(),
            cylinders: Vec::new(),
            max_depth,
        }
    }

    /// Nearest hit distance of a ray against every primitive, clamped to
    /// `max_depth`.
    pub fn trace(&self, ray: &Ray) -> f64 {
        let mut best = self.max_depth;
        for p in &self.planes {
            if let Some(t) = p.intersect(ray) {
                best = best.min(t);
            }
        }
        for b in &self.boxes {
            if let Some(t) = b.intersect(ray) {
                best = best.min(t);
            }
        }
        for c in &self.cylinders {
            if let Some(t) = c.intersect(ray) {
                best = best.min(t);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ray(origin: Vec3, target: Vec3) -> Ray {
        Ray {
            origin,
            direction: target.sub(origin).normalized(),
        }
    }

    #[test]
    fn vec3_algebra() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(a.dot(b), 0.0);
        assert!((a.add(b).norm() - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(Vec3::default().normalized(), Vec3::default());
    }

    #[test]
    fn plane_intersection_distance() {
        let r = ray(Vec3::new(0.0, 0.0, 2.0), Vec3::new(0.0, 0.0, 0.0));
        assert!((Plane::Z(0.0).intersect(&r).unwrap() - 2.0).abs() < 1e-12);
        // Plane behind the ray is not hit.
        let r_up = Ray {
            origin: Vec3::new(0.0, 0.0, 2.0),
            direction: Vec3::new(0.0, 0.0, 1.0),
        };
        assert!(Plane::Z(0.0).intersect(&r_up).is_none());
    }

    #[test]
    fn aabb_intersection() {
        let b = Aabb::from_footprint(5.0, 0.0, 1.0, 2.0);
        let r = ray(Vec3::new(0.0, 0.0, 1.0), Vec3::new(5.0, 0.0, 1.0));
        let t = b.intersect(&r).unwrap();
        assert!((t - 4.0).abs() < 1e-9);
        // Ray that misses.
        let r_miss = ray(Vec3::new(0.0, 0.0, 1.0), Vec3::new(5.0, 5.0, 1.0));
        assert!(b.intersect(&r_miss).is_none());
    }

    #[test]
    fn cylinder_intersection_lateral_and_miss() {
        let c = VerticalCylinder {
            x: 3.0,
            y: 0.0,
            radius: 0.5,
            z_min: 0.0,
            z_max: 1.8,
        };
        let r = ray(Vec3::new(0.0, 0.0, 1.0), Vec3::new(3.0, 0.0, 1.0));
        let t = c.intersect(&r).unwrap();
        assert!((t - 2.5).abs() < 1e-9);
        // Passing above the cylinder misses.
        let r_above = ray(Vec3::new(0.0, 0.0, 2.5), Vec3::new(6.0, 0.0, 2.5));
        assert!(c.intersect(&r_above).is_none());
        // Looking down onto the top cap hits it.
        let r_down = ray(Vec3::new(3.0, 0.0, 3.0), Vec3::new(3.0, 0.0, 0.0));
        assert!((c.intersect(&r_down).unwrap() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn scene_trace_returns_nearest_hit() {
        let mut scene = Scene::empty(20.0);
        scene.boxes.push(Aabb::from_footprint(4.0, 0.0, 0.5, 2.0));
        scene.cylinders.push(VerticalCylinder {
            x: 2.0,
            y: 0.0,
            radius: 0.25,
            z_min: 0.0,
            z_max: 1.8,
        });
        let r = ray(Vec3::new(0.0, 0.0, 1.0), Vec3::new(6.0, 0.0, 1.0));
        // Nearest is the cylinder at x=2 (t = 1.75).
        assert!((scene.trace(&r) - 1.75).abs() < 1e-9);
        // A ray into empty space returns max_depth.
        let r_empty = Ray {
            origin: Vec3::new(0.0, 0.0, 1.0),
            direction: Vec3::new(0.0, 0.0, 1.0),
        };
        assert_eq!(scene.trace(&r_empty), 20.0);
    }
}
