//! Depth rendering: one ray per pixel, nearest hit distance.

use crate::camera::PinholeCamera;
use crate::image::DepthImage;
use crate::scene::Scene;

/// Renders a depth image of the scene from the camera's viewpoint.
///
/// Each pixel stores the Euclidean distance (metres) from the camera centre
/// to the nearest surface along the pixel ray, clamped to the scene's
/// `max_depth` — the same convention a stereo depth camera produces after
/// its internal disparity-to-depth conversion.
pub fn render_depth(scene: &Scene, camera: &PinholeCamera) -> DepthImage {
    let mut img = DepthImage::filled(camera.width, camera.height, scene.max_depth as f32);
    for row in 0..camera.height {
        for col in 0..camera.width {
            let ray = camera.ray_for_pixel(row, col);
            let depth = scene.trace(&ray);
            img.set(row, col, depth as f32);
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{Aabb, Plane, Vec3, VerticalCylinder};

    fn lab_scene_with_human(x: f64, y: f64) -> Scene {
        let mut scene = Scene {
            planes: vec![Plane::Z(0.0), Plane::Y(6.0), Plane::X(0.0), Plane::X(8.0)],
            boxes: vec![Aabb::from_footprint(2.0, 5.2, 0.35, 1.4)],
            cylinders: Vec::new(),
            max_depth: 12.0,
        };
        scene.cylinders.push(VerticalCylinder {
            x,
            y,
            radius: 0.25,
            z_min: 0.0,
            z_max: 1.8,
        });
        scene
    }

    fn camera() -> PinholeCamera {
        PinholeCamera::surveillance(Vec3::new(4.0, 0.3, 2.6), Vec3::new(4.0, 3.5, 1.0))
    }

    #[test]
    fn render_produces_expected_dimensions_and_finite_depths() {
        let img = render_depth(&lab_scene_with_human(4.0, 3.0), &camera());
        assert_eq!(img.width(), 108);
        assert_eq!(img.height(), 72);
        assert!(img.min() > 0.0);
        assert!(img.max() <= 12.0);
    }

    #[test]
    fn human_appears_as_closer_pixels() {
        let cam = camera();
        let empty = render_depth(&lab_scene_with_human(-50.0, -50.0), &cam);
        let with_human = render_depth(&lab_scene_with_human(4.0, 2.0), &cam);
        // Somewhere in the image the depth must be significantly smaller.
        let mut closer_pixels = 0usize;
        for r in 0..cam.height {
            for c in 0..cam.width {
                if with_human.get(r, c) + 0.3 < empty.get(r, c) {
                    closer_pixels += 1;
                }
            }
        }
        assert!(
            closer_pixels > 30,
            "human not visible: only {closer_pixels} closer pixels"
        );
    }

    #[test]
    fn moving_human_changes_the_image() {
        let cam = camera();
        let a = render_depth(&lab_scene_with_human(3.0, 2.5), &cam);
        let b = render_depth(&lab_scene_with_human(5.0, 2.5), &cam);
        assert!(a.mean_abs_diff(&b) > 0.005);
    }

    #[test]
    fn same_position_renders_identically() {
        let cam = camera();
        let a = render_depth(&lab_scene_with_human(3.3, 2.8), &cam);
        let b = render_depth(&lab_scene_with_human(3.3, 2.8), &cam);
        assert_eq!(a, b);
    }
}
