//! The paper's image preprocessing pipeline (Fig. 7).
//!
//! Measured 720 × 1080 frames are downsampled by a factor of 10 to 72 × 108
//! and cropped to 50 × 90 so that only the region in which mobile objects
//! can appear is kept; depths are then normalised before entering the CNN.
//! The reproduction renders directly at the downsampled resolution (the
//! renderer *is* the downsampling anti-alias filter in that case), but the
//! pipeline still supports an explicit downsample factor so the full-path
//! behaviour can be tested.

use crate::image::DepthImage;
use serde::{Deserialize, Serialize};

/// Configuration of the preprocessing pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreprocessConfig {
    /// Integer block-average downsampling factor applied first (1 = none).
    pub downsample_factor: usize,
    /// First kept row after downsampling.
    pub crop_row_start: usize,
    /// Number of kept rows (paper: 50).
    pub crop_rows: usize,
    /// First kept column after downsampling.
    pub crop_col_start: usize,
    /// Number of kept columns (paper: 90).
    pub crop_cols: usize,
    /// Depth (metres) by which pixels are divided for normalisation; equal
    /// to the camera's maximum depth so that values land in `[0, 1]`.
    pub normalization_depth: f32,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            downsample_factor: 1,
            crop_row_start: 14,
            crop_rows: 50,
            crop_col_start: 9,
            crop_cols: 90,
            normalization_depth: 12.0,
        }
    }
}

impl PreprocessConfig {
    /// Output image height after preprocessing.
    pub fn output_height(&self) -> usize {
        self.crop_rows
    }

    /// Output image width after preprocessing.
    pub fn output_width(&self) -> usize {
        self.crop_cols
    }

    /// A configuration for the paper's full-resolution path: 720 × 1080
    /// frames downsampled by 10 and cropped to 50 × 90.
    pub fn full_resolution() -> Self {
        PreprocessConfig {
            downsample_factor: 10,
            ..Self::default()
        }
    }
}

/// Applies downsampling, cropping and normalisation to a raw depth frame.
///
/// # Panics
/// Panics when the crop region does not fit into the downsampled image.
pub fn preprocess(raw: &DepthImage, cfg: &PreprocessConfig) -> DepthImage {
    let small = if cfg.downsample_factor > 1 {
        raw.downsample(cfg.downsample_factor)
    } else {
        raw.clone()
    };
    let cropped = small.crop(
        cfg.crop_row_start,
        cfg.crop_row_start + cfg.crop_rows,
        cfg.crop_col_start,
        cfg.crop_col_start + cfg.crop_cols,
    );
    cropped.scaled(cfg.normalization_depth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pipeline_produces_paper_dimensions() {
        let raw = DepthImage::filled(108, 72, 6.0);
        let cfg = PreprocessConfig::default();
        let out = preprocess(&raw, &cfg);
        assert_eq!(out.height(), 50);
        assert_eq!(out.width(), 90);
        assert_eq!((cfg.output_height(), cfg.output_width()), (50, 90));
        // Normalised values are depth / normalization_depth.
        assert!((out.get(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn full_resolution_pipeline_matches_paper() {
        // 1080 x 720 frame -> downsample by 10 -> 108 x 72 -> crop 90 x 50.
        let raw = DepthImage::filled(1080, 720, 3.0);
        let out = preprocess(&raw, &PreprocessConfig::full_resolution());
        assert_eq!(out.height(), 50);
        assert_eq!(out.width(), 90);
    }

    #[test]
    fn normalised_values_are_in_unit_range_for_in_range_depths() {
        let mut raw = DepthImage::filled(108, 72, 11.0);
        raw.set(20, 50, 0.5);
        let out = preprocess(&raw, &PreprocessConfig::default());
        assert!(out.max() <= 1.0 + 1e-6);
        assert!(out.min() >= 0.0);
    }

    #[test]
    fn crop_region_keeps_spatial_information() {
        // A close object inside the crop region must survive preprocessing.
        let mut raw = DepthImage::filled(108, 72, 10.0);
        for r in 30..45 {
            for c in 40..55 {
                raw.set(r, c, 2.0);
            }
        }
        let out = preprocess(&raw, &PreprocessConfig::default());
        let has_close = out.data().iter().any(|&v| (v - 2.0 / 12.0).abs() < 1e-6);
        assert!(has_close);
    }

    #[test]
    #[should_panic]
    fn crop_larger_than_image_panics() {
        let raw = DepthImage::filled(40, 40, 1.0);
        let _ = preprocess(&raw, &PreprocessConfig::default());
    }
}
