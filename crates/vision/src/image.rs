//! Depth image container.

use serde::{Deserialize, Serialize};

/// A single-channel depth image, row-major, depths in metres (or normalised
/// units after preprocessing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DepthImage {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl DepthImage {
    /// Creates an image filled with a constant depth.
    pub fn filled(width: usize, height: usize, value: f32) -> Self {
        DepthImage {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Creates an image from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != width * height`.
    pub fn from_data(width: usize, height: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), width * height, "depth image dimension mismatch");
        DepthImage {
            width,
            height,
            data,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of pixels.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the image has no pixels.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Pixel accessor (row, col).
    pub fn get(&self, row: usize, col: usize) -> f32 {
        self.data[row * self.width + col]
    }

    /// Mutable pixel accessor (row, col).
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        self.data[row * self.width + col] = value;
    }

    /// Row-major pixel slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Minimum pixel value (0 for an empty image).
    pub fn min(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().cloned().fold(f32::INFINITY, f32::min)
        }
    }

    /// Maximum pixel value (0 for an empty image).
    pub fn max(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
        }
    }

    /// Mean pixel value (0 for an empty image).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// Mean absolute difference against another image of the same size.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn mean_abs_diff(&self, other: &DepthImage) -> f32 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "image dimension mismatch"
        );
        if self.data.is_empty() {
            return 0.0;
        }
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / self.data.len() as f32
    }

    /// Extracts a rectangular crop (`rows` and `cols` are half-open ranges).
    ///
    /// # Panics
    /// Panics if the crop exceeds the image bounds.
    pub fn crop(
        &self,
        row_start: usize,
        row_end: usize,
        col_start: usize,
        col_end: usize,
    ) -> DepthImage {
        assert!(
            row_end <= self.height && col_end <= self.width,
            "crop out of bounds"
        );
        assert!(
            row_start <= row_end && col_start <= col_end,
            "invalid crop range"
        );
        let mut data = Vec::with_capacity((row_end - row_start) * (col_end - col_start));
        for r in row_start..row_end {
            data.extend_from_slice(
                &self.data[r * self.width + col_start..r * self.width + col_end],
            );
        }
        DepthImage::from_data(col_end - col_start, row_end - row_start, data)
    }

    /// Block-average downsampling by an integer factor (truncates edges that
    /// do not fill a whole block).
    pub fn downsample(&self, factor: usize) -> DepthImage {
        assert!(factor > 0, "downsample factor must be positive");
        let out_h = self.height / factor;
        let out_w = self.width / factor;
        let mut data = Vec::with_capacity(out_h * out_w);
        for r in 0..out_h {
            for c in 0..out_w {
                let mut acc = 0.0f32;
                for dr in 0..factor {
                    for dc in 0..factor {
                        acc += self.get(r * factor + dr, c * factor + dc);
                    }
                }
                data.push(acc / (factor * factor) as f32);
            }
        }
        DepthImage::from_data(out_w, out_h, data)
    }

    /// Returns a copy with every pixel divided by `scale`.
    pub fn scaled(&self, scale: f32) -> DepthImage {
        DepthImage {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(|v| v / scale).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(width: usize, height: usize) -> DepthImage {
        let data = (0..width * height).map(|i| i as f32).collect();
        DepthImage::from_data(width, height, data)
    }

    #[test]
    fn accessors_and_stats() {
        let img = gradient(4, 3);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.get(0, 0), 0.0);
        assert_eq!(img.get(2, 3), 11.0);
        assert_eq!(img.min(), 0.0);
        assert_eq!(img.max(), 11.0);
        assert!((img.mean() - 5.5).abs() < 1e-6);
    }

    #[test]
    fn crop_extracts_expected_region() {
        let img = gradient(6, 5);
        let c = img.crop(1, 4, 2, 5);
        assert_eq!(c.height(), 3);
        assert_eq!(c.width(), 3);
        assert_eq!(c.get(0, 0), img.get(1, 2));
        assert_eq!(c.get(2, 2), img.get(3, 4));
    }

    #[test]
    fn downsample_averages_blocks() {
        let img = DepthImage::from_data(4, 2, vec![1.0, 1.0, 3.0, 3.0, 1.0, 1.0, 3.0, 3.0]);
        let d = img.downsample(2);
        assert_eq!(d.width(), 2);
        assert_eq!(d.height(), 1);
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(0, 1), 3.0);
    }

    #[test]
    fn mean_abs_diff_detects_changes() {
        let a = DepthImage::filled(3, 3, 2.0);
        let mut b = a.clone();
        assert_eq!(a.mean_abs_diff(&b), 0.0);
        b.set(1, 1, 5.0);
        assert!((a.mean_abs_diff(&b) - 3.0 / 9.0).abs() < 1e-6);
    }

    #[test]
    fn scaled_divides_pixels() {
        let img = DepthImage::filled(2, 2, 8.0);
        assert_eq!(img.scaled(4.0).get(0, 0), 2.0);
    }

    #[test]
    #[should_panic]
    fn crop_out_of_bounds_panics() {
        let img = DepthImage::filled(4, 4, 1.0);
        let _ = img.crop(0, 5, 0, 4);
    }
}
