//! Pinhole camera model.
//!
//! The RGB-D camera in the measurement campaign is a Stereolabs ZED at 720p
//! (1280 × 720 capture; the paper refers to the stored 720 × 1080 frames).
//! For the reproduction only the depth channel matters, so a simple pinhole
//! model with a configurable pose, field of view and resolution suffices.

use crate::scene::{Ray, Vec3};
use serde::{Deserialize, Serialize};

/// A pinhole depth camera.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PinholeCamera {
    /// Camera position in world coordinates (metres).
    pub position: Vec3,
    /// Point the camera looks at.
    pub target: Vec3,
    /// Horizontal field of view in degrees (the ZED's wide lens is ~90°).
    pub horizontal_fov_deg: f64,
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
}

impl PinholeCamera {
    /// A surveillance-style camera matching the paper's image geometry:
    /// mounted high on one wall, looking down into the movement area,
    /// rendering at the already-downsampled 108 × 72 resolution
    /// (the paper downsamples 1080 × 720 by a factor of 10).
    pub fn surveillance(position: Vec3, target: Vec3) -> Self {
        PinholeCamera {
            position,
            target,
            horizontal_fov_deg: 90.0,
            width: 108,
            height: 72,
        }
    }

    /// Orthonormal camera basis: (right, up, forward).
    pub fn basis(&self) -> (Vec3, Vec3, Vec3) {
        let forward = self.target.sub(self.position).normalized();
        let world_up = Vec3::new(0.0, 0.0, 1.0);
        let mut right = forward.cross(world_up);
        if right.norm() < 1e-9 {
            // Looking straight up/down: pick an arbitrary right vector.
            right = Vec3::new(1.0, 0.0, 0.0);
        }
        let right = right.normalized();
        let up = right.cross(forward).normalized();
        (right, up, forward)
    }

    /// Generates the ray through pixel `(row, col)` (row 0 is the top of the
    /// image, col 0 the left edge).
    pub fn ray_for_pixel(&self, row: usize, col: usize) -> Ray {
        let (right, up, forward) = self.basis();
        let aspect = self.height as f64 / self.width as f64;
        let half_width = (self.horizontal_fov_deg.to_radians() / 2.0).tan();
        let half_height = half_width * aspect;
        // Normalised device coordinates in [-1, 1].
        let u = ((col as f64 + 0.5) / self.width as f64) * 2.0 - 1.0;
        let v = 1.0 - ((row as f64 + 0.5) / self.height as f64) * 2.0;
        let dir = forward
            .add(right.scale(u * half_width))
            .add(up.scale(v * half_height))
            .normalized();
        Ray {
            origin: self.position,
            direction: dir,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn camera() -> PinholeCamera {
        PinholeCamera::surveillance(Vec3::new(4.0, 0.3, 2.6), Vec3::new(4.0, 3.5, 1.0))
    }

    #[test]
    fn basis_is_orthonormal() {
        let cam = camera();
        let (r, u, f) = cam.basis();
        assert!((r.norm() - 1.0).abs() < 1e-12);
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert!((f.norm() - 1.0).abs() < 1e-12);
        assert!(r.dot(u).abs() < 1e-12);
        assert!(r.dot(f).abs() < 1e-12);
        assert!(u.dot(f).abs() < 1e-12);
    }

    #[test]
    fn center_pixel_looks_at_target() {
        let cam = camera();
        let ray = cam.ray_for_pixel(cam.height / 2, cam.width / 2);
        let to_target = cam.target.sub(cam.position).normalized();
        // Not exact because of the half-pixel offset, but very close.
        assert!(ray.direction.dot(to_target) > 0.999);
    }

    #[test]
    fn left_and_right_pixels_diverge() {
        let cam = camera();
        let left = cam.ray_for_pixel(36, 0);
        let right = cam.ray_for_pixel(36, cam.width - 1);
        let (basis_right, _, _) = cam.basis();
        assert!(left.direction.dot(basis_right) < 0.0);
        assert!(right.direction.dot(basis_right) > 0.0);
    }

    #[test]
    fn top_pixels_point_higher_than_bottom_pixels() {
        let cam = camera();
        let top = cam.ray_for_pixel(0, cam.width / 2);
        let bottom = cam.ray_for_pixel(cam.height - 1, cam.width / 2);
        assert!(top.direction.z > bottom.direction.z);
    }

    #[test]
    fn degenerate_straight_down_camera_still_has_basis() {
        let cam = PinholeCamera {
            position: Vec3::new(1.0, 1.0, 3.0),
            target: Vec3::new(1.0, 1.0, 0.0),
            horizontal_fov_deg: 60.0,
            width: 16,
            height: 16,
        };
        let (r, u, f) = cam.basis();
        assert!(r.norm() > 0.9 && u.norm() > 0.9 && f.norm() > 0.9);
    }
}
