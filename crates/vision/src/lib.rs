//! # vvd-vision
//!
//! Depth-camera simulator and image preprocessing for the Veni Vidi Dixi
//! reproduction.
//!
//! The paper captures the communication environment with a Stereolabs ZED
//! RGB-D camera at 720p/30 fps and feeds *depth* images (downsampled by 10
//! and cropped to 50 × 90 pixels) to the CNN.  This crate replaces the
//! camera with a pinhole ray-caster over a geometric scene description:
//!
//! * [`scene`] — primitives (floor/wall planes, axis-aligned boxes for the
//!   static metallic objects, a vertical cylinder for the human) and their
//!   ray intersections,
//! * [`camera`] — the pinhole projection model with configurable pose,
//!   field of view and resolution,
//! * [`render`] — per-pixel nearest-hit depth rendering into a
//!   [`DepthImage`],
//! * [`preprocess`](mod@preprocess) — the paper's Fig.-7 pipeline:
//!   block-average downsampling, cropping to the informative region and
//!   normalisation.
//!
//! The crate is deliberately independent of `vvd-channel`: the scene is
//! described by plain geometric structs so that the testbed can build the
//! render scene and the radio scene from one room description without a
//! dependency cycle.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod camera;
pub mod image;
pub mod preprocess;
pub mod render;
pub mod scene;

pub use camera::PinholeCamera;
pub use image::DepthImage;
pub use preprocess::{preprocess, PreprocessConfig};
pub use render::render_depth;
pub use scene::{Scene, Vec3};
