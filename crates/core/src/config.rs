//! VVD model configuration and presets.

use serde::{Deserialize, Serialize};

/// Pooling layer family used between convolution stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PoolingKind {
    /// 2 × 2 average pooling (the paper's choice).
    Average,
    /// 2 × 2 max pooling (examined by the paper, slightly worse).
    Max,
}

/// Hyper-parameters of the VVD CNN and its training loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VvdConfig {
    /// Number of filters in each convolution layer (paper: 32).
    pub conv_filters: usize,
    /// Units of the first dense layer (paper: 256).
    pub dense_units: usize,
    /// Number of channel taps predicted (output size is twice this).
    pub channel_taps: usize,
    /// Pooling kind between convolution stages.
    pub pooling: PoolingKind,
    /// Whether to insert batch-norm after each convolution (the paper removed
    /// it; kept for the ablation bench).
    pub batch_norm: bool,
    /// Training epochs (paper: 200).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Nadam initial learning rate (paper: 1e-4).
    pub learning_rate: f32,
    /// Nadam learning-rate decay per update (paper: 0.004).
    pub lr_decay: f32,
    /// RNG seed for weight initialisation and shuffling.
    pub seed: u64,
}

impl VvdConfig {
    /// The paper's configuration (Sec. 4): 32 filters, 256 dense units,
    /// average pooling, no batch norm, 200 epochs of Nadam(1e-4, 0.004).
    pub fn paper() -> Self {
        VvdConfig {
            conv_filters: 32,
            dense_units: 256,
            channel_taps: 11,
            pooling: PoolingKind::Average,
            batch_norm: false,
            epochs: 200,
            batch_size: 16,
            learning_rate: 1e-4,
            lr_decay: 0.004,
            seed: 0,
        }
    }

    /// A laptop-scale configuration used by tests and the quick evaluation
    /// preset: fewer filters and epochs, larger learning rate so the smaller
    /// network still converges within the reduced budget.  The architecture
    /// shape (3 conv/pool stages + dense) is unchanged.
    pub fn quick() -> Self {
        VvdConfig {
            conv_filters: 8,
            dense_units: 64,
            channel_taps: 11,
            pooling: PoolingKind::Average,
            batch_norm: false,
            epochs: 12,
            batch_size: 16,
            learning_rate: 1.5e-3,
            lr_decay: 0.002,
            seed: 0,
        }
    }

    /// Number of real-valued network outputs (Fig. 6: `2 · taps`).
    pub fn output_units(&self) -> usize {
        2 * self.channel_taps
    }
}

impl Default for VvdConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_matches_section_4() {
        let cfg = VvdConfig::paper();
        assert_eq!(cfg.conv_filters, 32);
        assert_eq!(cfg.dense_units, 256);
        assert_eq!(cfg.output_units(), 22);
        assert_eq!(cfg.epochs, 200);
        assert_eq!(cfg.pooling, PoolingKind::Average);
        assert!(!cfg.batch_norm);
        assert!((cfg.learning_rate - 1e-4).abs() < 1e-9);
        assert!((cfg.lr_decay - 0.004).abs() < 1e-9);
    }

    #[test]
    fn quick_preset_keeps_architecture_shape() {
        let cfg = VvdConfig::quick();
        assert_eq!(cfg.channel_taps, 11);
        assert_eq!(cfg.output_units(), 22);
        assert!(cfg.conv_filters < VvdConfig::paper().conv_filters);
        assert!(cfg.epochs < VvdConfig::paper().epochs);
    }
}
