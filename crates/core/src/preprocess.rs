//! Output-side preprocessing: complex CIR ⇄ real target vector (Fig. 6) and
//! the training-set normalisation of Sec. 4.
//!
//! Complex-valued CNNs are still a research topic (the paper cites deep
//! complex networks as open work), so VVD separates real and imaginary
//! parts: an 11-tap complex CIR becomes a 22-element real target vector.
//! Targets are normalised by the maximum absolute tap value observed in the
//! training set; the factor is stored so that predictions can be
//! denormalised before equalization.

use serde::{Deserialize, Serialize};
use vvd_dsp::{CVec, Complex, FirFilter};

/// Packs a complex CIR into the real target layout of Fig. 6:
/// `[re(h₁) … re(h_N), im(h₁) … im(h_N)]`, scaled by `1 / norm`.
pub fn cir_to_targets(cir: &FirFilter, norm: f64) -> Vec<f32> {
    let n = cir.len();
    let mut out = vec![0.0f32; 2 * n];
    for (l, tap) in cir.taps().iter().enumerate() {
        out[l] = (tap.re / norm) as f32;
        out[n + l] = (tap.im / norm) as f32;
    }
    out
}

/// Unpacks a real target vector back into a complex CIR, multiplying by
/// `norm` to undo the normalisation.
///
/// # Panics
/// Panics if the vector length is odd.
pub fn targets_to_cir(targets: &[f32], norm: f64) -> FirFilter {
    assert!(
        targets.len().is_multiple_of(2),
        "target vector must have even length"
    );
    let n = targets.len() / 2;
    let mut taps = CVec::zeros(n);
    for l in 0..n {
        taps[l] = Complex::new(targets[l] as f64 * norm, targets[n + l] as f64 * norm);
    }
    FirFilter::new(taps)
}

/// Normalisation factor handling: "the normalization is performed by
/// dividing the CIR values by the maximum absolute valued CIR in the
/// training set for each set combination" (Sec. 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CirNormalizer {
    /// Maximum absolute tap value over the training set.
    pub factor: f64,
}

impl CirNormalizer {
    /// Computes the normaliser from a training set of CIRs.
    ///
    /// Falls back to 1.0 for an empty or all-zero training set so the
    /// pipeline stays well-defined.
    pub fn from_training_set(cirs: &[FirFilter]) -> Self {
        let factor = cirs
            .iter()
            .map(|c| c.taps().max_abs())
            .fold(0.0f64, f64::max);
        CirNormalizer {
            factor: if factor > 0.0 { factor } else { 1.0 },
        }
    }

    /// Normalises a CIR into target space.
    pub fn normalize(&self, cir: &FirFilter) -> Vec<f32> {
        cir_to_targets(cir, self.factor)
    }

    /// Denormalises a prediction back into a CIR.
    pub fn denormalize(&self, targets: &[f32]) -> FirFilter {
        targets_to_cir(targets, self.factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    fn cir() -> FirFilter {
        FirFilter::from_taps(&[c(1e-3, -2e-3), c(0.0, 5e-4), c(-7e-4, 0.0)])
    }

    #[test]
    fn packing_layout_matches_fig6() {
        let targets = cir_to_targets(&cir(), 1.0);
        assert_eq!(targets.len(), 6);
        // Real parts first, imaginary parts second.
        assert!((targets[0] - 1e-3).abs() < 1e-9);
        assert!((targets[2] - (-7e-4)).abs() < 1e-9);
        assert!((targets[3] - (-2e-3)).abs() < 1e-9);
        assert!((targets[5] - 0.0).abs() < 1e-9);
    }

    #[test]
    fn roundtrip_preserves_cir() {
        let original = cir();
        for &norm in &[1.0f64, 2.3e-3, 0.5] {
            let targets = cir_to_targets(&original, norm);
            let back = targets_to_cir(&targets, norm);
            let err = back.taps().squared_error(original.taps());
            assert!(err < 1e-16, "norm {norm}: err {err}");
        }
    }

    #[test]
    fn normalizer_uses_training_maximum() {
        let training = vec![
            FirFilter::from_taps(&[c(1e-3, 0.0)]),
            FirFilter::from_taps(&[c(0.0, -4e-3)]),
            FirFilter::from_taps(&[c(2e-3, 2e-3)]),
        ];
        let norm = CirNormalizer::from_training_set(&training);
        assert!((norm.factor - 4e-3).abs() < 1e-12);
        // Normalised targets are bounded by 1 in magnitude for the training set.
        for cir in &training {
            for v in norm.normalize(cir) {
                assert!(v.abs() <= 1.0 + 1e-6);
            }
        }
    }

    #[test]
    fn degenerate_training_set_falls_back_to_unity() {
        assert_eq!(CirNormalizer::from_training_set(&[]).factor, 1.0);
        let zero = vec![FirFilter::from_taps(&[Complex::ZERO; 3])];
        assert_eq!(CirNormalizer::from_training_set(&zero).factor, 1.0);
    }

    #[test]
    fn normalize_denormalize_roundtrip() {
        let training = vec![cir()];
        let norm = CirNormalizer::from_training_set(&training);
        let restored = norm.denormalize(&norm.normalize(&cir()));
        assert!(restored.taps().squared_error(cir().taps()) < 1e-16);
    }

    #[test]
    #[should_panic]
    fn odd_target_length_panics() {
        let _ = targets_to_cir(&[1.0, 2.0, 3.0], 1.0);
    }
}
