//! # vvd-core
//!
//! Veni Vidi Dixi: blind complex wireless channel estimation from depth
//! images of the communication environment — the paper's primary
//! contribution.
//!
//! The algorithm (Sec. 4 of the paper) is a convolutional neural network
//! that maps a preprocessed 50 × 90 depth image of the environment to the
//! real/imaginary parts of an 11-tap channel impulse response:
//!
//! * [`preprocess`] — the complex-to-real output packing of Fig. 6 and the
//!   training-set CIR normalisation described in Sec. 4,
//! * [`architecture`] — the Fig.-8 CNN (three 3 × 3 convolution + ReLU +
//!   2 × 2 average-pooling stages, a 256-unit dense layer and a `2 · N`-unit
//!   linear output), with switches for the max-pooling and batch-norm
//!   ablations the paper discusses,
//! * [`dataset`] — image → CIR sample pairs and tensor assembly,
//! * [`variant`] — the three prediction horizons (current, +33.3 ms,
//!   +100 ms) that differ only in which frame is paired with which packet,
//! * [`model`] — training (Nadam, MSE, best-validation-epoch selection) and
//!   inference ([`VvdModel::predict_cir`] returns a denormalised
//!   [`vvd_dsp::FirFilter`] ready for the shared ZF-equalization pipeline of
//!   `vvd-estimation`); trained weights are immutable and `Arc`-shared, and
//!   models serialise to JSON for the content-addressed model cache,
//! * [`key`] — [`ModelKey`], the stable digest of (variant, architecture,
//!   training configuration, dataset content) that content-addresses a
//!   trained model.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod architecture;
pub mod config;
pub mod dataset;
pub mod key;
pub mod model;
pub mod preprocess;
pub mod variant;

pub use architecture::build_vvd_cnn;
pub use config::{PoolingKind, VvdConfig};
pub use dataset::{VvdDataset, VvdSample};
pub use key::ModelKey;
pub use model::{VvdModel, VvdTrainingReport};
pub use preprocess::{cir_to_targets, targets_to_cir, CirNormalizer};
pub use variant::VvdVariant;
