//! Content-addressed model keys.
//!
//! A [`ModelKey`] is a stable 128-bit digest of everything that determines
//! a trained VVD model bit for bit: the prediction-horizon variant, the
//! architecture and training hyper-parameters ([`VvdConfig`], including the
//! RNG seed), and the full *content* of the training and validation
//! datasets (every depth-image pixel and every target CIR tap).  Training
//! is deterministic given those inputs, so two trainings with equal keys
//! produce bit-identical networks — which is what lets the model cache in
//! `vvd-estimation` substitute a cached model for a fresh training without
//! changing any downstream number.
//!
//! The digest is two independent FNV-1a-64 streams over a canonical byte
//! encoding (integers little-endian, floats by their IEEE bit patterns,
//! length-prefixed sequences).  FNV is not cryptographic; the key guards
//! against *accidental* collisions across sweep grids, not adversaries.

use crate::config::{PoolingKind, VvdConfig};
use crate::dataset::VvdDataset;
use crate::variant::VvdVariant;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A stable content digest identifying one trained model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ModelKey(u64, u64);

impl ModelKey {
    /// Digest of a training job: variant + configuration + the content of
    /// the training and validation datasets.
    pub fn for_training(
        variant: VvdVariant,
        config: &VvdConfig,
        train: &VvdDataset,
        validation: &VvdDataset,
    ) -> Self {
        let mut h = KeyHasher::new();
        h.write_u64(match variant {
            VvdVariant::Current => 0,
            VvdVariant::Future33ms => 1,
            VvdVariant::Future100ms => 2,
        });
        h.write_config(config);
        h.write_dataset(train);
        h.write_dataset(validation);
        ModelKey(h.a, h.b)
    }

    /// Lower-case hexadecimal form (32 characters), used as the on-disk
    /// cache file name.
    pub fn to_hex(&self) -> String {
        format!("{:016x}{:016x}", self.0, self.1)
    }

    /// The two 64-bit digest halves, for binary serialization (checkpoint
    /// frames encode keys as two little-endian `u64`s).
    pub fn to_parts(&self) -> (u64, u64) {
        (self.0, self.1)
    }

    /// Rebuilds a key from its [`to_parts`](Self::to_parts) halves.
    pub fn from_parts(a: u64, b: u64) -> Self {
        ModelKey(a, b)
    }
}

impl fmt::Display for ModelKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

/// Two independent FNV-1a-64 streams (different offset bases) over the
/// canonical encoding.
struct KeyHasher {
    a: u64,
    b: u64,
}

impl KeyHasher {
    const OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
    const OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        KeyHasher {
            a: Self::OFFSET_A,
            b: Self::OFFSET_B,
        }
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(Self::PRIME);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(Self::PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn write_f32(&mut self, v: f32) {
        self.write_bytes(&v.to_bits().to_le_bytes());
    }

    fn write_f64(&mut self, v: f64) {
        self.write_bytes(&v.to_bits().to_le_bytes());
    }

    fn write_config(&mut self, cfg: &VvdConfig) {
        self.write_u64(cfg.conv_filters as u64);
        self.write_u64(cfg.dense_units as u64);
        self.write_u64(cfg.channel_taps as u64);
        self.write_u64(match cfg.pooling {
            PoolingKind::Average => 0,
            PoolingKind::Max => 1,
        });
        self.write_u64(u64::from(cfg.batch_norm));
        self.write_u64(cfg.epochs as u64);
        self.write_u64(cfg.batch_size as u64);
        self.write_f32(cfg.learning_rate);
        self.write_f32(cfg.lr_decay);
        self.write_u64(cfg.seed);
    }

    fn write_dataset(&mut self, dataset: &VvdDataset) {
        self.write_u64(dataset.len() as u64);
        self.write_u64(dataset.image_height() as u64);
        self.write_u64(dataset.image_width() as u64);
        self.write_u64(dataset.channel_taps() as u64);
        for sample in &dataset.samples {
            for &px in sample.image.data() {
                self.write_f32(px);
            }
            for tap in sample.target_cir.taps().iter() {
                self.write_f64(tap.re);
                self.write_f64(tap.im);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::VvdSample;
    use vvd_dsp::{Complex, FirFilter};
    use vvd_vision::DepthImage;

    fn dataset(n: usize, pixel: f32) -> VvdDataset {
        let mut ds = VvdDataset::new();
        for k in 0..n {
            ds.push(VvdSample {
                image: DepthImage::filled(4, 3, pixel + k as f32 * 0.01),
                target_cir: FirFilter::from_taps(&[
                    Complex::new(1e-3, -2e-3),
                    Complex::new(0.0, 1e-4 * k as f64),
                ]),
            });
        }
        ds
    }

    #[test]
    fn equal_inputs_produce_equal_keys() {
        let cfg = VvdConfig::quick();
        let a = ModelKey::for_training(
            VvdVariant::Current,
            &cfg,
            &dataset(3, 0.5),
            &dataset(1, 0.2),
        );
        let b = ModelKey::for_training(
            VvdVariant::Current,
            &cfg,
            &dataset(3, 0.5),
            &dataset(1, 0.2),
        );
        assert_eq!(a, b);
        assert_eq!(a.to_hex(), b.to_hex());
        assert_eq!(a.to_hex().len(), 32);
    }

    #[test]
    fn every_input_dimension_changes_the_key() {
        let cfg = VvdConfig::quick();
        let train = dataset(3, 0.5);
        let val = dataset(1, 0.2);
        let base = ModelKey::for_training(VvdVariant::Current, &cfg, &train, &val);

        // Variant.
        assert_ne!(
            base,
            ModelKey::for_training(VvdVariant::Future33ms, &cfg, &train, &val)
        );
        // Training configuration.
        let mut cfg2 = cfg;
        cfg2.seed = 1;
        assert_ne!(
            base,
            ModelKey::for_training(VvdVariant::Current, &cfg2, &train, &val)
        );
        // Training-set content (one pixel).
        let mut train2 = train.clone();
        train2.samples[0].image.set(0, 0, 0.123);
        assert_ne!(
            base,
            ModelKey::for_training(VvdVariant::Current, &cfg, &train2, &val)
        );
        // Validation-set content (it drives best-epoch selection).
        let val2 = dataset(1, 0.21);
        assert_ne!(
            base,
            ModelKey::for_training(VvdVariant::Current, &cfg, &train, &val2)
        );
    }

    #[test]
    fn parts_round_trip() {
        let key = ModelKey::for_training(
            VvdVariant::Current,
            &VvdConfig::quick(),
            &dataset(2, 0.5),
            &dataset(1, 0.2),
        );
        let (a, b) = key.to_parts();
        assert_eq!(ModelKey::from_parts(a, b), key);
    }

    #[test]
    fn swapping_train_and_validation_changes_the_key() {
        let cfg = VvdConfig::quick();
        let a = dataset(2, 0.5);
        let b = dataset(2, 0.7);
        assert_ne!(
            ModelKey::for_training(VvdVariant::Current, &cfg, &a, &b),
            ModelKey::for_training(VvdVariant::Current, &cfg, &b, &a)
        );
    }
}
