//! VVD prediction-horizon variants (Sec. 5.3).
//!
//! All three variants share the same architecture and training procedure;
//! they differ only in which depth frame is paired with which packet's CIR.
//! When decoding the packet transmitted at time `t`, the "current" variant
//! may use the frame synchronised with that packet, the "+33.3 ms" variant
//! only has the frame captured 33.3 ms earlier (one camera frame at 30 fps),
//! and the "+100 ms" variant the frame captured 100 ms earlier (three camera
//! frames) — i.e. the model must predict that far into the future.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Camera frame period of the 30 fps ZED capture, in milliseconds.
pub const FRAME_PERIOD_MS: f64 = 1000.0 / 30.0;

/// Prediction horizon of a VVD model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VvdVariant {
    /// Predict the channel at the time of the input frame.
    Current,
    /// Predict the channel 33.3 ms (one frame) after the input frame.
    Future33ms,
    /// Predict the channel 100 ms (three frames) after the input frame.
    Future100ms,
}

impl VvdVariant {
    /// All variants, in the order of Fig. 11a.
    pub const ALL: [VvdVariant; 3] = [
        VvdVariant::Future100ms,
        VvdVariant::Future33ms,
        VvdVariant::Current,
    ];

    /// Prediction horizon in milliseconds.
    pub fn horizon_ms(&self) -> f64 {
        match self {
            VvdVariant::Current => 0.0,
            VvdVariant::Future33ms => FRAME_PERIOD_MS,
            VvdVariant::Future100ms => 100.0,
        }
    }

    /// How many camera frames older than the packet the input image is
    /// (at 30 fps).
    pub fn image_lag_frames(&self) -> usize {
        (self.horizon_ms() / FRAME_PERIOD_MS).round() as usize
    }

    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            VvdVariant::Current => "VVD-Current",
            VvdVariant::Future33ms => "VVD-33.3ms Future",
            VvdVariant::Future100ms => "VVD-100ms Future",
        }
    }
}

impl fmt::Display for VvdVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizons_match_the_paper() {
        assert_eq!(VvdVariant::Current.horizon_ms(), 0.0);
        assert!((VvdVariant::Future33ms.horizon_ms() - 33.333).abs() < 0.01);
        assert_eq!(VvdVariant::Future100ms.horizon_ms(), 100.0);
    }

    #[test]
    fn image_lag_in_frames() {
        assert_eq!(VvdVariant::Current.image_lag_frames(), 0);
        assert_eq!(VvdVariant::Future33ms.image_lag_frames(), 1);
        assert_eq!(VvdVariant::Future100ms.image_lag_frames(), 3);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::BTreeSet<&str> =
            VvdVariant::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(labels.len(), 3);
    }
}
