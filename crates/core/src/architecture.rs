//! The Fig.-8 CNN architecture.
//!
//! Input: a single-channel `H × W` depth image (50 × 90 after the Fig.-7
//! preprocessing).  The network is three convolution stages (3 × 3 kernels,
//! ReLU, 2 × 2 pooling), a flatten, a 256-unit dense layer with ReLU and a
//! linear output layer with `2 · N` units (22 for the 11-tap CIR).

use crate::config::{PoolingKind, VvdConfig};
use rand::Rng;
use vvd_nn::{AvgPool2d, BatchNorm2d, Conv2d, Dense, Flatten, MaxPool2d, Relu, Sequential};

/// Spatial output size of one "conv(3×3, valid) + pool(2×2)" stage.
///
/// Saturates at zero for undersized inputs so that [`flattened_features`]
/// reports 0 (and [`build_vvd_cnn`] panics with its own message) instead of
/// underflowing — `h - 2` would only panic in debug builds and wrap in
/// release builds.
fn stage_output(h: usize, w: usize) -> (usize, usize) {
    (h.saturating_sub(2) / 2, w.saturating_sub(2) / 2)
}

/// Number of flattened features after the three convolution stages.
pub fn flattened_features(input_h: usize, input_w: usize, filters: usize) -> usize {
    let (h1, w1) = stage_output(input_h, input_w);
    let (h2, w2) = stage_output(h1, w1);
    let (h3, w3) = stage_output(h2, w2);
    filters * h3 * w3
}

/// Builds the VVD CNN for the given input image size and configuration.
///
/// # Panics
/// Panics if the input image is too small to survive three conv/pool stages.
pub fn build_vvd_cnn<R: Rng + ?Sized>(
    input_h: usize,
    input_w: usize,
    cfg: &VvdConfig,
    rng: &mut R,
) -> Sequential {
    let features = flattened_features(input_h, input_w, cfg.conv_filters);
    assert!(features > 0, "input image too small for the Fig.-8 stack");

    let mut model = Sequential::new();
    let mut in_ch = 1usize;
    for _stage in 0..3 {
        model = model.add(Conv2d::new(in_ch, cfg.conv_filters, 3, rng));
        if cfg.batch_norm {
            model = model.add(BatchNorm2d::new(cfg.conv_filters));
        }
        model = model.add(Relu::new());
        model = match cfg.pooling {
            PoolingKind::Average => model.add(AvgPool2d::new(2)),
            PoolingKind::Max => model.add(MaxPool2d::new(2)),
        };
        in_ch = cfg.conv_filters;
    }
    model
        .add(Flatten::new())
        .add(Dense::new(features, cfg.dense_units, rng))
        .add(Relu::new())
        .add(Dense::new(cfg.dense_units, cfg.output_units(), rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vvd_nn::Tensor;

    #[test]
    fn paper_input_size_flattens_as_expected() {
        // 50x90 -> conv 48x88 -> pool 24x44 -> conv 22x42 -> pool 11x21
        //       -> conv 9x19  -> pool 4x9   => 32 * 4 * 9 = 1152 features.
        assert_eq!(flattened_features(50, 90, 32), 1152);
    }

    #[test]
    fn forward_pass_produces_22_outputs_for_paper_config() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut cfg = VvdConfig::quick();
        cfg.conv_filters = 4; // keep the test fast
        let model = build_vvd_cnn(50, 90, &cfg, &mut rng);
        let x = Tensor::zeros(&[2, 1, 50, 90]);
        let y = model.predict(&x);
        assert_eq!(y.shape(), &[2, 22]);
    }

    #[test]
    fn layer_stack_matches_fig8() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = VvdConfig::quick();
        let model = build_vvd_cnn(50, 90, &cfg, &mut rng);
        let names = model.layer_names();
        assert_eq!(
            names,
            vec![
                "Conv2d",
                "ReLU",
                "AvgPool2d",
                "Conv2d",
                "ReLU",
                "AvgPool2d",
                "Conv2d",
                "ReLU",
                "AvgPool2d",
                "Flatten",
                "Dense",
                "ReLU",
                "Dense"
            ]
        );
    }

    #[test]
    fn ablation_variants_change_the_stack() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut cfg = VvdConfig::quick();
        cfg.pooling = PoolingKind::Max;
        cfg.batch_norm = true;
        let model = build_vvd_cnn(50, 90, &cfg, &mut rng);
        let names = model.layer_names();
        assert!(names.contains(&"MaxPool2d"));
        assert!(names.contains(&"BatchNorm2d"));
        assert!(!names.contains(&"AvgPool2d"));
    }

    #[test]
    #[should_panic]
    fn too_small_input_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = VvdConfig::quick();
        let _ = build_vvd_cnn(8, 8, &cfg, &mut rng);
    }
}
