//! Image → CIR sample pairs and tensor assembly.

use crate::preprocess::CirNormalizer;
use serde::{Deserialize, Serialize};
use vvd_dsp::FirFilter;
use vvd_nn::Tensor;
use vvd_vision::DepthImage;

/// One training/validation/test sample: a preprocessed depth image and the
/// perfect channel estimate it should map to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VvdSample {
    /// Preprocessed (cropped, normalised) depth image.
    pub image: DepthImage,
    /// Target channel impulse response (the perfect LS estimate of the
    /// packet this frame is paired with).
    pub target_cir: FirFilter,
}

/// A set of samples with consistent dimensions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VvdDataset {
    /// The samples.
    pub samples: Vec<VvdSample>,
}

impl VvdDataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        VvdDataset {
            samples: Vec::new(),
        }
    }

    /// Adds a sample.
    ///
    /// # Panics
    /// Panics when image or CIR dimensions differ from already-added
    /// samples.
    pub fn push(&mut self, sample: VvdSample) {
        if let Some(first) = self.samples.first() {
            assert_eq!(
                (first.image.height(), first.image.width()),
                (sample.image.height(), sample.image.width()),
                "inconsistent image dimensions"
            );
            assert_eq!(
                first.target_cir.len(),
                sample.target_cir.len(),
                "inconsistent CIR tap counts"
            );
        }
        self.samples.push(sample);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Image height of the samples (0 for an empty dataset).
    pub fn image_height(&self) -> usize {
        self.samples.first().map_or(0, |s| s.image.height())
    }

    /// Image width of the samples (0 for an empty dataset).
    pub fn image_width(&self) -> usize {
        self.samples.first().map_or(0, |s| s.image.width())
    }

    /// Number of CIR taps of the targets (0 for an empty dataset).
    pub fn channel_taps(&self) -> usize {
        self.samples.first().map_or(0, |s| s.target_cir.len())
    }

    /// Computes the CIR normaliser from this dataset (call on the training
    /// split only, per Sec. 4).
    pub fn normalizer(&self) -> CirNormalizer {
        let cirs: Vec<FirFilter> = self.samples.iter().map(|s| s.target_cir.clone()).collect();
        CirNormalizer::from_training_set(&cirs)
    }

    /// Builds the input tensor `[N, 1, H, W]`.
    pub fn input_tensor(&self) -> Tensor {
        let h = self.image_height();
        let w = self.image_width();
        let items: Vec<Vec<f32>> = self
            .samples
            .iter()
            .map(|s| s.image.data().to_vec())
            .collect();
        if items.is_empty() {
            return Tensor::zeros(&[0, 1, h, w]);
        }
        Tensor::stack(&items, &[1, h, w])
    }

    /// Builds the target tensor `[N, 2 · taps]` using the given normaliser.
    pub fn target_tensor(&self, normalizer: &CirNormalizer) -> Tensor {
        let taps = self.channel_taps();
        let items: Vec<Vec<f32>> = self
            .samples
            .iter()
            .map(|s| normalizer.normalize(&s.target_cir))
            .collect();
        if items.is_empty() {
            return Tensor::zeros(&[0, 2 * taps]);
        }
        Tensor::stack(&items, &[2 * taps])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vvd_dsp::Complex;

    fn sample(depth: f32, tap: f64) -> VvdSample {
        VvdSample {
            image: DepthImage::filled(6, 4, depth),
            target_cir: FirFilter::from_taps(&[Complex::new(tap, -tap), Complex::new(0.0, tap)]),
        }
    }

    #[test]
    fn tensors_have_expected_shapes() {
        let mut ds = VvdDataset::new();
        ds.push(sample(0.5, 1e-3));
        ds.push(sample(0.7, 2e-3));
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.image_height(), 4);
        assert_eq!(ds.image_width(), 6);
        assert_eq!(ds.channel_taps(), 2);
        let x = ds.input_tensor();
        assert_eq!(x.shape(), &[2, 1, 4, 6]);
        let norm = ds.normalizer();
        let y = ds.target_tensor(&norm);
        assert_eq!(y.shape(), &[2, 4]);
        // Normalised targets stay within [-1, 1] on the training set.
        assert!(y.data().iter().all(|v| v.abs() <= 1.0 + 1e-6));
    }

    #[test]
    fn normalizer_roundtrip_through_dataset() {
        let mut ds = VvdDataset::new();
        ds.push(sample(0.2, 5e-4));
        let norm = ds.normalizer();
        let y = ds.target_tensor(&norm);
        let restored = norm.denormalize(y.item(0));
        let err = restored
            .taps()
            .squared_error(ds.samples[0].target_cir.taps());
        assert!(err < 1e-16);
    }

    #[test]
    fn empty_dataset_is_harmless() {
        let ds = VvdDataset::new();
        assert!(ds.is_empty());
        assert_eq!(ds.input_tensor().shape(), &[0, 1, 0, 0]);
    }

    #[test]
    #[should_panic]
    fn inconsistent_dimensions_panic() {
        let mut ds = VvdDataset::new();
        ds.push(sample(0.5, 1e-3));
        ds.push(VvdSample {
            image: DepthImage::filled(3, 3, 0.1),
            target_cir: FirFilter::identity(),
        });
    }
}
