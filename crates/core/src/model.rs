//! VVD model: training and inference.
//!
//! Ties together the Fig.-8 architecture, the Fig.-6 output packing, the
//! Sec.-4 normalisation and the Nadam training loop with best-validation-
//! epoch selection, and exposes a [`VvdModel::predict_cir`] that returns a
//! denormalised [`FirFilter`] ready for the shared equalization pipeline.

use crate::architecture::build_vvd_cnn;
use crate::config::VvdConfig;
use crate::dataset::VvdDataset;
use crate::key::ModelKey;
use crate::preprocess::CirNormalizer;
use crate::variant::VvdVariant;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vvd_dsp::FirFilter;
use vvd_nn::serialize::ModelCheckpoint;
use vvd_nn::{Nadam, Sequential, Tensor, TrainConfig, Trainer};
use vvd_vision::DepthImage;

/// Images per inference chunk of [`VvdModel::predict_batch`]: large enough
/// that the convolution runs as one batched GEMM, small enough to keep the
/// column matrices cache-friendly.
const PREDICT_CHUNK: usize = 32;

/// Summary of a VVD training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VvdTrainingReport {
    /// Variant the model was trained for.
    pub variant: VvdVariant,
    /// Training loss per epoch.
    pub train_loss: Vec<f32>,
    /// Validation loss per epoch.
    pub val_loss: Vec<f32>,
    /// Epoch whose weights were kept.
    pub best_epoch: usize,
    /// Validation MSE (normalised units) of the kept epoch.
    pub best_val_loss: f32,
}

/// The immutable state of a trained model, shared between clones.
struct ModelState {
    network: Sequential,
    normalizer: CirNormalizer,
    config: VvdConfig,
    variant: VvdVariant,
    image_height: usize,
    image_width: usize,
    key: ModelKey,
}

/// A trained VVD model.
///
/// The trained weights are immutable and shared behind an [`Arc`]:
/// cloning a model is a reference-count bump, every clone predicts
/// identically, and prediction takes `&self` (the network's inference path
/// writes no caches), so one training can serve any number of estimators —
/// including estimators running concurrently on worker threads — without
/// duplicating the network.
#[derive(Clone)]
pub struct VvdModel {
    state: Arc<ModelState>,
}

/// Serialised form of a trained model: everything needed to rebuild it and
/// predict bit-identically (architecture + weights + buffers + the
/// training-set normaliser).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SavedVvdModel {
    variant: VvdVariant,
    config: VvdConfig,
    normalizer: CirNormalizer,
    image_height: usize,
    image_width: usize,
    key: ModelKey,
    checkpoint: ModelCheckpoint,
}

impl VvdModel {
    /// Trains a VVD model of the given variant on the training dataset,
    /// using the validation dataset for model selection (Sec. 4).
    ///
    /// # Panics
    /// Panics on an empty training set or inconsistent image dimensions.
    pub fn train(
        variant: VvdVariant,
        config: &VvdConfig,
        train: &VvdDataset,
        validation: &VvdDataset,
    ) -> (Self, VvdTrainingReport) {
        assert!(!train.is_empty(), "VVD training set is empty");
        let h = train.image_height();
        let w = train.image_width();
        assert_eq!(
            train.channel_taps(),
            config.channel_taps,
            "dataset tap count does not match the configuration"
        );

        // The training-provenance digest is the model's identity: batched
        // serving layers group same-key models into one forward pass, and
        // the model cache files models under it on disk.
        let key = ModelKey::for_training(variant, config, train, validation);

        let normalizer = train.normalizer();
        let train_x = train.input_tensor();
        let train_y = train.target_tensor(&normalizer);
        let (val_x, val_y) = if validation.is_empty() {
            (
                Tensor::zeros(&[0, 1, h, w]),
                Tensor::zeros(&[0, config.output_units()]),
            )
        } else {
            (
                validation.input_tensor(),
                validation.target_tensor(&normalizer),
            )
        };

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut network = build_vvd_cnn(h, w, config, &mut rng);
        let mut optimizer = Nadam::new(config.learning_rate, config.lr_decay);
        let trainer = Trainer::new(TrainConfig {
            epochs: config.epochs,
            batch_size: config.batch_size,
            shuffle_seed: config.seed,
            keep_best_validation_epoch: true,
        });
        let report = trainer.fit(
            &mut network,
            &mut optimizer,
            &train_x,
            &train_y,
            &val_x,
            &val_y,
        );

        let model = VvdModel {
            state: Arc::new(ModelState {
                network,
                normalizer,
                config: *config,
                variant,
                image_height: h,
                image_width: w,
                key,
            }),
        };
        let report = VvdTrainingReport {
            variant,
            train_loss: report.train_loss,
            val_loss: report.val_loss,
            best_epoch: report.best_epoch,
            best_val_loss: report.best_val_loss,
        };
        (model, report)
    }

    /// The prediction-horizon variant this model was trained for.
    pub fn variant(&self) -> VvdVariant {
        self.state.variant
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &VvdConfig {
        &self.state.config
    }

    /// The CIR normalisation factor learned from the training set.
    pub fn normalizer(&self) -> &CirNormalizer {
        &self.state.normalizer
    }

    /// The content digest of this model's training provenance (variant,
    /// configuration incl. seed, training + validation dataset content).
    ///
    /// Two models with equal keys predict bit-identically (training is
    /// deterministic in its provenance), which is what lets serving layers
    /// coalesce prediction requests from *different* estimator instances
    /// into one batched forward pass keyed by this value.
    pub fn key(&self) -> ModelKey {
        self.state.key
    }

    /// Predicts the complex channel impulse response for one preprocessed
    /// depth image.
    ///
    /// # Panics
    /// Panics if the image dimensions differ from the training images.
    pub fn predict_cir(&self, image: &DepthImage) -> FirFilter {
        let s = &*self.state;
        assert_eq!(
            (image.height(), image.width()),
            (s.image_height, s.image_width),
            "image dimensions do not match the trained model"
        );
        let x = Tensor::from_vec(
            &[1, 1, s.image_height, s.image_width],
            image.data().to_vec(),
        );
        let y = s.network.infer(&x);
        s.normalizer.denormalize(y.item(0))
    }

    /// Predicts CIRs for a batch of images, chunking them into batched
    /// network passes (each chunk's convolution is one GEMM).  Bit-identical
    /// to calling [`VvdModel::predict_cir`] per image.
    ///
    /// # Panics
    /// Panics if any image's dimensions differ from the training images.
    pub fn predict_batch<'a, I>(&self, images: I) -> Vec<FirFilter>
    where
        I: IntoIterator<Item = &'a DepthImage>,
    {
        let s = &*self.state;
        let images: Vec<&DepthImage> = images.into_iter().collect();
        let mut out = Vec::with_capacity(images.len());
        for chunk in images.chunks(PREDICT_CHUNK) {
            let mut data = Vec::with_capacity(chunk.len() * s.image_height * s.image_width);
            for image in chunk {
                assert_eq!(
                    (image.height(), image.width()),
                    (s.image_height, s.image_width),
                    "image dimensions do not match the trained model"
                );
                data.extend_from_slice(image.data());
            }
            let x = Tensor::from_vec(&[chunk.len(), 1, s.image_height, s.image_width], data);
            let y = s.network.infer(&x);
            for i in 0..chunk.len() {
                out.push(s.normalizer.denormalize(y.item(i)));
            }
        }
        out
    }

    /// Predicts CIRs for a whole dataset (used by the evaluation harness and
    /// the MSE metric), in batched network passes.
    pub fn predict_dataset(&self, dataset: &VvdDataset) -> Vec<FirFilter> {
        self.predict_batch(dataset.samples.iter().map(|s| &s.image))
    }

    /// Serialises the trained model (architecture tag, weights, buffers,
    /// normaliser) to JSON — the on-disk format of the model cache.
    pub fn to_json(&self) -> String {
        let s = &*self.state;
        let tag = architecture_tag(s.variant, &s.config, s.image_height, s.image_width);
        let mut network = s.network.clone();
        let checkpoint = ModelCheckpoint::capture(&tag, &mut network);
        let saved = SavedVvdModel {
            variant: s.variant,
            config: s.config,
            normalizer: s.normalizer,
            image_height: s.image_height,
            image_width: s.image_width,
            key: s.key,
            checkpoint,
        };
        serde_json::to_string(&saved).expect("model serialisation cannot fail")
    }

    /// Restores a model serialised with [`VvdModel::to_json`].  The loaded
    /// model predicts bit-identically to the one that was saved.
    ///
    /// # Errors
    /// Returns an error string on malformed JSON or a checkpoint that does
    /// not match the architecture it declares.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let saved: SavedVvdModel = serde_json::from_str(json).map_err(|e| e.to_string())?;
        let tag = architecture_tag(
            saved.variant,
            &saved.config,
            saved.image_height,
            saved.image_width,
        );
        let mut rng = StdRng::seed_from_u64(saved.config.seed);
        let mut network = build_vvd_cnn(
            saved.image_height,
            saved.image_width,
            &saved.config,
            &mut rng,
        );
        saved.checkpoint.restore(&tag, &mut network)?;
        Ok(VvdModel {
            state: Arc::new(ModelState {
                network,
                normalizer: saved.normalizer,
                config: saved.config,
                variant: saved.variant,
                image_height: saved.image_height,
                image_width: saved.image_width,
                key: saved.key,
            }),
        })
    }
}

/// The architecture tag stored in (and checked against) model checkpoints.
fn architecture_tag(variant: VvdVariant, config: &VvdConfig, h: usize, w: usize) -> String {
    format!(
        "vvd-cnn:{:?}:{}x{}:f{}:d{}:t{}:{:?}:bn{}",
        variant,
        h,
        w,
        config.conv_filters,
        config.dense_units,
        config.channel_taps,
        config.pooling,
        config.batch_norm
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::VvdSample;
    use vvd_dsp::Complex;

    /// Builds a synthetic dataset in which the CIR is a simple deterministic
    /// function of a "blob" position encoded in the image — a miniature
    /// version of the real learning problem.
    fn synthetic_dataset(n: usize, offset: usize) -> VvdDataset {
        let mut ds = VvdDataset::new();
        let (h, w) = (26, 30);
        for k in 0..n {
            let pos = (k * 7 + offset) % (w - 6);
            let mut img = DepthImage::filled(w, h, 0.8);
            for r in 8..16 {
                for c in pos..pos + 6 {
                    img.set(r, c, 0.2);
                }
            }
            // CIR: main tap amplitude decreases as the blob approaches the
            // centre (mimicking LoS blockage), phase rotates with position.
            let centre_dist = (pos as f64 + 3.0 - w as f64 / 2.0).abs() / (w as f64 / 2.0);
            let amp = 2e-3 * (0.3 + 0.7 * centre_dist);
            let phase = 0.5 + centre_dist;
            let mut taps = vec![Complex::ZERO; 11];
            taps[5] = Complex::from_polar(amp, phase);
            taps[6] = Complex::from_polar(amp * 0.4, phase - 0.8);
            ds.push(VvdSample {
                image: img,
                target_cir: FirFilter::from_taps(&taps),
            });
        }
        ds
    }

    fn tiny_config() -> VvdConfig {
        let mut cfg = VvdConfig::quick();
        cfg.conv_filters = 4;
        cfg.dense_units = 32;
        cfg.epochs = 80;
        cfg.batch_size = 8;
        cfg.learning_rate = 4e-3;
        cfg
    }

    #[test]
    fn training_learns_image_to_cir_mapping() {
        let train = synthetic_dataset(60, 0);
        let val = synthetic_dataset(12, 3);
        let (model, report) = VvdModel::train(VvdVariant::Current, &tiny_config(), &train, &val);
        assert!(
            report.best_val_loss < report.val_loss[0],
            "validation loss should improve: {} -> {}",
            report.val_loss[0],
            report.best_val_loss
        );

        // Predictions on validation images should be closer to the target
        // than a naive "mean CIR" predictor.
        let predictions = model.predict_dataset(&val);
        let mean_cir = {
            let mut acc = vvd_dsp::CVec::zeros(11);
            for s in &train.samples {
                acc = acc.add(s.target_cir.taps());
            }
            FirFilter::new(acc.scale(1.0 / train.len() as f64))
        };
        let mut pred_err = 0.0;
        let mut mean_err = 0.0;
        for (p, s) in predictions.iter().zip(val.samples.iter()) {
            pred_err += p.taps().squared_error(s.target_cir.taps());
            mean_err += mean_cir.taps().squared_error(s.target_cir.taps());
        }
        assert!(
            pred_err < mean_err,
            "VVD ({pred_err:.3e}) should beat the mean predictor ({mean_err:.3e})"
        );
    }

    #[test]
    fn prediction_has_configured_tap_count_and_scale() {
        let train = synthetic_dataset(30, 1);
        let (model, _) = VvdModel::train(
            VvdVariant::Future33ms,
            &tiny_config(),
            &train,
            &VvdDataset::new(),
        );
        assert_eq!(model.variant(), VvdVariant::Future33ms);
        let cir = model.predict_cir(&train.samples[0].image);
        assert_eq!(cir.len(), 11);
        // Denormalised output is on the physical scale of the targets
        // (~1e-3), not on the normalised scale (~1).
        assert!(cir.taps().max_abs() < 0.1);
    }

    #[test]
    #[should_panic]
    fn empty_training_set_panics() {
        let _ = VvdModel::train(
            VvdVariant::Current,
            &tiny_config(),
            &VvdDataset::new(),
            &VvdDataset::new(),
        );
    }

    #[test]
    #[should_panic]
    fn wrong_image_size_at_inference_panics() {
        let train = synthetic_dataset(20, 0);
        let (model, _) = VvdModel::train(
            VvdVariant::Current,
            &tiny_config(),
            &train,
            &VvdDataset::new(),
        );
        let wrong = DepthImage::filled(10, 10, 0.5);
        let _ = model.predict_cir(&wrong);
    }

    #[test]
    fn batched_prediction_is_bit_identical_to_per_image() {
        let train = synthetic_dataset(40, 2);
        let (model, _) = VvdModel::train(
            VvdVariant::Current,
            &tiny_config(),
            &train,
            &VvdDataset::new(),
        );
        let batched = model.predict_dataset(&train);
        for (p, s) in batched.iter().zip(train.samples.iter()) {
            let single = model.predict_cir(&s.image);
            assert_eq!(p.taps(), single.taps(), "batched != per-image");
        }
    }

    #[test]
    fn clones_share_weights_and_predict_identically() {
        let train = synthetic_dataset(25, 4);
        let (model, _) = VvdModel::train(
            VvdVariant::Current,
            &tiny_config(),
            &train,
            &VvdDataset::new(),
        );
        let clone = model.clone();
        // Cloning is a reference-count bump, not a deep copy.
        assert!(Arc::ptr_eq(&model.state, &clone.state));
        let a = model.predict_cir(&train.samples[0].image);
        let b = clone.predict_cir(&train.samples[0].image);
        assert_eq!(a.taps(), b.taps());
    }

    #[test]
    fn model_key_matches_its_training_provenance() {
        let cfg = tiny_config();
        let train = synthetic_dataset(20, 0);
        let val = synthetic_dataset(5, 2);
        let (model, _) = VvdModel::train(VvdVariant::Current, &cfg, &train, &val);
        assert_eq!(
            model.key(),
            ModelKey::for_training(VvdVariant::Current, &cfg, &train, &val)
        );
        // The key survives serialisation (the cache and serving layers key
        // disk files and batch plans by it).
        let restored = VvdModel::from_json(&model.to_json()).unwrap();
        assert_eq!(restored.key(), model.key());
        // A different provenance yields a different key.
        let (other, _) = VvdModel::train(VvdVariant::Future33ms, &cfg, &train, &val);
        assert_ne!(other.key(), model.key());
    }

    #[test]
    fn json_roundtrip_predicts_bit_identically() {
        let train = synthetic_dataset(30, 5);
        let val = synthetic_dataset(8, 1);
        let (model, _) = VvdModel::train(VvdVariant::Future100ms, &tiny_config(), &train, &val);
        let json = model.to_json();
        let restored = VvdModel::from_json(&json).expect("roundtrip load");
        assert_eq!(restored.variant(), model.variant());
        assert_eq!(restored.normalizer().factor, model.normalizer().factor);
        for s in &train.samples {
            assert_eq!(
                restored.predict_cir(&s.image).taps(),
                model.predict_cir(&s.image).taps(),
                "restored model must predict bit-identically"
            );
        }
        assert!(VvdModel::from_json("not json").is_err());
    }
}
