//! VVD model: training and inference.
//!
//! Ties together the Fig.-8 architecture, the Fig.-6 output packing, the
//! Sec.-4 normalisation and the Nadam training loop with best-validation-
//! epoch selection, and exposes a [`VvdModel::predict_cir`] that returns a
//! denormalised [`FirFilter`] ready for the shared equalization pipeline.

use crate::architecture::build_vvd_cnn;
use crate::config::VvdConfig;
use crate::dataset::VvdDataset;
use crate::preprocess::CirNormalizer;
use crate::variant::VvdVariant;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vvd_dsp::FirFilter;
use vvd_nn::{Nadam, Sequential, Tensor, TrainConfig, Trainer};
use vvd_vision::DepthImage;

/// Summary of a VVD training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VvdTrainingReport {
    /// Variant the model was trained for.
    pub variant: VvdVariant,
    /// Training loss per epoch.
    pub train_loss: Vec<f32>,
    /// Validation loss per epoch.
    pub val_loss: Vec<f32>,
    /// Epoch whose weights were kept.
    pub best_epoch: usize,
    /// Validation MSE (normalised units) of the kept epoch.
    pub best_val_loss: f32,
}

/// A trained VVD model.
///
/// Cloning duplicates the full network state; clones predict identically,
/// which lets the evaluation harness train each variant once and hand an
/// owned copy to every estimator (including estimators running on worker
/// threads).
#[derive(Clone)]
pub struct VvdModel {
    network: Sequential,
    normalizer: CirNormalizer,
    config: VvdConfig,
    variant: VvdVariant,
    image_height: usize,
    image_width: usize,
}

impl VvdModel {
    /// Trains a VVD model of the given variant on the training dataset,
    /// using the validation dataset for model selection (Sec. 4).
    ///
    /// # Panics
    /// Panics on an empty training set or inconsistent image dimensions.
    pub fn train(
        variant: VvdVariant,
        config: &VvdConfig,
        train: &VvdDataset,
        validation: &VvdDataset,
    ) -> (Self, VvdTrainingReport) {
        assert!(!train.is_empty(), "VVD training set is empty");
        let h = train.image_height();
        let w = train.image_width();
        assert_eq!(
            train.channel_taps(),
            config.channel_taps,
            "dataset tap count does not match the configuration"
        );

        let normalizer = train.normalizer();
        let train_x = train.input_tensor();
        let train_y = train.target_tensor(&normalizer);
        let (val_x, val_y) = if validation.is_empty() {
            (
                Tensor::zeros(&[0, 1, h, w]),
                Tensor::zeros(&[0, config.output_units()]),
            )
        } else {
            (
                validation.input_tensor(),
                validation.target_tensor(&normalizer),
            )
        };

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut network = build_vvd_cnn(h, w, config, &mut rng);
        let mut optimizer = Nadam::new(config.learning_rate, config.lr_decay);
        let trainer = Trainer::new(TrainConfig {
            epochs: config.epochs,
            batch_size: config.batch_size,
            shuffle_seed: config.seed,
            keep_best_validation_epoch: true,
        });
        let report = trainer.fit(
            &mut network,
            &mut optimizer,
            &train_x,
            &train_y,
            &val_x,
            &val_y,
        );

        let model = VvdModel {
            network,
            normalizer,
            config: *config,
            variant,
            image_height: h,
            image_width: w,
        };
        let report = VvdTrainingReport {
            variant,
            train_loss: report.train_loss,
            val_loss: report.val_loss,
            best_epoch: report.best_epoch,
            best_val_loss: report.best_val_loss,
        };
        (model, report)
    }

    /// The prediction-horizon variant this model was trained for.
    pub fn variant(&self) -> VvdVariant {
        self.variant
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &VvdConfig {
        &self.config
    }

    /// The CIR normalisation factor learned from the training set.
    pub fn normalizer(&self) -> &CirNormalizer {
        &self.normalizer
    }

    /// Predicts the complex channel impulse response for one preprocessed
    /// depth image.
    ///
    /// # Panics
    /// Panics if the image dimensions differ from the training images.
    pub fn predict_cir(&mut self, image: &DepthImage) -> FirFilter {
        assert_eq!(
            (image.height(), image.width()),
            (self.image_height, self.image_width),
            "image dimensions do not match the trained model"
        );
        let x = Tensor::from_vec(
            &[1, 1, self.image_height, self.image_width],
            image.data().to_vec(),
        );
        let y = self.network.predict(&x);
        self.normalizer.denormalize(y.item(0))
    }

    /// Predicts CIRs for a whole dataset (used by the evaluation harness and
    /// the MSE metric).
    pub fn predict_dataset(&mut self, dataset: &VvdDataset) -> Vec<FirFilter> {
        dataset
            .samples
            .iter()
            .map(|s| {
                let x = Tensor::from_vec(
                    &[1, 1, self.image_height, self.image_width],
                    s.image.data().to_vec(),
                );
                let y = self.network.predict(&x);
                self.normalizer.denormalize(y.item(0))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::VvdSample;
    use vvd_dsp::Complex;

    /// Builds a synthetic dataset in which the CIR is a simple deterministic
    /// function of a "blob" position encoded in the image — a miniature
    /// version of the real learning problem.
    fn synthetic_dataset(n: usize, offset: usize) -> VvdDataset {
        let mut ds = VvdDataset::new();
        let (h, w) = (26, 30);
        for k in 0..n {
            let pos = (k * 7 + offset) % (w - 6);
            let mut img = DepthImage::filled(w, h, 0.8);
            for r in 8..16 {
                for c in pos..pos + 6 {
                    img.set(r, c, 0.2);
                }
            }
            // CIR: main tap amplitude decreases as the blob approaches the
            // centre (mimicking LoS blockage), phase rotates with position.
            let centre_dist = (pos as f64 + 3.0 - w as f64 / 2.0).abs() / (w as f64 / 2.0);
            let amp = 2e-3 * (0.3 + 0.7 * centre_dist);
            let phase = 0.5 + centre_dist;
            let mut taps = vec![Complex::ZERO; 11];
            taps[5] = Complex::from_polar(amp, phase);
            taps[6] = Complex::from_polar(amp * 0.4, phase - 0.8);
            ds.push(VvdSample {
                image: img,
                target_cir: FirFilter::from_taps(&taps),
            });
        }
        ds
    }

    fn tiny_config() -> VvdConfig {
        let mut cfg = VvdConfig::quick();
        cfg.conv_filters = 4;
        cfg.dense_units = 32;
        cfg.epochs = 80;
        cfg.batch_size = 8;
        cfg.learning_rate = 4e-3;
        cfg
    }

    #[test]
    fn training_learns_image_to_cir_mapping() {
        let train = synthetic_dataset(60, 0);
        let val = synthetic_dataset(12, 3);
        let (mut model, report) =
            VvdModel::train(VvdVariant::Current, &tiny_config(), &train, &val);
        assert!(
            report.best_val_loss < report.val_loss[0],
            "validation loss should improve: {} -> {}",
            report.val_loss[0],
            report.best_val_loss
        );

        // Predictions on validation images should be closer to the target
        // than a naive "mean CIR" predictor.
        let predictions = model.predict_dataset(&val);
        let mean_cir = {
            let mut acc = vvd_dsp::CVec::zeros(11);
            for s in &train.samples {
                acc = acc.add(s.target_cir.taps());
            }
            FirFilter::new(acc.scale(1.0 / train.len() as f64))
        };
        let mut pred_err = 0.0;
        let mut mean_err = 0.0;
        for (p, s) in predictions.iter().zip(val.samples.iter()) {
            pred_err += p.taps().squared_error(s.target_cir.taps());
            mean_err += mean_cir.taps().squared_error(s.target_cir.taps());
        }
        assert!(
            pred_err < mean_err,
            "VVD ({pred_err:.3e}) should beat the mean predictor ({mean_err:.3e})"
        );
    }

    #[test]
    fn prediction_has_configured_tap_count_and_scale() {
        let train = synthetic_dataset(30, 1);
        let (mut model, _) = VvdModel::train(
            VvdVariant::Future33ms,
            &tiny_config(),
            &train,
            &VvdDataset::new(),
        );
        assert_eq!(model.variant(), VvdVariant::Future33ms);
        let cir = model.predict_cir(&train.samples[0].image);
        assert_eq!(cir.len(), 11);
        // Denormalised output is on the physical scale of the targets
        // (~1e-3), not on the normalised scale (~1).
        assert!(cir.taps().max_abs() < 0.1);
    }

    #[test]
    #[should_panic]
    fn empty_training_set_panics() {
        let _ = VvdModel::train(
            VvdVariant::Current,
            &tiny_config(),
            &VvdDataset::new(),
            &VvdDataset::new(),
        );
    }

    #[test]
    #[should_panic]
    fn wrong_image_size_at_inference_panics() {
        let train = synthetic_dataset(20, 0);
        let (mut model, _) = VvdModel::train(
            VvdVariant::Current,
            &tiny_config(),
            &train,
            &VvdDataset::new(),
        );
        let wrong = DepthImage::filled(10, 10, 0.5);
        let _ = model.predict_cir(&wrong);
    }
}
