//! Per-rule fixture self-tests.
//!
//! Every rule ships three fixtures under `fixtures/<rule>/`:
//!
//! * `violating.rs` — must produce at least one finding of that rule,
//! * `clean.rs` — must produce no findings at all,
//! * `allowed.rs` — the same hazard under a well-formed `vvd-allow`
//!   waiver, must produce no findings at all.
//!
//! Each fixture is scanned under the workspace-relative path that puts it
//! in the rule's scope (a determinism-critical crate, a kernels/ file, a
//! crate root, ...).

use std::fs;
use std::path::PathBuf;

use vvd_analyze::{analyze_source, Config, Finding, Rule};

/// The path context each rule's fixtures are scanned under.
fn scan_path_for(rule: Rule) -> &'static str {
    match rule {
        Rule::NondetMap => "crates/estimation/src/fixture.rs",
        Rule::AmbientEnv => "crates/serve/src/fixture.rs",
        Rule::WallClock => "crates/serve/src/fixture.rs",
        Rule::AmbientEntropy => "crates/channel/src/fixture.rs",
        Rule::FloatReduce => "crates/nn/src/kernels/fixture.rs",
        Rule::AttrDrift => "crates/serve/src/lib.rs",
        Rule::Panic => "crates/serve/src/fixture.rs",
        Rule::AllowSyntax => "crates/serve/src/fixture.rs",
    }
}

fn fixture(rule: Rule, name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rule.id())
        .join(name);
    fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn run(rule: Rule, name: &str) -> Vec<Finding> {
    analyze_source(
        scan_path_for(rule),
        &fixture(rule, name),
        &Config::default(),
    )
}

#[test]
fn violating_fixtures_fire_their_rule() {
    for rule in Rule::ALL {
        let findings = run(rule, "violating.rs");
        assert!(
            findings.iter().any(|f| f.rule == rule),
            "fixtures/{}/violating.rs produced no {} finding; got: {findings:#?}",
            rule.id(),
            rule.id()
        );
    }
}

#[test]
fn clean_fixtures_are_clean() {
    for rule in Rule::ALL {
        let findings = run(rule, "clean.rs");
        assert!(
            findings.is_empty(),
            "fixtures/{}/clean.rs is not clean: {findings:#?}",
            rule.id()
        );
    }
}

#[test]
fn allowed_fixtures_are_waived() {
    for rule in Rule::ALL {
        let findings = run(rule, "allowed.rs");
        assert!(
            findings.is_empty(),
            "fixtures/{}/allowed.rs still fires: {findings:#?}",
            rule.id()
        );
    }
}

#[test]
fn every_registered_env_var_fires_when_read_outside_its_module() {
    // VVD_WORKERS, VVD_PIPELINE and VVD_AUTOTUNE_DIR are all registered to
    // crates/dsp/src/workers.rs — reading any of them from unregistered
    // code is one finding per read site.
    let findings = run(Rule::AmbientEnv, "violating.rs");
    let env_findings = findings
        .iter()
        .filter(|f| f.rule == Rule::AmbientEnv)
        .count();
    assert_eq!(
        env_findings, 3,
        "expected one ambient-env finding per registered-variable read; got: {findings:#?}"
    );
}

#[test]
fn timing_module_dispensation_does_not_extend_to_fixture_paths() {
    // The wall-clock fixture scans under crates/serve/src/fixture.rs —
    // adjacent to the allowlisted crates/serve/src/timing.rs — and must
    // still fire: the timing allowlist is exact-path, not per-directory.
    let findings = run(Rule::WallClock, "violating.rs");
    assert!(
        findings.iter().any(|f| f.rule == Rule::WallClock),
        "wall-clock fixture no longer fires: {findings:#?}"
    );
}

#[test]
fn violating_fixtures_fire_at_real_spans() {
    // Findings must point into the fixture, not at synthetic positions
    // (attr-drift anchors the crate root's first line by design).
    for rule in Rule::ALL {
        let source = fixture(rule, "violating.rs");
        let lines = source.lines().count();
        for f in run(rule, "violating.rs") {
            assert!(
                f.line >= 1 && f.line <= lines,
                "{}: finding line {} outside fixture ({} lines)",
                rule.id(),
                f.line,
                lines
            );
            assert!(f.col >= 1);
        }
    }
}
