//! The live workspace must be clean, and the binary must gate.
//!
//! This is the test that turns the analyzer from a tool into an
//! invariant: `cargo test` fails the moment anyone reintroduces a
//! nondeterminism hazard anywhere in `crates/*/src`, with the finding's
//! `file:line` in the failure message.

use std::path::{Path, PathBuf};
use std::process::Command;

use vvd_analyze::{analyze_workspace, Config};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn live_workspace_has_zero_findings() {
    let report = analyze_workspace(&workspace_root(), &Config::default())
        .expect("workspace sources are readable");
    assert!(
        report.files_scanned > 50,
        "suspiciously small scan set ({} files) — did the walker lose crates/*?",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "the workspace violates its own determinism invariants:\n{}",
        report.human()
    );
}

#[test]
fn binary_exits_zero_on_clean_workspace_and_emits_json() {
    let out = Command::new(env!("CARGO_BIN_EXE_vvd-analyze"))
        .args(["--root"])
        .arg(workspace_root())
        .args(["--format", "json"])
        .output()
        .expect("vvd-analyze binary runs");
    assert!(
        out.status.success(),
        "vvd-analyze exited nonzero on a clean workspace:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"clean\": true"), "unexpected JSON: {json}");
    assert!(json.contains("\"files_scanned\""));
}

#[test]
fn binary_fails_on_a_planted_hashmap_in_serve() {
    // Build a miniature workspace with a deliberate violation in
    // crates/serve and check the gate trips with exit code 1.
    let dir = std::env::temp_dir().join(format!(
        "vvd-analyze-planted-{}-{:x}",
        std::process::id(),
        std::ptr::from_ref(&workspace_root) as usize
    ));
    let serve_src = dir.join("crates/serve/src");
    std::fs::create_dir_all(&serve_src).expect("temp workspace is writable");
    std::fs::write(
        serve_src.join("lib.rs"),
        "#![deny(missing_docs)]\n#![deny(unsafe_code)]\n//! planted\nuse std::collections::HashMap;\npub type T = HashMap<u32, u32>;\n",
    )
    .expect("temp workspace is writable");

    let out = Command::new(env!("CARGO_BIN_EXE_vvd-analyze"))
        .args(["--root"])
        .arg(&dir)
        .args(["--format", "json"])
        .output()
        .expect("vvd-analyze binary runs");
    let json = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(1),
        "planted HashMap did not trip the gate: {json}"
    );
    assert!(
        json.contains("\"rule\": \"nondet-map\""),
        "unexpected JSON: {json}"
    );
    assert!(json.contains("\"clean\": false"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_modules_are_governed_by_the_critical_crate_rules() {
    // The session-durability layer (`crates/serve/src/checkpoint.rs` and
    // the cluster recovery path in `crates/net`) must stay inside the
    // critical-crate set: a message-less panic path planted in a
    // checkpoint module trips the gate like any other serve/net file.
    let cfg = Config::default();
    for governed in ["serve", "net"] {
        assert!(
            cfg.critical_crates.iter().any(|c| c == governed),
            "crate `{governed}` left the critical set — checkpoint modules would go unlinted"
        );
    }

    let dir = std::env::temp_dir().join(format!(
        "vvd-analyze-ckpt-{}-{:x}",
        std::process::id(),
        std::ptr::from_ref(&workspace_root) as usize
    ));
    let serve_src = dir.join("crates/serve/src");
    std::fs::create_dir_all(&serve_src).expect("temp workspace is writable");
    std::fs::write(
        serve_src.join("checkpoint.rs"),
        "//! planted\n/// d\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .expect("temp workspace is writable");

    let out = Command::new(env!("CARGO_BIN_EXE_vvd-analyze"))
        .args(["--root"])
        .arg(&dir)
        .args(["--format", "json"])
        .output()
        .expect("vvd-analyze binary runs");
    let json = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(1),
        "planted unwrap in a checkpoint module did not trip the gate: {json}"
    );
    assert!(
        json.contains("checkpoint.rs"),
        "finding does not point at the checkpoint module: {json}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn binary_rejects_unknown_arguments() {
    let out = Command::new(env!("CARGO_BIN_EXE_vvd-analyze"))
        .arg("--frobnicate")
        .output()
        .expect("vvd-analyze binary runs");
    assert_eq!(out.status.code(), Some(2));
}
