//! Fixture: an ambient env read outside the designated config modules.
//! Registered variables (`VVD_WORKERS`, `VVD_PIPELINE`, `VVD_AUTOTUNE_DIR`)
//! get no dispensation: the allowlist is the *module that owns the read*,
//! never the variable name.

pub fn workers() -> usize {
    std::env::var("VVD_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

pub fn pipeline() -> bool {
    std::env::var("VVD_PIPELINE").is_ok()
}

pub fn autotune_dir() -> Option<String> {
    std::env::var("VVD_AUTOTUNE_DIR").ok()
}
