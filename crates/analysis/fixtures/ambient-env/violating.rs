//! Fixture: an ambient env read outside the designated config modules.

pub fn workers() -> usize {
    std::env::var("VVD_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}
