//! Fixture: configuration flows in from the caller; `std::env::args` and
//! prose mentions of env::var in comments do not fire.

pub struct Options {
    pub workers: usize,
}

pub fn workers(opts: &Options) -> usize {
    // Reading env::var here would trip the rule; taking an Options value
    // keeps the ambient read at its one designated site.
    opts.workers.max(1)
}
