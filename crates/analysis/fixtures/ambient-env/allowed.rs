//! Fixture: a justified waiver suppresses the ambient-env finding.

pub fn debug_knob() -> bool {
    // vvd-allow: ambient-env — diagnostic-only knob, never affects outputs
    std::env::var("VVD_DEBUG_TRACE").is_ok()
}
