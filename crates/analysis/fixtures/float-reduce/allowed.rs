//! Fixture (scanned as a kernels/ file): a justified waiver suppresses
//! the float-reduce finding.

pub fn checksum(xs: &[f32]) -> f32 {
    // vvd-allow: float-reduce — diagnostic checksum, never compared bitwise
    xs.iter().sum::<f32>()
}
