//! Fixture (scanned as a kernels/ file): float reductions whose order is
//! an implementation detail must fire — turbofished and bare alike.

pub fn energy(xs: &[f32]) -> f32 {
    xs.iter().map(|x| x * x).sum::<f32>()
}

pub fn scale(xs: &[f64]) -> f64 {
    xs.iter().copied().product()
}
