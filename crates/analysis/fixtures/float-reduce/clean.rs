//! Fixture (scanned as a kernels/ file): pinned-order reductions pass —
//! the `vvd_dsp::accum` helpers for floats, integer turbofish for counts.

pub fn energy(xs: &[f32]) -> f32 {
    vvd_dsp::accum::sum_f32(xs.iter().map(|x| x * x))
}

pub fn total_len(chunks: &[Vec<f32>]) -> usize {
    chunks.iter().map(|c| c.len()).sum::<usize>()
}
