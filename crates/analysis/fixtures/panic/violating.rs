//! Fixture: unchecked panics in non-test code must fire — a bare
//! `unwrap()` and an `expect()` whose message is not a literal.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn named(name: &Option<String>) -> String {
    name.clone().expect(String::from("built dynamically").as_str())
}
