//! Fixture: panics that state their invariant pass, as do the non-panicky
//! `unwrap_or*` family and unwraps confined to test code.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().expect("callers validate non-emptiness in new()")
}

pub fn first_or_zero(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let xs = vec![1u32];
        assert_eq!(*xs.first().unwrap(), 1);
    }
}
