//! Fixture: a justified waiver suppresses the panic finding.

pub fn first(xs: &[u32]) -> u32 {
    // vvd-allow: panic — slice is non-empty by construction two lines up
    *xs.first().unwrap()
}
