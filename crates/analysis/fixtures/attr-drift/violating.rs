//! Fixture (scanned as a crate root): the `#![deny(..)]` headers are
//! missing, so both attr-drift findings must fire.

pub fn api() -> u32 {
    42
}
