// vvd-allow: attr-drift — fixture stands in for a generated crate root
//! Fixture (scanned as a crate root): a first-line waiver covers the
//! missing headers.

pub fn api() -> u32 {
    42
}
