//! Fixture (scanned as a crate root): both lint headers present.

#![deny(missing_docs)]
#![deny(unsafe_code)]

/// A documented item, as `missing_docs` demands.
pub fn api() -> u32 {
    42
}
