//! Fixture: ordered collections pass, and prose mentions of HashMap in
//! comments or strings ("HashMap", r"HashMap") must not fire.

use std::collections::BTreeMap;

pub fn tally(xs: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for x in xs {
        *counts.entry(*x).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

pub fn describe() -> &'static str {
    "this string mentions HashMap and must not trip the rule"
}
