//! Fixture: a justified waiver suppresses the finding.

// vvd-allow: nondet-map — membership probe only, never iterated
use std::collections::HashSet;

pub fn has_dupes(xs: &[u32]) -> bool {
    // vvd-allow: nondet-map — membership probe only, never iterated
    let mut seen: HashSet<u32> = HashSet::new(); // vvd-allow: nondet-map — membership probe only, never iterated
    !xs.iter().all(|x| seen.insert(*x))
}
