//! Fixture: a `HashMap` in a determinism-critical crate must fire.

use std::collections::HashMap;

pub fn tally(xs: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for x in xs {
        *counts.entry(*x).or_insert(0) += 1;
    }
    // The bug this rule exists for: iteration order is randomized.
    counts.into_iter().collect()
}
