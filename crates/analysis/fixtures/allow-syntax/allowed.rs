//! Fixture: every separator the grammar accepts — em dash, `--`, `-` —
//! parses as well-formed and produces no findings.

pub fn a(xs: &[u32]) -> u32 {
    // vvd-allow: panic — em dash separator
    *xs.first().unwrap()
}

pub fn b(xs: &[u32]) -> u32 {
    // vvd-allow: panic -- double-hyphen separator
    *xs.first().unwrap()
}

pub fn c(xs: &[u32]) -> u32 {
    // vvd-allow: panic - single-hyphen separator
    *xs.first().unwrap()
}
