//! Fixture: prose that merely *mentions* the waiver marker inside a
//! string is not a waiver, and a file with no waivers has no syntax to
//! get wrong.

pub fn grammar() -> &'static str {
    "vvd-allow: <rule> — <reason>"
}
