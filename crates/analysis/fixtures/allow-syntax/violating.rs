//! Fixture: malformed waivers are themselves findings — and waive
//! nothing, so the violation they decorate still fires too.

// vvd-allow: panic
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
