//! Fixture: a wall-clock read in engine code must fire.

use std::time::Instant;

pub fn tick_duration_ms() -> u128 {
    let started = Instant::now();
    std::hint::black_box(0u64);
    started.elapsed().as_millis()
}
