//! Fixture: the simulated clock passes; `Duration` values and prose
//! mentions of Instant::now in comments do not fire.

use std::time::Duration;

pub struct SimClock {
    ticks: u64,
}

impl SimClock {
    pub fn advance(&mut self) -> Duration {
        // Instant::now() here would trip the rule; simulated time is
        // advanced deterministically instead.
        self.ticks += 1;
        Duration::from_millis(100)
    }
}
