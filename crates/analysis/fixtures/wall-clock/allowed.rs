//! Fixture: a justified observability-only waiver suppresses the finding.

use std::time::Instant;

pub fn run_and_log<R>(f: impl FnOnce() -> R) -> R {
    // vvd-allow: wall-clock — observability only, never feeds a digest
    let started = Instant::now();
    let out = f();
    eprintln!("took {:?}", started.elapsed());
    out
}
