//! Fixture: caller-seeded randomness passes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub fn roll(seed: u64) -> u64 {
    // thread_rng() would trip the rule; every RNG is seeded by the caller
    // so runs are reproducible.
    let mut rng = StdRng::seed_from_u64(seed);
    rng.random()
}
