//! Fixture: a justified waiver suppresses the ambient-entropy finding.

pub fn nonce() -> u64 {
    // vvd-allow: ambient-entropy — collision-avoidance nonce for temp file names only
    rand::thread_rng().next_u64()
}
