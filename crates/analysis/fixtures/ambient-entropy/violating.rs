//! Fixture: ambient entropy must fire — both the classic `thread_rng()`
//! and seeding a generator `from_entropy()`.

pub fn roll(rng_seeded: bool) -> u64 {
    if rng_seeded {
        let mut rng = rand::rngs::StdRng::from_entropy();
        rng.next_u64()
    } else {
        rand::thread_rng().next_u64()
    }
}
