//! Workspace walking: which files the analyzer scans and in what order.
//!
//! The scan set is every `.rs` file under `crates/*/src` plus the root
//! façade's `src/` — the code whose behavior feeds reports and goldens.
//! Integration tests (`tests/`), benches (`benches/`), examples and the
//! vendored dependency subsets are out of scope: they either *are* the
//! goldens or are third-party code the workspace does not own.
//!
//! Directory entries are sorted before recursion so the analyzer's own
//! output order is deterministic — the tool enforcing determinism must not
//! itself depend on readdir order.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::report::{Finding, Report};
use crate::rules::{analyze_source, Config};

/// Returns the workspace-relative paths of every file to scan, sorted.
pub fn scan_set(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).ok().map(Path::to_path_buf))
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Analyzes the whole workspace under `root` with `cfg`.
pub fn analyze_workspace(root: &Path, cfg: &Config) -> io::Result<Report> {
    let files = scan_set(root)?;
    let mut findings: Vec<Finding> = Vec::new();
    let files_scanned = files.len();
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        let rel_str = rel
            .to_str()
            .map(|s| s.replace('\\', "/"))
            .unwrap_or_else(|| rel.to_string_lossy().into_owned());
        findings.extend(analyze_source(&rel_str, &source, cfg));
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule.id()).cmp(&(
            b.path.as_str(),
            b.line,
            b.col,
            b.rule.id(),
        ))
    });
    Ok(Report {
        findings,
        files_scanned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_set_is_sorted_and_workspace_relative() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = scan_set(&root).expect("workspace sources are readable");
        assert!(!files.is_empty());
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
        assert!(files.iter().all(|p| p.is_relative()));
        assert!(files
            .iter()
            .any(|p| p.ends_with("crates/analysis/src/workspace.rs")));
    }
}
