//! # vvd-analyze
//!
//! The workspace determinism & safety lint pass.
//!
//! Every subsystem of this reproduction stakes its correctness on one
//! property: **outputs are bit-identical across worker counts, cache
//! states and refactors**.  The golden tests defend that property after
//! the fact; this crate defends it *by construction*, failing CI at the
//! line that reintroduces a nondeterminism hazard:
//!
//! * [`rules::Rule::NondetMap`] — `HashMap`/`HashSet` in
//!   determinism-critical crates (randomized iteration order),
//! * [`rules::Rule::AmbientEnv`] — `std::env` reads outside the one
//!   designated config module per concern,
//! * [`rules::Rule::WallClock`] — `Instant::now`/`SystemTime` outside
//!   bench code (the engine runs on a simulated clock),
//! * [`rules::Rule::AmbientEntropy`] — `thread_rng`/`from_entropy`
//!   (randomness must flow from caller-seeded RNGs),
//! * [`rules::Rule::FloatReduce`] — unpinned float reductions in kernel
//!   and `thread::scope` files,
//! * [`rules::Rule::AttrDrift`] — crate roots missing the
//!   `#![deny(unsafe_code)]`/`#![deny(missing_docs)]` headers,
//! * [`rules::Rule::Panic`] — `unwrap()`/message-less `expect()` in
//!   non-test code,
//! * [`rules::Rule::AllowSyntax`] — malformed waiver comments.
//!
//! The scanner ([`scanner`]) is a hand-rolled Rust lexer — no `syn`, no
//! dependencies at all — that is never fooled by comments, strings, raw
//! strings or doc text.  Findings carry `file:line:col` spans and are
//! emitted in a deterministic order; `--format json` produces a stable
//! machine-readable report for CI artifacts.
//!
//! Run it with `cargo run -p vvd-analyze` from the workspace root.  The
//! binary exits `0` when clean, `1` on findings, `2` on usage/IO errors.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod report;
pub mod rules;
pub mod scanner;
pub mod workspace;

pub use report::{Finding, Report};
pub use rules::{analyze_source, Config, Rule};
pub use workspace::{analyze_workspace, scan_set};
