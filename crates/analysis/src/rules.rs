//! The rule engine: what each determinism/safety invariant means at the
//! token level, and how a file is checked against all of them.
//!
//! Every rule protects one leg of the workspace's core contract — reports
//! and goldens are **bit-identical across worker counts, cache states and
//! refactors**.  The rules are deliberately syntactic: they fire at the
//! line that introduces a nondeterminism hazard, not hours later when a
//! golden happens to flex.  See `DESIGN.md` § "Determinism invariants and
//! the analysis pass" for the prose rationale behind each rule.
//!
//! ## The waiver grammar
//!
//! A finding is waived by an inline comment:
//!
//! ```text
//! // vvd-allow: <rule> — <reason>
//! ```
//!
//! The rule name is the [`Rule::id`] string, the separator is an em dash
//! (ASCII `-`/`--` accepted) and the reason is mandatory — a reason-less
//! waiver is itself reported (`allow-syntax`).  A trailing comment waives
//! its own line; a comment standing alone on a line waives the line below.

use crate::report::Finding;
use crate::scanner::{scan, ScanUnit, Token, TokenKind};

/// The built-in rules, in the order they are checked and reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet` in determinism-critical crates.
    NondetMap,
    /// `std::env::var*` outside the designated config modules.
    AmbientEnv,
    /// `Instant::now`/`SystemTime` outside bench code.
    WallClock,
    /// `thread_rng`/`from_entropy` anywhere.
    AmbientEntropy,
    /// Unpinned float reductions in kernel/parallel-scope files.
    FloatReduce,
    /// Crate roots missing the `#![deny(..)]` lint headers.
    AttrDrift,
    /// `unwrap()`/message-less `expect()` in non-test code.
    Panic,
    /// Malformed `vvd-allow` waivers.
    AllowSyntax,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 8] = [
        Rule::NondetMap,
        Rule::AmbientEnv,
        Rule::WallClock,
        Rule::AmbientEntropy,
        Rule::FloatReduce,
        Rule::AttrDrift,
        Rule::Panic,
        Rule::AllowSyntax,
    ];

    /// The rule's stable identifier — also the `vvd-allow:` key.
    pub fn id(self) -> &'static str {
        match self {
            Rule::NondetMap => "nondet-map",
            Rule::AmbientEnv => "ambient-env",
            Rule::WallClock => "wall-clock",
            Rule::AmbientEntropy => "ambient-entropy",
            Rule::FloatReduce => "float-reduce",
            Rule::AttrDrift => "attr-drift",
            Rule::Panic => "panic",
            Rule::AllowSyntax => "allow-syntax",
        }
    }

    /// One-line description shown by `--list-rules`.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::NondetMap => {
                "HashMap/HashSet in determinism-critical crates (iteration order is \
                 randomized per process; use BTreeMap/BTreeSet)"
            }
            Rule::AmbientEnv => {
                "std::env reads outside the designated config modules (ambient \
                 configuration must flow through one audited site per concern)"
            }
            Rule::WallClock => {
                "Instant::now/SystemTime outside bench code (the engine runs on a \
                 simulated clock; wall time may only be observability)"
            }
            Rule::AmbientEntropy => {
                "thread_rng/from_entropy (all randomness must flow from \
                 caller-seeded RNGs)"
            }
            Rule::FloatReduce => {
                ".sum()/.product() in kernel or thread::scope files without a pinned \
                 order (use vvd_dsp::accum or an integer turbofish)"
            }
            Rule::AttrDrift => "crate root missing #![deny(unsafe_code)] / #![deny(missing_docs)]",
            Rule::Panic => {
                "unwrap() or message-less expect() in non-test code (state the \
                 invariant in an expect message, or justify with vvd-allow: panic)"
            }
            Rule::AllowSyntax => {
                "malformed vvd-allow waiver (grammar: `vvd-allow: <rule> — <reason>`; \
                 the reason is mandatory)"
            }
        }
    }
}

/// Workspace policy: which crates and files each rule governs.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose outputs feed digests/goldens — rule `nondet-map`
    /// applies here (test code included: flaky tests are still flaky).
    pub critical_crates: Vec<String>,
    /// The designated ambient-configuration modules, one per concern
    /// (workspace-relative paths).  Rule `ambient-env` fires everywhere
    /// else.
    pub env_modules: Vec<String>,
    /// Crates whose whole purpose is wall-clock measurement — rule
    /// `wall-clock` does not apply.
    pub bench_crates: Vec<String>,
    /// The designated observability-timing modules outside the bench
    /// crates (workspace-relative paths) — rule `wall-clock` does not
    /// apply.  Each entry quarantines wall-clock reads behind one audited
    /// type whose output is report-only (never fed into digests).
    pub timing_modules: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            critical_crates: [
                "core",
                "nn",
                "dsp",
                "channel",
                "estimation",
                "serve",
                "net",
                "testbed",
                "phy",
                "vision",
            ]
            .map(str::to_string)
            .to_vec(),
            env_modules: [
                // VVD_WORKERS / VVD_PROCS / VVD_CHECKPOINT_TICKS /
                // VVD_PIPELINE / VVD_AUTOTUNE_DIR — the execution-policy
                // knobs.
                "crates/dsp/src/workers.rs",
                // VVD_BENCH_PRESET — bench campaign scale.
                "crates/bench/src/lib.rs",
                // VVD_MODEL_CACHE_DIR — the on-disk model cache mount.
                "crates/testbed/src/stream.rs",
            ]
            .map(str::to_string)
            .to_vec(),
            bench_crates: vec!["bench".to_string()],
            timing_modules: [
                // GEMM autotune sweeps: wall time picks tile sizes, every
                // candidate is bit-identical, so speed never leaks into
                // results.
                "crates/nn/src/kernels/autotune.rs",
                // The serve engine's phase stopwatch: report-only
                // dsp/infer/overlap timings, excluded from digests.
                "crates/serve/src/timing.rs",
            ]
            .map(str::to_string)
            .to_vec(),
        }
    }
}

/// Where a file sits in the workspace, derived from its relative path.
#[derive(Debug, Clone)]
struct FileContext {
    /// Crate directory name (`serve`, `nn`, ...; `vvd` for the root
    /// façade).
    crate_name: String,
    /// `true` for `src/lib.rs` / `src/main.rs` — the files that must carry
    /// the lint headers.
    is_crate_root: bool,
    /// `true` when the path is under a `kernels/` directory.
    in_kernels_dir: bool,
}

fn file_context(rel_path: &str) -> FileContext {
    let norm = rel_path.replace('\\', "/");
    let parts: Vec<&str> = norm.split('/').collect();
    let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
        parts[1].to_string()
    } else {
        // The root façade package.
        "vvd".to_string()
    };
    let is_crate_root = matches!(
        parts.as_slice(),
        ["crates", _, "src", "lib.rs"] | ["crates", _, "src", "main.rs"] | ["src", "lib.rs"]
    );
    let in_kernels_dir = parts.contains(&"kernels");
    FileContext {
        crate_name,
        is_crate_root,
        in_kernels_dir,
    }
}

/// Analyzes one source file; `rel_path` is workspace-relative and drives
/// the per-crate / per-file rule scoping.
pub fn analyze_source(rel_path: &str, source: &str, cfg: &Config) -> Vec<Finding> {
    let ctx = file_context(rel_path);
    let unit = scan(source);
    let mut findings = Vec::new();

    check_allow_syntax(rel_path, &unit, &mut findings);
    if cfg.critical_crates.contains(&ctx.crate_name) {
        check_nondet_map(rel_path, &unit, &mut findings);
    }
    if !cfg.env_modules.iter().any(|m| m == rel_path) {
        check_ambient_env(rel_path, &unit, &mut findings);
    }
    if !cfg.bench_crates.contains(&ctx.crate_name)
        && !cfg.timing_modules.iter().any(|m| m == rel_path)
    {
        check_wall_clock(rel_path, &unit, &mut findings);
    }
    check_ambient_entropy(rel_path, &unit, &mut findings);
    check_float_reduce(rel_path, &ctx, &unit, &mut findings);
    if ctx.is_crate_root {
        check_attr_drift(rel_path, &unit, &mut findings);
    }
    check_panic(rel_path, &unit, &mut findings);

    findings.sort_by(|a, b| (a.line, a.col, a.rule.id()).cmp(&(b.line, b.col, b.rule.id())));
    findings
}

/// Pushes a finding unless a well-formed waiver covers its line.
fn emit(
    findings: &mut Vec<Finding>,
    unit: &ScanUnit,
    rule: Rule,
    rel_path: &str,
    token: &Token,
    message: String,
) {
    if unit.is_allowed(rule.id(), token.line) {
        return;
    }
    findings.push(Finding {
        rule,
        path: rel_path.to_string(),
        line: token.line,
        col: token.col,
        message,
    });
}

/// `tokens[i]` is an identifier reached through `<seg>::`.
fn preceded_by_path_seg(tokens: &[Token], i: usize, seg: &str) -> bool {
    i >= 3
        && tokens[i - 1].is_punct(':')
        && tokens[i - 2].is_punct(':')
        && tokens[i - 3].ident() == Some(seg)
}

/// `tokens[i]` is an identifier invoked as a method (`.ident`).
fn preceded_by_dot(tokens: &[Token], i: usize) -> bool {
    i >= 1 && tokens[i - 1].is_punct('.')
}

fn check_nondet_map(rel_path: &str, unit: &ScanUnit, findings: &mut Vec<Finding>) {
    for t in &unit.tokens {
        if let Some(id @ ("HashMap" | "HashSet")) = t.ident() {
            let replacement = if id == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            emit(
                findings,
                unit,
                Rule::NondetMap,
                rel_path,
                t,
                format!(
                    "`{id}` iteration order is randomized per process; use `{replacement}` \
                     (or justify with `// vvd-allow: nondet-map — <reason>` if it is \
                     provably never iterated)"
                ),
            );
        }
    }
}

fn check_ambient_env(rel_path: &str, unit: &ScanUnit, findings: &mut Vec<Finding>) {
    const BANNED: [&str; 6] = ["var", "var_os", "vars", "vars_os", "set_var", "remove_var"];
    for (i, t) in unit.tokens.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        if BANNED.contains(&id) && preceded_by_path_seg(&unit.tokens, i, "env") {
            emit(
                findings,
                unit,
                Rule::AmbientEnv,
                rel_path,
                t,
                format!(
                    "ambient environment read `env::{id}` outside the designated config \
                     modules; route it through the module that owns this concern \
                     (e.g. `vvd_dsp::workers::worker_budget()` for VVD_WORKERS)"
                ),
            );
        }
    }
}

fn check_wall_clock(rel_path: &str, unit: &ScanUnit, findings: &mut Vec<Finding>) {
    for (i, t) in unit.tokens.iter().enumerate() {
        if unit.in_test[i] {
            continue;
        }
        match t.ident() {
            Some("now") if preceded_by_path_seg(&unit.tokens, i, "Instant") => {
                emit(
                    findings,
                    unit,
                    Rule::WallClock,
                    rel_path,
                    t,
                    "`Instant::now()` outside bench code: the engine runs on a simulated \
                     clock, wall time must never influence results"
                        .to_string(),
                );
            }
            Some(id @ ("SystemTime" | "UNIX_EPOCH")) => {
                emit(
                    findings,
                    unit,
                    Rule::WallClock,
                    rel_path,
                    t,
                    format!(
                        "`{id}` outside bench code: the engine runs on a simulated clock, \
                         wall time must never influence results"
                    ),
                );
            }
            _ => {}
        }
    }
}

fn check_ambient_entropy(rel_path: &str, unit: &ScanUnit, findings: &mut Vec<Finding>) {
    for t in &unit.tokens {
        if let Some(id @ ("thread_rng" | "from_entropy")) = t.ident() {
            emit(
                findings,
                unit,
                Rule::AmbientEntropy,
                rel_path,
                t,
                format!(
                    "`{id}` draws ambient entropy; all randomness must flow from a \
                     caller-seeded RNG so runs are reproducible"
                ),
            );
        }
    }
}

/// `tokens[i]` (a `sum`/`product` method call) carries a turbofish naming
/// an integer type — the one reduction shape that cannot reassociate.
fn has_integer_turbofish(tokens: &[Token], i: usize) -> Option<bool> {
    // Expect `:: < ident`.
    if tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 3).is_some_and(|t| t.is_punct('<'))
    {
        let ty = tokens.get(i + 4).and_then(|t| t.ident());
        let integer = matches!(
            ty,
            Some(
                "u8" | "u16"
                    | "u32"
                    | "u64"
                    | "u128"
                    | "usize"
                    | "i8"
                    | "i16"
                    | "i32"
                    | "i64"
                    | "i128"
                    | "isize"
            )
        );
        Some(integer)
    } else {
        None
    }
}

fn check_float_reduce(
    rel_path: &str,
    ctx: &FileContext,
    unit: &ScanUnit,
    findings: &mut Vec<Finding>,
) {
    // Scope: kernel files and files that fan work out across
    // `thread::scope` workers — exactly where reduction order is the
    // bit-identity contract.
    let is_scope_file = ctx.in_kernels_dir
        || unit.tokens.iter().enumerate().any(|(i, t)| {
            t.ident() == Some("scope") && preceded_by_path_seg(&unit.tokens, i, "thread")
        });
    if !is_scope_file {
        return;
    }
    for (i, t) in unit.tokens.iter().enumerate() {
        if unit.in_test[i] {
            continue;
        }
        let Some(id @ ("sum" | "product")) = t.ident() else {
            continue;
        };
        if !preceded_by_dot(&unit.tokens, i) {
            continue;
        }
        match has_integer_turbofish(&unit.tokens, i) {
            Some(true) => {} // integer reduction: order-free by construction
            Some(false) => emit(
                findings,
                unit,
                Rule::FloatReduce,
                rel_path,
                t,
                format!(
                    "float `.{id}::<..>()` in a kernel/parallel-scope file: route the \
                     reduction through `vvd_dsp::accum` so the accumulation order is \
                     pinned explicitly"
                ),
            ),
            None => {
                // Bare `.sum()` / `.product()` — only a method call (next
                // token `(`) is a reduction; `cfg.sum` field access is not.
                if unit.tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                    emit(
                        findings,
                        unit,
                        Rule::FloatReduce,
                        rel_path,
                        t,
                        format!(
                            "`.{id}()` in a kernel/parallel-scope file hides its reduction \
                             order; use an integer turbofish (`.{id}::<usize>()`) for \
                             counts or `vvd_dsp::accum` for floats"
                        ),
                    );
                }
            }
        }
    }
}

fn check_attr_drift(rel_path: &str, unit: &ScanUnit, findings: &mut Vec<Finding>) {
    // Collect every `#![deny(<lint>)]` in the file.
    let mut denied: Vec<&str> = Vec::new();
    let toks = &unit.tokens;
    for i in 0..toks.len() {
        if toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 3).and_then(|t| t.ident()) == Some("deny")
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
        {
            let mut j = i + 5;
            while j < toks.len() && !toks[j].is_punct(')') {
                if let Some(id) = toks[j].ident() {
                    denied.push(id);
                }
                j += 1;
            }
        }
    }
    let anchor = Token {
        kind: TokenKind::Punct('#'),
        line: 1,
        col: 1,
    };
    for required in ["unsafe_code", "missing_docs"] {
        if !denied.contains(&required) {
            emit(
                findings,
                unit,
                Rule::AttrDrift,
                rel_path,
                &anchor,
                format!(
                    "crate root is missing `#![deny({required})]`; every crate keeps both \
                     lint headers so drift is caught here, not in review"
                ),
            );
        }
    }
}

fn check_panic(rel_path: &str, unit: &ScanUnit, findings: &mut Vec<Finding>) {
    for (i, t) in unit.tokens.iter().enumerate() {
        if unit.in_test[i] {
            continue;
        }
        match t.ident() {
            Some("unwrap")
                if preceded_by_dot(&unit.tokens, i)
                    && unit.tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                    && unit.tokens.get(i + 2).is_some_and(|n| n.is_punct(')')) =>
            {
                emit(
                    findings,
                    unit,
                    Rule::Panic,
                    rel_path,
                    t,
                    "`unwrap()` in non-test code: state the invariant in an \
                     `expect(\"...\")` message, or justify with \
                     `// vvd-allow: panic — <reason>`"
                        .to_string(),
                );
            }
            Some("expect")
                if preceded_by_dot(&unit.tokens, i)
                    && unit.tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                let arg = unit.tokens.get(i + 2);
                let literal_message =
                    matches!(arg.map(|a| &a.kind), Some(TokenKind::Str { empty: false }));
                if !literal_message {
                    emit(
                        findings,
                        unit,
                        Rule::Panic,
                        rel_path,
                        t,
                        "`expect()` without a literal invariant message in non-test code: \
                         the message is the documentation of why this cannot fail"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }
}

fn check_allow_syntax(rel_path: &str, unit: &ScanUnit, findings: &mut Vec<Finding>) {
    for allow in &unit.raw_allows {
        if allow.well_formed {
            continue;
        }
        findings.push(Finding {
            rule: Rule::AllowSyntax,
            path: rel_path.to_string(),
            line: allow.line,
            col: 1,
            message: format!(
                "malformed vvd-allow waiver (rule `{}`): the grammar is \
                 `vvd-allow: <rule> — <reason>` and the reason is mandatory",
                allow.rule
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        analyze_source(path, src, &Config::default())
    }

    #[test]
    fn hashmap_in_critical_crate_fires() {
        let f = run("crates/serve/src/x.rs", "use std::collections::HashMap;\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::NondetMap);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn hashmap_in_non_critical_crate_is_fine() {
        assert!(run("crates/bench/src/x.rs", "use std::collections::HashMap;\n").is_empty());
    }

    #[test]
    fn env_read_fires_outside_designated_modules() {
        let f = run(
            "crates/serve/src/x.rs",
            "fn f() -> String { std::env::var(\"X\").unwrap_or_default() }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::AmbientEnv);
    }

    #[test]
    fn env_read_in_designated_module_is_fine() {
        assert!(run(
            "crates/dsp/src/workers.rs",
            "fn f() { let _ = std::env::var(\"VVD_WORKERS\"); }\n"
        )
        .is_empty());
    }

    #[test]
    fn instant_now_fires_outside_bench() {
        let f = run(
            "crates/serve/src/x.rs",
            "fn f() { let _t = std::time::Instant::now(); }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::WallClock);
    }

    #[test]
    fn instant_now_in_bench_crate_is_fine() {
        assert!(run(
            "crates/bench/src/x.rs",
            "fn f() { let _t = std::time::Instant::now(); }\n"
        )
        .is_empty());
    }

    #[test]
    fn instant_now_in_timing_module_is_fine() {
        assert!(run(
            "crates/serve/src/timing.rs",
            "fn f() { let _t = std::time::Instant::now(); }\n"
        )
        .is_empty());
        assert!(run(
            "crates/nn/src/kernels/autotune.rs",
            "fn f() { let _t = std::time::Instant::now(); }\n"
        )
        .is_empty());
    }

    #[test]
    fn timing_module_allowlist_is_exact_path_match() {
        // A sibling file in the same directory gets no timing dispensation.
        let f = run(
            "crates/serve/src/engine.rs",
            "fn f() { let _t = std::time::Instant::now(); }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::WallClock);
    }

    #[test]
    fn pipeline_env_read_outside_workers_module_fires() {
        // VVD_PIPELINE / VVD_AUTOTUNE_DIR are owned by
        // crates/dsp/src/workers.rs; a stray read anywhere else is an
        // ambient-env violation regardless of the variable's name.
        let f = run(
            "crates/serve/src/engine.rs",
            "fn f() -> bool { std::env::var(\"VVD_PIPELINE\").is_ok() }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::AmbientEnv);
        let f = run(
            "crates/nn/src/kernels/autotune.rs",
            "fn f() -> bool { std::env::var(\"VVD_AUTOTUNE_DIR\").is_ok() }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::AmbientEnv);
    }

    #[test]
    fn bare_unwrap_fires_and_expect_with_message_does_not() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   fn g(x: Option<u32>) -> u32 { x.expect(\"always set by new()\") }\n";
        let f = run("crates/serve/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Panic);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }\n";
        assert!(run("crates/serve/src/x.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_test_module_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n fn t(x: Option<u32>) { x.unwrap(); }\n}\n";
        assert!(run("crates/serve/src/x.rs", src).is_empty());
    }

    #[test]
    fn float_sum_in_kernels_dir_fires() {
        let f = run(
            "crates/nn/src/kernels/x.rs",
            "fn f(v: &[f32]) -> f32 { v.iter().sum::<f32>() }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::FloatReduce);
    }

    #[test]
    fn integer_turbofish_sum_in_scope_file_is_fine() {
        let src = "fn f(v: &[Vec<u8>]) -> usize {\n\
                   std::thread::scope(|_| ());\n\
                   v.iter().map(|x| x.len()).sum::<usize>()\n}\n";
        assert!(run("crates/testbed/src/x.rs", src).is_empty());
    }

    #[test]
    fn bare_sum_outside_scope_files_is_fine() {
        assert!(run(
            "crates/serve/src/x.rs",
            "fn f(v: &[f32]) -> f32 { v.iter().sum() }\n"
        )
        .is_empty());
    }

    #[test]
    fn attr_drift_fires_on_missing_headers() {
        let f = run("crates/serve/src/lib.rs", "//! docs\npub fn x() {}\n");
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.rule == Rule::AttrDrift));
    }

    #[test]
    fn attr_drift_satisfied_by_both_headers() {
        let src = "//! docs\n#![deny(missing_docs)]\n#![deny(unsafe_code)]\npub fn x() {}\n";
        assert!(run("crates/serve/src/lib.rs", src).is_empty());
    }

    #[test]
    fn waiver_suppresses_and_malformed_waiver_reports() {
        let ok = "// vvd-allow: ambient-entropy — seeded upstream, fixture only\n\
                  fn f() { thread_rng(); }\n";
        assert!(run("crates/serve/src/x.rs", ok).is_empty());
        let bad = "// vvd-allow: ambient-entropy\nfn f() { thread_rng(); }\n";
        let f = run("crates/serve/src/x.rs", bad);
        assert_eq!(f.len(), 2); // the violation AND the malformed waiver
        assert!(f.iter().any(|f| f.rule == Rule::AllowSyntax));
        assert!(f.iter().any(|f| f.rule == Rule::AmbientEntropy));
    }

    #[test]
    fn root_facade_is_checked_for_attrs() {
        let f = run("src/lib.rs", "//! facade\npub use vvd_core as core;\n");
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.rule == Rule::AttrDrift));
    }
}
