//! A hand-rolled, comment/string/raw-string-aware Rust token scanner.
//!
//! The rule engine does not need a full parse of the language — every
//! invariant it enforces is visible at the token level (`HashMap` as an
//! identifier, `env :: var` as a path, `. unwrap ( )` as a call).  What it
//! *does* need is to never be fooled by surface syntax: a `HashMap` inside
//! a string literal, a doc comment or a `r#"raw string"#` is prose, not
//! code.  This scanner therefore lexes real Rust token boundaries —
//! line/block comments (nested), string/char/byte literals with escapes,
//! raw strings with arbitrary `#` fences, raw identifiers, lifetimes — and
//! emits only the tokens rules care about, each with its source position.
//!
//! Two side products of lexing feed the engine:
//!
//! * [`ScanUnit::allows`] — the `// vvd-allow: <rule> — <reason>` waiver
//!   comments (see [`crate::rules`] for the grammar), mapped to the lines
//!   they cover;
//! * [`ScanUnit::in_test`] — which tokens sit inside `#[cfg(test)]` /
//!   `#[test]` items, so rules that only govern shipping code can skip
//!   test regions.

use std::collections::BTreeMap;

/// What a [`Token`] is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `fn`, `r#type`, ...).
    Ident(String),
    /// A single punctuation character (`:` twice for `::`).
    Punct(char),
    /// A string or byte-string literal (regular or raw).
    Str {
        /// `true` when the literal has no content (`""`, `r""`).
        empty: bool,
    },
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A numeric literal (the scanner does not interpret it).
    Num,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column (in characters).
    pub col: usize,
}

impl Token {
    /// The identifier text when this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// `true` when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// A parsed `// vvd-allow:` waiver comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule the waiver names (`nondet-map`, `panic`, ...).
    pub rule: String,
    /// Line of the comment itself.
    pub line: usize,
    /// `true` when the grammar was respected (separator + non-empty
    /// reason); malformed waivers are reported by the `allow-syntax` rule
    /// and waive nothing.
    pub well_formed: bool,
}

/// The scanner's complete view of one source file.
#[derive(Debug, Default)]
pub struct ScanUnit {
    /// All lexed tokens in source order.
    pub tokens: Vec<Token>,
    /// `in_test[i]` is `true` when `tokens[i]` lies inside a
    /// `#[cfg(test)]` / `#[test]` item.
    pub in_test: Vec<bool>,
    /// Well-formed waivers, keyed by the *covered* line: the comment's own
    /// line, plus the following line when the comment stands alone.
    pub allows: BTreeMap<usize, Vec<Allow>>,
    /// Every waiver comment encountered, malformed ones included.
    pub raw_allows: Vec<Allow>,
}

impl ScanUnit {
    /// `true` when `rule` is waived on `line` by a well-formed
    /// `vvd-allow` comment.
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .get(&line)
            .is_some_and(|list| list.iter().any(|a| a.well_formed && a.rule == rule))
    }
}

/// Lexes `source` into a [`ScanUnit`].
pub fn scan(source: &str) -> ScanUnit {
    let chars: Vec<char> = source.chars().collect();
    let mut unit = ScanUnit::default();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    // Advances over `n` characters, tracking line/column.
    macro_rules! bump {
        ($n:expr) => {
            for _ in 0..$n {
                if i < chars.len() {
                    if chars[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let start_line = line;
        let start_col = col;

        // Whitespace.
        if c.is_whitespace() {
            bump!(1);
            continue;
        }

        // Line comments (`//`, `///`, `//!`): scan for a vvd-allow waiver.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let mut text = String::new();
            let only_ws_before = line_is_blank_before(&chars, i);
            while i < chars.len() && chars[i] != '\n' {
                text.push(chars[i]);
                bump!(1);
            }
            record_allow(&mut unit, &text, start_line, only_ws_before);
            continue;
        }

        // Block comments, nested.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            bump!(2);
            let mut depth = 1usize;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    bump!(2);
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    bump!(2);
                } else {
                    bump!(1);
                }
            }
            continue;
        }

        // Raw strings / raw identifiers / byte strings: r"..", r#".."#,
        // br".."; r#ident.
        if (c == 'r' || c == 'b') && is_raw_or_byte_start(&chars, i) {
            let mut j = i;
            if chars[j] == 'b' {
                j += 1;
            }
            if chars.get(j) == Some(&'r') {
                j += 1;
                // Count the `#` fence.
                let mut hashes = 0usize;
                while chars.get(j + hashes) == Some(&'#') {
                    hashes += 1;
                }
                if chars.get(j + hashes) == Some(&'"') {
                    // Raw (byte) string: scan to `"` followed by `hashes` #s.
                    let content_start = j + hashes + 1;
                    bump!(content_start - i);
                    let mut len = 0usize;
                    while i < chars.len() {
                        if chars[i] == '"' && closes_raw(&chars, i + 1, hashes) {
                            bump!(1 + hashes);
                            break;
                        }
                        len += 1;
                        bump!(1);
                    }
                    unit.tokens.push(Token {
                        kind: TokenKind::Str { empty: len == 0 },
                        line: start_line,
                        col: start_col,
                    });
                    continue;
                }
                if hashes == 1 && chars.get(j + 1).is_some_and(|c| is_ident_start(*c)) {
                    // Raw identifier `r#type`.
                    bump!(2); // over `r#`
                    let mut ident = String::new();
                    while i < chars.len() && is_ident_continue(chars[i]) {
                        ident.push(chars[i]);
                        bump!(1);
                    }
                    unit.tokens.push(Token {
                        kind: TokenKind::Ident(ident),
                        line: start_line,
                        col: start_col,
                    });
                    continue;
                }
            } else if chars.get(j) == Some(&'"') || chars.get(j) == Some(&'\'') {
                // b"..." / b'x': handled by the generic paths below after
                // skipping the `b` prefix.
                let quote = chars[j];
                bump!(1); // over `b`
                if quote == '"' {
                    lex_string(
                        &chars, &mut i, &mut line, &mut col, &mut unit, start_line, start_col,
                    );
                } else {
                    lex_char(
                        &chars, &mut i, &mut line, &mut col, &mut unit, start_line, start_col,
                    );
                }
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }

        // String literals.
        if c == '"' {
            lex_string(
                &chars, &mut i, &mut line, &mut col, &mut unit, start_line, start_col,
            );
            continue;
        }

        // Lifetimes vs char literals.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            if next.is_some_and(is_ident_start) && after != Some('\'') {
                // Lifetime: `'a`, `'static` (also the `'x` of a labelled
                // loop — indistinguishable and equally ignorable).
                bump!(1);
                while i < chars.len() && is_ident_continue(chars[i]) {
                    bump!(1);
                }
                unit.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    line: start_line,
                    col: start_col,
                });
            } else {
                lex_char(
                    &chars, &mut i, &mut line, &mut col, &mut unit, start_line, start_col,
                );
            }
            continue;
        }

        // Identifiers and keywords.
        if is_ident_start(c) {
            let mut ident = String::new();
            while i < chars.len() && is_ident_continue(chars[i]) {
                ident.push(chars[i]);
                bump!(1);
            }
            unit.tokens.push(Token {
                kind: TokenKind::Ident(ident),
                line: start_line,
                col: start_col,
            });
            continue;
        }

        // Numbers (shape only; contents are irrelevant to the rules).
        if c.is_ascii_digit() {
            while i < chars.len()
                && (chars[i].is_ascii_alphanumeric()
                    || chars[i] == '_'
                    || (chars[i] == '.' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())))
            {
                bump!(1);
            }
            unit.tokens.push(Token {
                kind: TokenKind::Num,
                line: start_line,
                col: start_col,
            });
            continue;
        }

        // Everything else is single-character punctuation.
        unit.tokens.push(Token {
            kind: TokenKind::Punct(c),
            line: start_line,
            col: start_col,
        });
        bump!(1);
    }

    unit.in_test = mark_test_regions(&unit.tokens);
    unit
}

/// `true` when the `r`/`b` at `chars[i]` begins a raw string, raw
/// identifier or byte literal rather than a plain identifier.
fn is_raw_or_byte_start(chars: &[char], i: usize) -> bool {
    // Not a prefix if the previous character continues an identifier
    // (`foo_r"..."` cannot happen; `var` ending in r is the common case).
    if i > 0 && is_ident_continue(chars[i - 1]) {
        return false;
    }
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) == Some(&'"') || chars.get(j) == Some(&'\'') {
            return true;
        }
    }
    if chars.get(j) == Some(&'r') {
        let mut k = j + 1;
        while chars.get(k) == Some(&'#') {
            k += 1;
        }
        if chars.get(k) == Some(&'"') {
            return true;
        }
        // Raw identifier r#ident.
        if k == j + 2 && chars.get(k).is_some_and(|c| is_ident_start(*c)) {
            return true;
        }
    }
    false
}

/// `true` when `chars[at..at + hashes]` are all `#`.
fn closes_raw(chars: &[char], at: usize, hashes: usize) -> bool {
    (0..hashes).all(|k| chars.get(at + k) == Some(&'#'))
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// `true` when only whitespace precedes position `i` on its line.
fn line_is_blank_before(chars: &[char], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if chars[j] == '\n' {
            return true;
        }
        if !chars[j].is_whitespace() {
            return false;
        }
    }
    true
}

/// Lexes a `"..."` literal starting at the opening quote.
#[allow(clippy::too_many_arguments)]
fn lex_string(
    chars: &[char],
    i: &mut usize,
    line: &mut usize,
    col: &mut usize,
    unit: &mut ScanUnit,
    start_line: usize,
    start_col: usize,
) {
    let bump = |i: &mut usize, line: &mut usize, col: &mut usize| {
        if *i < chars.len() {
            if chars[*i] == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        }
    };
    bump(i, line, col); // opening quote
    let mut len = 0usize;
    while *i < chars.len() {
        match chars[*i] {
            '\\' => {
                bump(i, line, col);
                bump(i, line, col);
                len += 1;
            }
            '"' => {
                bump(i, line, col);
                break;
            }
            _ => {
                bump(i, line, col);
                len += 1;
            }
        }
    }
    unit.tokens.push(Token {
        kind: TokenKind::Str { empty: len == 0 },
        line: start_line,
        col: start_col,
    });
}

/// Lexes a `'x'` literal starting at the opening quote.
#[allow(clippy::too_many_arguments)]
fn lex_char(
    chars: &[char],
    i: &mut usize,
    line: &mut usize,
    col: &mut usize,
    unit: &mut ScanUnit,
    start_line: usize,
    start_col: usize,
) {
    let bump = |i: &mut usize, line: &mut usize, col: &mut usize| {
        if *i < chars.len() {
            if chars[*i] == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        }
    };
    bump(i, line, col); // opening quote
    while *i < chars.len() {
        match chars[*i] {
            '\\' => {
                bump(i, line, col);
                bump(i, line, col);
            }
            '\'' => {
                bump(i, line, col);
                break;
            }
            _ => bump(i, line, col),
        }
    }
    unit.tokens.push(Token {
        kind: TokenKind::Char,
        line: start_line,
        col: start_col,
    });
}

/// Parses one line comment for the waiver grammar and records it.
fn record_allow(unit: &mut ScanUnit, comment: &str, line: usize, standalone: bool) {
    let body = comment.trim_start_matches(['/', '!']).trim_start();
    let Some(rest) = body.strip_prefix("vvd-allow:") else {
        return;
    };
    let rest = rest.trim_start();
    let rule: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
        .collect();
    let after = rest[rule.len()..].trim_start();
    // Grammar: `vvd-allow: <rule> — <reason>` (an ASCII `-`/`--` separator
    // is accepted too).  A missing separator or empty reason is malformed.
    let reason = after
        .strip_prefix('—')
        .or_else(|| after.strip_prefix("--"))
        .or_else(|| after.strip_prefix('-'))
        .map(str::trim);
    let well_formed = !rule.is_empty() && reason.is_some_and(|r| !r.is_empty());
    let allow = Allow {
        rule,
        line,
        well_formed,
    };
    unit.raw_allows.push(allow.clone());
    if well_formed {
        unit.allows.entry(line).or_default().push(allow.clone());
        if standalone {
            // A comment on its own line covers the line below it.
            unit.allows.entry(line + 1).or_default().push(allow);
        }
    }
}

/// Marks the token ranges of `#[cfg(test)]` / `#[test]` items.
///
/// An attribute whose argument list mentions `test` puts the item that
/// follows it (up to the matching close brace, or the terminating `;` for
/// brace-less items) into the test region.  This covers `mod tests { .. }`
/// blocks and `#[test]` functions without parsing the language.
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Collect the attribute tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut mentions_test = false;
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(']') {
                    depth -= 1;
                } else if tokens[j].ident() == Some("test") {
                    // `#[cfg(not(test))]` guards *non*-test code.
                    let negated = j >= 2
                        && tokens[j - 1].is_punct('(')
                        && tokens[j - 2].ident() == Some("not");
                    if !negated {
                        mentions_test = true;
                    }
                }
                j += 1;
            }
            if mentions_test {
                // Skip any further attributes, then span the item.
                let mut k = j;
                while k < tokens.len()
                    && tokens[k].is_punct('#')
                    && tokens.get(k + 1).is_some_and(|t| t.is_punct('['))
                {
                    let mut d = 1usize;
                    k += 2;
                    while k < tokens.len() && d > 0 {
                        if tokens[k].is_punct('[') {
                            d += 1;
                        } else if tokens[k].is_punct(']') {
                            d -= 1;
                        }
                        k += 1;
                    }
                }
                let mut end = k;
                let mut brace = 0usize;
                let mut entered = false;
                while end < tokens.len() {
                    if tokens[end].is_punct('{') {
                        brace += 1;
                        entered = true;
                    } else if tokens[end].is_punct('}') {
                        brace -= 1;
                        if entered && brace == 0 {
                            end += 1;
                            break;
                        }
                    } else if !entered && tokens[end].is_punct(';') {
                        end += 1;
                        break;
                    }
                    end += 1;
                }
                for flag in in_test.iter_mut().take(end.min(tokens.len())).skip(i) {
                    *flag = true;
                }
                i = end;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in /* a nested */ block comment */
            let s = "HashMap in a string";
            let r = r#"HashMap in a raw string"#;
            let b = b"HashMap in bytes";
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "HashMap").count(), 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let unit = scan(src);
        let lifetimes = unit
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = unit
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        assert!(idents("let r#type = 1;").contains(&"type".to_string()));
    }

    #[test]
    fn allow_comment_covers_own_and_next_line_when_standalone() {
        let src = "// vvd-allow: nondet-map — never iterated\nuse std::collections::HashMap;\n";
        let unit = scan(src);
        assert!(unit.is_allowed("nondet-map", 1));
        assert!(unit.is_allowed("nondet-map", 2));
        assert!(!unit.is_allowed("nondet-map", 3));
    }

    #[test]
    fn trailing_allow_covers_only_its_line() {
        let src = "let m = HashMap::new(); // vvd-allow: nondet-map — never iterated\nlet x = 1;\n";
        let unit = scan(src);
        assert!(unit.is_allowed("nondet-map", 1));
        assert!(!unit.is_allowed("nondet-map", 2));
    }

    #[test]
    fn reasonless_allow_is_malformed() {
        let unit = scan("// vvd-allow: panic\nfoo.unwrap();\n");
        assert!(!unit.is_allowed("panic", 2));
        assert_eq!(unit.raw_allows.len(), 1);
        assert!(!unit.raw_allows[0].well_formed);
    }

    #[test]
    fn ascii_separator_is_accepted() {
        let unit = scan("// vvd-allow: wall-clock - observability only\nx();\n");
        assert!(unit.is_allowed("wall-clock", 2));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn live() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); }\n}\nfn live2() {}\n";
        let unit = scan(src);
        let flags: Vec<(Option<&str>, bool)> = unit
            .tokens
            .iter()
            .zip(unit.in_test.iter())
            .map(|(t, f)| (t.ident(), *f))
            .collect();
        // `a` is live, `b` is test-only, `live2` is live again.
        assert!(flags.iter().any(|(id, f)| *id == Some("a") && !f));
        assert!(flags.iter().any(|(id, f)| *id == Some("b") && *f));
        assert!(flags.iter().any(|(id, f)| *id == Some("live2") && !f));
    }

    #[test]
    fn test_attribute_on_fn_is_marked() {
        let src = "#[test]\nfn check() { x.unwrap(); }\nfn live() {}\n";
        let unit = scan(src);
        let pairs: Vec<(Option<&str>, bool)> = unit
            .tokens
            .iter()
            .zip(unit.in_test.iter())
            .map(|(t, f)| (t.ident(), *f))
            .collect();
        assert!(pairs.iter().any(|(id, f)| *id == Some("x") && *f));
        assert!(pairs.iter().any(|(id, f)| *id == Some("live") && !f));
    }
}
