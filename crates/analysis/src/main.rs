//! The `vvd-analyze` command-line entry point.
//!
//! ```text
//! vvd-analyze [--root DIR] [--format human|json] [--list-rules]
//! ```
//!
//! Exits `0` when the workspace is clean, `1` when any unwaived finding
//! exists, `2` on usage or IO errors.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use vvd_analyze::{analyze_workspace, Config, Rule};

enum Format {
    Human,
    Json,
}

fn usage() -> String {
    "usage: vvd-analyze [--root DIR] [--format human|json] [--list-rules]\n\
     \n\
     Scans every crates/*/src (and the root façade src/) .rs file and\n\
     enforces the workspace determinism & safety invariants.  Exit codes:\n\
     0 clean, 1 findings, 2 usage/IO error.\n"
        .to_string()
}

fn run() -> Result<ExitCode, String> {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Human;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let dir = args
                    .next()
                    .ok_or_else(|| "--root needs a directory".to_string())?;
                root = Some(PathBuf::from(dir));
            }
            "--format" => {
                let f = args
                    .next()
                    .ok_or_else(|| "--format needs a value".to_string())?;
                format = match f.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (human|json)")),
                };
            }
            "--list-rules" => {
                for rule in Rule::ALL {
                    println!("{:<16} {}", rule.id(), rule.summary());
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--help" | "-h" => {
                print!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }

    // Default root: the workspace this binary was built in, falling back
    // to the current directory (the normal `cargo run -p vvd-analyze`
    // invocation runs from the workspace root either way).
    let root = root.unwrap_or_else(|| {
        let manifest_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
        if manifest_root.join("crates").is_dir() {
            manifest_root
        } else {
            PathBuf::from(".")
        }
    });

    let report = analyze_workspace(&root, &Config::default())
        .map_err(|e| format!("failed to scan {}: {e}", root.display()))?;
    match format {
        Format::Human => print!("{}", report.human()),
        Format::Json => print!("{}", report.json()),
    }
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("vvd-analyze: {msg}");
            ExitCode::from(2)
        }
    }
}
