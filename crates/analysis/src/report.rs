//! Findings and the two report formats (human, JSON).
//!
//! The JSON writer is hand-rolled: the schema is four scalar fields per
//! finding, and keeping the analyzer dependency-free means it builds and
//! runs even when the rest of the workspace is mid-refactor.

use crate::rules::Rule;

/// One rule violation at a source position.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What is wrong and how to fix it.
    pub message: String,
}

/// The outcome of analyzing a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// All unwaived findings, sorted by path, then position.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// `true` when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The human-readable report.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}:{}: [{}] {}\n",
                f.path,
                f.line,
                f.col,
                f.rule.id(),
                f.message
            ));
        }
        out.push_str(&format!(
            "vvd-analyze: {} finding{} in {} file{} scanned\n",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.files_scanned,
            if self.files_scanned == 1 { "" } else { "s" },
        ));
        out
    }

    /// The `--format json` report (stable schema, one object per finding).
    pub fn json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}",
                json_str(f.rule.id()),
                json_str(&f.path),
                f.line,
                f.col,
                json_str(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"files_scanned\": {},\n  \"clean\": {}\n}}\n",
            self.files_scanned,
            self.is_clean()
        ));
        out
    }
}

/// Escapes `s` as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            findings: vec![Finding {
                rule: Rule::NondetMap,
                path: "crates/serve/src/x.rs".to_string(),
                line: 3,
                col: 9,
                message: "a \"quoted\" message".to_string(),
            }],
            files_scanned: 2,
        }
    }

    #[test]
    fn human_report_includes_span_and_rule() {
        let h = sample().human();
        assert!(h.contains("crates/serve/src/x.rs:3:9: [nondet-map]"));
        assert!(h.contains("1 finding in 2 files scanned"));
    }

    #[test]
    fn json_report_escapes_and_carries_schema() {
        let j = sample().json();
        assert!(j.contains("\"rule\": \"nondet-map\""));
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"files_scanned\": 2"));
        assert!(j.contains("\"clean\": false"));
    }

    #[test]
    fn empty_report_is_clean_json() {
        let r = Report {
            findings: vec![],
            files_scanned: 5,
        };
        assert!(r.is_clean());
        assert!(r.json().contains("\"clean\": true"));
    }
}
