//! # vvd-channel
//!
//! Geometric indoor multipath channel simulator for the Veni Vidi Dixi
//! reproduction.
//!
//! The paper's central causal assumption (its two hypotheses, Sec. 2.2) is
//! that the positions of mobile objects in an indoor environment determine
//! the amplitude and phase of the multipath components (MPCs) between a
//! static transmitter and receiver.  This crate turns that assumption into a
//! simulator:
//!
//! * a laboratory-like [`room::Room`] with a transmitter, a receiver, four
//!   reflecting walls and a set of static metallic scatterers,
//! * an explicit enumeration of MPCs — line of sight, first-order wall
//!   reflections (image method) and scatterer bounces ([`paths`]),
//! * a mobile [`human::Human`] modelled as a vertical cylinder that
//!   attenuates every MPC whose path it intersects, with a smooth
//!   transition so that near-misses produce partial shadowing
//!   ([`blockage`]),
//! * synthesis of the sample-spaced tapped-delay-line channel impulse
//!   response from the MPCs ([`cir`]), including the diffuse residual and
//!   the human-scattered component that keep the channel from being a
//!   perfectly learnable function of the camera image,
//! * per-packet impairments — crystal-induced mean phase offset and AWGN —
//!   and application of the whole thing to a baseband waveform
//!   ([`apply`]),
//! * blocker mobility models — the paper's single random-waypoint walker,
//!   multi-walker crowds and replayable traces ([`mobility`]),
//! * the pluggable **scenario engine** ([`scenario`]): the
//!   [`ChannelScenario`] trait bundling room + blockers + fading/noise
//!   behind one streaming interface, with a [`ScenarioRegistry`] building
//!   scenarios from spec strings such as `"paper"`,
//!   `"room:large,humans=4,speed=1.5"`, `"rician:k=6,doppler=30"` or
//!   `"paper+burst-noise:p=0.01"` — the evaluation harness in
//!   `vvd-testbed` runs any of them without edits.
//!
//! The hardware that this replaces (Zolertia motes + USRP sniffer in a real
//! laboratory) is discussed in `DESIGN.md`; the key property preserved is
//! that the CIR is a deterministic-plus-small-noise function of the human
//! position, which is exactly what VVD's CNN is asked to learn.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod apply;
pub mod blockage;
pub mod cir;
pub mod geometry;
pub mod human;
pub mod mobility;
pub mod noise;
pub mod paths;
pub mod room;
pub mod scenario;

pub use apply::{apply_channel, ChannelRealization};
pub use cir::{CirConfig, CirSynthesizer};
pub use geometry::Point3;
pub use human::Human;
pub use mobility::{Crowd, MobilityTrace, RandomWaypoint};
pub use paths::{enumerate_paths, MultipathComponent};
pub use room::{Room, Scatterer};
pub use scenario::{
    BoxedScenario, ChannelScenario, PacketChannel, ScenarioRegistry, ScenarioSpec, SpecParseError,
};
