//! Human blockage of multipath components.
//!
//! This module answers the question at the heart of the paper's hypotheses:
//! given where the human stands, by how much is each multipath component
//! attenuated?  A component is attenuated when the human cylinder comes
//! close to any of its propagation segments; the attenuation is the product
//! over segments (a person standing on the reflection point shadows both the
//! incident and the reflected leg).

use crate::human::Human;
use crate::paths::MultipathComponent;

/// Linear amplitude factor the human applies to one multipath component.
///
/// `1.0` means unobstructed; smaller values mean body shadowing.  The factor
/// is the product of the per-segment transmission factors, where each
/// segment uses the closest-approach clearance between the segment and the
/// human cylinder axis (evaluated at the height the path crosses the
/// person).
pub fn blockage_factor(component: &MultipathComponent, human: &Human) -> f64 {
    let mut factor = 1.0;
    for seg in &component.segments {
        let clearance = seg.horizontal_distance_to_axis(human.x, human.y);
        let t = seg.closest_t_to_axis(human.x, human.y);
        let crossing_height = seg.point_at(t).z;
        factor *= human.transmission_factor(clearance, crossing_height);
    }
    factor
}

/// Convenience: `true` when the component is "meaningfully" shadowed
/// (more than 3 dB of extra loss).
pub fn is_blocked(component: &MultipathComponent, human: &Human) -> bool {
    blockage_factor(component, human) < 10f64.powf(-3.0 / 20.0)
}

/// Returns the blockage factors for a whole set of components.
pub fn blockage_factors(components: &[MultipathComponent], human: &Human) -> Vec<f64> {
    components
        .iter()
        .map(|c| blockage_factor(c, human))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::enumerate_paths;
    use crate::room::Room;

    #[test]
    fn human_on_los_blocks_los_only_mostly() {
        let room = Room::laboratory();
        let paths = enumerate_paths(&room);
        // Stand exactly between TX and RX (both at y = 3.0).
        let human = Human::at(4.0, 3.0);
        let factors = blockage_factors(&paths, &human);
        // LoS heavily attenuated.
        assert!(factors[0] < 0.2, "LoS factor {}", factors[0]);
        assert!(is_blocked(&paths[0], &human));
        // North/south wall reflections bounce away from the centre line and
        // should be (almost) clear.
        let clear_count = factors[1..].iter().filter(|&&f| f > 0.9).count();
        assert!(clear_count >= 2, "expected some unobstructed NLoS paths");
    }

    #[test]
    fn human_in_a_corner_leaves_los_clear() {
        let room = Room::laboratory();
        let paths = enumerate_paths(&room);
        let human = Human::at(2.0, 4.8);
        let f = blockage_factor(&paths[0], &human);
        assert!((f - 1.0).abs() < 1e-9, "LoS should be clear, factor {f}");
        assert!(!is_blocked(&paths[0], &human));
    }

    #[test]
    fn blocking_a_reflection_point_attenuates_that_component() {
        let room = Room::laboratory();
        let paths = enumerate_paths(&room);
        // Find the north-wall reflection and stand near its reflection point.
        let north = paths
            .iter()
            .find(|p| {
                matches!(
                    p.kind,
                    crate::paths::PathKind::WallReflection(crate::geometry::Wall::North)
                )
            })
            .unwrap();
        let refl_point = north.segments[0].b;
        // Stand just inside the room at the same x as the reflection point,
        // one step away from the wall so the cylinder crosses both legs.
        let human = Human::at(refl_point.x, room.depth - 0.3);
        let f = blockage_factor(north, &human);
        assert!(f < 0.5, "north reflection should be shadowed, factor {f}");
        // The LoS is far away from that position and stays clear.
        assert!(blockage_factor(&paths[0], &human) > 0.95);
    }

    #[test]
    fn factors_are_in_unit_interval() {
        let room = Room::laboratory();
        let paths = enumerate_paths(&room);
        for gx in 0..10 {
            for gy in 0..8 {
                let human = Human::at(0.5 + gx as f64 * 0.75, 0.5 + gy as f64 * 0.65);
                for f in blockage_factors(&paths, &human) {
                    assert!((0.0..=1.0).contains(&f));
                }
            }
        }
    }

    #[test]
    fn moving_across_the_los_produces_smooth_transition() {
        let room = Room::laboratory();
        let paths = enumerate_paths(&room);
        let los = &paths[0];
        let mut prev: Option<f64> = None;
        let mut max_step = 0.0f64;
        // Walk across the LoS line in small steps.
        for i in 0..=60 {
            let y = 2.0 + i as f64 * (2.0 / 60.0);
            let f = blockage_factor(los, &Human::at(4.0, y));
            if let Some(p) = prev {
                max_step = max_step.max((f - p).abs());
            }
            prev = Some(f);
        }
        // Smooth transition: no single 3.3 cm step jumps more than 0.4 in
        // amplitude factor.
        assert!(max_step < 0.4, "transition too abrupt: {max_step}");
    }
}
