//! Enumeration of multipath components.
//!
//! Fig. 1 of the paper illustrates the mental model: a line-of-sight path
//! plus several reflected paths, any of which may be distorted when the
//! human stands in it.  We enumerate exactly that set for the static
//! geometry:
//!
//! * the LoS path TX → RX,
//! * one first-order specular reflection off each of the four walls
//!   (image method),
//! * one bounce off every static metallic scatterer (TX → object → RX).
//!
//! Each component carries its geometric length, a complex gain derived from
//! free-space path loss, reflection losses and the carrier-phase of the
//! travelled distance, and the propagation segments needed for blockage
//! tests.

use crate::geometry::{Point3, Segment, Wall};
use crate::room::Room;
use serde::{Deserialize, Serialize};
use vvd_dsp::Complex;

/// Speed of light in m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Carrier frequency of IEEE 802.15.4 channel 26 (Hz).
pub const CARRIER_HZ: f64 = 2.48e9;

/// What kind of propagation mechanism a component represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathKind {
    /// Direct line of sight.
    LineOfSight,
    /// Single specular reflection off a wall.
    WallReflection(Wall),
    /// Single bounce off a static scatterer (index into `Room::scatterers`).
    ScattererBounce(usize),
}

/// One multipath component of the static environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultipathComponent {
    /// Propagation mechanism.
    pub kind: PathKind,
    /// Total geometric path length in metres.
    pub length_m: f64,
    /// Complex gain of the component for the unobstructed environment
    /// (free-space loss × reflection coefficient × carrier phase).
    pub gain: Complex,
    /// Straight-line segments the signal travels along (1 for LoS, 2 for a
    /// single bounce); used for blockage testing.
    pub segments: Vec<Segment>,
}

impl MultipathComponent {
    /// Excess path length relative to the LoS distance.
    pub fn excess_length(&self, los_m: f64) -> f64 {
        (self.length_m - los_m).max(0.0)
    }
}

/// Free-space amplitude gain at distance `d` for wavelength `lambda`
/// (Friis, amplitude not power): `lambda / (4π d)`.
fn free_space_amplitude(d: f64, lambda: f64) -> f64 {
    lambda / (4.0 * std::f64::consts::PI * d.max(0.1))
}

/// Complex gain of a path of total length `length_m` with an extra amplitude
/// factor (reflection/scattering losses).
fn path_gain(length_m: f64, extra_amplitude: f64, lambda: f64) -> Complex {
    let amp = free_space_amplitude(length_m, lambda) * extra_amplitude;
    let phase = -2.0 * std::f64::consts::PI * length_m / lambda;
    Complex::from_polar(amp, phase)
}

/// Enumerates the multipath components of the static environment.
pub fn enumerate_paths(room: &Room) -> Vec<MultipathComponent> {
    let lambda = SPEED_OF_LIGHT / CARRIER_HZ;
    let mut out = Vec::with_capacity(1 + 4 + room.scatterers.len());

    // Line of sight.
    let los_len = room.los_distance();
    out.push(MultipathComponent {
        kind: PathKind::LineOfSight,
        length_m: los_len,
        gain: path_gain(los_len, 1.0, lambda),
        segments: vec![Segment::new(room.tx, room.rx)],
    });

    // First-order wall reflections via the image method.
    for wall in Wall::ALL {
        let refl = wall.reflection_point(room.tx, room.rx, room.width, room.depth);
        let length = room.tx.distance(refl) + refl.distance(room.rx);
        out.push(MultipathComponent {
            kind: PathKind::WallReflection(wall),
            length_m: length,
            gain: path_gain(length, room.wall_reflectivity, lambda),
            segments: vec![Segment::new(room.tx, refl), Segment::new(refl, room.rx)],
        });
    }

    // Scatterer bounces.
    for (idx, s) in room.scatterers.iter().enumerate() {
        let length = room.tx.distance(s.position) + s.position.distance(room.rx);
        out.push(MultipathComponent {
            kind: PathKind::ScattererBounce(idx),
            length_m: length,
            gain: path_gain(length, s.reflectivity, lambda),
            segments: vec![
                Segment::new(room.tx, s.position),
                Segment::new(s.position, room.rx),
            ],
        });
    }

    out
}

/// The dynamic path scattered off the human body itself (TX → human → RX).
///
/// Unlike the static components this one moves with the human; its carrier
/// phase changes by a full cycle for every ~6 cm of path-length change,
/// which makes it essentially unpredictable from a coarse depth image.  It
/// is exactly the kind of residual that keeps VVD's estimate from matching
/// the ground truth perfectly (cf. the gap in Fig. 14).
pub fn human_scatter_path(room: &Room, x: f64, y: f64, reflectivity: f64) -> MultipathComponent {
    let lambda = SPEED_OF_LIGHT / CARRIER_HZ;
    let p = Point3::new(x, y, 1.0);
    let length = room.tx.distance(p) + p.distance(room.rx);
    MultipathComponent {
        kind: PathKind::ScattererBounce(usize::MAX),
        length_m: length,
        gain: path_gain(length, reflectivity, lambda),
        segments: vec![Segment::new(room.tx, p), Segment::new(p, room.rx)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_expected_number_of_paths() {
        let room = Room::laboratory();
        let paths = enumerate_paths(&room);
        assert_eq!(paths.len(), 1 + 4 + room.scatterers.len());
        assert!(matches!(paths[0].kind, PathKind::LineOfSight));
    }

    #[test]
    fn los_is_shortest_and_strongest() {
        let room = Room::laboratory();
        let paths = enumerate_paths(&room);
        let los = &paths[0];
        for p in &paths[1..] {
            assert!(p.length_m > los.length_m, "{:?} shorter than LoS", p.kind);
            assert!(
                p.gain.abs() < los.gain.abs(),
                "{:?} stronger than LoS",
                p.kind
            );
        }
    }

    #[test]
    fn reflected_path_lengths_are_consistent_with_segments() {
        let room = Room::laboratory();
        for p in enumerate_paths(&room) {
            let seg_len: f64 = p.segments.iter().map(|s| s.length()).sum();
            assert!(
                (seg_len - p.length_m).abs() < 1e-9,
                "{:?} segment sum {seg_len} != {}",
                p.kind,
                p.length_m
            );
        }
    }

    #[test]
    fn gains_decrease_with_length() {
        let room = Room::laboratory();
        let paths = enumerate_paths(&room);
        // Among wall reflections (same reflectivity) longer paths are weaker.
        let mut walls: Vec<&MultipathComponent> = paths
            .iter()
            .filter(|p| matches!(p.kind, PathKind::WallReflection(_)))
            .collect();
        walls.sort_by(|a, b| a.length_m.partial_cmp(&b.length_m).unwrap());
        for pair in walls.windows(2) {
            assert!(pair[0].gain.abs() >= pair[1].gain.abs());
        }
    }

    #[test]
    fn excess_length_of_los_is_zero() {
        let room = Room::laboratory();
        let paths = enumerate_paths(&room);
        let los_len = room.los_distance();
        assert_eq!(paths[0].excess_length(los_len), 0.0);
        for p in &paths[1..] {
            assert!(p.excess_length(los_len) > 0.0);
        }
    }

    #[test]
    fn human_scatter_path_moves_with_the_human() {
        let room = Room::laboratory();
        let a = human_scatter_path(&room, 3.0, 3.0, 0.3);
        let b = human_scatter_path(&room, 3.0, 4.0, 0.3);
        assert!(b.length_m > a.length_m);
        assert_ne!(a.gain, b.gain);
    }

    #[test]
    fn phase_wraps_with_small_position_changes() {
        // Moving the human-scatter point by half a wavelength changes the
        // phase substantially — the "unlearnable" residual.
        let room = Room::laboratory();
        let a = human_scatter_path(&room, 3.0, 2.0, 0.3);
        let b = human_scatter_path(&room, 3.0, 2.06, 0.3);
        let mut dphase = (a.gain.arg() - b.gain.arg()).abs();
        if dphase > std::f64::consts::PI {
            dphase = 2.0 * std::f64::consts::PI - dphase;
        }
        assert!(dphase > 0.5, "phase change too small: {dphase}");
    }
}
