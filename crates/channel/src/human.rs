//! The single mobile human of the measurement campaign.
//!
//! The paper's environment is "immobile and static except a single human";
//! all channel dynamics stem from that person's movement.  The human is
//! modelled as a vertical cylinder (a standard blockage model for body
//! shadowing) whose horizontal position is the only time-varying quantity.

use crate::geometry::Point3;
use serde::{Deserialize, Serialize};

/// A human blocker modelled as a vertical cylinder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Human {
    /// Horizontal x position of the cylinder axis (metres).
    pub x: f64,
    /// Horizontal y position of the cylinder axis (metres).
    pub y: f64,
    /// Cylinder radius (metres); ~0.25 m models a torso.
    pub radius: f64,
    /// Cylinder height (metres).
    pub height: f64,
    /// Maximum body-shadowing attenuation in dB applied to a fully blocked
    /// path.  Measurement literature puts human body shadowing at 2.4 GHz in
    /// the 10–25 dB range.
    pub attenuation_db: f64,
}

impl Human {
    /// A default adult-sized blocker at the given position.
    pub fn at(x: f64, y: f64) -> Self {
        Human {
            x,
            y,
            radius: 0.25,
            height: 1.8,
            attenuation_db: 22.0,
        }
    }

    /// Returns a copy moved to a new horizontal position.
    pub fn moved_to(&self, x: f64, y: f64) -> Self {
        Human { x, y, ..*self }
    }

    /// Centre of the cylinder at torso height (useful for scene rendering).
    pub fn torso_center(&self) -> Point3 {
        Point3::new(self.x, self.y, self.height / 2.0)
    }

    /// Horizontal distance from the cylinder axis to a point.
    pub fn horizontal_distance_to(&self, p: Point3) -> f64 {
        ((p.x - self.x).powi(2) + (p.y - self.y).powi(2)).sqrt()
    }

    /// Amplitude (linear, not dB) transmission factor for a ray passing at
    /// the given horizontal clearance from the cylinder axis at the given
    /// height.
    ///
    /// * clearance `<= radius` and below the cylinder top: fully shadowed,
    ///   the full `attenuation_db` applies;
    /// * clearance beyond `2 × radius`: unobstructed (factor 1);
    /// * in between: a smooth cosine roll-off models partial (knife-edge
    ///   like) shadowing.  The smoothness matters for the reproduction: it
    ///   is what creates the "edge cases at the transition to or from burst
    ///   error regions" that the paper observes for VVD (Sec. 6.4).
    pub fn transmission_factor(&self, clearance: f64, crossing_height: f64) -> f64 {
        if crossing_height > self.height {
            return 1.0;
        }
        let full_block = self.radius;
        let clear = 2.0 * self.radius;
        let min_factor = 10f64.powf(-self.attenuation_db / 20.0);
        if clearance <= full_block {
            min_factor
        } else if clearance >= clear {
            1.0
        } else {
            // Smooth cosine transition between the two regimes.
            let t = (clearance - full_block) / (clear - full_block);
            let w = 0.5 - 0.5 * (std::f64::consts::PI * t).cos();
            min_factor + (1.0 - min_factor) * w
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_blocked_ray_gets_full_attenuation() {
        let h = Human::at(3.0, 3.0);
        let f = h.transmission_factor(0.0, 1.0);
        let expected = 10f64.powf(-22.0 / 20.0);
        assert!((f - expected).abs() < 1e-12);
    }

    #[test]
    fn clear_ray_is_unattenuated() {
        let h = Human::at(3.0, 3.0);
        assert_eq!(h.transmission_factor(1.0, 1.0), 1.0);
        // Passing above the head is also clear.
        assert_eq!(h.transmission_factor(0.0, 2.5), 1.0);
    }

    #[test]
    fn transition_is_monotone_and_smooth() {
        let h = Human::at(0.0, 0.0);
        let mut prev = h.transmission_factor(h.radius, 1.0);
        for i in 1..=20 {
            let clearance = h.radius + (h.radius) * i as f64 / 20.0;
            let f = h.transmission_factor(clearance, 1.0);
            assert!(
                f >= prev - 1e-12,
                "transmission must not decrease with clearance"
            );
            assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
        assert!((prev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn horizontal_distance() {
        let h = Human::at(1.0, 2.0);
        assert!((h.horizontal_distance_to(Point3::new(4.0, 6.0, 1.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn moved_copy_keeps_body_parameters() {
        let h = Human::at(1.0, 1.0);
        let m = h.moved_to(2.0, 3.0);
        assert_eq!(m.radius, h.radius);
        assert_eq!(m.attenuation_db, h.attenuation_db);
        assert_eq!((m.x, m.y), (2.0, 3.0));
    }
}
