//! Synthesis of the sample-spaced channel impulse response.
//!
//! The estimators in the paper treat the channel as an 11-tap FIR filter at
//! the 8 MHz sampling grid, with pre-cursor taps allowed so that the
//! dominant energy sits around taps 6–8 (Fig. 5a).  This module turns the
//! enumerated multipath components, the current human position and a small
//! stochastic residual into exactly that kind of filter.
//!
//! One deliberate modelling knob is documented here and in `DESIGN.md`:
//! `delay_taps_per_meter` maps the *excess* geometric path length of a
//! component to a (fractional) tap offset.  With a physically exact mapping
//! (8 MHz ⇒ 37.5 m per tap) every indoor path would collapse onto a single
//! tap and inter-symbol interference would vanish, which would make all
//! equalization-based techniques indistinguishable; the original testbed
//! sees a wider effective delay spread because of the analog front end,
//! sampling filters and higher-order reflections.  The default of 1.0
//! taps/m reproduces the paper's tap structure (dominant taps in the middle
//! of the window, weaker leakage taps around them).

use crate::blockage::blockage_factor;
use crate::human::Human;
use crate::paths::{enumerate_paths, human_scatter_path, MultipathComponent};
use crate::room::Room;
use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};
use vvd_dsp::{CVec, Complex, FirFilter};

/// Configuration of the tapped-delay-line synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CirConfig {
    /// Number of FIR taps of the true channel (the paper estimates 11).
    pub n_taps: usize,
    /// Tap index (0-based) at which the line-of-sight component lands,
    /// i.e. the number of pre-cursor taps.
    pub los_tap: usize,
    /// Fractional taps of delay per metre of excess path length (see module
    /// docs for why this is a modelling knob rather than `fs/c`).
    pub delay_taps_per_meter: f64,
    /// Amplitude reflectivity of the human body for the dynamic
    /// TX → human → RX scatter path.
    pub human_scatter_reflectivity: f64,
    /// Standard deviation of the diffuse residual per tap, relative to the
    /// magnitude of the strongest deterministic tap.
    pub diffuse_relative_std: f64,
    /// Exponential decay (per tap) of the diffuse residual profile.
    pub diffuse_decay: f64,
}

impl Default for CirConfig {
    fn default() -> Self {
        CirConfig {
            n_taps: 11,
            los_tap: 5,
            delay_taps_per_meter: 1.0,
            human_scatter_reflectivity: 0.25,
            diffuse_relative_std: 0.02,
            diffuse_decay: 0.75,
        }
    }
}

/// Synthesises per-packet channel impulse responses for a given room.
#[derive(Debug, Clone)]
pub struct CirSynthesizer {
    room: Room,
    static_paths: Vec<MultipathComponent>,
    config: CirConfig,
}

impl CirSynthesizer {
    /// Builds a synthesizer for a room, enumerating the static multipath
    /// components once.
    pub fn new(room: Room, config: CirConfig) -> Self {
        let static_paths = enumerate_paths(&room);
        CirSynthesizer {
            room,
            static_paths,
            config,
        }
    }

    /// The room this synthesizer models.
    pub fn room(&self) -> &Room {
        &self.room
    }

    /// The synthesis configuration.
    pub fn config(&self) -> &CirConfig {
        &self.config
    }

    /// The enumerated static multipath components.
    pub fn static_paths(&self) -> &[MultipathComponent] {
        &self.static_paths
    }

    /// Normalised sinc used for fractional-delay tap placement.
    fn sinc(x: f64) -> f64 {
        if x.abs() < 1e-9 {
            1.0
        } else {
            let px = std::f64::consts::PI * x;
            px.sin() / px
        }
    }

    /// Places a component of complex amplitude `amp` at fractional tap
    /// position `pos` onto the tap grid by band-limited (sinc) interpolation.
    fn place(taps: &mut CVec, amp: Complex, pos: f64) {
        for (k, tap) in taps.iter_mut().enumerate() {
            let w = Self::sinc(k as f64 - pos);
            if w.abs() > 1e-6 {
                *tap += amp.scale(w);
            }
        }
    }

    /// The deterministic part of the CIR for a given human position
    /// (no diffuse residual) — what a perfect geometry-aware oracle could
    /// predict from the camera image alone.
    pub fn deterministic_cir(&self, human: &Human) -> FirFilter {
        self.deterministic_cir_for(std::slice::from_ref(human))
    }

    /// [`deterministic_cir`](Self::deterministic_cir) generalised to any
    /// blocker population: every static component is attenuated by the
    /// *product* of the per-blocker shadowing factors, and each blocker
    /// contributes its own TX → body → RX scatter bounce.  With a single
    /// blocker this is bit-identical to the single-human path (the crowd
    /// scenarios are strict supersets of the paper's model).
    pub fn deterministic_cir_for(&self, humans: &[Human]) -> FirFilter {
        let cfg = &self.config;
        let los_len = self.room.los_distance();
        let mut taps = CVec::zeros(cfg.n_taps);

        for component in &self.static_paths {
            let factor = humans
                .iter()
                .fold(1.0, |f, human| f * blockage_factor(component, human));
            let amp = component.gain.scale(factor);
            let pos =
                cfg.los_tap as f64 + component.excess_length(los_len) * cfg.delay_taps_per_meter;
            Self::place(&mut taps, amp, pos);
        }

        // Dynamic bounces off the blockers' bodies themselves.
        for human in humans {
            let scatter =
                human_scatter_path(&self.room, human.x, human.y, cfg.human_scatter_reflectivity);
            let pos =
                cfg.los_tap as f64 + scatter.excess_length(los_len) * cfg.delay_taps_per_meter;
            Self::place(&mut taps, scatter.gain, pos);
        }

        FirFilter::new(taps)
    }

    /// A full per-packet channel realisation: deterministic part plus the
    /// diffuse stochastic residual drawn from `rng`.
    pub fn cir<R: Rng + ?Sized>(&self, human: &Human, rng: &mut R) -> FirFilter {
        self.cir_for(std::slice::from_ref(human), rng)
    }

    /// [`cir`](Self::cir) generalised to any blocker population (see
    /// [`deterministic_cir_for`](Self::deterministic_cir_for)).
    pub fn cir_for<R: Rng + ?Sized>(&self, humans: &[Human], rng: &mut R) -> FirFilter {
        let cfg = &self.config;
        let deterministic = self.deterministic_cir_for(humans);
        let peak = deterministic.taps().max_abs();
        let normal = Normal::new(0.0, 1.0).expect("valid normal");
        let mut taps = deterministic.into_taps();
        for (k, tap) in taps.iter_mut().enumerate() {
            let distance_from_main = (k as f64 - cfg.los_tap as f64).abs();
            let std = cfg.diffuse_relative_std * peak * cfg.diffuse_decay.powf(distance_from_main);
            let re: f64 = normal.sample(rng) * std;
            let im: f64 = normal.sample(rng) * std;
            *tap += Complex::new(re, im);
        }
        FirFilter::new(taps)
    }

    /// The nominal (human absent from all paths) channel: the human is
    /// parked far outside the movement area.  Used to calibrate noise power
    /// for a target SNR.
    pub fn nominal_cir(&self) -> FirFilter {
        let parked = Human::at(-100.0, -100.0);
        self.deterministic_cir(&parked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn synth() -> CirSynthesizer {
        CirSynthesizer::new(Room::laboratory(), CirConfig::default())
    }

    #[test]
    fn cir_has_configured_length_and_dominant_tap_near_los() {
        let s = synth();
        let h = Human::at(2.0, 4.5); // away from every path
        let cir = s.deterministic_cir(&h);
        assert_eq!(cir.len(), 11);
        let dom = cir.dominant_tap().unwrap();
        assert!(
            (4..=7).contains(&dom),
            "dominant tap {dom} not in the middle of the window"
        );
    }

    #[test]
    fn blocking_the_los_reduces_channel_energy() {
        let s = synth();
        let clear = s.deterministic_cir(&Human::at(2.0, 4.7));
        let blocked = s.deterministic_cir(&Human::at(4.0, 3.0));
        assert!(
            blocked.energy() < 0.6 * clear.energy(),
            "blocked energy {} vs clear {}",
            blocked.energy(),
            clear.energy()
        );
    }

    #[test]
    fn hypothesis_same_position_gives_similar_cir() {
        // Hypothesis 2: same displacement at different times => similar MPCs.
        let s = synth();
        let mut rng1 = StdRng::seed_from_u64(1);
        let mut rng2 = StdRng::seed_from_u64(999);
        let a = s.cir(&Human::at(3.4, 2.6), &mut rng1);
        let b = s.cir(&Human::at(3.4, 2.6), &mut rng2);
        let rel_err = a.taps().squared_error(b.taps()) / a.energy();
        assert!(
            rel_err < 0.05,
            "same position should give similar CIR, rel_err={rel_err}"
        );
    }

    #[test]
    fn hypothesis_different_position_gives_different_cir() {
        // Hypothesis 1: displacement changes MPC amplitude/phase.
        let s = synth();
        let a = s.deterministic_cir(&Human::at(4.0, 3.0));
        let b = s.deterministic_cir(&Human::at(2.2, 4.5));
        let rel_err = a.taps().squared_error(b.taps()) / b.energy();
        assert!(
            rel_err > 0.1,
            "different positions too similar, rel_err={rel_err}"
        );
    }

    #[test]
    fn diffuse_residual_is_small_but_nonzero() {
        let s = synth();
        let h = Human::at(3.0, 2.0);
        let det = s.deterministic_cir(&h);
        let mut rng = StdRng::seed_from_u64(7);
        let noisy = s.cir(&h, &mut rng);
        let rel = noisy.taps().squared_error(det.taps()) / det.energy();
        assert!(rel > 0.0);
        assert!(rel < 0.05, "diffuse residual too large: {rel}");
    }

    #[test]
    fn nominal_cir_is_stronger_than_blocked() {
        let s = synth();
        let nominal = s.nominal_cir();
        let blocked = s.deterministic_cir(&Human::at(4.0, 3.0));
        assert!(nominal.energy() > blocked.energy());
    }

    #[test]
    fn single_blocker_slice_matches_single_human_path() {
        let s = synth();
        let h = Human::at(3.1, 2.9);
        assert_eq!(
            s.deterministic_cir(&h).taps(),
            s.deterministic_cir_for(&[h]).taps()
        );
        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = StdRng::seed_from_u64(99);
        assert_eq!(
            s.cir(&h, &mut rng_a).taps(),
            s.cir_for(&[h], &mut rng_b).taps()
        );
    }

    #[test]
    fn extra_blockers_only_remove_deterministic_energy_from_static_paths() {
        // A second person standing on the LoS drains energy compared to the
        // same scene without them (their own scatter bounce is far weaker
        // than what body shadowing removes).
        let s = synth();
        let bystander = Human::at(2.2, 4.5); // away from every path
        let on_los = Human::at(4.0, 3.0);
        let one = s.deterministic_cir_for(&[bystander]);
        let two = s.deterministic_cir_for(&[bystander, on_los]);
        assert!(
            two.energy() < 0.7 * one.energy(),
            "crowding the LoS should shadow it: {} vs {}",
            two.energy(),
            one.energy()
        );
    }

    #[test]
    fn empty_population_is_the_unobstructed_room() {
        let s = synth();
        let empty = s.deterministic_cir_for(&[]);
        // No blockage and no body scatter: strictly the static paths.
        assert_eq!(empty.len(), 11);
        assert!(empty.energy() > 0.0);
        let clear = s.deterministic_cir(&Human::at(-100.0, -100.0));
        // The parked human of `nominal_cir` still contributes a (tiny)
        // scatter bounce, so the two differ — but only marginally.
        let rel = empty.taps().squared_error(clear.taps()) / clear.energy();
        assert!(rel < 1e-4, "rel {rel}");
    }

    #[test]
    fn sinc_interpolation_preserves_integer_positions() {
        let mut taps = CVec::zeros(5);
        CirSynthesizer::place(&mut taps, Complex::new(1.0, 0.0), 2.0);
        assert!((taps[2] - Complex::ONE).abs() < 1e-9);
        assert!(taps[0].abs() < 1e-9);
        assert!(taps[4].abs() < 1e-9);
    }

    #[test]
    fn fractional_position_spreads_energy() {
        let mut taps = CVec::zeros(7);
        CirSynthesizer::place(&mut taps, Complex::new(1.0, 0.0), 3.5);
        assert!(taps[3].abs() > 0.4);
        assert!(taps[4].abs() > 0.4);
        assert!(taps[0].abs() < 0.2);
    }
}
