//! 3-D geometry primitives shared by the channel simulator and (via the
//! scene description) the depth-camera simulator.

use serde::{Deserialize, Serialize};

/// A point / vector in 3-D space (metres).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point3 {
    /// X coordinate (along the room width).
    pub x: f64,
    /// Y coordinate (along the room depth).
    pub y: f64,
    /// Z coordinate (height above the floor).
    pub z: f64,
}

impl Point3 {
    /// Creates a point from its coordinates.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }

    /// Vector addition.
    #[allow(clippy::should_implement_trait)] // deliberate: keeps Point3 a plain POD with explicit math helpers
    pub fn add(self, other: Point3) -> Point3 {
        Point3::new(self.x + other.x, self.y + other.y, self.z + other.z)
    }

    /// Vector subtraction (`self - other`).
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Point3) -> Point3 {
        Point3::new(self.x - other.x, self.y - other.y, self.z - other.z)
    }

    /// Scalar multiplication.
    pub fn scale(self, k: f64) -> Point3 {
        Point3::new(self.x * k, self.y * k, self.z * k)
    }

    /// Dot product.
    pub fn dot(self, other: Point3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: Point3) -> f64 {
        self.sub(other).norm()
    }

    /// Unit vector in the same direction; the zero vector is returned
    /// unchanged.
    pub fn normalized(self) -> Point3 {
        let n = self.norm();
        if n == 0.0 {
            self
        } else {
            self.scale(1.0 / n)
        }
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    pub fn lerp(self, other: Point3, t: f64) -> Point3 {
        self.add(other.sub(self).scale(t))
    }
}

/// A straight propagation segment between two points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Segment start.
    pub a: Point3,
    /// Segment end.
    pub b: Point3,
}

impl Segment {
    /// Creates a segment.
    pub fn new(a: Point3, b: Point3) -> Self {
        Segment { a, b }
    }

    /// Segment length in metres.
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Minimum distance between the segment and a vertical axis (an infinite
    /// vertical line at `(x, y)`), measured in the horizontal plane.
    ///
    /// This is the primitive used for human-blockage tests: the human is a
    /// vertical cylinder, so a path is shadowed when the horizontal distance
    /// between the path segment and the cylinder axis drops below the
    /// cylinder radius (provided the crossing happens below the cylinder
    /// height, which [`horizontal_distance_to_axis`](Self::horizontal_distance_to_axis)
    /// leaves to the caller via [`Self::point_at`]).
    pub fn horizontal_distance_to_axis(&self, x: f64, y: f64) -> f64 {
        // Project to 2-D and compute point-to-segment distance.
        let (ax, ay) = (self.a.x, self.a.y);
        let (bx, by) = (self.b.x, self.b.y);
        let (dx, dy) = (bx - ax, by - ay);
        let len_sq = dx * dx + dy * dy;
        let t = if len_sq == 0.0 {
            0.0
        } else {
            (((x - ax) * dx + (y - ay) * dy) / len_sq).clamp(0.0, 1.0)
        };
        let px = ax + t * dx;
        let py = ay + t * dy;
        ((x - px) * (x - px) + (y - py) * (y - py)).sqrt()
    }

    /// Parameter `t ∈ [0,1]` of the point on the segment closest (in the
    /// horizontal plane) to the vertical axis at `(x, y)`.
    pub fn closest_t_to_axis(&self, x: f64, y: f64) -> f64 {
        let (ax, ay) = (self.a.x, self.a.y);
        let (bx, by) = (self.b.x, self.b.y);
        let (dx, dy) = (bx - ax, by - ay);
        let len_sq = dx * dx + dy * dy;
        if len_sq == 0.0 {
            0.0
        } else {
            (((x - ax) * dx + (y - ay) * dy) / len_sq).clamp(0.0, 1.0)
        }
    }

    /// The 3-D point at parameter `t ∈ [0, 1]` along the segment.
    pub fn point_at(&self, t: f64) -> Point3 {
        self.a.lerp(self.b, t)
    }
}

/// Axis-aligned vertical wall planes of a rectangular room, used by the
/// image method for first-order reflections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Wall {
    /// Wall at `x = 0`.
    West,
    /// Wall at `x = width`.
    East,
    /// Wall at `y = 0`.
    South,
    /// Wall at `y = depth`.
    North,
}

impl Wall {
    /// All four walls.
    pub const ALL: [Wall; 4] = [Wall::West, Wall::East, Wall::South, Wall::North];

    /// Mirrors a point across this wall of a `width × depth` room
    /// (the image-source construction).
    pub fn mirror(&self, p: Point3, width: f64, depth: f64) -> Point3 {
        match self {
            Wall::West => Point3::new(-p.x, p.y, p.z),
            Wall::East => Point3::new(2.0 * width - p.x, p.y, p.z),
            Wall::South => Point3::new(p.x, -p.y, p.z),
            Wall::North => Point3::new(p.x, 2.0 * depth - p.y, p.z),
        }
    }

    /// The point where the straight line from `from` to the mirrored image
    /// of `to` crosses this wall — i.e. the specular reflection point.
    pub fn reflection_point(&self, from: Point3, to: Point3, width: f64, depth: f64) -> Point3 {
        let image = self.mirror(to, width, depth);
        // Parameter where the line from->image crosses the wall plane.
        let t = match self {
            Wall::West => {
                if (image.x - from.x).abs() < 1e-12 {
                    0.5
                } else {
                    (0.0 - from.x) / (image.x - from.x)
                }
            }
            Wall::East => {
                if (image.x - from.x).abs() < 1e-12 {
                    0.5
                } else {
                    (width - from.x) / (image.x - from.x)
                }
            }
            Wall::South => {
                if (image.y - from.y).abs() < 1e-12 {
                    0.5
                } else {
                    (0.0 - from.y) / (image.y - from.y)
                }
            }
            Wall::North => {
                if (image.y - from.y).abs() < 1e-12 {
                    0.5
                } else {
                    (depth - from.y) / (image.y - from.y)
                }
            }
        };
        from.lerp(image, t.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_algebra_basics() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(-1.0, 0.5, 2.0);
        assert_eq!(a.add(b).x, 0.0);
        assert_eq!(a.sub(b).y, 1.5);
        assert!((a.normalized().norm() - 1.0).abs() < 1e-12);
        assert_eq!(Point3::default().normalized(), Point3::default());
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn distance_is_symmetric_and_triangle() {
        let a = Point3::new(0.0, 0.0, 1.0);
        let b = Point3::new(3.0, 4.0, 1.0);
        let c = Point3::new(1.0, 1.0, 1.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert!(a.distance(b) <= a.distance(c) + c.distance(b) + 1e-12);
    }

    #[test]
    fn segment_axis_distance() {
        let s = Segment::new(Point3::new(0.0, 0.0, 1.0), Point3::new(10.0, 0.0, 1.0));
        // Axis directly above the middle of the segment.
        assert!((s.horizontal_distance_to_axis(5.0, 2.0) - 2.0).abs() < 1e-12);
        // Axis beyond the endpoint is measured to the endpoint.
        assert!((s.horizontal_distance_to_axis(12.0, 0.0) - 2.0).abs() < 1e-12);
        assert!((s.closest_t_to_axis(5.0, 2.0) - 0.5).abs() < 1e-12);
        assert_eq!(s.closest_t_to_axis(-3.0, 0.0), 0.0);
    }

    #[test]
    fn degenerate_segment_distance() {
        let s = Segment::new(Point3::new(1.0, 1.0, 1.0), Point3::new(1.0, 1.0, 1.0));
        assert!((s.horizontal_distance_to_axis(4.0, 5.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mirror_across_walls() {
        let p = Point3::new(2.0, 3.0, 1.5);
        assert_eq!(Wall::West.mirror(p, 8.0, 6.0), Point3::new(-2.0, 3.0, 1.5));
        assert_eq!(Wall::East.mirror(p, 8.0, 6.0), Point3::new(14.0, 3.0, 1.5));
        assert_eq!(Wall::South.mirror(p, 8.0, 6.0), Point3::new(2.0, -3.0, 1.5));
        assert_eq!(Wall::North.mirror(p, 8.0, 6.0), Point3::new(2.0, 9.0, 1.5));
    }

    #[test]
    fn image_method_path_length_equals_direct_to_image() {
        // Reflected path length == distance from source to mirrored receiver.
        let tx = Point3::new(1.0, 3.0, 1.0);
        let rx = Point3::new(7.0, 2.0, 1.0);
        let (w, d) = (8.0, 6.0);
        for wall in Wall::ALL {
            let refl = wall.reflection_point(tx, rx, w, d);
            let via = tx.distance(refl) + refl.distance(rx);
            let image = tx.distance(wall.mirror(rx, w, d));
            assert!(
                (via - image).abs() < 1e-9,
                "{wall:?}: via={via} image={image}"
            );
        }
    }

    #[test]
    fn reflection_point_lies_on_the_wall() {
        let tx = Point3::new(1.0, 3.0, 1.0);
        let rx = Point3::new(7.0, 2.0, 1.2);
        let (w, d) = (8.0, 6.0);
        let p_west = Wall::West.reflection_point(tx, rx, w, d);
        assert!(p_west.x.abs() < 1e-9);
        let p_north = Wall::North.reflection_point(tx, rx, w, d);
        assert!((p_north.y - d).abs() < 1e-9);
    }
}
