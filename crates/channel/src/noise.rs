//! Additive white Gaussian noise.
//!
//! The USRP capture in the paper contains thermal noise plus whatever
//! interference survived the 8 MHz separation from the nearest 802.11
//! channel; we model the sum as circularly-symmetric complex AWGN whose
//! power is set relative to the *nominal* (unblocked) receive power so that
//! body-shadowed packets automatically experience a lower effective SNR.

use rand::Rng;
use rand_distr::{Distribution, Normal};
use vvd_dsp::{CVec, Complex};

/// Per-component standard deviation for complex AWGN with the given total
/// noise power (variance split evenly between real and imaginary parts).
pub fn component_std_for_noise_power(noise_power: f64) -> f64 {
    (noise_power / 2.0).max(0.0).sqrt()
}

/// Noise power needed for a target SNR (in dB) given a signal power.
pub fn noise_power_for_snr(signal_power: f64, snr_db: f64) -> f64 {
    signal_power / 10f64.powf(snr_db / 10.0)
}

/// Generates `len` samples of circularly-symmetric complex Gaussian noise
/// with per-component standard deviation `component_std`.
pub fn awgn<R: Rng + ?Sized>(len: usize, component_std: f64, rng: &mut R) -> CVec {
    if component_std <= 0.0 {
        return CVec::zeros(len);
    }
    let normal = Normal::new(0.0, component_std).expect("valid std");
    CVec(
        (0..len)
            .map(|_| Complex::new(normal.sample(rng), normal.sample(rng)))
            .collect(),
    )
}

/// Adds AWGN of the given per-component standard deviation to a signal.
pub fn add_awgn<R: Rng + ?Sized>(signal: &CVec, component_std: f64, rng: &mut R) -> CVec {
    if component_std <= 0.0 {
        return signal.clone();
    }
    signal.add(&awgn(signal.len(), component_std, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noise_power_matches_request() {
        let mut rng = StdRng::seed_from_u64(42);
        let std = component_std_for_noise_power(0.5);
        let n = awgn(200_000, std, &mut rng);
        let measured = n.power();
        assert!((measured - 0.5).abs() < 0.01, "measured {measured}");
    }

    #[test]
    fn snr_calculation() {
        let p = noise_power_for_snr(2.0, 10.0);
        assert!((p - 0.2).abs() < 1e-12);
        assert_eq!(noise_power_for_snr(1.0, 0.0), 1.0);
    }

    #[test]
    fn zero_std_is_noiseless() {
        let mut rng = StdRng::seed_from_u64(1);
        let sig = CVec::from_real(&[1.0, 2.0, 3.0]);
        assert_eq!(add_awgn(&sig, 0.0, &mut rng), sig);
        assert_eq!(awgn(5, 0.0, &mut rng), CVec::zeros(5));
    }

    #[test]
    fn noise_is_zero_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = awgn(100_000, 1.0, &mut rng);
        let mean: Complex = n.iter().sum::<Complex>() / n.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn measured_snr_matches_target() {
        let mut rng = StdRng::seed_from_u64(5);
        let signal = CVec(vec![Complex::new(0.7, -0.7); 50_000]);
        let target_snr_db = 12.0;
        let np = noise_power_for_snr(signal.power(), target_snr_db);
        let noisy = add_awgn(&signal, component_std_for_noise_power(np), &mut rng);
        let noise_est = noisy.sub(&signal).power();
        let snr_est = 10.0 * (signal.power() / noise_est).log10();
        assert!((snr_est - target_snr_db).abs() < 0.2, "snr {snr_est}");
    }
}
