//! Application of a channel realisation to a transmitted waveform.
//!
//! Following the paper's block-fading assumption (Sec. 2.1), the channel is
//! constant for the duration of one packet and changes between packets.  A
//! [`ChannelRealization`] therefore bundles the per-packet FIR channel, the
//! per-packet crystal-induced mean phase offset, and the receiver noise
//! level; [`apply_channel`] produces the raw "sniffer capture" that the
//! estimation techniques work on.

use crate::noise::add_awgn;
use rand::Rng;
use serde::{Deserialize, Serialize};
use vvd_dsp::{CVec, Complex, FirFilter};

/// Everything that distorts one transmitted packet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelRealization {
    /// The block-fading FIR channel for this packet.
    pub fir: FirFilter,
    /// Mean phase offset (radians) caused by the imperfect crystals of the
    /// sensor nodes (Sec. 3.1): constant over the packet, random across
    /// packets.
    pub phase_offset: f64,
    /// Per-component standard deviation of the receiver AWGN.
    pub noise_std: f64,
}

impl ChannelRealization {
    /// A noiseless, offset-free realisation of the given channel (useful in
    /// tests).
    pub fn clean(fir: FirFilter) -> Self {
        ChannelRealization {
            fir,
            phase_offset: 0.0,
            noise_std: 0.0,
        }
    }

    /// The channel with the crystal phase offset folded into the taps — the
    /// "effective" channel the receiver actually has to invert.  This is
    /// also what the perfect (ground-truth) LS estimate converges to.
    pub fn effective_fir(&self) -> FirFilter {
        self.fir.rotated(Complex::cis(self.phase_offset))
    }
}

/// Passes a clean transmitted waveform through a channel realisation:
/// linear convolution with the FIR taps, rotation by the mean phase offset
/// and additive white Gaussian noise.
///
/// The output has `waveform.len() + fir.len() - 1` samples (full
/// convolution), i.e. it includes the pre-cursor transient; receivers
/// re-align via their synchroniser or equalizer delay.
pub fn apply_channel<R: Rng + ?Sized>(
    waveform: &CVec,
    realization: &ChannelRealization,
    rng: &mut R,
) -> CVec {
    let convolved = realization.fir.filter_full(waveform.as_slice());
    let rotated = convolved.rotate(Complex::cis(realization.phase_offset));
    add_awgn(&rotated, realization.noise_std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn clean_identity_channel_is_transparent() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = CVec(vec![c(1.0, 0.5), c(-0.5, 0.25), c(0.0, 1.0)]);
        let real = ChannelRealization::clean(FirFilter::identity());
        let y = apply_channel(&x, &real, &mut rng);
        assert_eq!(y.len(), x.len());
        assert!(y.squared_error(&x) < 1e-24);
    }

    #[test]
    fn output_length_includes_channel_memory() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = CVec::from_real(&[1.0; 100]);
        let fir = FirFilter::from_taps(&[c(0.0, 0.0), c(0.0, 0.0), c(1.0, 0.0), c(0.3, 0.1)]);
        let real = ChannelRealization::clean(fir);
        let y = apply_channel(&x, &real, &mut rng);
        assert_eq!(y.len(), 103);
    }

    #[test]
    fn phase_offset_rotates_output() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = CVec(vec![c(1.0, 0.0), c(0.0, 1.0)]);
        let real = ChannelRealization {
            fir: FirFilter::identity(),
            phase_offset: std::f64::consts::FRAC_PI_2,
            noise_std: 0.0,
        };
        let y = apply_channel(&x, &real, &mut rng);
        assert!((y[0] - c(0.0, 1.0)).abs() < 1e-12);
        assert!((y[1] - c(-1.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn effective_fir_includes_phase() {
        let fir = FirFilter::from_taps(&[c(1.0, 0.0), c(0.5, 0.0)]);
        let real = ChannelRealization {
            fir: fir.clone(),
            phase_offset: 1.0,
            noise_std: 0.0,
        };
        let eff = real.effective_fir();
        assert!((eff.taps()[0].arg() - 1.0).abs() < 1e-12);
        assert!((eff.energy() - fir.energy()).abs() < 1e-12);
    }

    #[test]
    fn noise_perturbs_output_by_expected_amount() {
        let mut rng = StdRng::seed_from_u64(11);
        let x = CVec(vec![Complex::ONE; 20_000]);
        let real = ChannelRealization {
            fir: FirFilter::identity(),
            phase_offset: 0.0,
            noise_std: 0.1,
        };
        let y = apply_channel(&x, &real, &mut rng);
        let err = y.squared_error(&x.resized(y.len())) / y.len() as f64;
        // Expected noise power = 2 * std^2 = 0.02.
        assert!((err - 0.02).abs() < 0.003, "noise power {err}");
    }
}
