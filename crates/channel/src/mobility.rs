//! Mobility models for the blocker population.
//!
//! The paper constrains its single human to a movement area that the camera
//! fully covers (Fig. 2) and keeps them "always mobile during the
//! measurements".  A random-waypoint process over that area with pedestrian
//! speeds captures both properties; [`Crowd`] generalises it to several
//! independent walkers for the multi-human scenarios, and
//! [`MobilityTrace`] replays a pre-recorded position sequence (e.g. a
//! captured trajectory) instead of sampling one.
//!
//! This module used to live in `vvd-testbed`; it moved here so that
//! [`ChannelScenario`](crate::scenario::ChannelScenario) implementations can
//! drive blocker movement without depending on the evaluation harness.

use crate::room::Room;
use rand::Rng;

/// Pedestrian speed range of the paper's single human (m/s).
const PEDESTRIAN_SPEED_RANGE: (f64, f64) = (0.4, 1.4);

/// A random-waypoint trajectory generator over the room's movement area.
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    area: [f64; 4],
    min_speed: f64,
    max_speed: f64,
    position: (f64, f64),
    target: (f64, f64),
    speed: f64,
}

impl RandomWaypoint {
    /// Creates a generator for the room's movement area with pedestrian
    /// speeds (0.4–1.4 m/s).
    pub fn new<R: Rng + ?Sized>(room: &Room, rng: &mut R) -> Self {
        let (min, max) = PEDESTRIAN_SPEED_RANGE;
        Self::with_speed_range(room, min, max, rng)
    }

    /// Creates a generator with an explicit speed range (m/s); used by the
    /// crowd scenarios to scale walking speed.
    ///
    /// # Panics
    /// Panics unless `0 < min_speed < max_speed`.
    pub fn with_speed_range<R: Rng + ?Sized>(
        room: &Room,
        min_speed: f64,
        max_speed: f64,
        rng: &mut R,
    ) -> Self {
        assert!(
            0.0 < min_speed && min_speed < max_speed,
            "invalid speed range [{min_speed}, {max_speed}]"
        );
        let area = room.movement_area;
        let position = Self::sample_point(area, rng);
        let target = Self::sample_point(area, rng);
        let mut walker = RandomWaypoint {
            area,
            min_speed,
            max_speed,
            position,
            target,
            speed: 0.0,
        };
        walker.speed = walker.sample_speed(rng);
        walker
    }

    fn sample_point<R: Rng + ?Sized>(area: [f64; 4], rng: &mut R) -> (f64, f64) {
        let [x0, x1, y0, y1] = area;
        (rng.gen_range(x0..x1), rng.gen_range(y0..y1))
    }

    fn sample_speed<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.gen_range(self.min_speed..self.max_speed)
    }

    /// Current position.
    pub fn position(&self) -> (f64, f64) {
        self.position
    }

    /// Advances the walker by `dt` seconds, picking a new waypoint whenever
    /// the current one is reached.
    pub fn step<R: Rng + ?Sized>(&mut self, dt: f64, rng: &mut R) -> (f64, f64) {
        let mut remaining = dt * self.speed;
        while remaining > 0.0 {
            let dx = self.target.0 - self.position.0;
            let dy = self.target.1 - self.position.1;
            let dist = (dx * dx + dy * dy).sqrt();
            if dist <= remaining {
                self.position = self.target;
                remaining -= dist;
                self.target = Self::sample_point(self.area, rng);
                self.speed = self.sample_speed(rng);
            } else {
                self.position.0 += dx / dist * remaining;
                self.position.1 += dy / dist * remaining;
                remaining = 0.0;
            }
        }
        self.position
    }

    /// Generates positions sampled every `dt` seconds for `steps` steps
    /// (including the starting position as the first sample).
    pub fn trajectory<R: Rng + ?Sized>(
        &mut self,
        dt: f64,
        steps: usize,
        rng: &mut R,
    ) -> Vec<(f64, f64)> {
        let mut out = Vec::with_capacity(steps);
        out.push(self.position);
        for _ in 1..steps {
            out.push(self.step(dt, rng));
        }
        out
    }
}

/// Several independent random-waypoint walkers sharing one movement area —
/// the blocker population of the multi-human crowd scenarios.
#[derive(Debug, Clone)]
pub struct Crowd {
    walkers: Vec<RandomWaypoint>,
}

impl Crowd {
    /// Creates `n` walkers inside the room's movement area.  `speed_scale`
    /// multiplies the pedestrian speed range (1.0 = the paper's 0.4–1.4
    /// m/s); walkers are initialised in index order from `rng`, so crowds
    /// are deterministic per seed.
    pub fn new<R: Rng + ?Sized>(room: &Room, n: usize, speed_scale: f64, rng: &mut R) -> Self {
        assert!(speed_scale > 0.0, "speed scale must be positive");
        let (min, max) = PEDESTRIAN_SPEED_RANGE;
        let walkers = (0..n)
            .map(|_| {
                RandomWaypoint::with_speed_range(room, min * speed_scale, max * speed_scale, rng)
            })
            .collect();
        Crowd { walkers }
    }

    /// Number of walkers.
    pub fn len(&self) -> usize {
        self.walkers.len()
    }

    /// `true` when the crowd has no walkers.
    pub fn is_empty(&self) -> bool {
        self.walkers.is_empty()
    }

    /// Current positions, in walker order.
    pub fn positions(&self) -> Vec<(f64, f64)> {
        self.walkers.iter().map(|w| w.position()).collect()
    }

    /// Advances every walker by `dt` seconds (in walker order) and returns
    /// the new positions.
    pub fn step<R: Rng + ?Sized>(&mut self, dt: f64, rng: &mut R) -> Vec<(f64, f64)> {
        self.walkers.iter_mut().map(|w| w.step(dt, rng)).collect()
    }

    /// Samples the crowd trajectory every `dt` seconds for `steps` samples
    /// (the current positions are the first sample).  Each sample lists the
    /// walker positions in walker order, so element `j` of consecutive
    /// samples tracks the same person.
    pub fn trajectory<R: Rng + ?Sized>(
        &mut self,
        dt: f64,
        steps: usize,
        rng: &mut R,
    ) -> Vec<Vec<(f64, f64)>> {
        let mut out = Vec::with_capacity(steps);
        out.push(self.positions());
        for _ in 1..steps {
            out.push(self.step(dt, rng));
        }
        out
    }
}

/// A pre-recorded mobility trace replayed sample by sample.
///
/// Each snapshot lists the blocker positions at one sample instant; the
/// trace loops when it is shorter than the requested trajectory, so short
/// captured segments can drive arbitrarily long measurement sets.
#[derive(Debug, Clone)]
pub struct MobilityTrace {
    snapshots: Vec<Vec<(f64, f64)>>,
}

impl MobilityTrace {
    /// Wraps a recorded sequence of blocker-position snapshots.
    ///
    /// # Panics
    /// Panics when the trace is empty — replaying nothing is a caller bug.
    pub fn new(snapshots: Vec<Vec<(f64, f64)>>) -> Self {
        assert!(!snapshots.is_empty(), "a mobility trace needs ≥ 1 snapshot");
        MobilityTrace { snapshots }
    }

    /// Number of recorded snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// `true` when the trace has no snapshots (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// The snapshot at `index`, looping past the end of the trace.
    pub fn snapshot(&self, index: usize) -> &[(f64, f64)] {
        &self.snapshots[index % self.snapshots.len()]
    }

    /// Materialises `steps` snapshots starting at the beginning of the
    /// trace, looping as needed.
    pub fn trajectory(&self, steps: usize) -> Vec<Vec<(f64, f64)>> {
        (0..steps).map(|i| self.snapshot(i).to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn positions_stay_inside_the_movement_area() {
        let room = Room::laboratory();
        let mut rng = StdRng::seed_from_u64(1);
        let mut walker = RandomWaypoint::new(&room, &mut rng);
        let [x0, x1, y0, y1] = room.movement_area;
        for _ in 0..2000 {
            let (x, y) = walker.step(1.0 / 30.0, &mut rng);
            assert!((x0 - 1e-9..=x1 + 1e-9).contains(&x));
            assert!((y0 - 1e-9..=y1 + 1e-9).contains(&y));
        }
    }

    #[test]
    fn walker_actually_moves() {
        let room = Room::laboratory();
        let mut rng = StdRng::seed_from_u64(2);
        let mut walker = RandomWaypoint::new(&room, &mut rng);
        let start = walker.position();
        let traj = walker.trajectory(1.0 / 30.0, 300, &mut rng);
        let total: f64 = traj
            .windows(2)
            .map(|w| ((w[1].0 - w[0].0).powi(2) + (w[1].1 - w[0].1).powi(2)).sqrt())
            .sum();
        assert!(total > 1.0, "walker moved only {total} m in 10 s");
        assert_eq!(traj[0], start);
    }

    #[test]
    fn per_step_displacement_is_bounded_by_max_speed() {
        let room = Room::laboratory();
        let mut rng = StdRng::seed_from_u64(3);
        let mut walker = RandomWaypoint::new(&room, &mut rng);
        let dt = 0.1;
        let traj = walker.trajectory(dt, 500, &mut rng);
        for w in traj.windows(2) {
            let d = ((w[1].0 - w[0].0).powi(2) + (w[1].1 - w[0].1).powi(2)).sqrt();
            assert!(d <= 1.4 * dt + 1e-9, "step displacement {d}");
        }
    }

    #[test]
    fn different_seeds_give_different_trajectories() {
        let room = Room::laboratory();
        let mut rng_a = StdRng::seed_from_u64(10);
        let mut rng_b = StdRng::seed_from_u64(11);
        let mut wa = RandomWaypoint::new(&room, &mut rng_a);
        let mut wb = RandomWaypoint::new(&room, &mut rng_b);
        let ta = wa.trajectory(0.1, 50, &mut rng_a);
        let tb = wb.trajectory(0.1, 50, &mut rng_b);
        assert_ne!(ta, tb);
    }

    #[test]
    fn speed_scaled_walkers_respect_the_scaled_bound() {
        let room = Room::laboratory();
        let mut rng = StdRng::seed_from_u64(4);
        let mut fast = RandomWaypoint::with_speed_range(&room, 0.8, 2.8, &mut rng);
        let dt = 0.1;
        let traj = fast.trajectory(dt, 300, &mut rng);
        for w in traj.windows(2) {
            let d = ((w[1].0 - w[0].0).powi(2) + (w[1].1 - w[0].1).powi(2)).sqrt();
            assert!(d <= 2.8 * dt + 1e-9, "step displacement {d}");
        }
    }

    #[test]
    fn crowd_tracks_each_walker_consistently() {
        let room = Room::laboratory();
        let mut rng = StdRng::seed_from_u64(5);
        let mut crowd = Crowd::new(&room, 4, 1.0, &mut rng);
        assert_eq!(crowd.len(), 4);
        let traj = crowd.trajectory(0.1, 100, &mut rng);
        assert_eq!(traj.len(), 100);
        for snap in &traj {
            assert_eq!(snap.len(), 4);
        }
        // Element j of consecutive snapshots moves at pedestrian speed.
        for pair in traj.windows(2) {
            for (j, (before, after)) in pair[0].iter().zip(&pair[1]).enumerate() {
                let d = ((after.0 - before.0).powi(2) + (after.1 - before.1).powi(2)).sqrt();
                assert!(d <= 1.4 * 0.1 + 1e-9, "walker {j} jumped {d}");
            }
        }
    }

    #[test]
    fn empty_crowd_is_a_valid_population() {
        let room = Room::laboratory();
        let mut rng = StdRng::seed_from_u64(6);
        let mut crowd = Crowd::new(&room, 0, 1.0, &mut rng);
        assert!(crowd.is_empty());
        let traj = crowd.trajectory(0.1, 10, &mut rng);
        assert!(traj.iter().all(|s| s.is_empty()));
    }

    #[test]
    fn traces_loop_past_their_end() {
        let trace = MobilityTrace::new(vec![vec![(1.0, 1.0)], vec![(2.0, 2.0)]]);
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
        let traj = trace.trajectory(5);
        assert_eq!(traj[0], vec![(1.0, 1.0)]);
        assert_eq!(traj[1], vec![(2.0, 2.0)]);
        assert_eq!(traj[2], vec![(1.0, 1.0)]);
        assert_eq!(traj[4], vec![(1.0, 1.0)]);
    }
}
