//! Geometric scenarios: the paper's laboratory and its crowd variants.
//!
//! [`PaperScenario`] is the exact environment of the reproduction — the
//! laboratory [`Room`], a single random-waypoint human, the multipath
//! synthesis of [`CirSynthesizer`] — refactored behind the
//! [`ChannelScenario`] trait.  Its RNG draw order matches the pre-trait
//! campaign generator operation for operation, so `"paper"` campaigns are
//! bit-identical to what the harness produced before the scenario engine
//! existed (pinned by `tests/scenario_golden.rs`).
//!
//! [`RoomScenario`] generalises the same physics to a configurable room
//! preset and a crowd of independent walkers with a scaled speed range.

use crate::cir::{CirConfig, CirSynthesizer};
use crate::human::Human;
use crate::mobility::{Crowd, RandomWaypoint};
use crate::room::Room;
use crate::scenario::spec::{BaseSpec, RoomSize};
use crate::scenario::{crystal_phase, BlockerSnapshot, ChannelScenario, PacketChannel};
use rand::RngCore;
use vvd_dsp::FirFilter;

/// The paper's scenario: laboratory room, one pedestrian random-waypoint
/// human, geometric multipath plus the diffuse residual, AWGN at the
/// campaign's nominal SNR.
#[derive(Debug, Clone)]
pub struct PaperScenario {
    synth: CirSynthesizer,
}

impl PaperScenario {
    /// The paper's laboratory with the given synthesis configuration.
    pub fn new(cir: CirConfig) -> Self {
        PaperScenario {
            synth: CirSynthesizer::new(Room::laboratory(), cir),
        }
    }
}

impl ChannelScenario for PaperScenario {
    fn spec(&self) -> String {
        "paper".to_string()
    }

    fn room(&self) -> &Room {
        self.synth.room()
    }

    fn nominal_cir(&self) -> FirFilter {
        self.synth.nominal_cir()
    }

    fn begin_set(&mut self, dt: f64, steps: usize, rng: &mut dyn RngCore) -> Vec<BlockerSnapshot> {
        // Same draw order as the pre-trait harness: construct the walker,
        // then sample the whole set trajectory.
        let mut walker = RandomWaypoint::new(self.synth.room(), rng);
        walker
            .trajectory(dt, steps, rng)
            .into_iter()
            .map(|pos| vec![pos])
            .collect()
    }

    fn packet_channel(
        &mut self,
        _time_s: f64,
        blockers: &[(f64, f64)],
        rng: &mut dyn RngCore,
    ) -> PacketChannel {
        let (x, y) = blockers[0];
        let fir = self.synth.cir(&Human::at(x, y), rng);
        PacketChannel {
            fir,
            phase_offset: crystal_phase(rng),
            noise_scale: 1.0,
        }
    }
}

/// A configurable room with a crowd of independent random-waypoint walkers
/// — the `room:<size>,humans=<n>,speed=<s>` scenarios.
///
/// Physics is the paper's (geometric multipath, per-blocker body shadowing,
/// one TX → body → RX bounce per person, diffuse residual); only the
/// geometry and the blocker population differ.
pub struct RoomScenario {
    synth: CirSynthesizer,
    size: RoomSize,
    humans: usize,
    speed: f64,
}

impl RoomScenario {
    /// A crowd scenario over a geometry preset.  `speed` multiplies the
    /// pedestrian speed range; `humans` may be 0 (an empty, static room).
    pub fn new(size: RoomSize, humans: usize, speed: f64, cir: CirConfig) -> Self {
        let room = match size {
            RoomSize::Small => Room::small_office(),
            RoomSize::Lab => Room::laboratory(),
            RoomSize::Large => Room::large_hall(),
        };
        RoomScenario {
            synth: CirSynthesizer::new(room, cir),
            size,
            humans,
            speed,
        }
    }
}

impl ChannelScenario for RoomScenario {
    fn spec(&self) -> String {
        BaseSpec::Room {
            size: self.size,
            humans: self.humans,
            speed: self.speed,
        }
        .to_string()
    }

    fn room(&self) -> &Room {
        self.synth.room()
    }

    fn nominal_cir(&self) -> FirFilter {
        self.synth.nominal_cir()
    }

    fn begin_set(&mut self, dt: f64, steps: usize, rng: &mut dyn RngCore) -> Vec<BlockerSnapshot> {
        // A fresh crowd per set (sets are independent takes); the snapshots
        // carry all the state the packet phase needs.
        Crowd::new(self.synth.room(), self.humans, self.speed, rng).trajectory(dt, steps, rng)
    }

    fn packet_channel(
        &mut self,
        _time_s: f64,
        blockers: &[(f64, f64)],
        rng: &mut dyn RngCore,
    ) -> PacketChannel {
        let humans: Vec<Human> = blockers.iter().map(|&(x, y)| Human::at(x, y)).collect();
        let fir = self.synth.cir_for(&humans, rng);
        PacketChannel {
            fir,
            phase_offset: crystal_phase(rng),
            noise_scale: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn paper_scenario_matches_the_legacy_draw_order() {
        // The scenario must replicate the pre-trait generator exactly:
        // walker first, whole trajectory second, then per-packet CIR and
        // crystal phase from the same stream.
        let cfg = CirConfig::default();
        let mut scenario = PaperScenario::new(cfg);
        let mut rng = StdRng::seed_from_u64(42);
        let snapshots = scenario.begin_set(1.0 / 30.0, 50, &mut rng);
        let p0 = scenario.packet_channel(0.0, &snapshots[0], &mut rng);

        // Legacy order, hand-rolled.
        let room = Room::laboratory();
        let synth = CirSynthesizer::new(room.clone(), cfg);
        let mut legacy_rng = StdRng::seed_from_u64(42);
        let mut walker = RandomWaypoint::new(&room, &mut legacy_rng);
        let positions = walker.trajectory(1.0 / 30.0, 50, &mut legacy_rng);
        let cir = synth.cir(&Human::at(positions[0].0, positions[0].1), &mut legacy_rng);
        let phase = legacy_rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);

        assert_eq!(
            snapshots.iter().map(|s| s[0]).collect::<Vec<_>>(),
            positions
        );
        assert_eq!(p0.fir.taps(), cir.taps());
        assert_eq!(p0.phase_offset, phase);
        assert_eq!(p0.noise_scale, 1.0);
    }

    #[test]
    fn crowd_scenario_produces_one_position_per_human() {
        let mut scenario = RoomScenario::new(RoomSize::Large, 4, 1.5, CirConfig::default());
        assert_eq!(scenario.spec(), "room:large,humans=4,speed=1.5");
        let mut rng = StdRng::seed_from_u64(7);
        let snapshots = scenario.begin_set(0.1, 30, &mut rng);
        assert_eq!(snapshots.len(), 30);
        assert!(snapshots.iter().all(|s| s.len() == 4));
        let packet = scenario.packet_channel(0.0, &snapshots[0], &mut rng);
        assert!(packet.fir.energy() > 0.0);
        assert!(packet
            .fir
            .taps()
            .iter()
            .all(|t| t.re.is_finite() && t.im.is_finite()));
    }

    #[test]
    fn empty_room_still_yields_a_usable_channel() {
        let mut scenario = RoomScenario::new(RoomSize::Small, 0, 1.0, CirConfig::default());
        let mut rng = StdRng::seed_from_u64(9);
        let snapshots = scenario.begin_set(0.1, 10, &mut rng);
        assert!(snapshots.iter().all(|s| s.is_empty()));
        let a = scenario.packet_channel(0.0, &[], &mut rng);
        let b = scenario.packet_channel(0.1, &[], &mut rng);
        assert!(a.fir.energy() > 0.0);
        // Only the diffuse residual varies packet to packet.
        assert_ne!(a.fir.taps(), b.fir.taps());
    }
}
