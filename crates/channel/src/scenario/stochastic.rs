//! Stochastic block-fading scenarios (`rician:…`, `rayleigh:…`).
//!
//! Unlike the geometric scenarios these do not trace rays: the channel is a
//! classical Rician/Rayleigh tapped-delay-line whose diffuse part evolves
//! packet to packet as a first-order autoregressive process with Clarke's
//! autocorrelation `ρ = J₀(2π f_D Δt)` — the standard AR(1) approximation
//! of time-selective fading.  They stress exactly the axis the paper's room
//! cannot: the channel changes with *no visible cause*, so camera-based
//! estimators (the VVD family) degrade to predicting the mean while
//! time-series estimators (Kalman, Previous) track or lose the Doppler
//! process depending on `doppler` — a built-in ablation of the paper's
//! central hypothesis.
//!
//! The tap powers follow an exponential power-delay profile centred on the
//! same dominant tap as the paper's laboratory channel, and the total
//! energy matches the laboratory's nominal channel so campaigns operate at
//! a comparable SNR.

use crate::cir::{CirConfig, CirSynthesizer};
use crate::room::Room;
use crate::scenario::spec::BaseSpec;
use crate::scenario::{crystal_phase, BlockerSnapshot, ChannelScenario, PacketChannel};
use rand::RngCore;
use rand_distr::{Distribution, Normal};
use vvd_dsp::{CVec, Complex, FirFilter};

/// Bessel function of the first kind, order zero (Abramowitz & Stegun
/// 9.4.1 / 9.4.3 polynomial approximations, |error| < 5e-8 everywhere).
pub fn bessel_j0(x: f64) -> f64 {
    let ax = x.abs();
    if ax <= 3.0 {
        let t = (ax / 3.0) * (ax / 3.0);
        1.0 + t
            * (-2.249_999_7
                + t * (1.265_620_8
                    + t * (-0.316_386_6
                        + t * (0.044_447_9 + t * (-0.003_944_4 + t * 0.000_210_0)))))
    } else {
        let t = 3.0 / ax;
        let f0 = 0.797_884_56
            + t * (-0.000_000_77
                + t * (-0.005_527_40
                    + t * (-0.000_095_12
                        + t * (0.001_372_37 + t * (-0.000_728_05 + t * 0.000_144_76)))));
        let theta0 = ax - std::f64::consts::FRAC_PI_4
            + t * (-0.041_663_97
                + t * (-0.000_039_54
                    + t * (0.002_625_73
                        + t * (-0.000_541_25 + t * (-0.000_293_33 + t * 0.000_135_58)))));
        f0 * theta0.cos() / ax.sqrt()
    }
}

/// Rician/Rayleigh block fading with first-order Doppler memory.
pub struct StochasticScenario {
    /// `Rician { .. }` or `Rayleigh { .. }` (drives `spec()`).
    base: BaseSpec,
    /// Rician K-factor (0 = Rayleigh).
    k: f64,
    /// Maximum Doppler frequency (Hz).
    doppler: f64,
    /// Laboratory room, kept so the depth-camera simulator has a scene to
    /// render (static: the fading has no visible cause by design).
    room: Room,
    /// Fixed (specular) component: `√(K/(K+1))` of the total energy on the
    /// laboratory's nominal tap profile.
    mean: Vec<Complex>,
    /// Per-tap diffuse standard deviation (per real/imag component).
    component_std: Vec<f64>,
    /// The laboratory nominal channel the process is scaled to (kept for
    /// the harness's SNR calibration).
    nominal: FirFilter,
    /// Diffuse state, evolved packet to packet.
    state: Option<Vec<Complex>>,
    /// Transmission time of the previous packet in the current set.
    last_time_s: Option<f64>,
}

impl StochasticScenario {
    /// A Rician scenario with K-factor `k` (linear) and maximum Doppler
    /// frequency `doppler` Hz.  `k = 0` is Rayleigh fading.
    pub fn rician(k: f64, doppler: f64, cir: CirConfig) -> Self {
        Self::build(BaseSpec::Rician { k, doppler }, k, doppler, cir)
    }

    /// A Rayleigh scenario with maximum Doppler frequency `doppler` Hz.
    pub fn rayleigh(doppler: f64, cir: CirConfig) -> Self {
        Self::build(BaseSpec::Rayleigh { doppler }, 0.0, doppler, cir)
    }

    fn build(base: BaseSpec, k: f64, doppler: f64, cir: CirConfig) -> Self {
        assert!(k >= 0.0, "the K-factor must be non-negative");
        assert!(doppler >= 0.0, "the Doppler frequency must be non-negative");
        let room = Room::laboratory();
        // Anchor scale and shape to the laboratory's unobstructed channel
        // so campaigns calibrate to a comparable operating SNR.
        let nominal = CirSynthesizer::new(room.clone(), cir).nominal_cir();
        let omega = nominal.energy();
        let n_taps = nominal.len();

        // Fixed component: the nominal profile scaled to K/(K+1) of the
        // total energy (its phase structure is as good an anchor as any).
        let mean_scale = (k / (k + 1.0)).sqrt();
        let mean: Vec<Complex> = nominal.taps().iter().map(|t| t.scale(mean_scale)).collect();

        // Diffuse component: exponential power-delay profile centred on the
        // dominant tap, carrying the remaining 1/(K+1) of the energy.
        let center = nominal.dominant_tap().unwrap_or(n_taps / 2);
        let weights: Vec<f64> = (0..n_taps)
            .map(|i| (-((i as f64 - center as f64).abs()) / 2.0).exp())
            .collect();
        let weight_sum: f64 = weights.iter().sum();
        let diffuse_power = omega / (k + 1.0);
        let component_std: Vec<f64> = weights
            .iter()
            .map(|w| (diffuse_power * w / weight_sum / 2.0).sqrt())
            .collect();

        StochasticScenario {
            base,
            k,
            doppler,
            room,
            mean,
            component_std,
            nominal,
            state: None,
            last_time_s: None,
        }
    }

    /// The configured K-factor (0 for Rayleigh).
    pub fn k_factor(&self) -> f64 {
        self.k
    }

    /// The configured maximum Doppler frequency (Hz).
    pub fn doppler_hz(&self) -> f64 {
        self.doppler
    }

    fn stationary_draw(&self, rng: &mut dyn RngCore) -> Vec<Complex> {
        let normal = Normal::new(0.0, 1.0).expect("valid normal");
        self.component_std
            .iter()
            .map(|&std| Complex::new(normal.sample(rng) * std, normal.sample(rng) * std))
            .collect()
    }
}

impl ChannelScenario for StochasticScenario {
    fn spec(&self) -> String {
        self.base.to_string()
    }

    fn room(&self) -> &Room {
        &self.room
    }

    fn nominal_cir(&self) -> FirFilter {
        // The laboratory nominal the process is scaled to: sharing it with
        // the geometric scenarios keeps the SNR calibration comparable
        // (same total energy by construction).
        self.nominal.clone()
    }

    fn begin_set(
        &mut self,
        _dt: f64,
        steps: usize,
        _rng: &mut dyn RngCore,
    ) -> Vec<BlockerSnapshot> {
        // Fading restarts independently per set; there are no blockers to
        // move, so the camera sees a static room.
        self.state = None;
        self.last_time_s = None;
        vec![Vec::new(); steps]
    }

    fn packet_channel(
        &mut self,
        time_s: f64,
        _blockers: &[(f64, f64)],
        rng: &mut dyn RngCore,
    ) -> PacketChannel {
        let state = match (self.state.take(), self.last_time_s) {
            (Some(mut state), Some(last)) => {
                let dt = (time_s - last).max(0.0);
                let rho =
                    bessel_j0(2.0 * std::f64::consts::PI * self.doppler * dt).clamp(-1.0, 1.0);
                let innovation_scale = (1.0 - rho * rho).sqrt();
                let normal = Normal::new(0.0, 1.0).expect("valid normal");
                for (tap, &std) in state.iter_mut().zip(&self.component_std) {
                    let w = Complex::new(normal.sample(rng) * std, normal.sample(rng) * std);
                    *tap = tap.scale(rho) + w.scale(innovation_scale);
                }
                state
            }
            _ => self.stationary_draw(rng),
        };

        let taps: Vec<Complex> = self.mean.iter().zip(&state).map(|(m, d)| *m + *d).collect();
        let fir = FirFilter::new(CVec(taps));
        self.state = Some(state);
        self.last_time_s = Some(time_s);

        PacketChannel {
            fir,
            phase_offset: crystal_phase(rng),
            noise_scale: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bessel_j0_matches_known_values() {
        assert!((bessel_j0(0.0) - 1.0).abs() < 1e-12);
        // First zero at x ≈ 2.404826.
        assert!(bessel_j0(2.404_825_6).abs() < 1e-6);
        // J0(1) ≈ 0.7651976866.
        assert!((bessel_j0(1.0) - 0.765_197_686_6).abs() < 5e-8);
        // J0(5) ≈ −0.1775967713.
        assert!((bessel_j0(5.0) + 0.177_596_771_3).abs() < 5e-7);
        // Even function.
        assert_eq!(bessel_j0(-3.7), bessel_j0(3.7));
    }

    fn run_set(scenario: &mut StochasticScenario, packets: usize, seed: u64) -> Vec<FirFilter> {
        let mut rng = StdRng::seed_from_u64(seed);
        let _ = scenario.begin_set(1.0 / 30.0, 8, &mut rng);
        (0..packets)
            .map(|k| scenario.packet_channel(k as f64 * 0.1, &[], &mut rng).fir)
            .collect()
    }

    #[test]
    fn rayleigh_taps_are_zero_mean_and_carry_the_nominal_energy() {
        let mut scenario = StochasticScenario::rayleigh(10.0, CirConfig::default());
        let nominal_energy = scenario.nominal_cir().energy();
        let cirs = run_set(&mut scenario, 400, 3);
        let mean_energy: f64 = cirs.iter().map(|c| c.energy()).sum::<f64>() / cirs.len() as f64;
        assert!(
            (mean_energy / nominal_energy - 1.0).abs() < 0.35,
            "mean energy {mean_energy} vs nominal {nominal_energy}"
        );
    }

    #[test]
    fn high_k_rician_concentrates_on_the_fixed_component() {
        let mut strong = StochasticScenario::rician(100.0, 10.0, CirConfig::default());
        let mut weak = StochasticScenario::rician(0.5, 10.0, CirConfig::default());
        let strong_cirs = run_set(&mut strong, 100, 5);
        let weak_cirs = run_set(&mut weak, 100, 5);
        // Packet-to-packet variation is much smaller at high K.
        let variation = |cirs: &[FirFilter]| -> f64 {
            cirs.windows(2)
                .map(|w| w[1].taps().squared_error(w[0].taps()))
                .sum::<f64>()
                / (cirs.len() - 1) as f64
        };
        assert!(variation(&strong_cirs) < 0.1 * variation(&weak_cirs));
    }

    #[test]
    fn low_doppler_is_more_correlated_than_high_doppler() {
        let mut slow = StochasticScenario::rayleigh(0.5, CirConfig::default());
        let mut fast = StochasticScenario::rayleigh(200.0, CirConfig::default());
        let correlation = |cirs: &[FirFilter]| -> f64 {
            let step: f64 = cirs
                .windows(2)
                .map(|w| w[1].taps().squared_error(w[0].taps()))
                .sum::<f64>()
                / (cirs.len() - 1) as f64;
            let energy: f64 = cirs.iter().map(|c| c.energy()).sum::<f64>() / cirs.len() as f64;
            step / energy
        };
        let slow_cirs = run_set(&mut slow, 200, 11);
        let fast_cirs = run_set(&mut fast, 200, 11);
        assert!(
            correlation(&slow_cirs) < 0.5 * correlation(&fast_cirs),
            "slow {} vs fast {}",
            correlation(&slow_cirs),
            correlation(&fast_cirs)
        );
    }

    #[test]
    fn sets_restart_the_fading_process() {
        let mut scenario = StochasticScenario::rayleigh(10.0, CirConfig::default());
        let a = run_set(&mut scenario, 5, 17);
        let b = run_set(&mut scenario, 5, 17);
        // Same seed, fresh set: identical realisations.
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.taps(), y.taps());
        }
    }

    #[test]
    fn snapshots_are_empty_and_room_is_static() {
        let mut scenario = StochasticScenario::rician(6.0, 30.0, CirConfig::default());
        assert_eq!(scenario.spec(), "rician:k=6,doppler=30");
        assert_eq!(scenario.k_factor(), 6.0);
        assert_eq!(scenario.doppler_hz(), 30.0);
        let mut rng = StdRng::seed_from_u64(1);
        let snaps = scenario.begin_set(0.1, 12, &mut rng);
        assert_eq!(snaps.len(), 12);
        assert!(snaps.iter().all(|s| s.is_empty()));
    }
}
