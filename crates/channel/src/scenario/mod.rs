//! The pluggable scenario engine.
//!
//! A [`ChannelScenario`] bundles everything that defines one measurement
//! environment — room geometry, blocker population and mobility, fading
//! model, noise overlays — behind a stateful, streaming trait, mirroring
//! the estimator side's `ChannelEstimator`/`EstimatorRegistry` design: the
//! campaign simulator in `vvd-testbed` drives *any* scenario, and the
//! [`ScenarioRegistry`] builds one from a spec string such as
//!
//! ```text
//! paper                              the paper's laboratory (default)
//! room:large,humans=4,speed=1.5      crowd of 4 in a 14 m hall, 1.5× speed
//! rician:k=6,doppler=30              stochastic Rician fading, 30 Hz Doppler
//! rayleigh:doppler=10                Rayleigh fading, 10 Hz Doppler
//! paper+burst-noise:p=0.01,db=10     composable overlays, left to right
//! paper+snr-sweep:from=-10,to=0      per-set SNR ramp
//! ```
//!
//! The grammar is `base(+overlay)*`; [`spec::ScenarioSpec`] is the typed
//! form with a round-tripping `Display`/`FromStr` pair, and custom bases or
//! overlays register factories on the registry without touching any
//! harness code (see `examples/custom_scenario.rs`).
//!
//! # Streaming contract
//!
//! A scenario instance is driven one measurement set at a time:
//!
//! 1. [`begin_set`](ChannelScenario::begin_set) resets per-set state and
//!    samples the blocker trajectory at the camera frame rate — one
//!    snapshot (a list of `(x, y)` blocker positions) per frame.  The
//!    harness renders depth images from these snapshots and interpolates
//!    them at packet transmission times.
//! 2. [`packet_channel`](ChannelScenario::packet_channel) is called once
//!    per packet, in transmission order, and produces the packet's
//!    block-fading [`PacketChannel`].  Stateful fading models (Doppler
//!    processes, noise bursts) advance here.
//!
//! All randomness flows through the caller's RNG so a `(seed, spec)` pair
//! reproduces a campaign exactly; scenarios must not keep their own
//! entropy sources.

use crate::room::Room;
use rand::{Rng, RngCore};
use vvd_dsp::FirFilter;

pub mod overlay;
pub mod paper;
pub mod registry;
pub mod spec;
pub mod stochastic;

pub use overlay::{BurstNoise, SnrOffset, SnrSweep};
pub use paper::{PaperScenario, RoomScenario};
pub use registry::{ScenarioRegistry, SpecParseError};
pub use spec::{BaseSpec, OverlaySpec, RoomSize, ScenarioSpec};
pub use stochastic::StochasticScenario;

/// Positions of every blocker at one sample instant, in blocker order
/// (element `j` of consecutive snapshots tracks the same person; empty for
/// scenarios without physical blockers).
pub type BlockerSnapshot = Vec<(f64, f64)>;

/// Everything a scenario decides about one transmitted packet.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketChannel {
    /// The block-fading FIR channel of the packet.
    pub fir: FirFilter,
    /// Crystal-induced mean phase offset (radians), constant over the
    /// packet and random across packets.
    pub phase_offset: f64,
    /// Multiplier on the campaign's calibrated receiver-noise standard
    /// deviation: `1.0` is the nominal operating SNR, `> 1.0` degrades it
    /// (overlays such as `burst-noise` and `snr-sweep` modulate this).
    pub noise_scale: f64,
}

/// A stateful, streaming channel scenario: room geometry + blocker
/// population + fading/noise overlay → per-packet channel realisations.
///
/// See the [module docs](self) for the streaming contract.  Implementations
/// must be deterministic given the caller's RNG stream.
pub trait ChannelScenario: Send {
    /// The canonical spec string of this scenario instance (used as the
    /// campaign label and in sweep reports).
    fn spec(&self) -> String;

    /// The room geometry shared by the radio and depth-camera simulators.
    fn room(&self) -> &Room;

    /// The nominal (unobstructed) channel, used by the harness to calibrate
    /// the receiver noise floor for a target SNR before any packet is
    /// generated.
    fn nominal_cir(&self) -> FirFilter;

    /// Starts a new measurement set: resets per-set state and returns the
    /// blocker trajectory sampled every `dt` seconds for `steps` samples.
    /// Scenarios without physical blockers return `steps` empty snapshots.
    fn begin_set(&mut self, dt: f64, steps: usize, rng: &mut dyn RngCore) -> Vec<BlockerSnapshot>;

    /// The channel of the next packet, transmitted at `time_s` (seconds
    /// since the start of the set) while the blockers stand at `blockers`
    /// (interpolated from the [`begin_set`](Self::begin_set) trajectory).
    fn packet_channel(
        &mut self,
        time_s: f64,
        blockers: &[(f64, f64)],
        rng: &mut dyn RngCore,
    ) -> PacketChannel;
}

/// Draws the crystal-induced mean phase offset of one packet (Sec. 3.1):
/// uniform over [−π, π), constant within a packet and independent across
/// packets.  Every built-in scenario models the sensor crystals this way;
/// custom scenarios simulating the same hardware should reuse it so the
/// phase model cannot silently diverge between scenario families.
pub fn crystal_phase(rng: &mut dyn RngCore) -> f64 {
    rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI)
}

/// A heap-allocated scenario, as built by the registry.
pub type BoxedScenario = Box<dyn ChannelScenario>;

impl ChannelScenario for BoxedScenario {
    fn spec(&self) -> String {
        (**self).spec()
    }
    fn room(&self) -> &Room {
        (**self).room()
    }
    fn nominal_cir(&self) -> FirFilter {
        (**self).nominal_cir()
    }
    fn begin_set(&mut self, dt: f64, steps: usize, rng: &mut dyn RngCore) -> Vec<BlockerSnapshot> {
        (**self).begin_set(dt, steps, rng)
    }
    fn packet_channel(
        &mut self,
        time_s: f64,
        blockers: &[(f64, f64)],
        rng: &mut dyn RngCore,
    ) -> PacketChannel {
        (**self).packet_channel(time_s, blockers, rng)
    }
}
