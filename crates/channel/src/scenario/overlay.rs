//! Composable scenario overlays (`+burst-noise:…`, `+snr-offset:…`,
//! `+snr-sweep:…`).
//!
//! An overlay wraps any [`ChannelScenario`] and transforms its per-packet
//! output — today the noise dimension, via
//! [`PacketChannel::noise_scale`] — while delegating geometry, blockers
//! and fading untouched.  Overlays stack left to right
//! (`paper+snr-offset:db=-3+burst-noise:p=0.05` raises the noise floor
//! 3 dB and then adds bursts), and custom overlays register on the
//! [`ScenarioRegistry`](crate::scenario::registry::ScenarioRegistry) the
//! same way custom bases do.
//!
//! Overlays draw their randomness from the caller's RNG *after* delegating
//! to the inner scenario, so a wrapped scenario remains deterministic per
//! `(seed, spec)` — but note that inserting an overlay changes the stream
//! the inner scenario sees for subsequent packets only when the overlay
//! draws (only `burst-noise` does).

use crate::room::Room;
use crate::scenario::spec::OverlaySpec;
use crate::scenario::{BlockerSnapshot, BoxedScenario, ChannelScenario, PacketChannel};
use rand::{Rng, RngCore};
use vvd_dsp::FirFilter;

/// Converts a power ratio in dB to the matching *amplitude* (standard
/// deviation) factor.
fn db_to_amplitude(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Gilbert–Elliott noise bursts on top of any scenario.
///
/// Each packet outside a burst enters one with probability `p`; inside a
/// burst the noise standard deviation is multiplied by `10^(extra_db/20)`
/// and the burst ends with probability [`BurstNoise::EXIT_PROBABILITY`]
/// per packet (mean burst length 4 packets).  Models the co-channel
/// interference bursts that the paper's 8 MHz offset from Wi-Fi could not
/// fully suppress.
pub struct BurstNoise {
    inner: BoxedScenario,
    p: f64,
    extra_db: f64,
    in_burst: bool,
}

impl BurstNoise {
    /// Per-packet probability that an ongoing burst ends.
    pub const EXIT_PROBABILITY: f64 = 0.25;

    /// Wraps `inner` with bursts entered at probability `p` per packet and
    /// `extra_db` dB of extra noise power while bursting.
    pub fn new(inner: BoxedScenario, p: f64, extra_db: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "burst probability must be in [0, 1]"
        );
        BurstNoise {
            inner,
            p,
            extra_db,
            in_burst: false,
        }
    }
}

impl ChannelScenario for BurstNoise {
    fn spec(&self) -> String {
        format!(
            "{}+{}",
            self.inner.spec(),
            OverlaySpec::BurstNoise {
                p: self.p,
                extra_db: self.extra_db
            }
        )
    }

    fn room(&self) -> &Room {
        self.inner.room()
    }

    fn nominal_cir(&self) -> FirFilter {
        self.inner.nominal_cir()
    }

    fn begin_set(&mut self, dt: f64, steps: usize, rng: &mut dyn RngCore) -> Vec<BlockerSnapshot> {
        self.in_burst = false;
        self.inner.begin_set(dt, steps, rng)
    }

    fn packet_channel(
        &mut self,
        time_s: f64,
        blockers: &[(f64, f64)],
        rng: &mut dyn RngCore,
    ) -> PacketChannel {
        let mut packet = self.inner.packet_channel(time_s, blockers, rng);
        // State transition after the inner draws, one uniform per packet.
        let u: f64 = rng.gen_range(0.0..1.0);
        self.in_burst = if self.in_burst {
            u >= Self::EXIT_PROBABILITY
        } else {
            u < self.p
        };
        if self.in_burst {
            packet.noise_scale *= db_to_amplitude(self.extra_db);
        }
        packet
    }
}

/// Constant SNR offset: positive `db` *improves* the operating SNR by
/// shrinking the noise floor by `10^(db/20)`.
pub struct SnrOffset {
    inner: BoxedScenario,
    db: f64,
}

impl SnrOffset {
    /// Wraps `inner`, offsetting the campaign SNR by `db` dB.
    pub fn new(inner: BoxedScenario, db: f64) -> Self {
        SnrOffset { inner, db }
    }
}

impl ChannelScenario for SnrOffset {
    fn spec(&self) -> String {
        format!(
            "{}+{}",
            self.inner.spec(),
            OverlaySpec::SnrOffset { db: self.db }
        )
    }

    fn room(&self) -> &Room {
        self.inner.room()
    }

    fn nominal_cir(&self) -> FirFilter {
        self.inner.nominal_cir()
    }

    fn begin_set(&mut self, dt: f64, steps: usize, rng: &mut dyn RngCore) -> Vec<BlockerSnapshot> {
        self.inner.begin_set(dt, steps, rng)
    }

    fn packet_channel(
        &mut self,
        time_s: f64,
        blockers: &[(f64, f64)],
        rng: &mut dyn RngCore,
    ) -> PacketChannel {
        let mut packet = self.inner.packet_channel(time_s, blockers, rng);
        packet.noise_scale *= db_to_amplitude(-self.db);
        packet
    }
}

/// Linear SNR ramp across each measurement set, relative to the campaign's
/// nominal SNR — a whole SNR sweep folded into one campaign, which is how
/// the scenario engine reproduces waterfall-style curves without
/// generating one campaign per SNR point.
///
/// The ramp is defined over the span of the set's blocker trajectory
/// (what [`begin_set`](ChannelScenario::begin_set) samples).  The campaign
/// pads that trajectory by a few frames beyond the last packet for
/// interpolation headroom, so the final packet sits slightly short of
/// `to` — by `(frame padding)/(set duration)`, under 0.2 dB of a 10 dB
/// ramp on the `quick` preset and negligible at paper scale.
pub struct SnrSweep {
    inner: BoxedScenario,
    from_db: f64,
    to_db: f64,
    set_duration_s: f64,
}

impl SnrSweep {
    /// Wraps `inner` with a per-set SNR ramp from `from_db` to `to_db`.
    pub fn new(inner: BoxedScenario, from_db: f64, to_db: f64) -> Self {
        SnrSweep {
            inner,
            from_db,
            to_db,
            set_duration_s: 0.0,
        }
    }

    /// The SNR offset applied at `time_s` within the current set.
    pub fn offset_db_at(&self, time_s: f64) -> f64 {
        if self.set_duration_s <= 0.0 {
            return self.from_db;
        }
        let frac = (time_s / self.set_duration_s).clamp(0.0, 1.0);
        self.from_db + (self.to_db - self.from_db) * frac
    }
}

impl ChannelScenario for SnrSweep {
    fn spec(&self) -> String {
        format!(
            "{}+{}",
            self.inner.spec(),
            OverlaySpec::SnrSweep {
                from: self.from_db,
                to: self.to_db
            }
        )
    }

    fn room(&self) -> &Room {
        self.inner.room()
    }

    fn nominal_cir(&self) -> FirFilter {
        self.inner.nominal_cir()
    }

    fn begin_set(&mut self, dt: f64, steps: usize, rng: &mut dyn RngCore) -> Vec<BlockerSnapshot> {
        // The trajectory covers the whole set, so its span defines the ramp.
        self.set_duration_s = dt * steps.saturating_sub(1).max(1) as f64;
        self.inner.begin_set(dt, steps, rng)
    }

    fn packet_channel(
        &mut self,
        time_s: f64,
        blockers: &[(f64, f64)],
        rng: &mut dyn RngCore,
    ) -> PacketChannel {
        let mut packet = self.inner.packet_channel(time_s, blockers, rng);
        packet.noise_scale *= db_to_amplitude(-self.offset_db_at(time_s));
        packet
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cir::CirConfig;
    use crate::scenario::paper::PaperScenario;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper() -> BoxedScenario {
        Box::new(PaperScenario::new(CirConfig::default()))
    }

    fn scales(scenario: &mut dyn ChannelScenario, packets: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let snaps = scenario.begin_set(1.0 / 30.0, 3 * packets + 4, &mut rng);
        (0..packets)
            .map(|k| {
                scenario
                    .packet_channel(k as f64 * 0.1, &snaps[3 * k], &mut rng)
                    .noise_scale
            })
            .collect()
    }

    #[test]
    fn snr_offset_scales_the_noise_floor() {
        let mut better = SnrOffset::new(paper(), 6.0);
        let mut worse = SnrOffset::new(paper(), -6.0);
        assert_eq!(better.spec(), "paper+snr-offset:db=6");
        for s in scales(&mut better, 10, 1) {
            assert!((s - 10f64.powf(-0.3)).abs() < 1e-12);
        }
        for s in scales(&mut worse, 10, 1) {
            assert!((s - 10f64.powf(0.3)).abs() < 1e-12);
        }
    }

    #[test]
    fn snr_sweep_ramps_monotonically_and_resets_per_set() {
        let mut sweep = SnrSweep::new(paper(), -10.0, 0.0);
        assert_eq!(sweep.spec(), "paper+snr-sweep:from=-10,to=0");
        let first = scales(&mut sweep, 20, 2);
        // SNR improves over the set ⇒ the noise scale decreases.
        for pair in first.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-12);
        }
        assert!(first[0] > first[19]);
        let second = scales(&mut sweep, 20, 2);
        assert_eq!(first, second, "the ramp must restart per set");
    }

    #[test]
    fn burst_noise_produces_elevated_runs() {
        let mut bursty = BurstNoise::new(paper(), 0.2, 20.0);
        assert_eq!(bursty.spec(), "paper+burst-noise:p=0.2,db=20");
        let scales = scales(&mut bursty, 400, 3);
        let elevated: Vec<bool> = scales.iter().map(|&s| s > 1.5).collect();
        let n_elevated = elevated.iter().filter(|&&e| e).count();
        // Stationary burst fraction p/(p+exit) = 0.2/0.45 ≈ 0.44.
        assert!(
            (0.25..0.65).contains(&(n_elevated as f64 / 400.0)),
            "burst fraction {}",
            n_elevated as f64 / 400.0
        );
        // Bursts come in runs: elevated packets are followed by an elevated
        // packet more often than p alone would produce.
        let followed: usize = elevated.windows(2).filter(|w| w[0] && w[1]).count();
        assert!(followed as f64 > 0.5 * n_elevated as f64);
        // Inside a burst the scale is exactly the configured 20 dB.
        for &s in scales.iter().filter(|&&s| s > 1.5) {
            assert!((s - 10.0).abs() < 1e-12);
        }
    }

    #[test]
    fn overlays_stack() {
        let offset = Box::new(SnrOffset::new(paper(), -3.0));
        let mut stacked = BurstNoise::new(offset, 0.0, 10.0);
        assert_eq!(
            stacked.spec(),
            "paper+snr-offset:db=-3+burst-noise:p=0,db=10"
        );
        // p = 0: never bursts, so only the offset applies.
        for s in scales(&mut stacked, 10, 4) {
            assert!((s - 10f64.powf(0.15)).abs() < 1e-12);
        }
    }

    #[test]
    fn overlays_delegate_geometry() {
        let wrapped = SnrOffset::new(paper(), 3.0);
        let plain = PaperScenario::new(CirConfig::default());
        assert_eq!(wrapped.room().width, plain.room().width);
        assert_eq!(wrapped.nominal_cir().taps(), plain.nominal_cir().taps());
    }
}
