//! Pluggable scenario registry.
//!
//! [`ScenarioRegistry`] mirrors the estimator side's `EstimatorRegistry`:
//! it builds boxed [`ChannelScenario`](super::ChannelScenario)s from spec strings
//! (`base(+overlay)*`, see the [spec grammar](super::spec)), pre-registers
//! every built-in base and overlay, and accepts custom factories under new
//! head names — so a new environment is a one-liner for callers of the
//! evaluation harness instead of a harness edit:
//!
//! ```
//! use vvd_channel::scenario::{ChannelScenario, ScenarioRegistry};
//!
//! let registry = ScenarioRegistry::new();
//! let scenario = registry.build("rician:k=6,doppler=30").unwrap();
//! assert_eq!(scenario.spec(), "rician:k=6,doppler=30");
//! assert!(registry.build("room:huge").is_err());
//! ```

use crate::cir::CirConfig;
use crate::scenario::overlay::{BurstNoise, SnrOffset, SnrSweep};
use crate::scenario::paper::{PaperScenario, RoomScenario};
use crate::scenario::spec::{split_head, split_segments, BaseSpec, OverlaySpec, ScenarioSpec};
use crate::scenario::stochastic::StochasticScenario;
use crate::scenario::BoxedScenario;
use std::collections::BTreeMap;

pub use crate::scenario::spec::SpecParseError;

/// A factory building a base scenario from the argument part of a spec
/// segment (everything after the first `:`; empty when there is none).
pub type ScenarioFactory =
    Box<dyn Fn(&ScenarioRegistry, &str) -> Result<BoxedScenario, SpecParseError> + Send + Sync>;

/// A factory wrapping an already-built scenario with an overlay, given the
/// overlay segment's argument part.
pub type OverlayFactory = Box<
    dyn Fn(&ScenarioRegistry, &str, BoxedScenario) -> Result<BoxedScenario, SpecParseError>
        + Send
        + Sync,
>;

/// Builds boxed channel scenarios by name.
///
/// [`ScenarioRegistry::new`] pre-registers the built-in bases (`paper`,
/// `room`, `rician`, `rayleigh`) and overlays (`burst-noise`,
/// `snr-offset`, `snr-sweep`); [`register`](Self::register) and
/// [`register_overlay`](Self::register_overlay) add or override entries.
/// The CIR synthesis configuration handed to geometric scenarios defaults
/// to [`CirConfig::default`] and is overridden with
/// [`with_cir_config`](Self::with_cir_config) (the evaluation harness
/// passes its campaign's config through).
pub struct ScenarioRegistry {
    bases: BTreeMap<String, ScenarioFactory>,
    overlays: BTreeMap<String, OverlayFactory>,
    cir: CirConfig,
}

impl ScenarioRegistry {
    /// A registry with every built-in base and overlay registered.
    pub fn new() -> Self {
        let mut registry = ScenarioRegistry {
            bases: BTreeMap::new(),
            overlays: BTreeMap::new(),
            cir: CirConfig::default(),
        };

        registry.register("paper", |registry, args| {
            typed_base("paper", args, registry)
        });
        registry.register("room", |registry, args| typed_base("room", args, registry));
        registry.register("rician", |registry, args| {
            typed_base("rician", args, registry)
        });
        registry.register("rayleigh", |registry, args| {
            typed_base("rayleigh", args, registry)
        });

        registry.register_overlay("burst-noise", |_, args, inner| {
            typed_overlay("burst-noise", args, inner)
        });
        registry.register_overlay("snr-offset", |_, args, inner| {
            typed_overlay("snr-offset", args, inner)
        });
        registry.register_overlay("snr-sweep", |_, args, inner| {
            typed_overlay("snr-sweep", args, inner)
        });

        registry
    }

    /// Sets the CIR synthesis configuration handed to the built-in
    /// geometric scenarios (builder style).
    pub fn with_cir_config(mut self, cir: CirConfig) -> Self {
        self.cir = cir;
        self
    }

    /// The CIR synthesis configuration factories should honour.
    pub fn cir_config(&self) -> &CirConfig {
        &self.cir
    }

    /// Registers (or overrides) a base-scenario factory under a head name.
    ///
    /// # Panics
    /// Panics unless the name starts with an ASCII letter — the spec
    /// tokenizer only treats `+` as a segment separator before a letter
    /// (so signed numeric arguments like `db=+3` survive), which makes a
    /// digit-leading head unreachable from any spec string.
    pub fn register<F>(&mut self, name: &str, factory: F)
    where
        F: Fn(&ScenarioRegistry, &str) -> Result<BoxedScenario, SpecParseError>
            + Send
            + Sync
            + 'static,
    {
        assert_head_name(name);
        self.bases.insert(name.to_string(), Box::new(factory));
    }

    /// Registers (or overrides) an overlay factory under a head name.
    ///
    /// # Panics
    /// Panics unless the name starts with an ASCII letter (see
    /// [`register`](Self::register)).
    pub fn register_overlay<F>(&mut self, name: &str, factory: F)
    where
        F: Fn(&ScenarioRegistry, &str, BoxedScenario) -> Result<BoxedScenario, SpecParseError>
            + Send
            + Sync
            + 'static,
    {
        assert_head_name(name);
        self.overlays.insert(name.to_string(), Box::new(factory));
    }

    /// The registered base head names, sorted.
    pub fn base_names(&self) -> Vec<&str> {
        self.bases.keys().map(String::as_str).collect()
    }

    /// The registered overlay head names, sorted.
    pub fn overlay_names(&self) -> Vec<&str> {
        self.overlays.keys().map(String::as_str).collect()
    }

    /// Builds a scenario from a spec string (`base(+overlay)*`), resolving
    /// every segment's head through the registered factories.
    pub fn build(&self, spec: &str) -> Result<BoxedScenario, SpecParseError> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Err(SpecParseError::new(spec, "empty scenario spec"));
        }
        let mut segments = split_segments(spec).into_iter().map(str::trim);
        let base_segment = segments.next().unwrap_or("");
        let (head, args) = split_head(base_segment);
        let factory = self.bases.get(head).ok_or_else(|| {
            SpecParseError::new(
                spec,
                format!(
                    "unknown scenario `{head}` (registered: {})",
                    self.base_names().join(", ")
                ),
            )
        })?;
        let mut scenario = factory(self, args)?;

        for segment in segments {
            let (head, args) = split_head(segment);
            let factory = self.overlays.get(head).ok_or_else(|| {
                SpecParseError::new(
                    spec,
                    format!(
                        "unknown overlay `{head}` (registered: {})",
                        self.overlay_names().join(", ")
                    ),
                )
            })?;
            scenario = factory(self, args, scenario)?;
        }
        Ok(scenario)
    }

    /// Builds a scenario from an already-typed spec (validating it first).
    /// Typed construction does not go through the string grammar at all.
    pub fn build_spec(&self, spec: &ScenarioSpec) -> Result<BoxedScenario, SpecParseError> {
        spec.validate()?;
        let mut scenario = instantiate_base(&spec.base, *self.cir_config());
        for overlay in &spec.overlays {
            scenario = wrap_overlay(overlay, scenario);
        }
        Ok(scenario)
    }
}

impl Default for ScenarioRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// Head names must start with an ASCII letter; the spec tokenizer cannot
/// reach anything else (see [`ScenarioRegistry::register`]).
fn assert_head_name(name: &str) {
    assert!(
        name.chars().next().is_some_and(|c| c.is_ascii_alphabetic()),
        "scenario head `{name}` must start with an ASCII letter"
    );
}

/// Constructs a built-in base scenario from its typed, validated spec.
fn instantiate_base(base: &BaseSpec, cir: CirConfig) -> BoxedScenario {
    match *base {
        BaseSpec::Paper => Box::new(PaperScenario::new(cir)),
        BaseSpec::Room {
            size,
            humans,
            speed,
        } => Box::new(RoomScenario::new(size, humans, speed, cir)),
        BaseSpec::Rician { k, doppler } => Box::new(StochasticScenario::rician(k, doppler, cir)),
        BaseSpec::Rayleigh { doppler } => Box::new(StochasticScenario::rayleigh(doppler, cir)),
    }
}

/// Wraps a scenario with a built-in overlay from its typed, validated spec.
fn wrap_overlay(overlay: &OverlaySpec, inner: BoxedScenario) -> BoxedScenario {
    match *overlay {
        OverlaySpec::BurstNoise { p, extra_db } => Box::new(BurstNoise::new(inner, p, extra_db)),
        OverlaySpec::SnrOffset { db } => Box::new(SnrOffset::new(inner, db)),
        OverlaySpec::SnrSweep { from, to } => Box::new(SnrSweep::new(inner, from, to)),
    }
}

/// Parses a built-in base segment and instantiates it.
fn typed_base(
    head: &str,
    args: &str,
    registry: &ScenarioRegistry,
) -> Result<BoxedScenario, SpecParseError> {
    let segment = if args.is_empty() {
        head.to_string()
    } else {
        format!("{head}:{args}")
    };
    let base = BaseSpec::parse(&segment, &segment)?;
    Ok(instantiate_base(&base, *registry.cir_config()))
}

/// Instantiates a built-in overlay from its parsed segment.
fn typed_overlay(
    head: &str,
    args: &str,
    inner: BoxedScenario,
) -> Result<BoxedScenario, SpecParseError> {
    let segment = if args.is_empty() {
        head.to_string()
    } else {
        format!("{head}:{args}")
    };
    let overlay = OverlaySpec::parse(&segment, &segment)?;
    Ok(wrap_overlay(&overlay, inner))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ChannelScenario;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The specs every registered built-in combination is smoke-tested
    /// over, shared with the finite-CIR table test.
    pub(crate) const BUILTIN_SPECS: [&str; 8] = [
        "paper",
        "room:small,humans=1,speed=1",
        "room:large,humans=4,speed=1.5",
        "room:lab,humans=0,speed=1",
        "rician:k=6,doppler=30",
        "rayleigh:doppler=10",
        "paper+burst-noise:p=0.01,db=10",
        "rician:k=4,doppler=10+snr-sweep:from=-10,to=0",
    ];

    /// Satellite requirement: every registered scenario yields finite,
    /// non-degenerate CIRs — table-driven over the built-in spec matrix.
    #[test]
    fn every_builtin_scenario_yields_finite_nondegenerate_cirs() {
        let registry = ScenarioRegistry::new();
        for spec in BUILTIN_SPECS {
            let mut scenario = registry.build(spec).unwrap_or_else(|e| panic!("{e}"));
            let mut rng = StdRng::seed_from_u64(2019);
            let snapshots = scenario.begin_set(1.0 / 30.0, 64, &mut rng);
            assert_eq!(snapshots.len(), 64, "{spec}: wrong trajectory length");
            let room = scenario.room();
            for snap in &snapshots {
                for &(x, y) in snap {
                    assert!(
                        (0.0..=room.width).contains(&x) && (0.0..=room.depth).contains(&y),
                        "{spec}: blocker ({x}, {y}) outside the room"
                    );
                }
            }
            let mut cirs = Vec::new();
            for k in 0..20 {
                let idx = (3 * k).min(snapshots.len() - 1);
                let packet = scenario.packet_channel(k as f64 * 0.1, &snapshots[idx], &mut rng);
                assert!(
                    packet
                        .fir
                        .taps()
                        .iter()
                        .all(|t| t.re.is_finite() && t.im.is_finite()),
                    "{spec}: non-finite tap"
                );
                assert!(packet.fir.energy() > 0.0, "{spec}: zero-energy CIR");
                assert!(
                    packet.phase_offset.is_finite(),
                    "{spec}: non-finite phase offset"
                );
                assert!(
                    packet.noise_scale.is_finite() && packet.noise_scale > 0.0,
                    "{spec}: degenerate noise scale {}",
                    packet.noise_scale
                );
                cirs.push(packet.fir);
            }
            // Non-degenerate: the channel actually varies across packets.
            assert!(
                cirs.windows(2).any(|w| w[0].taps() != w[1].taps()),
                "{spec}: constant channel across packets"
            );
        }
    }

    #[test]
    fn every_builtin_spec_builds_and_round_trips_its_label() {
        let registry = ScenarioRegistry::new();
        for spec in BUILTIN_SPECS {
            let scenario = registry.build(spec).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(scenario.spec(), spec, "label must echo the canonical spec");
            // The label itself must be buildable (labels are specs).
            assert!(registry.build(&scenario.spec()).is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "must start with an ASCII letter")]
    fn digit_leading_heads_are_rejected_at_registration() {
        // The tokenizer only splits `+` before a letter (so `db=+3` and
        // `1e+2` survive), which would make this head silently
        // unreachable — registration fails fast instead.
        let mut registry = ScenarioRegistry::new();
        registry.register_overlay("5g-interference", |_, _, inner| Ok(inner));
    }

    #[test]
    fn typed_and_string_specs_agree() {
        let registry = ScenarioRegistry::new();
        let typed: ScenarioSpec = "room:large,humans=2,speed=1.25".parse().unwrap();
        let a = registry.build_spec(&typed).unwrap();
        let b = registry.build("room:large,humans=2,speed=1.25").unwrap();
        assert_eq!(a.spec(), b.spec());
    }

    #[test]
    fn unknown_heads_list_the_registered_ones() {
        let registry = ScenarioRegistry::new();
        let err = match registry.build("warp-drive") {
            Err(err) => err,
            Ok(_) => panic!("`warp-drive` should be rejected"),
        };
        assert!(err.to_string().contains("paper"), "{err}");
        let err = match registry.build("paper+cosmic-rays:p=1") {
            Err(err) => err,
            Ok(_) => panic!("`cosmic-rays` should be rejected"),
        };
        assert!(err.to_string().contains("burst-noise"), "{err}");
        assert!(registry.build("").is_err());
    }

    #[test]
    fn malformed_arguments_surface_as_errors() {
        let registry = ScenarioRegistry::new();
        for bad in [
            "room:huge",
            "room:lab,humans=many",
            "rician:k=-2",
            "paper+burst-noise:p=7",
            "paper+snr-sweep:from=0",
        ] {
            assert!(registry.build(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn custom_bases_and_overlays_compose() {
        // A full (panic-free) test double: if the trait grows a caller
        // that touches the room — campaign generation does — the helper
        // still behaves like a real scenario.
        struct Fixed {
            room: crate::Room,
        }
        impl Default for Fixed {
            fn default() -> Self {
                Fixed {
                    room: crate::Room::laboratory(),
                }
            }
        }
        impl ChannelScenario for Fixed {
            fn spec(&self) -> String {
                "fixed".into()
            }
            fn room(&self) -> &crate::Room {
                &self.room
            }
            fn nominal_cir(&self) -> vvd_dsp::FirFilter {
                vvd_dsp::FirFilter::identity()
            }
            fn begin_set(
                &mut self,
                _dt: f64,
                steps: usize,
                _rng: &mut dyn rand::RngCore,
            ) -> Vec<crate::scenario::BlockerSnapshot> {
                vec![Vec::new(); steps]
            }
            fn packet_channel(
                &mut self,
                _time_s: f64,
                _blockers: &[(f64, f64)],
                _rng: &mut dyn rand::RngCore,
            ) -> crate::scenario::PacketChannel {
                crate::scenario::PacketChannel {
                    fir: vvd_dsp::FirFilter::identity(),
                    phase_offset: 0.0,
                    noise_scale: 1.0,
                }
            }
        }

        let mut registry = ScenarioRegistry::new();
        registry.register("fixed", |_, args| {
            if args.is_empty() {
                Ok(Box::new(Fixed::default()) as BoxedScenario)
            } else {
                Err(SpecParseError::new("fixed", "`fixed` takes no arguments"))
            }
        });
        // The double answers every trait method, room geometry included.
        let fixed = registry.build("fixed").unwrap();
        assert!(fixed.room().width > 0.0);

        // Custom base composes with built-in overlays.
        let mut scenario = registry.build("fixed+snr-offset:db=-6").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let packet = scenario.packet_channel(0.0, &[], &mut rng);
        assert!((packet.noise_scale - 10f64.powf(0.3)).abs() < 1e-12);
        assert_eq!(scenario.spec(), "fixed+snr-offset:db=-6");
    }

    #[test]
    fn cir_config_reaches_the_geometric_scenarios() {
        let cir = CirConfig {
            n_taps: 7,
            ..Default::default()
        };
        let registry = ScenarioRegistry::new().with_cir_config(cir);
        let scenario = registry.build("paper").unwrap();
        assert_eq!(scenario.nominal_cir().len(), 7);
    }
}
