//! The typed scenario spec grammar.
//!
//! A scenario spec is `base(+overlay)*`.  [`ScenarioSpec`] is the parsed
//! form; its [`Display`](fmt::Display) prints the canonical string and
//! [`FromStr`](std::str::FromStr) parses it back, and the two round-trip
//! exactly (property-tested).  The built-in grammar:
//!
//! ```text
//! base     := paper
//!           | room:<size>[,humans=<n>][,speed=<s>]     size ∈ small|lab|large
//!           | rician:k=<k>,doppler=<hz>
//!           | rayleigh:doppler=<hz>
//! overlay  := burst-noise:p=<p>[,db=<extra>]
//!           | snr-offset:db=<db>
//!           | snr-sweep:from=<db>,to=<db>
//! ```
//!
//! Omitted fields take documented defaults; the canonical form always
//! prints every field.  Heads outside this grammar are the registry's
//! business ([`ScenarioRegistry::register`]); parsing them here fails.
//!
//! [`ScenarioRegistry::register`]: crate::scenario::registry::ScenarioRegistry::register

use std::fmt;

/// A scenario spec string failed to parse or failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecParseError {
    spec: String,
    reason: String,
}

impl SpecParseError {
    /// Creates an error describing why `spec` was rejected (public so
    /// custom scenario factories can report their own parse failures).
    pub fn new(spec: &str, reason: impl Into<String>) -> Self {
        SpecParseError {
            spec: spec.to_string(),
            reason: reason.into(),
        }
    }

    /// The offending spec string.
    pub fn spec(&self) -> &str {
        &self.spec
    }
}

impl fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scenario spec `{}`: {}", self.spec, self.reason)
    }
}

impl std::error::Error for SpecParseError {}

/// Room geometry preset of the crowd scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoomSize {
    /// 5 m × 4 m office ([`Room::small_office`](crate::Room::small_office)).
    Small,
    /// The paper's 8 m × 6 m laboratory
    /// ([`Room::laboratory`](crate::Room::laboratory)).
    Lab,
    /// 14 m × 10 m hall ([`Room::large_hall`](crate::Room::large_hall)).
    Large,
}

impl RoomSize {
    /// All presets, smallest first.
    pub const ALL: [RoomSize; 3] = [RoomSize::Small, RoomSize::Lab, RoomSize::Large];

    /// The canonical token (`small` / `lab` / `large`).
    pub fn token(&self) -> &'static str {
        match self {
            RoomSize::Small => "small",
            RoomSize::Lab => "lab",
            RoomSize::Large => "large",
        }
    }

    fn parse(token: &str, spec: &str) -> Result<Self, SpecParseError> {
        RoomSize::ALL
            .into_iter()
            .find(|s| s.token() == token)
            .ok_or_else(|| {
                SpecParseError::new(
                    spec,
                    format!("unknown room size `{token}` (small|lab|large)"),
                )
            })
    }
}

impl fmt::Display for RoomSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Upper bound on the crowd size — keeps a typo like `humans=4000` from
/// silently turning CIR synthesis quadratic.
pub const MAX_HUMANS: usize = 16;

/// The base environment of a scenario spec.
#[derive(Debug, Clone, PartialEq)]
pub enum BaseSpec {
    /// The paper's scenario: laboratory room, one random-waypoint human,
    /// geometric multipath with the diffuse residual.
    Paper,
    /// A configurable room with a crowd of random-waypoint walkers.
    Room {
        /// Geometry preset.
        size: RoomSize,
        /// Number of walkers (default 1, at most [`MAX_HUMANS`]).
        humans: usize,
        /// Multiplier on the pedestrian speed range (default 1).
        speed: f64,
    },
    /// Stochastic Rician block fading: a fixed geometric mean component
    /// plus a Doppler-correlated diffuse part (no physical blockers).
    Rician {
        /// Rician K-factor (linear power ratio of the fixed component to
        /// the diffuse part).
        k: f64,
        /// Maximum Doppler frequency in Hz; sets the packet-to-packet
        /// correlation via Clarke's model.
        doppler: f64,
    },
    /// Rayleigh block fading: [`BaseSpec::Rician`] with `k = 0`.
    Rayleigh {
        /// Maximum Doppler frequency in Hz.
        doppler: f64,
    },
}

impl BaseSpec {
    /// Parses the base segment of a spec string.  `spec` is the full spec,
    /// used in error messages.
    pub fn parse(segment: &str, spec: &str) -> Result<Self, SpecParseError> {
        let (head, args) = split_head(segment);
        let base = match head {
            "paper" => {
                expect_no_args(head, args, spec)?;
                BaseSpec::Paper
            }
            "room" => {
                let mut fields = Fields::parse(args, spec)?;
                let size = RoomSize::parse(&fields.positional(spec, "room size")?, spec)?;
                let humans = fields.take_usize("humans", 1, spec)?;
                let speed = fields.take_f64("speed", 1.0, spec)?;
                fields.finish(spec)?;
                BaseSpec::Room {
                    size,
                    humans,
                    speed,
                }
            }
            "rician" => {
                let mut fields = Fields::parse(args, spec)?;
                let k = fields.take_f64("k", 4.0, spec)?;
                let doppler = fields.take_f64("doppler", 10.0, spec)?;
                fields.finish(spec)?;
                BaseSpec::Rician { k, doppler }
            }
            "rayleigh" => {
                let mut fields = Fields::parse(args, spec)?;
                let doppler = fields.take_f64("doppler", 10.0, spec)?;
                fields.finish(spec)?;
                BaseSpec::Rayleigh { doppler }
            }
            other => {
                return Err(SpecParseError::new(
                    spec,
                    format!("unknown scenario `{other}` (paper|room|rician|rayleigh)"),
                ))
            }
        };
        base.validate(spec)?;
        Ok(base)
    }

    /// Checks the parameter ranges; parsing always validates, manual
    /// construction should before building.
    pub fn validate(&self, spec: &str) -> Result<(), SpecParseError> {
        match *self {
            BaseSpec::Paper => Ok(()),
            BaseSpec::Room { humans, speed, .. } => {
                if humans > MAX_HUMANS {
                    return Err(SpecParseError::new(
                        spec,
                        format!("at most {MAX_HUMANS} humans supported, got {humans}"),
                    ));
                }
                check_range("speed", speed, 0.05, 10.0, spec)
            }
            BaseSpec::Rician { k, doppler } => {
                check_range("k", k, 0.0, 1e3, spec)?;
                check_range("doppler", doppler, 0.0, 1e3, spec)
            }
            BaseSpec::Rayleigh { doppler } => check_range("doppler", doppler, 0.0, 1e3, spec),
        }
    }
}

impl fmt::Display for BaseSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseSpec::Paper => f.write_str("paper"),
            BaseSpec::Room {
                size,
                humans,
                speed,
            } => write!(f, "room:{size},humans={humans},speed={speed}"),
            BaseSpec::Rician { k, doppler } => write!(f, "rician:k={k},doppler={doppler}"),
            BaseSpec::Rayleigh { doppler } => write!(f, "rayleigh:doppler={doppler}"),
        }
    }
}

/// A composable overlay applied on top of a base scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum OverlaySpec {
    /// Gilbert–Elliott noise bursts: each packet enters a burst with
    /// probability `p`; inside a burst the noise floor is raised by
    /// `extra_db` and the burst ends with probability 1/4 per packet
    /// (mean length 4 packets).
    BurstNoise {
        /// Per-packet probability of entering a burst.
        p: f64,
        /// Extra noise power inside a burst (dB, default 10).
        extra_db: f64,
    },
    /// Constant SNR offset: positive `db` *improves* the operating SNR by
    /// shrinking the noise floor.
    SnrOffset {
        /// SNR offset in dB relative to the campaign's nominal SNR.
        db: f64,
    },
    /// Linear SNR ramp across each measurement set, from `from` dB at the
    /// first packet towards `to` dB at the end of the set's sampled
    /// trajectory, relative to the nominal SNR — an SNR sweep folded into
    /// a single campaign (the last packet sits marginally short of `to`;
    /// see `overlay::SnrSweep`).
    SnrSweep {
        /// Offset at the start of every set (dB).
        from: f64,
        /// Offset at the end of every set (dB).
        to: f64,
    },
}

impl OverlaySpec {
    /// Parses one overlay segment of a spec string.
    pub fn parse(segment: &str, spec: &str) -> Result<Self, SpecParseError> {
        let (head, args) = split_head(segment);
        let overlay = match head {
            "burst-noise" => {
                let mut fields = Fields::parse(args, spec)?;
                let p = fields.take_required_f64("p", spec)?;
                let extra_db = fields.take_f64("db", 10.0, spec)?;
                fields.finish(spec)?;
                OverlaySpec::BurstNoise { p, extra_db }
            }
            "snr-offset" => {
                let mut fields = Fields::parse(args, spec)?;
                let db = fields.take_required_f64("db", spec)?;
                fields.finish(spec)?;
                OverlaySpec::SnrOffset { db }
            }
            "snr-sweep" => {
                let mut fields = Fields::parse(args, spec)?;
                let from = fields.take_required_f64("from", spec)?;
                let to = fields.take_required_f64("to", spec)?;
                fields.finish(spec)?;
                OverlaySpec::SnrSweep { from, to }
            }
            other => {
                return Err(SpecParseError::new(
                    spec,
                    format!("unknown overlay `{other}` (burst-noise|snr-offset|snr-sweep)"),
                ))
            }
        };
        overlay.validate(spec)?;
        Ok(overlay)
    }

    /// Checks the parameter ranges (see [`BaseSpec::validate`]).
    pub fn validate(&self, spec: &str) -> Result<(), SpecParseError> {
        match *self {
            OverlaySpec::BurstNoise { p, extra_db } => {
                check_range("p", p, 0.0, 1.0, spec)?;
                check_range("db", extra_db, 0.0, 60.0, spec)
            }
            OverlaySpec::SnrOffset { db } => check_range("db", db, -60.0, 60.0, spec),
            OverlaySpec::SnrSweep { from, to } => {
                check_range("from", from, -60.0, 60.0, spec)?;
                check_range("to", to, -60.0, 60.0, spec)
            }
        }
    }
}

impl fmt::Display for OverlaySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverlaySpec::BurstNoise { p, extra_db } => {
                write!(f, "burst-noise:p={p},db={extra_db}")
            }
            OverlaySpec::SnrOffset { db } => write!(f, "snr-offset:db={db}"),
            OverlaySpec::SnrSweep { from, to } => write!(f, "snr-sweep:from={from},to={to}"),
        }
    }
}

/// A complete, validated scenario spec: one base plus zero or more
/// overlays, applied left to right.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The base environment.
    pub base: BaseSpec,
    /// Overlays applied on top, left to right.
    pub overlays: Vec<OverlaySpec>,
}

impl ScenarioSpec {
    /// A spec with no overlays.
    pub fn base(base: BaseSpec) -> Self {
        ScenarioSpec {
            base,
            overlays: Vec::new(),
        }
    }

    /// The paper's default scenario.
    pub fn paper() -> Self {
        Self::base(BaseSpec::Paper)
    }

    /// Validates every component (see [`BaseSpec::validate`]).
    pub fn validate(&self) -> Result<(), SpecParseError> {
        let spec = self.to_string();
        self.base.validate(&spec)?;
        for overlay in &self.overlays {
            overlay.validate(&spec)?;
        }
        Ok(())
    }
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        for overlay in &self.overlays {
            write!(f, "+{overlay}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for ScenarioSpec {
    type Err = SpecParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let spec = s.trim();
        if spec.is_empty() {
            return Err(SpecParseError::new(s, "empty scenario spec"));
        }
        let mut segments = split_segments(spec).into_iter();
        let base = BaseSpec::parse(segments.next().unwrap_or("").trim(), spec)?;
        let overlays = segments
            .map(|seg| OverlaySpec::parse(seg.trim(), spec))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ScenarioSpec { base, overlays })
    }
}

/// Splits a spec into its `base(+overlay)*` segments.
///
/// A `+` separates segments only when it introduces a new head, i.e. when
/// the next character is a letter — a `+` inside a numeric argument
/// (`doppler=1e+2`, `db=+3`) stays part of the argument.
pub(crate) fn split_segments(spec: &str) -> Vec<&str> {
    let mut segments = Vec::new();
    let mut start = 0;
    let bytes = spec.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'+' && bytes.get(i + 1).is_some_and(|c| c.is_ascii_alphabetic()) {
            segments.push(&spec[start..i]);
            start = i + 1;
        }
    }
    segments.push(&spec[start..]);
    segments
}

/// Splits `head:args` (args empty when there is no `:`).
pub(crate) fn split_head(segment: &str) -> (&str, &str) {
    match segment.split_once(':') {
        Some((head, args)) => (head, args),
        None => (segment, ""),
    }
}

fn expect_no_args(head: &str, args: &str, spec: &str) -> Result<(), SpecParseError> {
    if args.is_empty() {
        Ok(())
    } else {
        Err(SpecParseError::new(
            spec,
            format!("`{head}` takes no arguments"),
        ))
    }
}

fn check_range(name: &str, value: f64, lo: f64, hi: f64, spec: &str) -> Result<(), SpecParseError> {
    if value.is_finite() && (lo..=hi).contains(&value) {
        Ok(())
    } else {
        Err(SpecParseError::new(
            spec,
            format!("`{name}` must be in [{lo}, {hi}], got {value}"),
        ))
    }
}

/// Comma-separated `key=value` argument list, with at most one positional
/// (key-less) leading token.
struct Fields {
    positional: Option<String>,
    pairs: Vec<(String, String)>,
}

impl Fields {
    fn parse(args: &str, spec: &str) -> Result<Self, SpecParseError> {
        let mut positional = None;
        let mut pairs = Vec::new();
        for (i, token) in args
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .enumerate()
        {
            match token.split_once('=') {
                Some((k, v)) => pairs.push((k.trim().to_string(), v.trim().to_string())),
                None if i == 0 => positional = Some(token.to_string()),
                None => {
                    return Err(SpecParseError::new(
                        spec,
                        format!("expected `key=value`, got `{token}`"),
                    ))
                }
            }
        }
        Ok(Fields { positional, pairs })
    }

    fn positional(&mut self, spec: &str, what: &str) -> Result<String, SpecParseError> {
        self.positional
            .take()
            .ok_or_else(|| SpecParseError::new(spec, format!("missing {what}")))
    }

    fn take(&mut self, key: &str) -> Option<String> {
        let idx = self.pairs.iter().position(|(k, _)| k == key)?;
        Some(self.pairs.remove(idx).1)
    }

    fn take_f64(&mut self, key: &str, default: f64, spec: &str) -> Result<f64, SpecParseError> {
        match self.take(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<f64>()
                .map_err(|_| SpecParseError::new(spec, format!("`{key}={raw}` is not a number"))),
        }
    }

    fn take_required_f64(&mut self, key: &str, spec: &str) -> Result<f64, SpecParseError> {
        let raw = self
            .take(key)
            .ok_or_else(|| SpecParseError::new(spec, format!("missing required `{key}=`")))?;
        raw.parse::<f64>()
            .map_err(|_| SpecParseError::new(spec, format!("`{key}={raw}` is not a number")))
    }

    fn take_usize(
        &mut self,
        key: &str,
        default: usize,
        spec: &str,
    ) -> Result<usize, SpecParseError> {
        match self.take(key) {
            None => Ok(default),
            Some(raw) => raw.parse::<usize>().map_err(|_| {
                SpecParseError::new(spec, format!("`{key}={raw}` is not a non-negative integer"))
            }),
        }
    }

    fn finish(self, spec: &str) -> Result<(), SpecParseError> {
        if let Some(pos) = self.positional {
            return Err(SpecParseError::new(
                spec,
                format!("unexpected positional argument `{pos}`"),
            ));
        }
        if let Some((k, _)) = self.pairs.first() {
            return Err(SpecParseError::new(spec, format!("unknown argument `{k}`")));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> ScenarioSpec {
        s.parse().unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn canonical_examples_parse() {
        assert_eq!(parse("paper").base, BaseSpec::Paper);
        assert_eq!(
            parse("room:large,humans=4,speed=1.5").base,
            BaseSpec::Room {
                size: RoomSize::Large,
                humans: 4,
                speed: 1.5
            }
        );
        assert_eq!(
            parse("rician:k=6,doppler=30").base,
            BaseSpec::Rician {
                k: 6.0,
                doppler: 30.0
            }
        );
        assert_eq!(
            parse("rayleigh:doppler=10").base,
            BaseSpec::Rayleigh { doppler: 10.0 }
        );
        let composed = parse("paper+burst-noise:p=0.01");
        assert_eq!(composed.base, BaseSpec::Paper);
        assert_eq!(
            composed.overlays,
            vec![OverlaySpec::BurstNoise {
                p: 0.01,
                extra_db: 10.0
            }]
        );
    }

    #[test]
    fn defaults_are_filled_in_and_printed_canonically() {
        let spec = parse("room:small");
        assert_eq!(
            spec.base,
            BaseSpec::Room {
                size: RoomSize::Small,
                humans: 1,
                speed: 1.0
            }
        );
        assert_eq!(spec.to_string(), "room:small,humans=1,speed=1");
        assert_eq!(parse("rician").to_string(), "rician:k=4,doppler=10");
        // Key order is free on input.
        assert_eq!(
            parse("room:lab,speed=2,humans=3").to_string(),
            "room:lab,humans=3,speed=2"
        );
    }

    #[test]
    fn overlays_stack_left_to_right() {
        let spec = parse("rayleigh:doppler=5+snr-offset:db=3+burst-noise:p=0.1,db=20");
        assert_eq!(spec.overlays.len(), 2);
        assert_eq!(spec.overlays[0], OverlaySpec::SnrOffset { db: 3.0 });
        assert_eq!(
            spec.to_string(),
            "rayleigh:doppler=5+snr-offset:db=3+burst-noise:p=0.1,db=20"
        );
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        for bad in [
            "",
            "paper:loud",
            "room",
            "room:huge",
            "room:lab,humans=17",
            "room:lab,humans=-1",
            "room:lab,speed=0",
            "room:lab,pets=1",
            "rician:k=nan",
            "rician:k=-1",
            "rayleigh:doppler=1e9",
            "nonsense",
            "paper+",
            "paper+burst-noise",
            "paper+burst-noise:p=2",
            "paper+snr-sweep:from=0",
            "paper+snr-offset:db=100",
            "paper+later",
        ] {
            let err = match bad.parse::<ScenarioSpec>() {
                Err(err) => err,
                Ok(spec) => panic!("`{bad}` should be rejected, parsed {spec}"),
            };
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn plus_signs_inside_numbers_do_not_split_segments() {
        // Exponent form.
        assert_eq!(
            parse("rician:k=6,doppler=1e+2").base,
            BaseSpec::Rician {
                k: 6.0,
                doppler: 100.0
            }
        );
        // Explicitly signed argument.
        assert_eq!(
            parse("paper+snr-offset:db=+3").overlays,
            vec![OverlaySpec::SnrOffset { db: 3.0 }]
        );
        // Both at once: the `+` before a letter still separates.
        let spec = parse("rayleigh:doppler=1e+1+snr-sweep:from=-1e+1,to=+5");
        assert_eq!(spec.base, BaseSpec::Rayleigh { doppler: 10.0 });
        assert_eq!(
            spec.overlays,
            vec![OverlaySpec::SnrSweep {
                from: -10.0,
                to: 5.0
            }]
        );
    }

    #[test]
    fn whitespace_is_tolerated() {
        assert_eq!(parse("  paper  ").to_string(), "paper");
        assert_eq!(
            parse("room: lab , humans = 2").to_string(),
            "room:lab,humans=2,speed=1"
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_base(index: usize, a: f64, b: f64, n: usize) -> BaseSpec {
            match index % 4 {
                0 => BaseSpec::Paper,
                1 => BaseSpec::Room {
                    size: RoomSize::ALL[index % 3],
                    humans: n % (MAX_HUMANS + 1),
                    speed: 0.05 + a * 9.0,
                },
                2 => BaseSpec::Rician {
                    k: a * 100.0,
                    doppler: b * 100.0,
                },
                _ => BaseSpec::Rayleigh { doppler: b * 100.0 },
            }
        }

        fn arb_overlay(index: usize, a: f64, b: f64) -> OverlaySpec {
            match index % 3 {
                0 => OverlaySpec::BurstNoise {
                    p: a,
                    extra_db: b * 60.0,
                },
                1 => OverlaySpec::SnrOffset {
                    db: (a - 0.5) * 120.0,
                },
                _ => OverlaySpec::SnrSweep {
                    from: (a - 0.5) * 120.0,
                    to: (b - 0.5) * 120.0,
                },
            }
        }

        proptest! {
            /// `Display` ⇄ `FromStr` round-trips for arbitrary valid specs,
            /// overlays included.
            #[test]
            fn display_from_str_round_trips(
                base_index in 0usize..4,
                humans in 0usize..=MAX_HUMANS,
                a in 0.0f64..1.0,
                b in 0.0f64..1.0,
                overlay_indices in proptest::collection::vec(0usize..3, 0..3),
                oa in 0.0f64..1.0,
                ob in 0.0f64..1.0,
            ) {
                let spec = ScenarioSpec {
                    base: arb_base(base_index, a, b, humans),
                    overlays: overlay_indices
                        .iter()
                        .map(|&i| arb_overlay(i, oa, ob))
                        .collect(),
                };
                spec.validate().expect("generated specs are valid");
                let text = spec.to_string();
                let reparsed: ScenarioSpec = text.parse().unwrap();
                prop_assert_eq!(&reparsed, &spec);
                // Canonical text is a fixed point.
                prop_assert_eq!(reparsed.to_string(), text);
            }

            /// Arbitrary strings never panic the parser, and whatever parses
            /// must round-trip through its canonical form.
            #[test]
            fn parser_is_total(
                bytes in proptest::collection::vec(any::<u8>(), 0..32),
            ) {
                let s = String::from_utf8_lossy(&bytes).into_owned();
                if let Ok(spec) = s.parse::<ScenarioSpec>() {
                    let canonical = spec.to_string();
                    prop_assert_eq!(canonical.parse::<ScenarioSpec>().unwrap(), spec);
                }
            }
        }
    }
}
