//! The laboratory room: static geometry of the measurement environment.
//!
//! Fig. 2 of the paper sketches the setup: a rectangular laboratory with
//! several PCs and metallic objects ("robots similar to industrial
//! environment"), a battery-powered transmitter and receiver on opposite
//! sides, an RGB-D camera overlooking the area in which a single human is
//! allowed to move.  [`Room::laboratory`] encodes a compatible default
//! geometry; everything is configurable so that tests can build degenerate
//! rooms.

use crate::geometry::Point3;
use serde::{Deserialize, Serialize};

/// A static metallic scatterer (PC tower, robot arm, cabinet) that produces
/// an additional multipath component TX → scatterer → RX.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scatterer {
    /// Scatterer position (taken as the effective scattering centre).
    pub position: Point3,
    /// Amplitude reflection coefficient in `[0, 1]` applied to the bounce.
    pub reflectivity: f64,
    /// Half-extent of the object footprint (metres), used only by the
    /// depth-camera scene so that the object is visible in the image.
    pub half_extent: f64,
    /// Object height (metres), used by the depth-camera scene.
    pub height: f64,
}

/// Static description of the measurement environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Room {
    /// Room extent along x (metres).
    pub width: f64,
    /// Room extent along y (metres).
    pub depth: f64,
    /// Ceiling height (metres).
    pub height: f64,
    /// Transmitter antenna position.
    pub tx: Point3,
    /// Receiver antenna position.
    pub rx: Point3,
    /// Camera mount position (used by `vvd-vision`).
    pub camera: Point3,
    /// Point the camera looks at.
    pub camera_target: Point3,
    /// Amplitude reflection coefficient of the walls in `[0, 1]`.
    pub wall_reflectivity: f64,
    /// Static metallic scatterers.
    pub scatterers: Vec<Scatterer>,
    /// Rectangle `[x_min, x_max, y_min, y_max]` within which the human moves
    /// (the "movement area" of Fig. 2, chosen so the camera sees all of it).
    pub movement_area: [f64; 4],
}

impl Room {
    /// The default laboratory-like environment used throughout the
    /// reproduction: an 8 m × 6 m room, TX and RX 6 m apart at 1 m height,
    /// a surveillance camera high up on the south wall, four metallic
    /// scatterers along the walls and a movement area covering the space
    /// between TX and RX.
    pub fn laboratory() -> Self {
        Room {
            width: 8.0,
            depth: 6.0,
            height: 3.0,
            tx: Point3::new(1.0, 3.0, 1.0),
            rx: Point3::new(7.0, 3.0, 1.0),
            camera: Point3::new(4.0, 0.3, 2.6),
            camera_target: Point3::new(4.0, 3.5, 1.0),
            wall_reflectivity: 0.55,
            scatterers: vec![
                Scatterer {
                    position: Point3::new(2.0, 5.2, 0.8),
                    reflectivity: 0.50,
                    half_extent: 0.35,
                    height: 1.4,
                },
                Scatterer {
                    position: Point3::new(6.2, 5.0, 0.7),
                    reflectivity: 0.48,
                    half_extent: 0.3,
                    height: 1.2,
                },
                Scatterer {
                    position: Point3::new(4.2, 0.9, 0.6),
                    reflectivity: 0.42,
                    half_extent: 0.3,
                    height: 1.1,
                },
                Scatterer {
                    position: Point3::new(7.3, 1.2, 0.9),
                    reflectivity: 0.45,
                    half_extent: 0.25,
                    height: 1.5,
                },
            ],
            movement_area: [2.0, 6.0, 1.5, 4.8],
        }
    }

    /// A small office: 5 m × 4 m, TX and RX 3.4 m apart, two scatterers.
    /// The short LoS makes body shadowing events rarer but deeper (the
    /// blocker occupies a larger fraction of the first Fresnel zone).
    pub fn small_office() -> Self {
        Room {
            width: 5.0,
            depth: 4.0,
            height: 2.8,
            tx: Point3::new(0.8, 2.0, 1.0),
            rx: Point3::new(4.2, 2.0, 1.0),
            camera: Point3::new(2.5, 0.2, 2.4),
            camera_target: Point3::new(2.5, 2.4, 1.0),
            wall_reflectivity: 0.6,
            scatterers: vec![
                Scatterer {
                    position: Point3::new(1.4, 3.4, 0.7),
                    reflectivity: 0.5,
                    half_extent: 0.3,
                    height: 1.3,
                },
                Scatterer {
                    position: Point3::new(3.8, 0.8, 0.6),
                    reflectivity: 0.45,
                    half_extent: 0.25,
                    height: 1.1,
                },
            ],
            movement_area: [1.2, 3.8, 1.0, 3.2],
        }
    }

    /// A large hall: 14 m × 10 m, TX and RX 11 m apart, six scatterers.
    /// The long LoS crosses a big movement area, so several people can
    /// shadow different multipath components at once — the crowd scenarios
    /// default to this geometry.
    pub fn large_hall() -> Self {
        Room {
            width: 14.0,
            depth: 10.0,
            height: 4.5,
            tx: Point3::new(1.5, 5.0, 1.2),
            rx: Point3::new(12.5, 5.0, 1.2),
            camera: Point3::new(7.0, 0.4, 3.8),
            camera_target: Point3::new(7.0, 6.0, 1.0),
            wall_reflectivity: 0.5,
            scatterers: vec![
                Scatterer {
                    position: Point3::new(3.0, 8.8, 0.9),
                    reflectivity: 0.5,
                    half_extent: 0.4,
                    height: 1.6,
                },
                Scatterer {
                    position: Point3::new(11.0, 8.5, 0.8),
                    reflectivity: 0.48,
                    half_extent: 0.35,
                    height: 1.4,
                },
                Scatterer {
                    position: Point3::new(7.2, 1.4, 0.7),
                    reflectivity: 0.42,
                    half_extent: 0.35,
                    height: 1.2,
                },
                Scatterer {
                    position: Point3::new(12.8, 2.0, 1.0),
                    reflectivity: 0.45,
                    half_extent: 0.3,
                    height: 1.7,
                },
                Scatterer {
                    position: Point3::new(2.2, 1.6, 0.8),
                    reflectivity: 0.4,
                    half_extent: 0.3,
                    height: 1.3,
                },
                Scatterer {
                    position: Point3::new(9.5, 9.0, 0.9),
                    reflectivity: 0.44,
                    half_extent: 0.35,
                    height: 1.5,
                },
            ],
            movement_area: [2.5, 11.5, 2.2, 8.0],
        }
    }

    /// Line-of-sight distance between transmitter and receiver.
    pub fn los_distance(&self) -> f64 {
        self.tx.distance(self.rx)
    }

    /// Returns `true` when a point lies inside the room footprint.
    pub fn contains(&self, p: Point3) -> bool {
        (0.0..=self.width).contains(&p.x)
            && (0.0..=self.depth).contains(&p.y)
            && (0.0..=self.height).contains(&p.z)
    }

    /// Clamps a horizontal position into the movement area.
    pub fn clamp_to_movement_area(&self, x: f64, y: f64) -> (f64, f64) {
        let [x0, x1, y0, y1] = self.movement_area;
        (x.clamp(x0, x1), y.clamp(y0, y1))
    }

    /// Centre of the movement area.
    pub fn movement_area_center(&self) -> (f64, f64) {
        let [x0, x1, y0, y1] = self.movement_area;
        ((x0 + x1) / 2.0, (y0 + y1) / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_self_consistent(room: &Room) {
        assert!(room.contains(room.tx));
        assert!(room.contains(room.rx));
        assert!(room.contains(room.camera));
        for s in &room.scatterers {
            assert!(room.contains(s.position), "scatterer outside room");
            assert!((0.0..=1.0).contains(&s.reflectivity));
        }
        let [x0, x1, y0, y1] = room.movement_area;
        assert!(x0 < x1 && y0 < y1);
        assert!(x1 <= room.width && y1 <= room.depth);
    }

    #[test]
    fn laboratory_is_self_consistent() {
        let room = Room::laboratory();
        assert_self_consistent(&room);
        assert!((room.los_distance() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn preset_rooms_are_self_consistent_and_ordered_by_size() {
        let small = Room::small_office();
        let lab = Room::laboratory();
        let large = Room::large_hall();
        for room in [&small, &lab, &large] {
            assert_self_consistent(room);
        }
        assert!(small.los_distance() < lab.los_distance());
        assert!(lab.los_distance() < large.los_distance());
        assert!(small.width * small.depth < large.width * large.depth);
    }

    #[test]
    fn movement_area_clamping() {
        let room = Room::laboratory();
        let (x, y) = room.clamp_to_movement_area(0.0, 10.0);
        assert_eq!(x, room.movement_area[0]);
        assert_eq!(y, room.movement_area[3]);
        let (cx, cy) = room.movement_area_center();
        let (ccx, ccy) = room.clamp_to_movement_area(cx, cy);
        assert_eq!((cx, cy), (ccx, ccy));
    }

    #[test]
    fn contains_rejects_outside_points() {
        let room = Room::laboratory();
        assert!(!room.contains(Point3::new(-0.1, 1.0, 1.0)));
        assert!(!room.contains(Point3::new(1.0, 1.0, 5.0)));
    }
}
