//! Table 2 reproduction: the train/validation/test set combinations and the
//! number of packets in each test set.
use vvd_bench::{bench_config, print_header};
use vvd_testbed::{combinations_for, Campaign};

fn main() {
    print_header(
        "Table 2",
        "set combinations used for cross-validated evaluation",
    );
    let cfg = bench_config();
    let campaign = Campaign::generate(&cfg);
    let combos = combinations_for(cfg.n_sets, cfg.n_combinations);
    println!(
        "{:<14} {:<40} {:>10} {:>6} {:>18}",
        "combination", "training sets", "validation", "test", "packets in test"
    );
    for c in &combos {
        let training = c
            .training
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(",");
        println!(
            "{:<14} {:<40} {:>10} {:>6} {:>18}",
            c.number,
            training,
            c.validation,
            c.test,
            campaign.set(c.test).packets.len()
        );
    }
    println!("\n(the paper's full Table 2 is returned verbatim when the campaign has 15 sets — run with VVD_BENCH_PRESET=paper)");
}
