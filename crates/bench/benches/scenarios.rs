//! Scenario sweep: the paper's techniques beyond the paper's room.
//!
//! Runs a (scenario × estimator) grid through `run_scenario_sweep`: the
//! `"paper"` baseline next to a large-hall crowd, Rician fading with
//! Doppler memory, and an in-set SNR ramp — one campaign each, every
//! estimator spec streamed through every set combination.  The VVD rows
//! are the interesting ones: on `rician:…` the camera is blind to the
//! channel dynamics (the sweep flags those cells), so the CNN degrades to
//! predicting the mean channel while Kalman tracks the Doppler process —
//! the built-in ablation of the paper's central hypothesis.

use vvd_bench::{bench_config, print_header};
use vvd_testbed::report::format_box_row;
use vvd_testbed::run_scenario_sweep_report;
use vvd_testbed::EvalOptions;

/// The swept scenarios: the paper's baseline plus the three new families.
const SCENARIOS: [&str; 4] = [
    "paper",
    "room:large,humans=4,speed=1.5",
    "rician:k=6,doppler=30",
    "paper+snr-sweep:from=-10,to=0",
];

/// Estimator spec per family of interest (PER rows of the sweep table).
const ESTIMATORS: [&str; 6] = [
    "standard",
    "ground-truth",
    "preamble",
    "kalman:ar=20",
    "vvd:current",
    "fallback:preamble,vvd:current",
];

fn main() {
    print_header(
        "Scenario sweep",
        "PER of selected techniques across channel scenarios (paper room, crowd, Rician, SNR ramp)",
    );
    let mut cfg = bench_config();
    cfg.n_combinations = cfg.n_combinations.min(2);

    let report = run_scenario_sweep_report(&cfg, &SCENARIOS, &ESTIMATORS, &EvalOptions::default())
        .expect("built-in sweep specs are valid");

    for outcome in &report.outcomes {
        println!(
            "\nscenario: {}{}",
            outcome.scenario,
            if outcome.camera_blind {
                "   [camera-blind: VVD rows can only learn the mean channel]"
            } else {
                ""
            }
        );
        println!(
            "{:<28} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "estimator (PER)", "min", "q1", "median", "q3", "max", "mean"
        );
        for (label, stats) in &outcome.summary.per {
            println!("{}", format_box_row(label, stats));
        }
    }
    println!("\nmodel cache: {}", report.model_cache);
}
