//! Fig. 11 reproduction: PER of the VVD variants (a) and Kalman variants (b).
use vvd_bench::{bench_config, print_header};
use vvd_estimation::Technique;
use vvd_testbed::report::format_metric_table;
use vvd_testbed::{evaluate::run_evaluation, Campaign};

fn main() {
    print_header(
        "Figure 11",
        "PER of VVD prediction horizons and Kalman AR orders",
    );
    let mut cfg = bench_config();
    cfg.n_combinations = cfg.n_combinations.min(2);
    let campaign = Campaign::generate(&cfg);
    let techniques = [
        Technique::VvdFuture100ms,
        Technique::VvdFuture33ms,
        Technique::VvdCurrent,
        Technique::KalmanAr1,
        Technique::KalmanAr5,
        Technique::KalmanAr20,
    ];
    let (_, summary) = run_evaluation(&campaign, &techniques);
    println!(
        "{}",
        format_metric_table(
            "Fig. 11a — PER of VVD variants",
            &summary.per,
            &Technique::VVD_VARIANTS
        )
    );
    println!(
        "{}",
        format_metric_table(
            "Fig. 11b — PER of Kalman variants",
            &summary.per,
            &Technique::KALMAN_VARIANTS
        )
    );
}
