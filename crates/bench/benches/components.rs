//! Criterion micro-benchmarks of the building blocks: LS estimation, ZF
//! equalizer design and application, O-QPSK modulation/demodulation,
//! despreading, CNN inference and depth rendering.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vvd_channel::{CirConfig, CirSynthesizer, Human, Room};
use vvd_core::{build_vvd_cnn, VvdConfig};
use vvd_estimation::ls::perfect_estimate;
use vvd_estimation::zf::ZfEqualizer;
use vvd_nn::Tensor;
use vvd_phy::oqpsk::{demodulate_chips, modulate_chips};
use vvd_phy::{modulate_frame, PhyConfig, PsduBuilder};
use vvd_testbed::campaign::{build_camera, build_scene};
use vvd_vision::render_depth;

fn bench_phy(c: &mut Criterion) {
    let cfg = PhyConfig::short_packets(32);
    let frame = PsduBuilder::new(&cfg).build(1);
    let tx = modulate_frame(&cfg, &frame);

    c.bench_function("phy/modulate_32B_frame", |b| {
        b.iter(|| modulate_frame(&cfg, &frame))
    });
    c.bench_function("phy/oqpsk_chip_roundtrip_1symbol", |b| {
        let chips = vvd_phy::pn::chip_sequence_bipolar(7);
        b.iter(|| {
            let wave = modulate_chips(&chips, 4);
            demodulate_chips(wave.as_slice(), 32, 4)
        })
    });
    c.bench_function("phy/despread_psdu", |b| {
        let soft = tx.chips.clone();
        b.iter(|| vvd_phy::despread_symbols(&soft))
    });
}

fn bench_estimation(c: &mut Criterion) {
    let cfg = PhyConfig::short_packets(32);
    let tx = modulate_frame(&cfg, &PsduBuilder::new(&cfg).build(2));
    let synth = CirSynthesizer::new(Room::laboratory(), CirConfig::default());
    let mut rng = StdRng::seed_from_u64(1);
    let channel = synth.cir(&Human::at(4.0, 3.0), &mut rng);
    let received = channel.filter_full(tx.full_waveform());

    c.bench_function("estimation/perfect_ls_11taps", |b| {
        b.iter(|| perfect_estimate(&tx, received.as_slice(), 11).unwrap())
    });
    let estimate = perfect_estimate(&tx, received.as_slice(), 11).unwrap();
    c.bench_function("estimation/zf_design_21taps", |b| {
        b.iter(|| ZfEqualizer::design(&estimate, 21).unwrap())
    });
    let eq = ZfEqualizer::design(&estimate, 21).unwrap();
    c.bench_function("estimation/zf_equalize_packet", |b| {
        b.iter(|| eq.equalize(received.as_slice(), tx.full_waveform().len()))
    });
}

fn bench_channel_and_vision(c: &mut Criterion) {
    let room = Room::laboratory();
    let synth = CirSynthesizer::new(room.clone(), CirConfig::default());
    let mut rng = StdRng::seed_from_u64(3);
    c.bench_function("channel/cir_synthesis", |b| {
        b.iter(|| synth.cir(&Human::at(3.5, 2.5), &mut rng))
    });
    let camera = build_camera(&room);
    let scene = build_scene(&room, &[(4.0, 3.0)]);
    c.bench_function("vision/render_depth_108x72", |b| {
        b.iter(|| render_depth(&scene, &camera))
    });
}

fn bench_cnn(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let cfg = VvdConfig::quick();
    let model = build_vvd_cnn(50, 90, &cfg, &mut rng);
    let input = Tensor::zeros(&[1, 1, 50, 90]);
    c.bench_function("cnn/vvd_inference_quick_arch", |b| {
        b.iter(|| model.predict(&input))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_phy, bench_estimation, bench_channel_and_vision, bench_cnn
}
criterion_main!(benches);
