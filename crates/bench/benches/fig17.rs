//! Fig. 17 reproduction: aging effect on packet error rate.
use vvd_bench::{bench_config, print_header};
use vvd_estimation::Technique;
use vvd_testbed::aging::aging_sweep;
use vvd_testbed::{combinations_for, Campaign};

fn main() {
    print_header(
        "Figure 17",
        "aging effect on the PER of Preamble-Genie and VVD estimates",
    );
    let mut cfg = bench_config();
    cfg.kalman_warmup_packets = 0;
    let campaign = Campaign::generate(&cfg);
    let combo = &combinations_for(cfg.n_sets, 1)[0];
    let ages = [0.0, 0.1, 0.5, 1.0, 2.0, 5.0];
    let curves = aging_sweep(
        &campaign,
        combo,
        &ages,
        &[Technique::PreambleBasedGenie, Technique::VvdCurrent],
    );
    for curve in &curves {
        println!("\n{} — PER vs estimate age", curve.technique);
        println!("{:>10} {:>10}", "age [s]", "PER");
        for (age, per) in curve.ages_s.iter().zip(&curve.per) {
            println!("{:>10.1} {:>10.4}", age, per);
        }
    }
}
