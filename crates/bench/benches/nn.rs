//! Criterion micro-benchmarks of the vvd-nn compute core: batched forward
//! and backward passes through the Fig.-8 CNN, one full training epoch, and
//! the trained-model cache's hit-versus-miss cost.
//!
//! The forward/backward targets exercise the blocked-GEMM + batched-im2col
//! kernels on the quick-preset architecture; the cache targets show what a
//! content-addressed hit saves relative to retraining the same provenance.
//!
//! The binary also snapshots the GEMM autotuner: for one representative
//! shape class per orientation it sweeps every candidate tile
//! (`autotune::tune_now`), then times the default tiles against the
//! sweep's winner.  Set `VVD_BENCH_JSON=<path>` to write the comparison as
//! a JSON snapshot (`BENCH_nn.json` at the repo root is the committed
//! reference of the tiny preset).

use criterion::{criterion_group, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vvd_core::{build_vvd_cnn, ModelKey, VvdConfig, VvdDataset, VvdModel, VvdSample, VvdVariant};
use vvd_dsp::{Complex, FirFilter};
use vvd_estimation::ModelCache;
use vvd_nn::loss::mse;
use vvd_nn::{Nadam, Tensor, TrainConfig, Trainer};
use vvd_vision::DepthImage;

/// Deterministic synthetic batch of depth-image-shaped inputs.
fn batch(n: usize, h: usize, w: usize) -> Tensor {
    let data: Vec<f32> = (0..n * h * w)
        .map(|i| 0.5 + 0.4 * ((i as f32) * 0.013).sin())
        .collect();
    Tensor::from_vec(&[n, 1, h, w], data)
}

fn bench_forward_backward(c: &mut Criterion) {
    let cfg = VvdConfig::quick();
    let mut rng = StdRng::seed_from_u64(7);
    let mut model = build_vvd_cnn(50, 90, &cfg, &mut rng);
    let x = batch(16, 50, 90);

    c.bench_function("nn/forward_batch16_quick_arch", |b| {
        b.iter(|| model.infer(&x))
    });

    let y = model.forward(&x, true);
    let target = Tensor::zeros(y.shape());
    let (_, grad) = mse(&y, &target);
    c.bench_function("nn/backward_batch16_quick_arch", |b| {
        b.iter(|| {
            model.zero_grad();
            model.backward(&grad)
        })
    });
}

fn bench_train_epoch(c: &mut Criterion) {
    let mut cfg = VvdConfig::quick();
    cfg.conv_filters = 4;
    cfg.dense_units = 16;
    let mut rng = StdRng::seed_from_u64(11);
    let (h, w) = (26, 30);
    let train_x = batch(48, h, w);
    let target: Vec<Vec<f32>> = (0..48)
        .map(|i| {
            (0..cfg.output_units())
                .map(|j| ((i + j) as f32 * 0.1).cos())
                .collect()
        })
        .collect();
    let train_y = Tensor::stack(&target, &[cfg.output_units()]);
    let trainer = Trainer::new(TrainConfig {
        epochs: 1,
        batch_size: 16,
        shuffle_seed: 0,
        keep_best_validation_epoch: false,
    });

    c.bench_function("nn/train_epoch_48samples", |b| {
        b.iter(|| {
            let mut model = build_vvd_cnn(h, w, &cfg, &mut rng);
            let mut optimizer = Nadam::new(cfg.learning_rate, cfg.lr_decay);
            trainer.fit(
                &mut model,
                &mut optimizer,
                &train_x,
                &train_y,
                &Tensor::zeros(&[0, 1, h, w]),
                &Tensor::zeros(&[0, cfg.output_units()]),
            )
        })
    });
}

/// A tiny but complete VVD training job for the cache benchmarks.
fn tiny_job() -> (VvdConfig, VvdDataset) {
    let mut cfg = VvdConfig::quick();
    cfg.conv_filters = 2;
    cfg.dense_units = 8;
    cfg.channel_taps = 3;
    cfg.epochs = 1;
    let mut ds = VvdDataset::new();
    for k in 0..6 {
        let mut img = DepthImage::filled(30, 26, 0.8);
        img.set(4, (k * 3) % 20, 0.2);
        let mut taps = vec![Complex::ZERO; 3];
        taps[1] = Complex::new(1e-3 + 1e-5 * k as f64, -5e-4);
        ds.push(VvdSample {
            image: img,
            target_cir: FirFilter::from_taps(&taps),
        });
    }
    (cfg, ds)
}

fn bench_model_cache(c: &mut Criterion) {
    let (cfg, train) = tiny_job();
    let validation = VvdDataset::new();
    let key = ModelKey::for_training(VvdVariant::Current, &cfg, &train, &validation);

    // Miss: every iteration starts from an empty cache and must train.
    c.bench_function("nn/model_cache_miss_trains", |b| {
        b.iter(|| {
            let cache = ModelCache::new();
            let (model, report) = cache.get_or_train(key, || {
                VvdModel::train(VvdVariant::Current, &cfg, &train, &validation)
            });
            assert!(report.is_some());
            model
        })
    });

    // Hit: the provenance is resident; the lookup costs a key comparison
    // and an Arc clone.
    let warm = ModelCache::new();
    let _ = warm.get_or_train(key, || {
        VvdModel::train(VvdVariant::Current, &cfg, &train, &validation)
    });
    c.bench_function("nn/model_cache_hit", |b| {
        b.iter(|| {
            let (model, report) = warm.get_or_train(key, || unreachable!("warm cache"));
            assert!(report.is_none());
            model
        })
    });
}

/// One tuned-vs-default autotune comparison, ready for the JSON snapshot.
struct TunedShape {
    op: &'static str,
    m: usize,
    k: usize,
    n: usize,
    tiles: vvd_nn::kernels::autotune::GemmTiles,
    default_ms: f64,
    tuned_ms: f64,
}

/// Sweeps the autotuner on one representative shape per GEMM orientation
/// (sizes the serve path's batched forward/backward passes make hot) and
/// times the default tiles against each sweep winner.
fn autotune_snapshot() -> Vec<TunedShape> {
    use vvd_nn::kernels::autotune::{tune_now, GemmOp, DEFAULT_TILES};
    use vvd_nn::kernels::{gemm_at_tiled, gemm_bt_tiled, gemm_tiled};

    let shapes = [
        (GemmOp::Nn, "nn", 16usize, 512usize, 256usize),
        (GemmOp::At, "at", 256, 16, 512),
        (GemmOp::Bt, "bt", 16, 256, 512),
    ];
    let mut rows = Vec::new();
    for (op, name, m, k, n) in shapes {
        let (a_len, b_len) = match op {
            GemmOp::Nn => (m * k, k * n),
            GemmOp::At => (k * m, k * n),
            GemmOp::Bt => (m * k, n * k),
        };
        let a: Vec<f32> = (0..a_len).map(|i| ((i as f32) * 0.29).sin()).collect();
        let b: Vec<f32> = (0..b_len).map(|i| ((i as f32) * 0.41).cos()).collect();
        let tiles = tune_now(op, m, k, n);
        let time = |t| {
            let mut best = std::time::Duration::MAX;
            for _ in 0..3 {
                let start = std::time::Instant::now();
                let c = match op {
                    GemmOp::Nn => gemm_tiled(&a, &b, m, k, n, t),
                    GemmOp::At => gemm_at_tiled(&a, &b, m, k, n, t),
                    GemmOp::Bt => gemm_bt_tiled(&a, &b, m, k, n, t),
                };
                let elapsed = start.elapsed();
                std::hint::black_box(c);
                best = best.min(elapsed);
            }
            best.as_secs_f64() * 1e3
        };
        let default_ms = time(DEFAULT_TILES);
        let tuned_ms = time(tiles);
        println!(
            "autotune {name} {m}x{k}x{n}: default {default_ms:.3}ms, tuned {tuned_ms:.3}ms \
             (row_block {}, col_block {})",
            tiles.row_block, tiles.col_block,
        );
        rows.push(TunedShape {
            op: name,
            m,
            k,
            n,
            tiles,
            default_ms,
            tuned_ms,
        });
    }
    rows
}

fn write_snapshot(rows: &[TunedShape]) {
    let Ok(path) = std::env::var("VVD_BENCH_JSON") else {
        return;
    };
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"op\": {op:?},\n",
                    "      \"m\": {m},\n",
                    "      \"k\": {k},\n",
                    "      \"n\": {n},\n",
                    "      \"row_block\": {row},\n",
                    "      \"col_block\": {col},\n",
                    "      \"default_ms\": {default_ms:.3},\n",
                    "      \"tuned_ms\": {tuned_ms:.3}\n",
                    "    }}"
                ),
                op = r.op,
                m = r.m,
                k = r.k,
                n = r.n,
                row = r.tiles.row_block,
                col = r.tiles.col_block,
                default_ms = r.default_ms,
                tuned_ms = r.tuned_ms,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"nn\",\n",
            "  \"preset\": {preset:?},\n",
            "  \"autotune\": [\n{entries}\n  ]\n",
            "}}\n"
        ),
        preset = std::env::var("VVD_BENCH_PRESET").unwrap_or_else(|_| "tiny".to_string()),
        entries = entries.join(",\n"),
    );
    std::fs::write(&path, json).expect("snapshot path is writable");
    println!("wrote snapshot to {path}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_forward_backward, bench_train_epoch, bench_model_cache
}

fn main() {
    let rows = autotune_snapshot();
    write_snapshot(&rows);
    benches();
}
