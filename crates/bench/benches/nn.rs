//! Criterion micro-benchmarks of the vvd-nn compute core: batched forward
//! and backward passes through the Fig.-8 CNN, one full training epoch, and
//! the trained-model cache's hit-versus-miss cost.
//!
//! The forward/backward targets exercise the blocked-GEMM + batched-im2col
//! kernels on the quick-preset architecture; the cache targets show what a
//! content-addressed hit saves relative to retraining the same provenance.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vvd_core::{build_vvd_cnn, ModelKey, VvdConfig, VvdDataset, VvdModel, VvdSample, VvdVariant};
use vvd_dsp::{Complex, FirFilter};
use vvd_estimation::ModelCache;
use vvd_nn::loss::mse;
use vvd_nn::{Nadam, Tensor, TrainConfig, Trainer};
use vvd_vision::DepthImage;

/// Deterministic synthetic batch of depth-image-shaped inputs.
fn batch(n: usize, h: usize, w: usize) -> Tensor {
    let data: Vec<f32> = (0..n * h * w)
        .map(|i| 0.5 + 0.4 * ((i as f32) * 0.013).sin())
        .collect();
    Tensor::from_vec(&[n, 1, h, w], data)
}

fn bench_forward_backward(c: &mut Criterion) {
    let cfg = VvdConfig::quick();
    let mut rng = StdRng::seed_from_u64(7);
    let mut model = build_vvd_cnn(50, 90, &cfg, &mut rng);
    let x = batch(16, 50, 90);

    c.bench_function("nn/forward_batch16_quick_arch", |b| {
        b.iter(|| model.infer(&x))
    });

    let y = model.forward(&x, true);
    let target = Tensor::zeros(y.shape());
    let (_, grad) = mse(&y, &target);
    c.bench_function("nn/backward_batch16_quick_arch", |b| {
        b.iter(|| {
            model.zero_grad();
            model.backward(&grad)
        })
    });
}

fn bench_train_epoch(c: &mut Criterion) {
    let mut cfg = VvdConfig::quick();
    cfg.conv_filters = 4;
    cfg.dense_units = 16;
    let mut rng = StdRng::seed_from_u64(11);
    let (h, w) = (26, 30);
    let train_x = batch(48, h, w);
    let target: Vec<Vec<f32>> = (0..48)
        .map(|i| {
            (0..cfg.output_units())
                .map(|j| ((i + j) as f32 * 0.1).cos())
                .collect()
        })
        .collect();
    let train_y = Tensor::stack(&target, &[cfg.output_units()]);
    let trainer = Trainer::new(TrainConfig {
        epochs: 1,
        batch_size: 16,
        shuffle_seed: 0,
        keep_best_validation_epoch: false,
    });

    c.bench_function("nn/train_epoch_48samples", |b| {
        b.iter(|| {
            let mut model = build_vvd_cnn(h, w, &cfg, &mut rng);
            let mut optimizer = Nadam::new(cfg.learning_rate, cfg.lr_decay);
            trainer.fit(
                &mut model,
                &mut optimizer,
                &train_x,
                &train_y,
                &Tensor::zeros(&[0, 1, h, w]),
                &Tensor::zeros(&[0, cfg.output_units()]),
            )
        })
    });
}

/// A tiny but complete VVD training job for the cache benchmarks.
fn tiny_job() -> (VvdConfig, VvdDataset) {
    let mut cfg = VvdConfig::quick();
    cfg.conv_filters = 2;
    cfg.dense_units = 8;
    cfg.channel_taps = 3;
    cfg.epochs = 1;
    let mut ds = VvdDataset::new();
    for k in 0..6 {
        let mut img = DepthImage::filled(30, 26, 0.8);
        img.set(4, (k * 3) % 20, 0.2);
        let mut taps = vec![Complex::ZERO; 3];
        taps[1] = Complex::new(1e-3 + 1e-5 * k as f64, -5e-4);
        ds.push(VvdSample {
            image: img,
            target_cir: FirFilter::from_taps(&taps),
        });
    }
    (cfg, ds)
}

fn bench_model_cache(c: &mut Criterion) {
    let (cfg, train) = tiny_job();
    let validation = VvdDataset::new();
    let key = ModelKey::for_training(VvdVariant::Current, &cfg, &train, &validation);

    // Miss: every iteration starts from an empty cache and must train.
    c.bench_function("nn/model_cache_miss_trains", |b| {
        b.iter(|| {
            let cache = ModelCache::new();
            let (model, report) = cache.get_or_train(key, || {
                VvdModel::train(VvdVariant::Current, &cfg, &train, &validation)
            });
            assert!(report.is_some());
            model
        })
    });

    // Hit: the provenance is resident; the lookup costs a key comparison
    // and an Arc clone.
    let warm = ModelCache::new();
    let _ = warm.get_or_train(key, || {
        VvdModel::train(VvdVariant::Current, &cfg, &train, &validation)
    });
    c.bench_function("nn/model_cache_hit", |b| {
        b.iter(|| {
            let (model, report) = warm.get_or_train(key, || unreachable!("warm cache"));
            assert!(report.is_none());
            model
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_forward_backward, bench_train_epoch, bench_model_cache
}
criterion_main!(benches);
