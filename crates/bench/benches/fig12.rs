//! Fig. 12 reproduction: Packet Error Rate of all estimation techniques.
use vvd_bench::{bench_config, print_header};
use vvd_estimation::Technique;
use vvd_testbed::report::format_metric_table;
use vvd_testbed::{evaluate::run_evaluation, Campaign};

fn main() {
    print_header(
        "Figure 12",
        "Packet Error Rate of all estimation techniques (box statistics over set combinations)",
    );
    let mut cfg = bench_config();
    cfg.n_combinations = cfg.n_combinations.min(1);
    let campaign = Campaign::generate(&cfg);
    let (_, summary) = run_evaluation(&campaign, &Technique::FIGURE_12_ORDER);
    println!(
        "{}",
        format_metric_table(
            "Fig. 12 — Packet Error Rate",
            &summary.per,
            &Technique::FIGURE_12_ORDER
        )
    );
}
