//! Fig. 15 reproduction: packet-by-packet decoding success over time.
use vvd_bench::{bench_config, print_header};
use vvd_estimation::Technique;
use vvd_testbed::report::format_time_series;
use vvd_testbed::{combinations_for, evaluate_combination, Campaign};

fn main() {
    print_header(
        "Figure 15",
        "time versus decoding performance (burst errors around LoS blockage)",
    );
    let mut cfg = bench_config();
    cfg.n_combinations = 1;
    let campaign = Campaign::generate(&cfg);
    let combo = &combinations_for(cfg.n_sets, 1)[0];
    let result = evaluate_combination(
        &campaign,
        combo,
        &[Technique::GroundTruth, Technique::VvdCurrent],
    );
    let n = result.time_series.len().min(100);
    println!(
        "first {n} scored packets of test set {} ('#' success, '.' failure):\n",
        combo.test
    );
    println!("{}", format_time_series(&result.time_series[..n]));
}
