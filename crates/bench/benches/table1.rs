//! Table 1 reproduction: qualitative comparison of estimation techniques,
//! regenerated from measured properties of the simulation.
use vvd_bench::{bench_config, print_header};
use vvd_estimation::Technique;
use vvd_testbed::{evaluate::run_evaluation, Campaign};

fn main() {
    print_header(
        "Table 1",
        "reliable / scalable / dynamic comparison of estimation families",
    );
    let mut cfg = bench_config();
    cfg.n_combinations = 1;
    let campaign = Campaign::generate(&cfg);
    let techniques = [
        Technique::StandardDecoding,
        Technique::PreambleBasedGenie,
        Technique::KalmanAr20,
        Technique::VvdCurrent,
    ];
    let (_, summary) = run_evaluation(&campaign, &techniques);
    let per = |t: Technique| {
        summary
            .per
            .get(t.label())
            .map(|s| s.mean)
            .unwrap_or(f64::NAN)
    };
    println!(
        "{:<14} {:>10} {:>20} {:>10} {:>10}",
        "technique", "reliable", "(measured mean PER)", "scalable", "dynamic"
    );
    let rows = [
        ("Blind", Technique::StandardDecoding, "no", "yes", "yes"),
        ("Pilot", Technique::PreambleBasedGenie, "yes", "no", "yes"),
        ("Time-Series", Technique::KalmanAr20, "yes", "-", "no"),
        ("VVD", Technique::VvdCurrent, "yes", "yes", "yes"),
    ];
    for (family, technique, reliable, scalable, dynamic) in rows {
        println!(
            "{:<14} {:>10} {:>20.4} {:>10} {:>10}",
            family,
            reliable,
            per(technique),
            scalable,
            dynamic
        );
    }
    println!("\n'reliable' / 'scalable' / 'dynamic' follow the paper's qualitative Table 1;");
    println!("the measured mean PER column comes from this run and shows where reliability actually lands.");
}
