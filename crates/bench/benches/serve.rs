//! Multi-link serving: 64 concurrent sessions over a mixed-scenario
//! campaign, with cross-session batched VVD inference.
//!
//! Builds a 64-session workload (two scenarios, six estimator families,
//! heterogeneous arrival intervals) through the `vvd-serve` load
//! generator, runs it sharded with the tick pipeline on and off
//! (interleaved repetitions, medians reported) and once on a single
//! shard, and reports throughput, per-phase timings (DSP synthesis,
//! batched inference, pipeline overlap), batch occupancy (NN images per
//! forward call — the quantity the serving layer exists to maximise), and
//! the shared model cache's counters.  All runs must digest identically:
//! sharding, batch composition and pipelining are invisible in every
//! decoded result.
//!
//! A third run serves the same workload as a **cluster of worker
//! processes** (`vvd-net`, self-exec backend, `VVD_PROCS` sizes the
//! fleet) over a shared on-disk model cache, printing per-worker cache
//! counters and verifying that (a) the cluster digest matches the
//! in-process runs bit-exactly and (b) the cluster trains no more models
//! than a single process does — the shared-cache staggered-fit guarantee.
//!
//! Set `VVD_BENCH_JSON=<path>` to write the headline numbers as a JSON
//! snapshot (`BENCH_serve.json` at the repo root is the committed
//! reference of the tiny preset).

use std::collections::BTreeMap;
use vvd_bench::{bench_config, print_header};
use vvd_net::{serve_cluster_detailed, ClusterOptions, WorkerBackend};
use vvd_serve::{mixed_session_specs, serve, LoadGenerator, ServeOptions};

const SCENARIOS: [&str; 2] = ["paper", "rician:k=6,doppler=30"];

const ESTIMATORS: [&str; 6] = [
    "vvd:current",
    "fallback:preamble,vvd:current",
    "kalman:ar=5",
    "previous:100ms",
    "ground-truth",
    "preamble",
];

const SESSIONS: usize = 64;

/// Interleaved pipeline-on/off repetitions per mode; the reported wall
/// times are the per-mode medians.
const PIPELINE_REPS: usize = 3;

fn main() {
    // Under the self-exec cluster backend this process doubles as the
    // worker binary; worker invocations never return from this call.
    vvd_net::maybe_run_worker();
    print_header(
        "Serve campaign",
        "64 concurrent link sessions, sharded serving with batched VVD inference",
    );
    let mut cfg = bench_config();
    // One combination per session keeps the bench in minutes at every
    // preset; the serving layer itself is combination-agnostic.
    cfg.n_combinations = cfg.n_combinations.min(2);

    let specs = mixed_session_specs(SESSIONS, &SCENARIOS, &ESTIMATORS);
    let generator = LoadGenerator::new(cfg);

    println!(
        "\nbuilding workload: {} sessions over {} scenarios … ",
        SESSIONS,
        SCENARIOS.len()
    );
    let workload = generator.build(&specs).expect("bench specs are valid");
    let campaigns = workload.campaigns.clone();

    let shards = vvd_dsp::worker_budget();
    // Pipeline on/off A-B comparison: interleaved repetitions so ambient
    // load hits both modes equally, medians reported.  The digests must be
    // identical — the pipeline is pure scheduling — while the wall-clock
    // difference is informational (on a single hardware thread the overlap
    // window is empty and the two medians converge).
    let rebuild = |generator: &LoadGenerator| {
        let mut g = generator.clone();
        for (spec, campaign) in &campaigns {
            g = g.with_campaign(spec.clone(), campaign.clone());
        }
        g.build(&specs).expect("bench specs are valid")
    };
    let mut on_walls = Vec::new();
    let mut off_walls = Vec::new();
    let mut on_report = None;
    let mut off_digest = None;
    for _rep in 0..PIPELINE_REPS {
        for pipeline in [true, false] {
            let r = serve(rebuild(&generator), &ServeOptions { shards, pipeline });
            if pipeline {
                on_walls.push(r.wall);
                if on_report.is_none() {
                    on_report = Some(r);
                }
            } else {
                off_walls.push(r.wall);
                off_digest = Some(r.digest());
            }
        }
    }
    let report = on_report.expect("at least one pipeline-on repetition ran");
    assert_eq!(
        Some(report.digest()),
        off_digest,
        "the tick pipeline must be invisible in the served results"
    );
    on_walls.sort();
    off_walls.sort();
    let pipeline_on = on_walls[on_walls.len() / 2];
    let pipeline_off = off_walls[off_walls.len() / 2];
    println!(
        "sharded ({shards} shards, pipeline on): {} packets ({} scored) in {} ticks, {:.2?} wall ({:.0} pkt/s)",
        report.packets_streamed,
        report.packets_served,
        report.ticks,
        report.wall,
        report.packets_streamed as f64 / report.wall.as_secs_f64().max(1e-9),
    );
    println!(
        "pipeline medians over {PIPELINE_REPS} reps: on {pipeline_on:.2?}, off {pipeline_off:.2?}"
    );
    println!(
        "phase timings: dsp {:.1}ms, infer {:.1}ms, overlap {:.1}% of the infer+commit window",
        report.phases.dsp_ms(),
        report.phases.infer_ms(),
        report.phases.overlap_pct(),
    );
    println!(
        "batched inference: {} forward calls / {} images — occupancy {:.2}, max batch {}",
        report.batches.batch_calls,
        report.batches.images,
        report.batch_occupancy(),
        report.batches.max_batch,
    );
    println!("model cache: {}", report.model_cache);

    // Aggregate quality per estimator label.
    let mut per: BTreeMap<&str, (f64, usize)> = BTreeMap::new();
    for s in &report.sessions {
        let entry = per.entry(s.estimator.as_str()).or_insert((0.0, 0));
        entry.0 += s.per;
        entry.1 += 1;
    }
    println!(
        "\n{:<32} {:>10} {:>10}",
        "estimator", "sessions", "mean PER"
    );
    for (label, (sum, n)) in &per {
        println!("{:<32} {:>10} {:>10.3}", label, n, sum / *n as f64);
    }

    // The serving layer's raison d'être, enforced on every smoke run: the
    // engine issued fewer NN forward calls than it served packets.
    assert!(
        report.batch_occupancy() > 1.0,
        "batch occupancy {} must exceed 1",
        report.batch_occupancy()
    );
    assert!(report.batches.batch_calls < report.packets_served);

    // Single-shard rerun over the same campaigns: bit-identical outcomes,
    // whatever the speedup.
    let mut generator = generator;
    for (spec, campaign) in &campaigns {
        generator = generator.with_campaign(spec.clone(), campaign.clone());
    }
    let workload = generator.build(&specs).expect("bench specs are valid");
    let single = serve(
        workload,
        &ServeOptions {
            shards: 1,
            ..ServeOptions::default()
        },
    );
    println!(
        "\nsingle shard: {:.2?} wall — sharded speedup {:.2}x",
        single.wall,
        single.wall.as_secs_f64() / report.wall.as_secs_f64().max(1e-9),
    );
    assert_eq!(
        report.digest(),
        single.digest(),
        "shard count must be invisible in the served results"
    );
    println!(
        "digest: {:016x} (identical at 1 and {shards} shards)",
        report.digest()
    );

    // Cluster rerun: the same workload over worker *processes* with a
    // shared on-disk model cache.  `VVD_PROCS` sizes the fleet (default 2
    // here: one process would skip the wire entirely).
    let workers = vvd_dsp::proc_budget().max(2);
    let cache_dir =
        std::env::temp_dir().join(format!("vvd-serve-bench-cache-{}", std::process::id()));
    let cluster = serve_cluster_detailed(
        generator.config(),
        &specs,
        &ClusterOptions {
            workers,
            shards: vvd_dsp::per_process_worker_budget(workers),
            granularity: 64,
            cache_dir: Some(cache_dir.clone()),
            backend: WorkerBackend::SelfExec,
            checkpoints: false,
            pipeline: vvd_dsp::pipeline_enabled(),
            fault: None,
        },
    )
    .expect("cluster serve succeeds");
    let _ = std::fs::remove_dir_all(&cache_dir);

    println!(
        "\ncluster ({workers} worker processes, shared disk cache): {:.2?} wall",
        cluster.report.wall
    );
    println!(
        "{:<8} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "worker", "ticks", "trainings", "mem hits", "disk hits", "fwd calls"
    );
    for (w, stats) in cluster.per_worker.iter().enumerate() {
        println!(
            "{:<8} {:>8} {:>10} {:>10} {:>10} {:>10}",
            w,
            stats.ticks,
            stats.cache.misses,
            stats.cache.hits,
            stats.cache.disk_hits,
            stats.batches.batch_calls,
        );
    }
    println!("cluster-wide model cache: {}", cluster.report.model_cache);

    assert_eq!(
        cluster.report.digest(),
        report.digest(),
        "worker processes must be invisible in the served results"
    );
    // The shared disk cache with staggered fits: the cluster trains no
    // more models than the single process did.
    assert!(
        cluster.report.model_cache.misses <= report.model_cache.misses,
        "cluster trained {} models, single process trained {}",
        cluster.report.model_cache.misses,
        report.model_cache.misses,
    );
    // The spec mix pairs every VVD head with every scenario, so
    // same-provenance models span the worker partition: at least one
    // worker must have loaded a sibling's published model from disk.
    assert!(
        cluster.report.model_cache.disk_hits > 0,
        "the workload never exercised the shared disk cache"
    );
    println!(
        "digest: {:016x} (identical in-process and across {workers} processes)",
        cluster.report.digest()
    );

    if let Ok(path) = std::env::var("VVD_BENCH_JSON") {
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"serve\",\n",
                "  \"preset\": {preset:?},\n",
                "  \"sessions\": {sessions},\n",
                "  \"packets_streamed\": {streamed},\n",
                "  \"packets_served\": {served},\n",
                "  \"ticks\": {ticks},\n",
                "  \"forward_calls\": {calls},\n",
                "  \"images\": {images},\n",
                "  \"occupancy\": {occupancy:.4},\n",
                "  \"max_batch\": {max_batch},\n",
                "  \"trainings\": {trainings},\n",
                "  \"cache_hits\": {hits},\n",
                "  \"dsp_ms\": {dsp_ms:.2},\n",
                "  \"infer_ms\": {infer_ms:.2},\n",
                "  \"pipeline_overlap_pct\": {overlap_pct:.2},\n",
                "  \"pipeline_on_ms\": {on_ms:.2},\n",
                "  \"pipeline_off_ms\": {off_ms:.2},\n",
                "  \"cluster_workers\": {workers},\n",
                "  \"cluster_trainings\": {cluster_trainings},\n",
                "  \"cluster_disk_hits\": {cluster_disk_hits},\n",
                "  \"digest\": \"{digest:016x}\"\n",
                "}}\n"
            ),
            preset = std::env::var("VVD_BENCH_PRESET").unwrap_or_else(|_| "tiny".to_string()),
            sessions = SESSIONS,
            streamed = report.packets_streamed,
            served = report.packets_served,
            ticks = report.ticks,
            calls = report.batches.batch_calls,
            images = report.batches.images,
            occupancy = report.batch_occupancy(),
            max_batch = report.batches.max_batch,
            trainings = report.model_cache.misses,
            hits = report.model_cache.hits,
            dsp_ms = report.phases.dsp_ms(),
            infer_ms = report.phases.infer_ms(),
            overlap_pct = report.phases.overlap_pct(),
            on_ms = pipeline_on.as_secs_f64() * 1e3,
            off_ms = pipeline_off.as_secs_f64() * 1e3,
            workers = workers,
            cluster_trainings = cluster.report.model_cache.misses,
            cluster_disk_hits = cluster.report.model_cache.disk_hits,
            digest = report.digest(),
        );
        std::fs::write(&path, json).expect("snapshot path is writable");
        println!("wrote snapshot to {path}");
    }
}
