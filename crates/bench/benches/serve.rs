//! Multi-link serving: 64 concurrent sessions over a mixed-scenario
//! campaign, with cross-session batched VVD inference.
//!
//! Builds a 64-session workload (two scenarios, six estimator families,
//! heterogeneous arrival intervals) through the `vvd-serve` load
//! generator, runs it once sharded and once on a single shard, and
//! reports throughput, batch occupancy (NN images per forward call — the
//! quantity the serving layer exists to maximise), and the shared model
//! cache's counters.  The two runs must digest identically: sharding and
//! batch composition are invisible in every decoded result.

use std::collections::BTreeMap;
use vvd_bench::{bench_config, print_header};
use vvd_serve::{mixed_session_specs, serve, LoadGenerator, ServeOptions};

const SCENARIOS: [&str; 2] = ["paper", "rician:k=6,doppler=30"];

const ESTIMATORS: [&str; 6] = [
    "vvd:current",
    "fallback:preamble,vvd:current",
    "kalman:ar=5",
    "previous:100ms",
    "ground-truth",
    "preamble",
];

const SESSIONS: usize = 64;

fn main() {
    print_header(
        "Serve campaign",
        "64 concurrent link sessions, sharded serving with batched VVD inference",
    );
    let mut cfg = bench_config();
    // One combination per session keeps the bench in minutes at every
    // preset; the serving layer itself is combination-agnostic.
    cfg.n_combinations = cfg.n_combinations.min(2);

    let specs = mixed_session_specs(SESSIONS, &SCENARIOS, &ESTIMATORS);
    let generator = LoadGenerator::new(cfg);

    println!(
        "\nbuilding workload: {} sessions over {} scenarios … ",
        SESSIONS,
        SCENARIOS.len()
    );
    let workload = generator.build(&specs).expect("bench specs are valid");
    let campaigns = workload.campaigns.clone();

    let shards = vvd_dsp::worker_budget();
    let report = serve(workload, &ServeOptions { shards });
    println!(
        "sharded ({shards} shards): {} packets ({} scored) in {} ticks, {:.2?} wall ({:.0} pkt/s)",
        report.packets_streamed,
        report.packets_served,
        report.ticks,
        report.wall,
        report.packets_streamed as f64 / report.wall.as_secs_f64().max(1e-9),
    );
    println!(
        "batched inference: {} forward calls / {} images — occupancy {:.2}, max batch {}",
        report.batches.batch_calls,
        report.batches.images,
        report.batch_occupancy(),
        report.batches.max_batch,
    );
    println!("model cache: {}", report.model_cache);

    // Aggregate quality per estimator label.
    let mut per: BTreeMap<&str, (f64, usize)> = BTreeMap::new();
    for s in &report.sessions {
        let entry = per.entry(s.estimator.as_str()).or_insert((0.0, 0));
        entry.0 += s.per;
        entry.1 += 1;
    }
    println!(
        "\n{:<32} {:>10} {:>10}",
        "estimator", "sessions", "mean PER"
    );
    for (label, (sum, n)) in &per {
        println!("{:<32} {:>10} {:>10.3}", label, n, sum / *n as f64);
    }

    // The serving layer's raison d'être, enforced on every smoke run: the
    // engine issued fewer NN forward calls than it served packets.
    assert!(
        report.batch_occupancy() > 1.0,
        "batch occupancy {} must exceed 1",
        report.batch_occupancy()
    );
    assert!(report.batches.batch_calls < report.packets_served);

    // Single-shard rerun over the same campaigns: bit-identical outcomes,
    // whatever the speedup.
    let mut generator = generator;
    for (spec, campaign) in &campaigns {
        generator = generator.with_campaign(spec.clone(), campaign.clone());
    }
    let workload = generator.build(&specs).expect("bench specs are valid");
    let single = serve(workload, &ServeOptions { shards: 1 });
    println!(
        "\nsingle shard: {:.2?} wall — sharded speedup {:.2}x",
        single.wall,
        single.wall.as_secs_f64() / report.wall.as_secs_f64().max(1e-9),
    );
    assert_eq!(
        report.digest(),
        single.digest(),
        "shard count must be invisible in the served results"
    );
    println!(
        "digest: {:016x} (identical at 1 and {shards} shards)",
        report.digest()
    );
}
