//! Fig. 5 reproduction: channel tap coefficients of the hypothesis test.
use vvd_bench::{bench_config, print_header};
use vvd_testbed::hypothesis::run_hypothesis_test;

fn main() {
    print_header(
        "Figure 5",
        "tap amplitudes and phase-aligned similarity of the hypothesis-test placements",
    );
    let test = run_hypothesis_test(&bench_config());
    let (control, displaced, repeat) = test.tap_amplitudes();
    println!(
        "{:>4} {:>14} {:>14} {:>16}",
        "tap", "control", "hypothesis-1", "hypothesis-2"
    );
    for (i, ((c, d), r)) in control.iter().zip(&displaced).zip(&repeat).enumerate() {
        println!("{:>4} {:>14.4e} {:>14.4e} {:>16.4e}", i + 1, c, d, r);
    }
    println!("\nphase-aligned MSE vs control:");
    println!(
        "  hypothesis 2 (same placement, later)  : {:.4e}",
        test.control_vs_repeat_mse
    );
    println!(
        "  hypothesis 1 (displaced placement)    : {:.4e}",
        test.control_vs_displaced_mse
    );
    println!("  hypotheses hold: {}", test.hypotheses_hold());
}
