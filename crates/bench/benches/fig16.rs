//! Fig. 16 reproduction: aging effect on mean squared error.
use vvd_bench::{bench_config, print_header};
use vvd_estimation::Technique;
use vvd_testbed::aging::aging_sweep;
use vvd_testbed::{combinations_for, Campaign};

fn main() {
    print_header(
        "Figure 16",
        "aging effect on the MSE of Preamble-Genie and VVD estimates",
    );
    let mut cfg = bench_config();
    cfg.kalman_warmup_packets = 0;
    let campaign = Campaign::generate(&cfg);
    let combo = &combinations_for(cfg.n_sets, 1)[0];
    let ages = [0.0, 0.1, 0.5, 1.0, 2.0, 5.0];
    let curves = aging_sweep(
        &campaign,
        combo,
        &ages,
        &[Technique::PreambleBasedGenie, Technique::VvdCurrent],
    );
    for curve in &curves {
        println!("\n{} — MSE vs estimate age", curve.technique);
        println!("{:>10} {:>14}", "age [s]", "MSE");
        for (age, mse) in curve.ages_s.iter().zip(&curve.mse) {
            println!("{:>10.1} {:>14.4e}", age, mse);
        }
    }
}
