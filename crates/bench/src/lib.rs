//! Shared helpers for the figure/table reproduction benches.
//!
//! Every `harness = false` bench target regenerates one table or figure of
//! the paper.  The campaign scale is controlled by the `VVD_BENCH_PRESET`
//! environment variable:
//!
//! * `tiny` (default) — a few minutes for the full `cargo bench` sweep;
//!   shapes (orderings, rough factors) are preserved, absolute values are
//!   noisier,
//! * `quick` — the `EvalConfig::quick()` preset (tens of minutes),
//! * `paper` — the full campaign dimensions (hours; intended for dedicated
//!   runs of a single bench).

#![deny(missing_docs)]
#![deny(unsafe_code)]

use vvd_testbed::EvalConfig;

/// Resolves the benchmark evaluation configuration from
/// `VVD_BENCH_PRESET` (`tiny` | `quick` | `paper`), defaulting to `tiny`.
pub fn bench_config() -> EvalConfig {
    match std::env::var("VVD_BENCH_PRESET").as_deref() {
        Ok("paper") => EvalConfig::paper(),
        Ok("quick") => EvalConfig::quick(),
        _ => tiny_config(),
    }
}

/// The `tiny` preset: the smallest campaign that still exercises every code
/// path of an experiment (3 sets, 60 packets/set, 2 combinations, reduced
/// CNN).  Also used by the pipeline parity test ([`EvalConfig::tiny`]).
pub fn tiny_config() -> EvalConfig {
    EvalConfig::tiny()
}

/// Prints the standard bench header naming the experiment and the preset.
pub fn print_header(experiment: &str, description: &str) {
    let preset = std::env::var("VVD_BENCH_PRESET").unwrap_or_else(|_| "tiny".to_string());
    println!("================================================================");
    println!("{experiment}: {description}");
    println!("preset: {preset} (set VVD_BENCH_PRESET=quick|paper for larger runs)");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_config_is_smaller_than_quick() {
        let tiny = tiny_config();
        let quick = EvalConfig::quick();
        assert!(tiny.packets_per_set <= quick.packets_per_set);
        assert!(tiny.n_sets <= quick.n_sets);
    }
}
