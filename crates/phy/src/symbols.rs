//! Bit ⇄ symbol ⇄ chip mapping.
//!
//! The 802.15.4 bit-to-symbol mapping groups each octet into two 4-bit data
//! symbols, least-significant nibble first, and each symbol into 32 chips
//! (see [`crate::pn`]).  The helpers here convert whole octet strings to and
//! from symbol and chip streams; they are shared by the modulator, the
//! despreader and the chip-error-rate metric.

use crate::config::CHIPS_PER_SYMBOL;
use crate::pn::{best_matching_symbol, chip_sequence_bipolar};

/// Splits octets into 4-bit data symbols, low nibble first (per standard).
pub fn octets_to_symbols(octets: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(octets.len() * 2);
    for &o in octets {
        out.push(o & 0x0F);
        out.push(o >> 4);
    }
    out
}

/// Reassembles octets from a symbol stream (low nibble first).
///
/// A trailing unpaired symbol is dropped.
pub fn symbols_to_octets(symbols: &[u8]) -> Vec<u8> {
    symbols
        .chunks_exact(2)
        .map(|pair| (pair[0] & 0x0F) | ((pair[1] & 0x0F) << 4))
        .collect()
}

/// Spreads a symbol stream into antipodal chips (`±1.0`).
pub fn symbols_to_chips(symbols: &[u8]) -> Vec<f64> {
    let mut out = Vec::with_capacity(symbols.len() * CHIPS_PER_SYMBOL);
    for &s in symbols {
        out.extend_from_slice(&chip_sequence_bipolar(s));
    }
    out
}

/// Despreads a soft chip stream back into symbols by maximum-correlation
/// detection over each 32-chip block.  Trailing partial blocks are ignored.
pub fn chips_to_symbols(soft_chips: &[f64]) -> Vec<u8> {
    soft_chips
        .chunks_exact(CHIPS_PER_SYMBOL)
        .map(best_matching_symbol)
        .collect()
}

/// Counts differing chips between a reference (±1) chip stream and hard
/// decisions on a received soft chip stream.  Streams are compared up to the
/// shorter length.
pub fn count_chip_errors(reference: &[f64], received_soft: &[f64]) -> usize {
    reference
        .iter()
        .zip(received_soft.iter())
        .filter(|(r, s)| (r.signum() - s.signum()).abs() > f64::EPSILON)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octet_symbol_roundtrip() {
        let octets: Vec<u8> = (0u8..=255).collect();
        let symbols = octets_to_symbols(&octets);
        assert_eq!(symbols.len(), 512);
        assert_eq!(symbols_to_octets(&symbols), octets);
    }

    #[test]
    fn nibble_order_is_low_first() {
        let symbols = octets_to_symbols(&[0xA7]);
        assert_eq!(symbols, vec![0x7, 0xA]);
    }

    #[test]
    fn chip_roundtrip_without_noise() {
        let octets = b"hello 802.15.4";
        let symbols = octets_to_symbols(octets);
        let chips = symbols_to_chips(&symbols);
        assert_eq!(chips.len(), symbols.len() * 32);
        let back = chips_to_symbols(&chips);
        assert_eq!(back, symbols);
        assert_eq!(symbols_to_octets(&back), octets.to_vec());
    }

    #[test]
    fn chip_roundtrip_with_attenuation_and_errors() {
        let symbols = octets_to_symbols(&[0x3C, 0x5A, 0xF0]);
        let mut chips = symbols_to_chips(&symbols);
        // Attenuate and flip a few chips per symbol.
        for c in chips.iter_mut() {
            *c *= 0.05;
        }
        for idx in [3usize, 40, 41, 70, 100, 130, 150, 170] {
            chips[idx] = -chips[idx];
        }
        assert_eq!(chips_to_symbols(&chips), symbols);
    }

    #[test]
    fn chip_error_counting() {
        let reference = symbols_to_chips(&[0x1, 0x2]);
        let mut received = reference.clone();
        received[0] = -received[0];
        received[33] = -received[33];
        received[40] *= 0.3; // attenuation only, not an error
        assert_eq!(count_chip_errors(&reference, &received), 2);
    }

    #[test]
    fn partial_blocks_are_ignored() {
        let chips = vec![1.0; 40];
        assert_eq!(chips_to_symbols(&chips).len(), 1);
    }
}
