//! PHY configuration.
//!
//! The paper samples the 2 Mchip/s O-QPSK signal at 8 MHz (4 samples per
//! chip) and transmits 127-byte PSDUs.  All of those knobs are collected in
//! [`PhyConfig`] so tests and the quick evaluation preset can scale the
//! packet size down without touching any code path.

use serde::{Deserialize, Serialize};

/// Chip rate of the IEEE 802.15.4 2.4 GHz O-QPSK PHY in chips per second.
pub const CHIP_RATE_HZ: f64 = 2_000_000.0;

/// Number of chips that spread one 4-bit symbol.
pub const CHIPS_PER_SYMBOL: usize = 32;

/// Number of data bits carried by one spread symbol.
pub const BITS_PER_SYMBOL: usize = 4;

/// Preamble length in octets (all-zero octets per the standard).
pub const PREAMBLE_OCTETS: usize = 4;

/// Start-of-frame delimiter value.
pub const SFD_OCTET: u8 = 0xA7;

/// Maximum PSDU size in octets allowed by the standard.
pub const MAX_PSDU_OCTETS: usize = 127;

/// Static configuration of the simulated PHY.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhyConfig {
    /// Baseband samples per chip (the paper's 8 MHz capture of the 2 Mchip/s
    /// signal corresponds to 4).
    pub samples_per_chip: usize,
    /// PSDU length in octets, including the 2-octet FCS (paper: 127).
    pub psdu_octets: usize,
    /// Normalized-correlation threshold above which the preamble is declared
    /// detected.  The paper reports up to 50 % of packets failing preamble
    /// detection in deep fades; the threshold controls where that cliff sits.
    pub preamble_threshold: f64,
    /// Search window (in samples) around the nominal frame start inside
    /// which the synchroniser looks for the preamble correlation peak.
    pub sync_search_window: usize,
}

impl Default for PhyConfig {
    fn default() -> Self {
        PhyConfig {
            samples_per_chip: 4,
            psdu_octets: MAX_PSDU_OCTETS,
            preamble_threshold: 0.35,
            sync_search_window: 8,
        }
    }
}

impl PhyConfig {
    /// Configuration used by unit tests and the quick evaluation preset:
    /// same sampling structure, much shorter payload.
    pub fn short_packets(psdu_octets: usize) -> Self {
        PhyConfig {
            psdu_octets,
            ..Self::default()
        }
    }

    /// Baseband sample rate implied by the chip rate and samples-per-chip.
    pub fn sample_rate_hz(&self) -> f64 {
        CHIP_RATE_HZ * self.samples_per_chip as f64
    }

    /// Chip duration in seconds.
    pub fn chip_duration_s(&self) -> f64 {
        1.0 / CHIP_RATE_HZ
    }

    /// Number of synchronisation-header octets (preamble + SFD).
    pub fn shr_octets(&self) -> usize {
        PREAMBLE_OCTETS + 1
    }

    /// Number of spread symbols in the synchronisation header.
    pub fn shr_symbols(&self) -> usize {
        self.shr_octets() * 2
    }

    /// Number of spread symbols in the PHY header (one octet → 2 symbols).
    pub fn phr_symbols(&self) -> usize {
        2
    }

    /// Number of spread symbols carrying the PSDU.
    pub fn psdu_symbols(&self) -> usize {
        self.psdu_octets * 2
    }

    /// Total number of spread symbols in one PPDU.
    pub fn total_symbols(&self) -> usize {
        self.shr_symbols() + self.phr_symbols() + self.psdu_symbols()
    }

    /// Total number of chips in one PPDU.
    pub fn total_chips(&self) -> usize {
        self.total_symbols() * CHIPS_PER_SYMBOL
    }

    /// Number of data chips (PSDU only), e.g. 8128 for a 127-octet PSDU as
    /// quoted in the paper's chip-error-rate metric.
    pub fn psdu_chips(&self) -> usize {
        self.psdu_symbols() * CHIPS_PER_SYMBOL
    }

    /// Number of baseband samples occupied by the chips of one PPDU
    /// (excluding the trailing half-pulse of the offset Q rail).
    pub fn ppdu_samples(&self) -> usize {
        self.total_chips() * self.samples_per_chip
    }

    /// Number of samples occupied by the synchronisation header (preamble +
    /// SFD), i.e. the part usable for preamble-based channel estimation.
    pub fn shr_samples(&self) -> usize {
        self.shr_symbols() * CHIPS_PER_SYMBOL * self.samples_per_chip
    }

    /// Packet duration in seconds (chips only).
    pub fn packet_duration_s(&self) -> f64 {
        self.total_chips() as f64 * self.chip_duration_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_dimensions() {
        let cfg = PhyConfig::default();
        assert_eq!(cfg.sample_rate_hz(), 8_000_000.0);
        assert_eq!(cfg.psdu_octets, 127);
        // 127 bytes -> 254 symbols -> 8128 chips, as quoted in Sec. 5.5.2.
        assert_eq!(cfg.psdu_chips(), 8128);
    }

    #[test]
    fn symbol_accounting_adds_up() {
        let cfg = PhyConfig::short_packets(16);
        // SHR: 5 octets -> 10 symbols, PHR: 1 octet -> 2 symbols, PSDU: 32.
        assert_eq!(cfg.shr_symbols(), 10);
        assert_eq!(cfg.total_symbols(), 10 + 2 + 32);
        assert_eq!(cfg.total_chips(), cfg.total_symbols() * 32);
        assert_eq!(cfg.ppdu_samples(), cfg.total_chips() * 4);
    }

    #[test]
    fn durations_are_consistent() {
        let cfg = PhyConfig::default();
        let d = cfg.packet_duration_s();
        // 127-byte packet: (10 + 2 + 254) symbols * 32 chips * 0.5 us = 4.256 ms.
        assert!((d - 0.004256).abs() < 1e-9);
        assert!(cfg.shr_samples() < cfg.ppdu_samples());
    }
}
