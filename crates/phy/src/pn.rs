//! Pseudo-noise spreading sequences of the 2.4 GHz O-QPSK PHY.
//!
//! Each 4-bit data symbol is mapped onto one of 16 nearly-orthogonal 32-chip
//! sequences (IEEE 802.15.4-2003, Table 24).  Symbols 1–7 are the symbol-0
//! sequence cyclically right-shifted by 4 chips per step; symbols 8–15 are
//! the corresponding sequence with every odd-indexed chip inverted
//! (equivalent to conjugating the O-QPSK constellation).  The receiver
//! despreads by correlating the received soft chips with all 16 sequences
//! and picking the maximum — the error-correcting redundancy the paper's
//! chip-error-rate discussion (Sec. 6.2) relies on.

use crate::config::CHIPS_PER_SYMBOL;

/// Chip sequence for data symbol 0 (IEEE 802.15.4-2003 Table 24),
/// chip c0 first.
const SYMBOL0: [u8; CHIPS_PER_SYMBOL] = [
    1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0,
];

/// Returns the 32-chip sequence (as 0/1 values) for a 4-bit symbol.
///
/// # Panics
/// Panics if `symbol >= 16`.
pub fn chip_sequence(symbol: u8) -> [u8; CHIPS_PER_SYMBOL] {
    assert!(symbol < 16, "data symbols are 4 bits");
    let base_shift = (symbol as usize % 8) * 4;
    let mut chips = [0u8; CHIPS_PER_SYMBOL];
    for (i, chip) in chips.iter_mut().enumerate() {
        // Cyclic right shift by base_shift: output[i] = SYMBOL0[(i - shift) mod 32]
        let src = (i + CHIPS_PER_SYMBOL - base_shift) % CHIPS_PER_SYMBOL;
        *chip = SYMBOL0[src];
    }
    if symbol >= 8 {
        // Invert odd-indexed chips (the Q-rail chips).
        for (i, chip) in chips.iter_mut().enumerate() {
            if i % 2 == 1 {
                *chip ^= 1;
            }
        }
    }
    chips
}

/// Returns the chip sequence mapped to antipodal values (`0 → -1.0`,
/// `1 → +1.0`), the form used for modulation and correlation.
pub fn chip_sequence_bipolar(symbol: u8) -> [f64; CHIPS_PER_SYMBOL] {
    let chips = chip_sequence(symbol);
    let mut out = [0.0; CHIPS_PER_SYMBOL];
    for (o, c) in out.iter_mut().zip(chips.iter()) {
        *o = if *c == 1 { 1.0 } else { -1.0 };
    }
    out
}

/// All 16 bipolar sequences, indexed by symbol value.
pub fn all_sequences_bipolar() -> [[f64; CHIPS_PER_SYMBOL]; 16] {
    let mut out = [[0.0; CHIPS_PER_SYMBOL]; 16];
    for (s, row) in out.iter_mut().enumerate() {
        *row = chip_sequence_bipolar(s as u8);
    }
    out
}

/// Correlates a block of 32 soft chip values against every PN sequence and
/// returns the index of the best match (the despread symbol).
///
/// # Panics
/// Panics if `soft_chips.len() != 32`.
pub fn best_matching_symbol(soft_chips: &[f64]) -> u8 {
    assert_eq!(soft_chips.len(), CHIPS_PER_SYMBOL, "one symbol is 32 chips");
    let mut best_sym = 0u8;
    let mut best_corr = f64::NEG_INFINITY;
    for sym in 0..16u8 {
        let seq = chip_sequence_bipolar(sym);
        let corr: f64 = seq.iter().zip(soft_chips.iter()).map(|(a, b)| a * b).sum();
        if corr > best_corr {
            best_corr = corr;
            best_sym = sym;
        }
    }
    best_sym
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sequences_are_distinct() {
        for a in 0..16u8 {
            for b in (a + 1)..16u8 {
                assert_ne!(
                    chip_sequence(a),
                    chip_sequence(b),
                    "symbols {a} and {b} collide"
                );
            }
        }
    }

    #[test]
    fn sequences_are_balanced_enough() {
        // Each sequence has 16 ones and 16 zeros (a property of the standard's
        // quasi-orthogonal set, preserved by rotation and odd-chip inversion).
        for s in 0..16u8 {
            let ones: u32 = chip_sequence(s).iter().map(|&c| c as u32).sum();
            assert_eq!(ones, 16, "symbol {s} is unbalanced");
        }
    }

    #[test]
    fn cross_correlation_is_low() {
        // Normalised cross-correlation between different sequences must be
        // well below the autocorrelation peak of 32.  For the standard set the
        // worst case is 8/32 within the same "half" of the alphabet; the
        // conjugated half can reach slightly higher against its own base but
        // remains far from 32.
        for a in 0..16u8 {
            let sa = chip_sequence_bipolar(a);
            for b in 0..16u8 {
                if a == b {
                    continue;
                }
                let sb = chip_sequence_bipolar(b);
                let corr: f64 = sa.iter().zip(sb.iter()).map(|(x, y)| x * y).sum();
                assert!(
                    corr.abs() <= 20.0,
                    "symbols {a},{b} correlate too strongly: {corr}"
                );
            }
        }
    }

    #[test]
    fn autocorrelation_is_maximal() {
        for s in 0..16u8 {
            let seq = chip_sequence_bipolar(s);
            let corr: f64 = seq.iter().map(|x| x * x).sum();
            assert_eq!(corr, 32.0);
        }
    }

    #[test]
    fn despreading_clean_chips_recovers_symbol() {
        for s in 0..16u8 {
            let chips = chip_sequence_bipolar(s);
            assert_eq!(best_matching_symbol(&chips), s);
        }
    }

    #[test]
    fn despreading_tolerates_chip_errors() {
        // Flip 6 of 32 chips: correlation margin should still pick the right
        // symbol for the standard sequence set.
        for s in 0..16u8 {
            let mut chips = chip_sequence_bipolar(s);
            for k in [1usize, 7, 13, 19, 23, 29] {
                chips[k] = -chips[k];
            }
            assert_eq!(best_matching_symbol(&chips), s, "symbol {s} misdecoded");
        }
    }

    #[test]
    fn symbol0_matches_standard_table() {
        let expected: [u8; 32] = [
            1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1,
            1, 1, 0,
        ];
        assert_eq!(chip_sequence(0), expected);
    }

    #[test]
    fn rotation_property_of_symbols_1_to_7() {
        // Symbol k (k < 8) is symbol 0 cyclically right-shifted by 4k chips.
        for k in 1..8u8 {
            let rotated = chip_sequence(k);
            let base = chip_sequence(0);
            for i in 0..32 {
                assert_eq!(rotated[i], base[(i + 32 - 4 * k as usize) % 32]);
            }
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_symbol_panics() {
        let _ = chip_sequence(16);
    }
}
