//! Despreading: soft chips → symbols → octets, plus chip/symbol error
//! accounting.
//!
//! After equalization the receiver demodulates soft chip values and
//! correlates every 32-chip block against the 16 PN sequences (maximum-
//! likelihood detection over the quasi-orthogonal alphabet).  The paper's
//! two error metrics hang off this step: the chip error rate is computed on
//! the hard chip decisions *before* despreading, and the packet error rate
//! on the CRC after despreading.

use crate::config::CHIPS_PER_SYMBOL;
use crate::symbols::{chips_to_symbols, count_chip_errors, symbols_to_octets};

/// Soft chip decisions for one received PPDU together with the reference
/// chip stream of the transmitted PPDU.
#[derive(Debug, Clone)]
pub struct ChipDecisions {
    /// Soft chip values recovered by the matched filter (one per chip).
    pub soft_chips: Vec<f64>,
    /// The transmitted antipodal chip stream (reference for error counting).
    pub reference_chips: Vec<f64>,
    /// Index of the first PSDU chip within the streams.
    pub psdu_chip_offset: usize,
}

impl ChipDecisions {
    /// Despreads the PSDU portion into symbols.
    pub fn psdu_symbols(&self) -> Vec<u8> {
        despread_symbols(&self.soft_chips[self.psdu_chip_offset.min(self.soft_chips.len())..])
    }

    /// Despreads the PSDU portion into octets.
    pub fn psdu_octets(&self) -> Vec<u8> {
        symbols_to_octets(&self.psdu_symbols())
    }

    /// Number of chip errors over the PSDU chips (hard decisions), the
    /// numerator of the paper's CER metric.
    pub fn psdu_chip_errors(&self) -> usize {
        let off = self.psdu_chip_offset;
        if off >= self.soft_chips.len() || off >= self.reference_chips.len() {
            return self.reference_chips.len().saturating_sub(off);
        }
        count_chip_errors(&self.reference_chips[off..], &self.soft_chips[off..])
    }

    /// Number of PSDU chips considered by the CER metric.
    pub fn psdu_chip_count(&self) -> usize {
        self.reference_chips
            .len()
            .saturating_sub(self.psdu_chip_offset)
    }

    /// Chip error rate over the PSDU.
    pub fn chip_error_rate(&self) -> f64 {
        let n = self.psdu_chip_count();
        if n == 0 {
            0.0
        } else {
            self.psdu_chip_errors() as f64 / n as f64
        }
    }

    /// Number of despread PSDU symbols that differ from the reference
    /// symbols.
    pub fn psdu_symbol_errors(&self, reference_symbols: &[u8]) -> usize {
        let decoded = self.psdu_symbols();
        reference_symbols
            .iter()
            .zip(decoded.iter())
            .filter(|(a, b)| a != b)
            .count()
            + reference_symbols.len().saturating_sub(decoded.len())
    }
}

/// Despreads a soft chip stream into 4-bit symbols (whole 32-chip blocks
/// only).
pub fn despread_symbols(soft_chips: &[f64]) -> Vec<u8> {
    chips_to_symbols(soft_chips)
}

/// Convenience: the number of whole symbols available in a chip stream.
pub fn symbols_available(n_chips: usize) -> usize {
    n_chips / CHIPS_PER_SYMBOL
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::symbols_to_chips;

    fn decisions_for(symbols: &[u8], psdu_offset_symbols: usize) -> ChipDecisions {
        let chips = symbols_to_chips(symbols);
        ChipDecisions {
            soft_chips: chips.clone(),
            reference_chips: chips,
            psdu_chip_offset: psdu_offset_symbols * CHIPS_PER_SYMBOL,
        }
    }

    #[test]
    fn clean_decisions_have_zero_errors() {
        let symbols = vec![0x1, 0x2, 0x3, 0x4, 0x5, 0x6];
        let d = decisions_for(&symbols, 2);
        assert_eq!(d.psdu_chip_errors(), 0);
        assert_eq!(d.chip_error_rate(), 0.0);
        assert_eq!(d.psdu_symbols(), &symbols[2..]);
        assert_eq!(d.psdu_symbol_errors(&symbols[2..]), 0);
    }

    #[test]
    fn chip_errors_are_counted_only_over_psdu() {
        let symbols = vec![0x0, 0xF, 0xA, 0x5];
        let mut d = decisions_for(&symbols, 1);
        // Corrupt chips in the header (before the PSDU offset) and two in the
        // PSDU.
        d.soft_chips[0] = -d.soft_chips[0];
        d.soft_chips[40] = -d.soft_chips[40];
        d.soft_chips[41] = -d.soft_chips[41];
        assert_eq!(d.psdu_chip_errors(), 2);
        assert_eq!(d.psdu_chip_count(), 3 * 32);
    }

    #[test]
    fn moderate_chip_errors_do_not_cause_symbol_errors() {
        let symbols = vec![0x3, 0x7, 0xC];
        let mut d = decisions_for(&symbols, 0);
        for idx in [1usize, 9, 17, 25, 33, 41, 49, 57, 65, 73, 81, 89] {
            d.soft_chips[idx] = -d.soft_chips[idx];
        }
        assert!(d.psdu_chip_errors() > 0);
        assert_eq!(
            d.psdu_symbol_errors(&symbols),
            0,
            "PN redundancy should absorb 4 flips/symbol"
        );
    }

    #[test]
    fn truncated_soft_chips_count_as_errors() {
        let symbols = vec![0x1, 0x2, 0x3];
        let chips = symbols_to_chips(&symbols);
        let d = ChipDecisions {
            soft_chips: chips[..32].to_vec(),
            reference_chips: chips,
            psdu_chip_offset: 64,
        };
        assert_eq!(d.psdu_chip_errors(), 32);
    }

    #[test]
    fn symbols_available_rounds_down() {
        assert_eq!(symbols_available(0), 0);
        assert_eq!(symbols_available(63), 1);
        assert_eq!(symbols_available(64), 2);
    }
}
