//! # vvd-phy
//!
//! A from-scratch IEEE 802.15.4 (2.4 GHz O-QPSK DSSS) physical layer used by
//! the Veni Vidi Dixi reproduction.
//!
//! The paper's measurement setup transmits 127-byte 802.15.4 packets every
//! 100 ms from a Zolertia RE-Mote and captures the raw baseband waveform with
//! a USRP sniffer.  This crate rebuilds the relevant parts of that PHY in
//! sample-domain simulation:
//!
//! * the 16 × 32-chip pseudo-noise spreading sequences and the
//!   4-bit-symbol → chip mapping ([`pn`], [`symbols`]),
//! * PPDU framing — preamble, SFD, PHR and a CRC-16 FCS over the payload
//!   ([`frame`], [`crc`]),
//! * half-sine-shaped Offset-QPSK modulation at a configurable integer
//!   number of samples per chip ([`oqpsk`], [`modulator`]),
//! * the receiver side: preamble detection, frame synchronisation, mean
//!   phase-offset correction, matched-filter chip demodulation and PN-
//!   correlation despreading back to bits ([`receiver`], [`despread`]).
//!
//! The crate knows nothing about propagation — the channel simulator
//! (`vvd-channel`) distorts the waveform produced here, and the estimation
//! crate (`vvd-estimation`) equalizes it before it is handed back to the
//! receiver for despreading.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod crc;
pub mod despread;
pub mod frame;
pub mod modulator;
pub mod oqpsk;
pub mod pn;
pub mod receiver;
pub mod symbols;

pub use config::PhyConfig;
pub use despread::{despread_symbols, ChipDecisions};
pub use frame::{Frame, PsduBuilder};
pub use modulator::{modulate_frame, ModulatedFrame};
pub use receiver::{DecodeOutcome, Receiver, SyncResult};
