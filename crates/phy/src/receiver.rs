//! Receiver-side primitives: synchronisation, preamble detection, mean
//! phase-offset correction and packet decoding.
//!
//! Every estimation technique in the paper shares the same receiver front
//! end ("frequency offset correction and packet frame synchronization are
//! performed in all techniques"); they differ only in how the channel
//! estimate fed to the zero-forcing equalizer is obtained.  [`Receiver`]
//! therefore exposes:
//!
//! * [`Receiver::synchronize`] — correlation-based frame sync against the
//!   known synchronisation header, returning the detection decision whose
//!   failures drive the preamble-based technique's losses,
//! * [`Receiver::estimate_mean_phase`] — the Eq.-8 style phase-offset
//!   estimate from the known SHR, used both by standard decoding and to
//!   align blind estimates with the received block,
//! * [`Receiver::decode_aligned`] — matched-filter demodulation, PN
//!   despreading and FCS check of an (equalized) waveform.

use crate::config::PhyConfig;
use crate::crc::check_fcs;
use crate::despread::ChipDecisions;
use crate::modulator::ModulatedFrame;
use crate::oqpsk::demodulate_chips;
use crate::symbols::symbols_to_octets;
use vvd_dsp::correlation::normalized_correlation_at;
use vvd_dsp::{CVec, Complex};

/// Result of frame synchronisation / preamble detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncResult {
    /// Sample offset (relative to the start of the search window) at which
    /// the preamble correlation peaks.
    pub offset: usize,
    /// Peak normalized correlation magnitude in `[0, 1]`.
    pub correlation: f64,
    /// Whether the correlation exceeded the detection threshold — packets
    /// whose preamble is not detected are lost for preamble-based
    /// estimation (Sec. 5.5).
    pub preamble_detected: bool,
}

/// Outcome of decoding one packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeOutcome {
    /// `true` when the FCS over the despread PSDU matches.
    pub crc_ok: bool,
    /// Number of erroneous PSDU chips (hard decisions).
    pub chip_errors: usize,
    /// Total number of PSDU chips considered.
    pub chip_count: usize,
    /// Number of erroneous despread PSDU symbols.
    pub symbol_errors: usize,
}

impl DecodeOutcome {
    /// Chip error rate of this packet.
    pub fn chip_error_rate(&self) -> f64 {
        if self.chip_count == 0 {
            0.0
        } else {
            self.chip_errors as f64 / self.chip_count as f64
        }
    }

    /// `true` if this packet counts as a packet error.
    pub fn is_packet_error(&self) -> bool {
        !self.crc_ok
    }

    /// An outcome representing a packet that was lost outright (e.g. the
    /// preamble was never detected): every chip and symbol is counted as
    /// erroneous, mirroring how the paper treats undetected packets.
    pub fn lost(chip_count: usize, symbol_count: usize) -> Self {
        DecodeOutcome {
            crc_ok: false,
            chip_errors: chip_count,
            chip_count,
            symbol_errors: symbol_count,
        }
    }
}

/// Receiver front end shared by all estimation techniques.
#[derive(Debug, Clone, Copy)]
pub struct Receiver {
    cfg: PhyConfig,
}

impl Receiver {
    /// Creates a receiver for the given PHY configuration.
    pub fn new(cfg: PhyConfig) -> Self {
        Receiver { cfg }
    }

    /// The PHY configuration this receiver was built with.
    pub fn config(&self) -> &PhyConfig {
        &self.cfg
    }

    /// Searches for the synchronisation header of `tx` in `received` within
    /// the configured search window around the nominal start (index 0) and
    /// performs the preamble detection threshold test.
    pub fn synchronize(&self, received: &[Complex], tx: &ModulatedFrame) -> SyncResult {
        let reference = tx.shr_waveform();
        let window = self.cfg.sync_search_window;
        let mut best_offset = 0usize;
        let mut best_corr = 0.0f64;
        for offset in 0..=window {
            let corr = normalized_correlation_at(received, reference, offset);
            if corr > best_corr {
                best_corr = corr;
                best_offset = offset;
            }
        }
        SyncResult {
            offset: best_offset,
            correlation: best_corr,
            preamble_detected: best_corr >= self.cfg.preamble_threshold,
        }
    }

    /// Estimates the mean phase rotation of the received synchronisation
    /// header relative to the clean reference (crystal offset plus the mean
    /// channel phase), following the correlation method of Eq. 8.
    pub fn estimate_mean_phase(&self, received: &[Complex], tx: &ModulatedFrame) -> f64 {
        let reference = tx.shr_waveform();
        let n = reference.len().min(received.len());
        let mut acc = Complex::ZERO;
        for i in 0..n {
            acc += received[i] * reference[i].conj();
        }
        acc.arg()
    }

    /// Demodulates soft chips from a waveform aligned to the PPDU start.
    pub fn demodulate(&self, waveform: &[Complex], n_chips: usize) -> Vec<f64> {
        demodulate_chips(waveform, n_chips, self.cfg.samples_per_chip)
    }

    /// Decodes an already equalized-and-aligned waveform of the packet `tx`:
    /// matched-filter chip demodulation, PN despreading, FCS check and error
    /// accounting against the known transmitted content.
    pub fn decode_aligned(&self, waveform: &[Complex], tx: &ModulatedFrame) -> DecodeOutcome {
        let n_chips = tx.n_chips();
        let soft = self.demodulate(waveform, n_chips);
        let decisions = ChipDecisions {
            soft_chips: soft,
            reference_chips: tx.chips.clone(),
            psdu_chip_offset: tx.psdu_chip_offset(),
        };
        let chip_errors = decisions.psdu_chip_errors();
        let chip_count = decisions.psdu_chip_count();
        let decoded_symbols = decisions.psdu_symbols();
        let reference_symbols = tx.frame.psdu_symbols();
        let symbol_errors = decisions.psdu_symbol_errors(&reference_symbols);
        let octets = symbols_to_octets(&decoded_symbols);
        let crc_ok = octets.len() == tx.frame.psdu.len() && check_fcs(&octets);
        DecodeOutcome {
            crc_ok,
            chip_errors,
            chip_count,
            symbol_errors,
        }
    }

    /// "Standard decoding" as defined in Sec. 5.1: no channel estimation and
    /// no equalization, only frame synchronisation and mean phase-offset
    /// correction before demodulation.
    pub fn decode_standard(&self, received: &[Complex], tx: &ModulatedFrame) -> DecodeOutcome {
        let theta = self.estimate_mean_phase(received, tx);
        let corrected = CVec(received.to_vec()).rotate(Complex::cis(-theta));
        self.decode_aligned(corrected.as_slice(), tx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::PsduBuilder;
    use crate::modulator::modulate_frame;

    fn test_tx(psdu: usize) -> (PhyConfig, ModulatedFrame) {
        let cfg = PhyConfig::short_packets(psdu);
        let frame = PsduBuilder::new(&cfg).build(9);
        let tx = modulate_frame(&cfg, &frame);
        (cfg, tx)
    }

    #[test]
    fn clean_waveform_decodes_without_errors() {
        let (cfg, tx) = test_tx(16);
        let rx = Receiver::new(cfg);
        let out = rx.decode_aligned(tx.full_waveform(), &tx);
        assert!(out.crc_ok);
        assert_eq!(out.chip_errors, 0);
        assert_eq!(out.symbol_errors, 0);
        assert_eq!(out.chip_count, cfg.psdu_chips());
        assert!(!out.is_packet_error());
    }

    #[test]
    fn synchronization_finds_clean_preamble() {
        let (cfg, tx) = test_tx(8);
        let rx = Receiver::new(cfg);
        let sync = rx.synchronize(tx.full_waveform(), &tx);
        assert_eq!(sync.offset, 0);
        assert!(sync.preamble_detected);
        assert!(sync.correlation > 0.99);
    }

    #[test]
    fn synchronization_fails_on_noise_only() {
        let (cfg, tx) = test_tx(8);
        let rx = Receiver::new(cfg);
        // A deterministic pseudo-noise signal uncorrelated with the preamble.
        let noise: Vec<Complex> = (0..tx.waveform.len())
            .map(|i| {
                let x = (i as f64 * 12.9898).sin() * 43758.5453;
                let y = (i as f64 * 78.233).sin() * 12543.1234;
                Complex::new(x.fract() - 0.5, y.fract() - 0.5)
            })
            .collect();
        let sync = rx.synchronize(&noise, &tx);
        assert!(!sync.preamble_detected, "correlation {}", sync.correlation);
    }

    #[test]
    fn phase_rotation_is_estimated_and_corrected() {
        let (cfg, tx) = test_tx(8);
        let rx = Receiver::new(cfg);
        for &theta in &[-2.0f64, -0.5, 0.4, 1.7] {
            let rotated = tx.waveform.rotate(Complex::cis(theta));
            let est = rx.estimate_mean_phase(rotated.as_slice(), &tx);
            assert!((est - theta).abs() < 1e-6, "theta={theta} est={est}");
            let out = rx.decode_standard(rotated.as_slice(), &tx);
            assert!(out.crc_ok);
            assert_eq!(out.chip_errors, 0);
        }
    }

    #[test]
    fn uncorrected_quarter_turn_breaks_decoding_but_standard_decoding_fixes_it() {
        let (cfg, tx) = test_tx(16);
        let rx = Receiver::new(cfg);
        let rotated = tx
            .waveform
            .rotate(Complex::cis(std::f64::consts::FRAC_PI_2));
        // Raw decode (no phase correction): I/Q rails are swapped, chips break.
        let raw = rx.decode_aligned(rotated.as_slice(), &tx);
        assert!(raw.chip_errors > 0);
        // Standard decoding corrects the mean phase first.
        let fixed = rx.decode_standard(rotated.as_slice(), &tx);
        assert!(fixed.crc_ok);
    }

    #[test]
    fn attenuation_alone_does_not_cause_errors() {
        let (cfg, tx) = test_tx(8);
        let rx = Receiver::new(cfg);
        let weak = tx.waveform.scale(1e-3);
        let out = rx.decode_aligned(weak.as_slice(), &tx);
        assert!(out.crc_ok);
        assert_eq!(out.chip_errors, 0);
    }

    #[test]
    fn lost_outcome_counts_everything_as_error() {
        let lost = DecodeOutcome::lost(8128, 254);
        assert!(lost.is_packet_error());
        assert_eq!(lost.chip_error_rate(), 1.0);
        assert_eq!(lost.symbol_errors, 254);
    }
}
