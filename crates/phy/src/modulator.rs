//! Transmit chain: frame → symbols → chips → baseband waveform.
//!
//! [`ModulatedFrame`] bundles everything the rest of the pipeline needs to
//! know about one transmission: the frame content, the spread chip stream,
//! the clean baseband waveform and the reference segments used by the
//! channel estimators (the whole waveform for the "perfect"/ground-truth
//! estimate, the synchronisation header for the preamble-based estimate).

use crate::config::PhyConfig;
use crate::frame::Frame;
use crate::oqpsk::modulate_chips;
use crate::symbols::symbols_to_chips;
use vvd_dsp::{CVec, Complex};

/// A frame together with its spread chips and clean baseband waveform.
#[derive(Debug, Clone)]
pub struct ModulatedFrame {
    /// The PHY configuration used for modulation.
    pub config: PhyConfig,
    /// The transmitted frame.
    pub frame: Frame,
    /// Antipodal (±1) chip stream of the whole PPDU.
    pub chips: Vec<f64>,
    /// Clean complex baseband waveform of the whole PPDU.
    pub waveform: CVec,
}

/// Modulates a frame into its baseband waveform under the given PHY
/// configuration.
pub fn modulate_frame(cfg: &PhyConfig, frame: &Frame) -> ModulatedFrame {
    let symbols = frame.ppdu_symbols();
    let chips = symbols_to_chips(&symbols);
    let waveform = modulate_chips(&chips, cfg.samples_per_chip);
    ModulatedFrame {
        config: *cfg,
        frame: frame.clone(),
        chips,
        waveform,
    }
}

impl ModulatedFrame {
    /// The clean waveform samples of the synchronisation header (preamble +
    /// SFD) — the part of the signal a real receiver knows a priori and the
    /// reference for preamble-based channel estimation.
    pub fn shr_waveform(&self) -> &[Complex] {
        let n = self.config.shr_samples().min(self.waveform.len());
        &self.waveform.as_slice()[..n]
    }

    /// The full clean waveform — the reference for the paper's "perfect"
    /// (ground-truth) channel estimation, which assumes the whole transmitted
    /// signal is known.
    pub fn full_waveform(&self) -> &[Complex] {
        self.waveform.as_slice()
    }

    /// The chip stream of the PSDU only (the 8128 chips the paper's CER
    /// metric is computed over for 127-octet PSDUs).
    pub fn psdu_chips(&self) -> &[f64] {
        let start = (self.config.shr_symbols() + self.config.phr_symbols())
            * crate::config::CHIPS_PER_SYMBOL;
        &self.chips[start..]
    }

    /// Index of the first PSDU chip within the PPDU chip stream.
    pub fn psdu_chip_offset(&self) -> usize {
        (self.config.shr_symbols() + self.config.phr_symbols()) * crate::config::CHIPS_PER_SYMBOL
    }

    /// Total number of chips in the PPDU.
    pub fn n_chips(&self) -> usize {
        self.chips.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::PsduBuilder;
    use crate::oqpsk::waveform_len;

    #[test]
    fn waveform_dimensions_match_config() {
        let cfg = PhyConfig::short_packets(16);
        let frame = PsduBuilder::new(&cfg).build(42);
        let tx = modulate_frame(&cfg, &frame);
        assert_eq!(tx.n_chips(), cfg.total_chips());
        assert_eq!(
            tx.waveform.len(),
            waveform_len(cfg.total_chips(), cfg.samples_per_chip)
        );
        assert_eq!(tx.shr_waveform().len(), cfg.shr_samples());
    }

    #[test]
    fn psdu_chip_slice_has_expected_length() {
        let cfg = PhyConfig::default();
        let frame = PsduBuilder::new(&cfg).build(0);
        let tx = modulate_frame(&cfg, &frame);
        assert_eq!(tx.psdu_chips().len(), 8128);
        assert_eq!(tx.psdu_chip_offset() + 8128, tx.n_chips());
    }

    #[test]
    fn shr_waveform_is_prefix_of_full_waveform() {
        let cfg = PhyConfig::short_packets(8);
        let frame = PsduBuilder::new(&cfg).build(5);
        let tx = modulate_frame(&cfg, &frame);
        let shr = tx.shr_waveform();
        assert_eq!(shr, &tx.full_waveform()[..shr.len()]);
    }

    #[test]
    fn different_sequence_numbers_share_the_same_shr() {
        let cfg = PhyConfig::short_packets(8);
        let b = PsduBuilder::new(&cfg);
        let t1 = modulate_frame(&cfg, &b.build(1));
        let t2 = modulate_frame(&cfg, &b.build(2));
        assert_eq!(t1.shr_waveform(), t2.shr_waveform());
        assert_ne!(t1.full_waveform(), t2.full_waveform());
    }
}
