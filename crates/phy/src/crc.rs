//! CRC-16 frame check sequence.
//!
//! IEEE 802.15.4 protects the MAC payload with a 16-bit ITU-T CRC
//! (polynomial x¹⁶ + x¹² + x⁵ + 1, initial value 0, LSB-first processing).
//! The paper's packet-error-rate metric counts a packet as erroneous when
//! this FCS check fails after equalization and despreading, so the exact
//! same algorithm is used here on both the transmit and receive side.

/// Computes the IEEE 802.15.4 FCS over `data` (LSB-first, init 0x0000).
pub fn crc16_itu_t(data: &[u8]) -> u16 {
    let mut crc: u16 = 0x0000;
    for &byte in data {
        for bit in 0..8 {
            let in_bit = ((byte >> bit) & 1) as u16;
            let feedback = (crc & 1) ^ in_bit;
            crc >>= 1;
            if feedback == 1 {
                // x^16 + x^12 + x^5 + 1, reflected: 0x8408
                crc ^= 0x8408;
            }
        }
    }
    crc
}

/// Appends the 2-octet FCS (little-endian, as transmitted) to a payload.
pub fn append_fcs(payload: &[u8]) -> Vec<u8> {
    let crc = crc16_itu_t(payload);
    let mut out = payload.to_vec();
    out.push((crc & 0xFF) as u8);
    out.push((crc >> 8) as u8);
    out
}

/// Checks a PSDU whose last two octets are the FCS; returns `true` when the
/// checksum matches the payload.
pub fn check_fcs(psdu: &[u8]) -> bool {
    if psdu.len() < 2 {
        return false;
    }
    let (payload, fcs) = psdu.split_at(psdu.len() - 2);
    let expected = crc16_itu_t(payload);
    let received = fcs[0] as u16 | ((fcs[1] as u16) << 8);
    expected == received
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_check_passes() {
        let payload = b"veni vidi dixi: reliable wireless communication";
        let psdu = append_fcs(payload);
        assert_eq!(psdu.len(), payload.len() + 2);
        assert!(check_fcs(&psdu));
    }

    #[test]
    fn single_bit_flip_is_detected() {
        let payload: Vec<u8> = (0u8..40).collect();
        let psdu = append_fcs(&payload);
        for byte_idx in 0..psdu.len() {
            for bit in 0..8 {
                let mut corrupted = psdu.clone();
                corrupted[byte_idx] ^= 1 << bit;
                assert!(
                    !check_fcs(&corrupted),
                    "flip at {byte_idx}:{bit} not detected"
                );
            }
        }
    }

    #[test]
    fn burst_errors_are_usually_detected() {
        let payload: Vec<u8> = (0u8..100).collect();
        let psdu = append_fcs(&payload);
        let mut corrupted = psdu.clone();
        corrupted[10] ^= 0xFF;
        corrupted[11] ^= 0xFF;
        assert!(!check_fcs(&corrupted));
    }

    #[test]
    fn too_short_psdu_fails() {
        assert!(!check_fcs(&[]));
        assert!(!check_fcs(&[0x42]));
    }

    #[test]
    fn empty_payload_roundtrip() {
        let psdu = append_fcs(&[]);
        assert_eq!(psdu.len(), 2);
        assert!(check_fcs(&psdu));
    }

    #[test]
    fn known_vector_crc_of_zero_bytes() {
        // CRC of all-zero data with init 0 stays 0 for this polynomial.
        assert_eq!(crc16_itu_t(&[0x00, 0x00, 0x00]), 0x0000);
    }
}
