//! Half-sine-shaped Offset-QPSK chip modulation and matched-filter
//! demodulation.
//!
//! In the 2.4 GHz 802.15.4 PHY the 32-chip sequences are transmitted with
//! O-QPSK: even-indexed chips modulate the in-phase rail and odd-indexed
//! chips the quadrature rail, each chip shaped by a half-sine pulse of two
//! chip durations, with the rails offset by one chip duration.  The result
//! is the familiar MSK-like constant-envelope baseband signal that the USRP
//! in the paper captures at 8 MHz.
//!
//! Demodulation is the matched operation: correlate each rail with the
//! half-sine pulse at the chip positions and normalise, yielding soft ±1
//! chip values that the despreader correlates against the PN alphabet.

use vvd_dsp::{CVec, Complex};

/// Half-sine pulse of length `2 * samples_per_chip`:
/// `p[n] = sin(pi * n / (2 * spc))`.
pub fn half_sine_pulse(samples_per_chip: usize) -> Vec<f64> {
    let len = 2 * samples_per_chip;
    (0..len)
        .map(|n| (std::f64::consts::PI * n as f64 / len as f64).sin())
        .collect()
}

/// Number of baseband samples produced for `n_chips` chips.
///
/// The final chip's pulse extends one chip duration past the last chip
/// boundary, hence the `+ 1`.
pub fn waveform_len(n_chips: usize, samples_per_chip: usize) -> usize {
    (n_chips + 1) * samples_per_chip
}

/// Modulates a stream of antipodal chips (±1) into the complex baseband
/// O-QPSK waveform.
///
/// Chip `j` starts at sample `j * samples_per_chip`; even chips contribute to
/// the real (I) component and odd chips to the imaginary (Q) component.
pub fn modulate_chips(chips: &[f64], samples_per_chip: usize) -> CVec {
    assert!(samples_per_chip >= 2, "need at least 2 samples per chip");
    let pulse = half_sine_pulse(samples_per_chip);
    let mut out = CVec::zeros(waveform_len(chips.len(), samples_per_chip));
    for (j, &chip) in chips.iter().enumerate() {
        let start = j * samples_per_chip;
        for (n, &p) in pulse.iter().enumerate() {
            let v = chip * p;
            if j % 2 == 0 {
                out[start + n].re += v;
            } else {
                out[start + n].im += v;
            }
        }
    }
    out
}

/// Matched-filter demodulation back to soft chips.
///
/// For each chip position the corresponding rail is correlated with the
/// half-sine pulse and normalised by the pulse energy, so a clean waveform
/// returns exactly ±1 soft values.  `n_chips` chips are extracted; the
/// waveform must contain at least [`waveform_len`] samples (extra trailing
/// samples are ignored, missing ones are treated as zero).
pub fn demodulate_chips(waveform: &[Complex], n_chips: usize, samples_per_chip: usize) -> Vec<f64> {
    assert!(samples_per_chip >= 2, "need at least 2 samples per chip");
    let pulse = half_sine_pulse(samples_per_chip);
    let pulse_energy: f64 = pulse.iter().map(|p| p * p).sum();
    let mut out = Vec::with_capacity(n_chips);
    for j in 0..n_chips {
        let start = j * samples_per_chip;
        let mut acc = 0.0;
        for (n, &p) in pulse.iter().enumerate() {
            let idx = start + n;
            if idx >= waveform.len() {
                break;
            }
            let sample = waveform[idx];
            let rail = if j % 2 == 0 { sample.re } else { sample.im };
            acc += rail * p;
        }
        out.push(acc / pulse_energy);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pn::chip_sequence_bipolar;

    #[test]
    fn pulse_shape_properties() {
        let p = half_sine_pulse(4);
        assert_eq!(p.len(), 8);
        assert_eq!(p[0], 0.0);
        assert!((p[4] - 1.0).abs() < 1e-12);
        // Symmetric around the peak: p[n] == p[len - n] for the sine shape.
        assert!((p[1] - p[7]).abs() < 1e-12);
    }

    #[test]
    fn clean_roundtrip_recovers_chips_exactly() {
        let chips = chip_sequence_bipolar(0x9);
        for spc in [2usize, 4, 8] {
            let wave = modulate_chips(&chips, spc);
            assert_eq!(wave.len(), waveform_len(chips.len(), spc));
            let soft = demodulate_chips(&wave, chips.len(), spc);
            for (s, c) in soft.iter().zip(chips.iter()) {
                assert!((s - c).abs() < 1e-9, "spc={spc}: {s} vs {c}");
            }
        }
    }

    #[test]
    fn rails_do_not_interfere() {
        // An isolated even chip must produce no energy on the Q rail at its
        // own matched-filter position and vice versa.
        let mut chips = vec![0.0; 8];
        chips[2] = 1.0;
        let wave = modulate_chips(&chips, 4);
        let soft = demodulate_chips(&wave, 8, 4);
        assert!((soft[2] - 1.0).abs() < 1e-9);
        assert!(soft[3].abs() < 1e-9);
        assert!(soft[1].abs() < 1e-9);
    }

    #[test]
    fn amplitude_scales_linearly() {
        let chips = chip_sequence_bipolar(0x3);
        let wave = modulate_chips(&chips, 4).scale(0.25);
        let soft = demodulate_chips(&wave, chips.len(), 4);
        for (s, c) in soft.iter().zip(chips.iter()) {
            assert!((s - 0.25 * c).abs() < 1e-9);
        }
    }

    #[test]
    fn envelope_is_approximately_constant() {
        // O-QPSK with half-sine shaping is MSK-like: after the initial
        // transient the complex envelope magnitude stays near 1.
        let chips = chip_sequence_bipolar(0xB).repeat(4);
        let spc = 8;
        let wave = modulate_chips(&chips, spc);
        for n in (2 * spc)..(wave.len() - 2 * spc) {
            let mag = wave[n].abs();
            assert!(
                (0.65..=1.05).contains(&mag),
                "sample {n} magnitude {mag} outside constant-envelope band"
            );
        }
    }

    #[test]
    fn truncated_waveform_demodulates_partial_chips() {
        let chips = chip_sequence_bipolar(0x1);
        let wave = modulate_chips(&chips, 4);
        let soft = demodulate_chips(&wave.as_slice()[..40], 32, 4);
        assert_eq!(soft.len(), 32);
        // Early chips are intact, late chips degrade to 0 (no samples).
        assert!((soft[0] - chips[0]).abs() < 1e-9);
        assert_eq!(soft[31], 0.0);
    }
}
