//! PPDU framing.
//!
//! A transmitted packet (PPDU) consists of the synchronisation header
//! (4-octet all-zero preamble + SFD), the PHY header carrying the frame
//! length, and the PSDU.  The paper transmits 127-octet PSDUs whose payload
//! is identical across packets except for a sequence number and the CRC —
//! [`PsduBuilder`] reproduces exactly that construction so that consecutive
//! packets differ the same way they do in the original trace.

use crate::config::{PhyConfig, MAX_PSDU_OCTETS, PREAMBLE_OCTETS, SFD_OCTET};
use crate::crc::{append_fcs, check_fcs};
use crate::symbols::octets_to_symbols;
use serde::{Deserialize, Serialize};

/// A fully assembled PHY frame (PPDU) ready for spreading and modulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Sequence number embedded in the PSDU (mirrors the paper's per-packet
    /// sequence number).
    pub sequence_number: u16,
    /// PSDU octets, including the trailing 2-octet FCS.
    pub psdu: Vec<u8>,
}

impl Frame {
    /// Builds the complete over-the-air octet stream:
    /// preamble + SFD + PHR + PSDU.
    pub fn ppdu_octets(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(PREAMBLE_OCTETS + 2 + self.psdu.len());
        out.extend(std::iter::repeat_n(0u8, PREAMBLE_OCTETS));
        out.push(SFD_OCTET);
        // PHR: 7-bit frame length; the reserved MSB is zero.
        out.push((self.psdu.len() as u8) & 0x7F);
        out.extend_from_slice(&self.psdu);
        out
    }

    /// The over-the-air stream as 4-bit data symbols.
    pub fn ppdu_symbols(&self) -> Vec<u8> {
        octets_to_symbols(&self.ppdu_octets())
    }

    /// The data symbols of the PSDU only (used for the chip-error-rate
    /// metric, which the paper computes over the 8128 PSDU chips).
    pub fn psdu_symbols(&self) -> Vec<u8> {
        octets_to_symbols(&self.psdu)
    }

    /// Verifies the FCS of this frame's PSDU.
    pub fn fcs_ok(&self) -> bool {
        check_fcs(&self.psdu)
    }
}

/// Builds PSDUs that mimic the measurement campaign: constant payload body,
/// varying sequence number, valid FCS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PsduBuilder {
    psdu_octets: usize,
}

impl PsduBuilder {
    /// Creates a builder for the PSDU length configured in `cfg`.
    ///
    /// # Panics
    /// Panics if the configured PSDU length is below 4 (sequence number +
    /// FCS) or above the standard's 127-octet maximum.
    pub fn new(cfg: &PhyConfig) -> Self {
        assert!(
            (4..=MAX_PSDU_OCTETS).contains(&cfg.psdu_octets),
            "PSDU length must be in 4..=127 octets"
        );
        PsduBuilder {
            psdu_octets: cfg.psdu_octets,
        }
    }

    /// Builds the frame carrying `sequence_number`.
    ///
    /// Layout: `[seq_lo, seq_hi, body ..., fcs_lo, fcs_hi]` where the body is
    /// a fixed counter pattern — "all of the transmitted packets ... have the
    /// same payload except the sequence number and the CRC".
    pub fn build(&self, sequence_number: u16) -> Frame {
        let body_len = self.psdu_octets - 4;
        let mut payload = Vec::with_capacity(self.psdu_octets - 2);
        payload.push((sequence_number & 0xFF) as u8);
        payload.push((sequence_number >> 8) as u8);
        payload.extend((0..body_len).map(|i| (i as u8).wrapping_mul(37).wrapping_add(11)));
        Frame {
            sequence_number,
            psdu: append_fcs(&payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppdu_layout() {
        let cfg = PhyConfig::short_packets(8);
        let frame = PsduBuilder::new(&cfg).build(7);
        let ppdu = frame.ppdu_octets();
        assert_eq!(&ppdu[..4], &[0, 0, 0, 0]);
        assert_eq!(ppdu[4], 0xA7);
        assert_eq!(ppdu[5], 8);
        assert_eq!(ppdu.len(), 4 + 1 + 1 + 8);
        assert!(frame.fcs_ok());
    }

    #[test]
    fn frames_differ_only_in_sequence_and_fcs() {
        let cfg = PhyConfig::short_packets(16);
        let b = PsduBuilder::new(&cfg);
        let f1 = b.build(1);
        let f2 = b.build(2);
        assert_ne!(f1.psdu, f2.psdu);
        // Body (between sequence number and FCS) is identical.
        assert_eq!(&f1.psdu[2..14], &f2.psdu[2..14]);
        assert!(f1.fcs_ok() && f2.fcs_ok());
    }

    #[test]
    fn full_length_frame_has_8128_psdu_chips_worth_of_symbols() {
        let cfg = PhyConfig::default();
        let frame = PsduBuilder::new(&cfg).build(0);
        assert_eq!(frame.psdu.len(), 127);
        assert_eq!(frame.psdu_symbols().len(), 254);
        assert_eq!(frame.ppdu_symbols().len(), cfg.total_symbols());
    }

    #[test]
    #[should_panic]
    fn too_small_psdu_is_rejected() {
        let cfg = PhyConfig::short_packets(2);
        let _ = PsduBuilder::new(&cfg);
    }

    #[test]
    fn symbol_stream_starts_with_preamble_zero_symbols() {
        let cfg = PhyConfig::short_packets(8);
        let frame = PsduBuilder::new(&cfg).build(3);
        let symbols = frame.ppdu_symbols();
        assert!(symbols[..8].iter().all(|&s| s == 0));
        // SFD 0xA7 -> nibbles 0x7, 0xA.
        assert_eq!(symbols[8], 0x7);
        assert_eq!(symbols[9], 0xA);
    }
}
