//! Quarantined wall-clock access for serve observability.
//!
//! The engine runs on a simulated tick clock; wall time is *observability
//! only* ([`ServeReport::digest`](crate::ServeReport::digest) deliberately
//! excludes every timing statistic).  This module is the single place the
//! serve crate reads the wall clock, and it is registered in vvd-analyze's
//! `timing-modules` allowlist — an `Instant::now()` anywhere else in the
//! crate is a lint violation, which is how "wall time never influences
//! results" stays enforced while phase timings are still measured.

/// A started wall-clock timer (a minimal `Instant` wrapper).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(std::time::Instant);

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch(std::time::Instant::now())
    }

    /// Wall time elapsed since [`start`](Self::start).
    pub fn elapsed(&self) -> std::time::Duration {
        self.0.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic() {
        let sw = Stopwatch::start();
        let first = sw.elapsed();
        assert!(sw.elapsed() >= first);
    }
}
