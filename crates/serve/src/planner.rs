//! The cross-session inference planner.
//!
//! After the prepare phase of a tick, every due session holds at most one
//! [`VvdInferencePlan`](vvd_estimation::VvdInferencePlan): the NN forward
//! pass its estimator would have run inline.  The planner groups those
//! plans by the model's training-provenance [`ModelKey`] — equal keys mean
//! bit-identical weights, so the plans are interchangeable — and issues
//! *one* [`VvdModel::predict_batch`] call per distinct model per tick,
//! scattering the outputs back to their sessions in session-id order.
//!
//! This is where the serving layer wins: with `S` same-model sessions due
//! in a tick, the per-packet cost pays one batched GEMM-backed forward
//! pass instead of `S` single-image passes.  `predict_batch` is
//! bit-identical to per-image prediction (a pinned property of the kernel
//! layer), so batching is invisible in every decoded result — only in the
//! [`BatchCounters`].

use crate::session::LinkSession;
use std::collections::BTreeMap;
use vvd_core::{ModelKey, VvdModel};

/// Counters describing the planner's batching effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchCounters {
    /// Batched forward calls issued ([`VvdModel::predict_batch`] calls).
    pub batch_calls: u64,
    /// Images predicted across all batched calls.
    pub images: u64,
    /// Largest single batch.
    pub max_batch: usize,
}

impl BatchCounters {
    /// Mean images per batched call — the "batch occupancy".  An occupancy
    /// above 1 means the planner amortised forward passes across sessions;
    /// 0 when no inference ran at all.
    pub fn occupancy(&self) -> f64 {
        if self.batch_calls == 0 {
            0.0
        } else {
            self.images as f64 / self.batch_calls as f64
        }
    }

    /// Accumulates another tick's counters.
    pub fn absorb(&mut self, other: BatchCounters) {
        self.batch_calls += other.batch_calls;
        self.images += other.images;
        self.max_batch = self.max_batch.max(other.max_batch);
    }
}

/// One session's contribution to a tick's batch plan.
struct PlanItem {
    session: usize,
    model: VvdModel,
}

/// Groups the pending plans of all due sessions by model key, runs one
/// batched forward pass per distinct model, and injects each prediction
/// back into its session.  Returns the tick's batching counters.
///
/// Sessions are scanned and batched in session-id order and the groups in
/// `ModelKey` order, so the composition of every batch — and therefore the
/// counters — is deterministic and independent of shard count.
pub(crate) fn run_batched_inference(sessions: &mut [LinkSession]) -> BatchCounters {
    let mut groups: BTreeMap<ModelKey, Vec<PlanItem>> = BTreeMap::new();
    for (idx, session) in sessions.iter().enumerate() {
        if let Some((model, _)) = session.pending_plan() {
            groups.entry(model.key()).or_default().push(PlanItem {
                session: idx,
                model: model.clone(),
            });
        }
    }

    let mut counters = BatchCounters::default();
    for items in groups.into_values() {
        let predictions = {
            let images = items
                .iter()
                .map(|item| {
                    sessions[item.session]
                        .pending_plan()
                        .expect("plan items only exist for planning sessions")
                        .1
                })
                .collect::<Vec<_>>();
            items[0].model.predict_batch(images)
        };
        counters.batch_calls += 1;
        counters.images += items.len() as u64;
        counters.max_batch = counters.max_batch.max(items.len());
        for (item, prediction) in items.iter().zip(predictions) {
            sessions[item.session].inject_prediction(prediction);
        }
    }
    counters
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_is_images_per_call() {
        let mut c = BatchCounters::default();
        assert_eq!(c.occupancy(), 0.0);
        c.absorb(BatchCounters {
            batch_calls: 2,
            images: 10,
            max_batch: 7,
        });
        c.absorb(BatchCounters {
            batch_calls: 2,
            images: 2,
            max_batch: 1,
        });
        assert!((c.occupancy() - 3.0).abs() < 1e-12);
        assert_eq!(c.max_batch, 7);
    }
}
