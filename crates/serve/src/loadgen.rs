//! Synthetic multi-link traffic generation.
//!
//! A [`LoadGenerator`] turns a list of [`SessionSpec`]s into a ready-to-run
//! [`Workload`]: it validates every spec up front (no compute is spent on a
//! workload with an invalid cell), generates **one campaign per distinct
//! scenario spec** through the scenario registry (sessions of the same
//! environment share it behind an `Arc`), fits every session's estimator on
//! its combination's training sets, and resolves every VVD training through
//! **one shared content-addressed model cache** — so the hundreds of
//! sessions of a load run that share training provenance hold `Arc`-clones
//! of a single network.  That sharing is what the engine's planner exploits:
//! same-model sessions coalesce into one batched forward pass per tick.

use crate::session::{LinkSession, SessionSpec};
use crate::store::SessionStore;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use vvd_channel::scenario::SpecParseError;
use vvd_estimation::estimator::{TrainingContext, VvdModelPool};
use vvd_estimation::registry::SpecError;
use vvd_estimation::{EstimatorRegistry, ModelCache, Technique};
use vvd_testbed::stream::training_cirs;
use vvd_testbed::stream::CombinationDatasets;
use vvd_testbed::{combinations_for, Campaign, EvalConfig};

/// A workload failed to validate before anything was generated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeSpecError {
    /// A scenario spec was rejected by the scenario registry.
    Scenario(SpecParseError),
    /// An estimator spec was rejected by the estimator registry.
    Estimator(SpecError),
    /// A structural problem with a session spec (bad interval or
    /// combination index), described in plain text.
    Session(String),
}

impl fmt::Display for ServeSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeSpecError::Scenario(e) => write!(f, "{e}"),
            ServeSpecError::Estimator(e) => write!(f, "{e}"),
            ServeSpecError::Session(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ServeSpecError {}

impl From<SpecParseError> for ServeSpecError {
    fn from(e: SpecParseError) -> Self {
        ServeSpecError::Scenario(e)
    }
}

impl From<SpecError> for ServeSpecError {
    fn from(e: SpecError) -> Self {
        ServeSpecError::Estimator(e)
    }
}

/// A fully built, ready-to-serve workload.
pub struct Workload {
    /// The sessions, fitted and sharded-ready.
    pub store: SessionStore,
    /// The model cache shared by every session's training (its counters
    /// end up in the serve report).
    pub cache: ModelCache,
    /// The distinct campaigns, keyed by their scenario spec (in spec
    /// order).
    pub campaigns: Vec<(String, Arc<Campaign>)>,
}

/// Builds [`Workload`]s from session specs.
#[derive(Clone)]
pub struct LoadGenerator {
    config: EvalConfig,
    prebuilt: BTreeMap<String, Arc<Campaign>>,
}

impl LoadGenerator {
    /// A generator over the given campaign configuration.
    pub fn new(config: EvalConfig) -> Self {
        LoadGenerator {
            config,
            prebuilt: BTreeMap::new(),
        }
    }

    /// The campaign configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// Pre-seeds the campaign for a scenario spec, so repeated builds over
    /// the same environment (property tests, benches) skip regeneration.
    /// The campaign must have been generated from this generator's
    /// configuration and the given spec — the builder trusts the caller
    /// here.
    pub fn with_campaign(mut self, spec: impl Into<String>, campaign: Arc<Campaign>) -> Self {
        self.prebuilt.insert(spec.into(), campaign);
        self
    }

    /// Validates session specs without generating anything: scenario and
    /// estimator specs must parse, intervals must be non-zero, combination
    /// indices must be in range for this generator's configuration.
    ///
    /// [`build`](Self::build) performs exactly this validation before
    /// spending compute; the cross-process coordinator (`vvd-net`) calls it
    /// up front so an invalid workload is rejected before any worker
    /// process is spawned.
    ///
    /// # Errors
    /// Returns the first invalid scenario/estimator spec, zero interval or
    /// out-of-range combination index.
    pub fn validate(&self, specs: &[SessionSpec]) -> Result<(), ServeSpecError> {
        let registry = EstimatorRegistry::new();
        let scenario_registry =
            vvd_channel::scenario::ScenarioRegistry::new().with_cir_config(self.config.cir);
        let combos = combinations_for(self.config.n_sets, self.config.n_combinations);
        for spec in specs {
            registry.build(&spec.estimator)?;
            scenario_registry.build(&spec.scenario)?;
            if spec.interval_ticks == 0 {
                return Err(ServeSpecError::Session(format!(
                    "session `{}`/`{}` has a zero arrival interval",
                    spec.scenario, spec.estimator
                )));
            }
            if spec.combination >= combos.len() {
                return Err(ServeSpecError::Session(format!(
                    "combination index {} out of range (the configuration has {})",
                    spec.combination,
                    combos.len()
                )));
            }
        }
        Ok(())
    }

    /// Builds the workload: validate everything, generate one campaign per
    /// distinct scenario, fit every estimator (sharing trainings through
    /// one model cache), wire up the sessions.
    ///
    /// # Errors
    /// Returns the first invalid scenario/estimator spec, zero interval or
    /// out-of-range combination index — before any campaign is generated.
    pub fn build(&self, specs: &[SessionSpec]) -> Result<Workload, ServeSpecError> {
        let assigned: Vec<(usize, SessionSpec)> = specs.iter().cloned().enumerate().collect();
        self.build_assigned(&assigned, ModelCache::new())
    }

    /// Builds a workload over an explicitly identified session subset — the
    /// cross-process form of [`build`](Self::build).
    ///
    /// Each entry carries the session's *workload-global* id alongside its
    /// spec: a worker process building `[(1, a), (5, b)]` produces sessions
    /// whose ids, labels and traces are bit-identical to sessions 1 and 5
    /// of the full single-process build, so a coordinator can merge
    /// per-worker traces back into one report indistinguishable from the
    /// in-process run.  The caller supplies the model cache (workers attach
    /// the shared on-disk layer here, so same-provenance models train once
    /// cluster-wide).
    ///
    /// # Errors
    /// Same validation as [`build`](Self::build), over the subset.
    pub fn build_assigned(
        &self,
        assigned: &[(usize, SessionSpec)],
        cache: ModelCache,
    ) -> Result<Workload, ServeSpecError> {
        let subset: Vec<SessionSpec> = assigned.iter().map(|(_, s)| s.clone()).collect();
        self.validate(&subset)?;
        // Ids must be strictly increasing: the report assembler and the
        // checkpoint/resume machinery both index sessions by id order, so a
        // duplicated or shuffled assignment is a structural spec error.
        if let Some(pair) = assigned.windows(2).find(|pair| pair[1].0 <= pair[0].0) {
            return Err(ServeSpecError::Session(format!(
                "assigned session ids must be strictly increasing (got {} after {})",
                pair[1].0, pair[0].0
            )));
        }
        let registry = EstimatorRegistry::new();
        let combos = combinations_for(self.config.n_sets, self.config.n_combinations);

        // One campaign per distinct scenario spec; generation itself
        // validates the spec against the scenario registry.
        let mut campaigns: BTreeMap<String, Arc<Campaign>> = self.prebuilt.clone();
        for (_, spec) in assigned {
            if !campaigns.contains_key(&spec.scenario) {
                let campaign = Campaign::generate_spec(&self.config, &spec.scenario)?;
                campaigns.insert(spec.scenario.clone(), Arc::new(campaign));
            }
        }

        // Fit phase: sequential in session-id order (training through the
        // shared cache is deterministic, and same-provenance sessions after
        // the first are cache hits).
        let mut sessions = Vec::with_capacity(assigned.len());
        for (id, spec) in assigned {
            let (id, spec) = (*id, spec);
            let campaign = Arc::clone(&campaigns[&spec.scenario]);
            let combination = combos[spec.combination].clone();
            let cirs = training_cirs(&campaign, &combination);
            let source = CombinationDatasets::new(&campaign, &combination);
            let pool = VvdModelPool::with_cache(&self.config.vvd, &source, &cache);
            let mut estimator = registry.build(&spec.estimator)?;
            estimator.fit(&TrainingContext::new(&cirs).with_vvd(&pool));

            // Canonical techniques are labeled like the offline harness
            // labels them; anything else is keyed by its spec string.
            let label = spec
                .estimator
                .parse::<Technique>()
                .map(|t| t.label().to_string())
                .unwrap_or_else(|_| spec.estimator.trim().to_string());

            sessions.push(LinkSession::new(
                id,
                spec.scenario.clone(),
                label,
                campaign,
                combination,
                estimator,
                self.config.kalman_warmup_packets,
                spec.interval_ticks,
                spec.offset_ticks,
            ));
        }

        Ok(Workload {
            store: SessionStore::new(sessions),
            cache,
            campaigns: campaigns.into_iter().collect(),
        })
    }
}

/// A convenience mixed workload: `n` sessions cycling through the given
/// scenario and estimator spec lists, with heterogeneous arrival intervals
/// (1, 2 and 3 ticks) and staggered start offsets.
///
/// This is the canonical "many concurrent links" shape used by the serve
/// bench and the examples: sessions sharing a scenario share a campaign,
/// sessions sharing a VVD head share a trained network, and the interval
/// mix makes every tick's batch composition different.
///
/// Scenarios advance in blocks of two (`(i / 2) % scenarios.len()`) while
/// estimators advance every session: each estimator family is paired with
/// *every* scenario as `i` grows, so same-provenance models span the
/// round-robin worker partition and a cluster's shared disk cache is
/// actually exercised (strict per-index alternation would pin each
/// estimator family to one scenario whenever the list lengths share a
/// factor, privatising every model to a single worker).
pub fn mixed_session_specs(n: usize, scenarios: &[&str], estimators: &[&str]) -> Vec<SessionSpec> {
    assert!(
        !scenarios.is_empty() && !estimators.is_empty(),
        "mixed_session_specs needs at least one scenario and one estimator"
    );
    (0..n)
        .map(|i| {
            SessionSpec::new(
                scenarios[(i / 2) % scenarios.len()],
                estimators[i % estimators.len()],
            )
            .every((i % 3 + 1) as u64)
            .offset((i % 5) as u64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_specs_fail_before_generation() {
        let gen = LoadGenerator::new(EvalConfig::smoke());
        let bad_estimator = [SessionSpec::new("paper", "nonsense")];
        assert!(matches!(
            gen.build(&bad_estimator),
            Err(ServeSpecError::Estimator(_))
        ));
        let bad_scenario = [SessionSpec::new("warp-drive", "standard")];
        assert!(matches!(
            gen.build(&bad_scenario),
            Err(ServeSpecError::Scenario(_))
        ));
        let bad_interval = [SessionSpec::new("paper", "standard").every(0)];
        assert!(matches!(
            gen.build(&bad_interval),
            Err(ServeSpecError::Session(_))
        ));
        let bad_combo = [SessionSpec::new("paper", "standard").combination(99)];
        assert!(matches!(
            gen.build(&bad_combo),
            Err(ServeSpecError::Session(_))
        ));
    }

    #[test]
    fn assigned_ids_must_be_strictly_increasing() {
        let gen = LoadGenerator::new(EvalConfig::smoke());
        let spec = SessionSpec::new("paper", "standard");
        for bad in [
            vec![(1, spec.clone()), (1, spec.clone())],
            vec![(2, spec.clone()), (0, spec.clone())],
        ] {
            assert!(matches!(
                gen.build_assigned(&bad, ModelCache::new()),
                Err(ServeSpecError::Session(_))
            ));
        }
    }

    #[test]
    fn mixed_specs_cycle_and_stagger() {
        let specs = mixed_session_specs(7, &["paper", "rayleigh:doppler=10"], &["ground-truth"]);
        assert_eq!(specs.len(), 7);
        assert_eq!(specs[0].scenario, "paper");
        assert_eq!(specs[1].scenario, "paper");
        assert_eq!(specs[2].scenario, "rayleigh:doppler=10");
        assert_eq!(specs[4].scenario, "paper");
        assert!(specs.iter().all(|s| s.interval_ticks >= 1));
        assert!(specs
            .iter()
            .any(|s| s.interval_ticks != specs[0].interval_ticks));
    }
}
