//! Link sessions: the unit of state the serving engine multiplexes.
//!
//! One [`LinkSession`] is one tracked radio link — a fitted
//! [`ChannelEstimator`](vvd_estimation::ChannelEstimator) streaming the
//! packets of its campaign's test set in transmission order, exactly like
//! the offline pipeline in `vvd_testbed::stream` does, but split into the
//! two halves the engine interleaves across sessions:
//!
//! 1. [`LinkSession::prepare`] — regenerate the due packet's received
//!    waveform, fit its preamble LS estimate, and ask the estimator for its
//!    [`VvdInferencePlan`] (the NN forward pass it would run inline);
//! 2. [`LinkSession::complete`] — decode the packet with
//!    `estimate_with_vvd` (consuming the batch-computed prediction, when
//!    one was planned), score it, and feed the estimator its observation.
//!
//! Between the two halves the engine's planner coalesces all sessions'
//! plans into per-model `predict_batch` calls.  Because batched prediction
//! is bit-identical to per-image prediction and sessions share no mutable
//! state, every session's trace is bit-identical to running that session
//! alone through `vvd_testbed::stream::stream_estimators` — regardless of
//! how many other sessions were in flight, in which order packets arrived,
//! or how many shards the store ran on.

use crate::checkpoint::{CheckpointError, SessionCheckpoint};
use std::sync::Arc;
use vvd_core::VvdModel;
use vvd_dsp::{CVec, FirFilter};
use vvd_estimation::decode::decode_with_reference;
use vvd_estimation::estimator::{
    BoxedEstimator, Estimate, EstimateRequest, FrameSource, PacketObservation, VvdInferencePlan,
};
use vvd_estimation::ls::preamble_estimate;
use vvd_estimation::phase::align_mean_phase;
use vvd_estimation::EqualizerConfig;
use vvd_phy::{DecodeOutcome, ModulatedFrame, Receiver};
use vvd_testbed::stream::EstimatorTrace;
use vvd_testbed::{Campaign, FrameRecord, SetCombination};
use vvd_vision::DepthImage;

/// Declarative description of one link session of a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSpec {
    /// Scenario spec string of the link's environment (sessions with equal
    /// specs share one generated campaign).
    pub scenario: String,
    /// Estimator spec string (anything the
    /// [`EstimatorRegistry`](vvd_estimation::EstimatorRegistry) builds).
    pub estimator: String,
    /// Packet arrival period in engine ticks (≥ 1).
    pub interval_ticks: u64,
    /// Tick of the first packet arrival.
    pub offset_ticks: u64,
    /// Index of the campaign set combination the session streams
    /// (`< EvalConfig::n_combinations`).
    pub combination: usize,
}

impl SessionSpec {
    /// A session over the given scenario and estimator specs, with one
    /// packet per tick starting at tick 0 on combination 0.
    pub fn new(scenario: impl Into<String>, estimator: impl Into<String>) -> Self {
        SessionSpec {
            scenario: scenario.into(),
            estimator: estimator.into(),
            interval_ticks: 1,
            offset_ticks: 0,
            combination: 0,
        }
    }

    /// Sets the arrival period in ticks.
    pub fn every(mut self, ticks: u64) -> Self {
        self.interval_ticks = ticks;
        self
    }

    /// Sets the first-arrival tick.
    pub fn offset(mut self, ticks: u64) -> Self {
        self.offset_ticks = ticks;
        self
    }

    /// Sets the set-combination index the session streams.
    pub fn combination(mut self, index: usize) -> Self {
        self.combination = index;
        self
    }
}

/// [`FrameSource`] over a measurement set's frame records (the serving
/// counterpart of the private adapter in `vvd_testbed::stream`).
struct SetFrames<'a>(&'a [FrameRecord]);

impl FrameSource for SetFrames<'_> {
    fn frame(&self, index: usize) -> &DepthImage {
        &self.0[index].image
    }
    fn n_frames(&self) -> usize {
        self.0.len()
    }
}

/// The estimator-independent DSP products of one packet: its regenerated
/// received waveform and preamble LS fit.
///
/// These are pure functions of the `Arc`-shared immutable campaign and the
/// packet index — no estimator state involved — which is what lets the
/// tick pipeline synthesize them for tick T+1 on scope threads while tick
/// T's batch infers: whenever they are computed, the bits are the same.
pub(crate) struct SynthesizedPacket {
    /// The packet (cursor) index the products belong to.
    pub packet_index: usize,
    /// The regenerated transmitted frame.
    pub tx: ModulatedFrame,
    /// The regenerated received waveform.
    pub received: CVec,
    /// The preamble LS channel fit (when the solve succeeded).
    pub preamble_est: Option<FirFilter>,
}

/// Regenerates packet DSP products from campaign data — the single
/// synthesis routine shared by the inline [`LinkSession::prepare`] path
/// and the pipelined prefetch path, so both produce identical bits by
/// construction.
pub(crate) fn synthesize_packet(
    campaign: &Campaign,
    set: usize,
    record_index: usize,
    taps: usize,
    packet_index: usize,
) -> SynthesizedPacket {
    let (tx, received) = campaign.received_waveform(set, record_index);
    let preamble_est = preamble_estimate(&tx, received.as_slice(), taps).ok();
    SynthesizedPacket {
        packet_index,
        tx,
        received,
        preamble_est,
    }
}

/// Everything [`LinkSession::prepare`] computed for the due packet, handed
/// through the planner to [`LinkSession::complete`].
struct PendingPacket {
    packet_index: usize,
    score: bool,
    /// `(tx, received, preamble LS estimate)` — present iff the packet is
    /// scored or the estimator wants preamble observations (mirroring the
    /// regeneration policy of the offline streaming core).
    regen: Option<(ModulatedFrame, CVec, Option<FirFilter>)>,
    /// The NN forward pass the estimator would run inline, if any.
    plan: Option<VvdInferencePlan>,
    /// The batch-computed output of `plan`, injected by the planner.
    prediction: Option<FirFilter>,
}

/// One live link session: a fitted estimator plus its streaming cursor and
/// accumulated trace.
pub struct LinkSession {
    id: usize,
    scenario: String,
    label: String,
    campaign: Arc<Campaign>,
    combination: SetCombination,
    estimator: BoxedEstimator,
    wants_preamble: bool,
    score_from: usize,
    interval: u64,
    next_due: u64,
    cursor: usize,
    pending: Option<PendingPacket>,
    /// DSP products the tick pipeline synthesized ahead of time for the
    /// next due packet.  Transient and recomputable: never checkpointed,
    /// consumed (or dropped) by the next [`prepare`](Self::prepare).
    prefetched: Option<SynthesizedPacket>,
    trace: EstimatorTrace,
}

impl LinkSession {
    /// Wires up a session from its fitted estimator and shared campaign.
    ///
    /// The estimator must already be fitted on the combination's training
    /// sets (the [`LoadGenerator`](crate::LoadGenerator) does this, sharing
    /// trainings through one model cache so that same-provenance sessions
    /// hold `Arc`-clones of one network).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: usize,
        scenario: String,
        label: String,
        campaign: Arc<Campaign>,
        combination: SetCombination,
        estimator: BoxedEstimator,
        score_from: usize,
        interval: u64,
        offset: u64,
    ) -> Self {
        let wants_preamble = estimator.wants_preamble_observations();
        LinkSession {
            id,
            scenario,
            label: label.clone(),
            campaign,
            combination,
            estimator,
            wants_preamble,
            score_from,
            interval: interval.max(1),
            next_due: offset,
            cursor: 0,
            pending: None,
            prefetched: None,
            trace: EstimatorTrace {
                label,
                scored: Vec::new(),
                estimates: Vec::new(),
                truths: Vec::new(),
                per_packet: Vec::new(),
            },
        }
    }

    /// The session's workload-wide identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The scenario spec the session's campaign was generated from.
    pub fn scenario(&self) -> &str {
        &self.scenario
    }

    /// The label the session's results are reported under.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of test packets this session streams in total.
    pub fn total_packets(&self) -> usize {
        self.campaign.set(self.combination.test).packets.len()
    }

    /// `true` once every test packet has been streamed.
    pub fn finished(&self) -> bool {
        self.cursor >= self.total_packets()
    }

    /// The tick of the session's next packet arrival (meaningless once
    /// [`finished`](Self::finished)).
    pub fn next_due(&self) -> u64 {
        self.next_due
    }

    /// `true` when a packet of this session is due at `tick`.
    pub fn due(&self, tick: u64) -> bool {
        !self.finished() && self.next_due <= tick
    }

    /// `true` when [`prepare`](Self::prepare) ran and
    /// [`complete`](Self::complete) has not yet consumed its output.
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// The streaming position `(cursor, next_due)` the session will hold
    /// *after* its pending packet (if any) commits.
    ///
    /// [`complete`](Self::complete) advances the cursor by exactly one and
    /// the due tick by exactly one interval, so mid-tick — after the
    /// prepare phase has set every due session's pending flag — the next
    /// tick's due set is fully determined by this projection.  That is the
    /// lookahead the tick pipeline plans its prefetch from.
    pub(crate) fn position_after_commit(&self) -> (usize, u64) {
        if self.pending.is_some() {
            (self.cursor + 1, self.next_due + self.interval)
        } else {
            (self.cursor, self.next_due)
        }
    }

    /// `true` when packet `k` needs its waveform regenerated (it is scored
    /// or the estimator consumes preamble observations) — the exact
    /// condition [`prepare`](Self::prepare) regenerates under, exposed so
    /// the pipeline only synthesizes products that will be consumed.
    pub(crate) fn needs_regen(&self, k: usize) -> bool {
        k >= self.score_from || self.wants_preamble
    }

    /// The plain-data inputs a prefetch job needs to synthesize packet `k`
    /// off-thread: `(campaign, test-set index, frame-record index, LS
    /// taps)`.  All `Arc`-shared or `Copy`, so jobs never borrow the
    /// session while the engine mutates it.
    pub(crate) fn synth_inputs(&self, k: usize) -> (Arc<Campaign>, usize, usize, usize) {
        let test_set = self.campaign.set(self.combination.test);
        (
            Arc::clone(&self.campaign),
            self.combination.test,
            test_set.packets[k].index,
            self.campaign.config.equalizer.channel_taps,
        )
    }

    /// Hands the session a pipeline-synthesized product for its next due
    /// packet; the next [`prepare`](Self::prepare) consumes it instead of
    /// recomputing (or drops it if the index does not match).
    pub(crate) fn stash_synthesized(&mut self, product: SynthesizedPacket) {
        self.prefetched = Some(product);
    }

    /// The accumulated trace (borrowed; see
    /// [`into_trace`](Self::into_trace) for the owned form).
    pub fn trace(&self) -> &EstimatorTrace {
        &self.trace
    }

    /// Consumes the session, returning its trace.
    pub fn into_trace(self) -> EstimatorTrace {
        self.trace
    }

    /// Snapshots the session's streaming state (cursor, next-due tick,
    /// accumulated trace, estimator state) as a [`SessionCheckpoint`].
    ///
    /// Only valid at a tick boundary: a session holding a
    /// prepared-but-uncompleted packet cannot be snapshotted (the pending
    /// half-state is deliberately not serializable).
    pub(crate) fn checkpoint(&self) -> Result<SessionCheckpoint, CheckpointError> {
        if self.pending.is_some() {
            return Err(CheckpointError::MidTick { session: self.id });
        }
        Ok(SessionCheckpoint {
            id: self.id,
            scenario: self.scenario.clone(),
            label: self.label.clone(),
            interval: self.interval,
            next_due: self.next_due,
            cursor: self.cursor,
            estimator: self.estimator.save_state(),
            trace: self.trace.clone(),
        })
    }

    /// Restores a freshly built (and freshly *fitted*) session to the
    /// checkpointed streaming position.
    ///
    /// The checkpoint carries only streaming state; the fit products
    /// (Kalman AR coefficients, VVD weights) were already re-derived by
    /// the load generator — deterministically, or rehydrated through the
    /// model cache — before this runs.  The identity fields pin that the
    /// rebuilt session really is the checkpointed one.
    pub(crate) fn restore(&mut self, ckpt: &SessionCheckpoint) -> Result<(), CheckpointError> {
        let mismatch = |context: String| CheckpointError::SessionMismatch {
            session: ckpt.id,
            context,
        };
        if self.id != ckpt.id {
            return Err(mismatch(format!("id {} in the rebuilt workload", self.id)));
        }
        if self.scenario != ckpt.scenario {
            return Err(mismatch(format!(
                "scenario {:?} vs checkpointed {:?}",
                self.scenario, ckpt.scenario
            )));
        }
        if self.label != ckpt.label || self.trace.label != ckpt.trace.label {
            return Err(mismatch(format!(
                "label {:?} vs checkpointed {:?}",
                self.label, ckpt.label
            )));
        }
        if self.interval != ckpt.interval {
            return Err(mismatch(format!(
                "interval {} vs checkpointed {}",
                self.interval, ckpt.interval
            )));
        }
        if ckpt.cursor > self.total_packets() {
            return Err(mismatch(format!(
                "cursor {} beyond the campaign's {} test packets",
                ckpt.cursor,
                self.total_packets()
            )));
        }
        self.estimator
            .load_state(&ckpt.estimator)
            .map_err(|error| CheckpointError::State {
                session: ckpt.id,
                error,
            })?;
        self.next_due = ckpt.next_due;
        self.cursor = ckpt.cursor;
        self.trace = ckpt.trace.clone();
        Ok(())
    }

    /// Phase 1 of serving the due packet: regenerate its waveform, fit the
    /// preamble LS estimate, and record the estimator's inference plan.
    ///
    /// # Panics
    /// Panics when no packet is due (the engine only calls this for due
    /// sessions) or when a pending packet was never completed.
    pub fn prepare(&mut self, tick: u64) {
        assert!(self.due(tick), "prepare() without a due packet");
        assert!(
            self.pending.is_none(),
            "prepare() with an unconsumed pending packet"
        );
        let k = self.cursor;
        let score = k >= self.score_from;
        let test_set = self.campaign.set(self.combination.test);
        let record = &test_set.packets[k];

        let regen = if score || self.wants_preamble {
            // Consume the pipeline-synthesized product when it matches;
            // synthesize inline otherwise.  Both paths run the same
            // routine on the same immutable inputs, so the bits are
            // identical either way — prefetching is pure scheduling.
            let product = match self.prefetched.take() {
                Some(p) if p.packet_index == k => p,
                _ => {
                    let taps = self.campaign.config.equalizer.channel_taps;
                    synthesize_packet(&self.campaign, self.combination.test, record.index, taps, k)
                }
            };
            Some((product.tx, product.received, product.preamble_est))
        } else {
            self.prefetched = None;
            None
        };

        // The inference plan is only collected for packets the engine will
        // actually decode — unscored (warm-up) packets never call
        // `estimate` in the offline pipeline either.
        let plan = if score {
            let (_, _, preamble_est) = regen.as_ref().expect("scored packets are regenerated");
            let frames = SetFrames(&test_set.frames);
            let request = EstimateRequest {
                packet_index: k,
                perfect_cir: &record.perfect_cir,
                preamble_estimate: preamble_est.as_ref(),
                preamble_detected: record.preamble_detected,
                frame_index: record.frame_index,
                frames: &frames,
            };
            self.estimator.vvd_plan(&request)
        } else {
            None
        };

        self.pending = Some(PendingPacket {
            packet_index: k,
            score,
            regen,
            plan,
            prediction: None,
        });
    }

    /// The pending inference plan, as `(model, input image)` — what the
    /// planner groups by [`VvdModel::key`] into batched forward passes.
    pub(crate) fn pending_plan(&self) -> Option<(&VvdModel, &DepthImage)> {
        let pending = self.pending.as_ref()?;
        let plan = pending.plan.as_ref()?;
        let test_set = self.campaign.set(self.combination.test);
        Some((&plan.model, &test_set.frames[plan.frame_index].image))
    }

    /// Hands the session the batch-computed output of its pending plan.
    ///
    /// # Panics
    /// Panics when no plan is pending — predictions must match plans
    /// one-to-one.
    pub(crate) fn inject_prediction(&mut self, prediction: FirFilter) {
        let pending = self
            .pending
            .as_mut()
            .expect("inject_prediction() without a pending packet");
        assert!(
            pending.plan.is_some(),
            "inject_prediction() without a pending plan"
        );
        pending.prediction = Some(prediction);
    }

    /// Phase 2 of serving the due packet: decode (consuming the injected
    /// prediction when one was planned), score, observe, advance.
    ///
    /// The per-packet arithmetic is copied from the offline streaming core
    /// (`vvd_testbed::stream`), which is what makes serve traces
    /// bit-comparable to [`stream_estimators`] ones.
    ///
    /// [`stream_estimators`]: vvd_testbed::stream::stream_estimators
    ///
    /// # Panics
    /// Panics when [`prepare`](Self::prepare) has not run for this packet.
    pub fn complete(&mut self) {
        let pending = self
            .pending
            .take()
            .expect("complete() without a prepared packet");
        let k = pending.packet_index;
        let cfg = &self.campaign.config;
        let eq = cfg.equalizer;
        let test_set = self.campaign.set(self.combination.test);
        let record = &test_set.packets[k];
        let frames = SetFrames(&test_set.frames);

        if pending.score {
            let receiver = Receiver::new(cfg.phy);
            let (tx, received, preamble_est) = pending
                .regen
                .as_ref()
                .expect("scored packets are regenerated");
            let request = EstimateRequest {
                packet_index: k,
                perfect_cir: &record.perfect_cir,
                preamble_estimate: preamble_est.as_ref(),
                preamble_detected: record.preamble_detected,
                frame_index: record.frame_index,
                frames: &frames,
            };
            match self
                .estimator
                .estimate_with_vvd(&request, pending.prediction.as_ref())
            {
                Estimate::Bypass => {
                    let offset = receiver.synchronize(received.as_slice(), tx).offset;
                    let outcome = receiver.decode_standard(&received.as_slice()[offset..], tx);
                    self.trace.scored.push(outcome);
                    self.trace.per_packet.push(outcome);
                }
                Estimate::Ready { cir, align_phase } => {
                    let config = EqualizerConfig {
                        align_phase: align_phase && eq.align_phase,
                        ..eq
                    };
                    let outcome = decode_with_reference(
                        &receiver,
                        tx,
                        received.as_slice(),
                        &cir,
                        preamble_est.as_ref(),
                        &config,
                    );
                    self.trace.scored.push(outcome);
                    self.trace.per_packet.push(outcome);
                    let aligned = match (config.align_phase, preamble_est.as_ref()) {
                        (true, Some(reference)) => align_mean_phase(&cir, reference).0,
                        _ => cir.clone(),
                    };
                    self.trace.estimates.push(aligned);
                    self.trace.truths.push(record.perfect_cir.clone());
                }
                Estimate::Lost => {
                    let outcome =
                        DecodeOutcome::lost(tx.psdu_chips().len(), tx.frame.psdu_symbols().len());
                    self.trace.scored.push(outcome);
                    self.trace.per_packet.push(outcome);
                }
                Estimate::Skip => {
                    self.trace.per_packet.push(DecodeOutcome::lost(0, 0));
                }
            }
        }

        let observation = PacketObservation {
            perfect_cir: &record.perfect_cir,
            aligned_cir: &record.aligned_cir,
            preamble_estimate: if self.wants_preamble {
                pending.regen.as_ref().and_then(|(_, _, pre)| pre.as_ref())
            } else {
                None
            },
        };
        self.estimator.observe(&observation);

        self.cursor += 1;
        self.next_due += self.interval;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_sets_every_knob() {
        let spec = SessionSpec::new("paper", "ground-truth")
            .every(3)
            .offset(7)
            .combination(1);
        assert_eq!(spec.scenario, "paper");
        assert_eq!(spec.estimator, "ground-truth");
        assert_eq!(spec.interval_ticks, 3);
        assert_eq!(spec.offset_ticks, 7);
        assert_eq!(spec.combination, 1);
    }
}
