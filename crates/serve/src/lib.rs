//! # vvd-serve
//!
//! A deterministic, event-driven multi-link serving engine for the Veni
//! Vidi Dixi reproduction — the layer that runs VVD *online*: a base
//! station tracking many concurrent links, each feeding camera frames and
//! packet preambles into its own streaming
//! [`ChannelEstimator`](vvd_estimation::ChannelEstimator) in real time.
//!
//! The offline harness in `vvd-testbed` streams one combination's test set
//! through a list of estimators; this crate turns that inside out and
//! multiplexes *thousands of sessions* over shared compute:
//!
//! * [`SessionSpec`] / [`LoadGenerator`] — declarative workloads: each
//!   session names a scenario spec (its radio environment, one generated
//!   campaign per distinct spec, `Arc`-shared), an estimator spec, an
//!   arrival interval and a start offset.  Every VVD training resolves
//!   through one shared content-addressed model cache, so same-provenance
//!   sessions hold `Arc`-clones of a single trained network.
//! * [`SessionStore`] — owns the [`LinkSession`]s and shards each engine
//!   phase over `std::thread::scope` workers.
//! * The **tick pipeline** (`VVD_PIPELINE`, on by default) — double
//!   buffering across ticks: while tick T's coalesced batch infers, scope
//!   threads synthesize tick T+1's estimator-independent DSP products
//!   (waveform regeneration + preamble LS), which the next prepare phase
//!   consumes in tick order.  Pure scheduling: every digest is
//!   bit-identical with the pipeline on or off, which the pipeline golden
//!   pins at shard counts 1/2/8 and cluster sizes 1/2/4.
//! * The **inference planner** (`BatchCounters` and friends) — coalesces
//!   the NN forward passes all due sessions would run this tick, grouped
//!   by the model's training-provenance
//!   [`ModelKey`](vvd_core::ModelKey), into one
//!   [`predict_batch`](vvd_core::VvdModel::predict_batch) call per
//!   distinct model, amortising the cost that dominates per-packet CPU
//!   time.
//! * [`checkpoint`] — session durability: versioned binary
//!   [`EngineCheckpoint`] frames carrying every session's *streaming*
//!   state (cursor, trace, estimator state) across process boundaries,
//!   with in-memory and on-disk [`CheckpointStore`]s.  Resuming from a
//!   checkpoint is bit-identical to never having stopped, because fit
//!   products are re-derived deterministically by the load generator and
//!   only streaming position is restored.
//! * [`serve`] / [`ServeReport`] — the tick loop and its accounting:
//!   per-session PER/CER/MSE, throughput, batch occupancy and model-cache
//!   counters, plus a stable outcome [`digest`](ServeReport::digest).
//!
//! # Determinism
//!
//! Serving is bit-identical to the offline pipeline by construction:
//! sessions share no mutable state, each engine phase visits each session
//! exactly once, and batched prediction is bit-identical to per-image
//! prediction (a pinned kernel-layer property) — so shard counts, arrival
//! orders and batch compositions are invisible in every decoded result.
//! `tests/serve_golden.rs` pins serve traces against
//! [`stream_estimators`](vvd_testbed::stream::stream_estimators) at shard
//! counts 1, 2 and 8, and `tests/serve_properties.rs` holds the report
//! digest fixed under randomised workloads.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod checkpoint;
pub mod engine;
pub mod loadgen;
mod pipeline;
pub mod planner;
pub mod report;
pub mod session;
pub mod store;
pub mod timing;

pub use checkpoint::{
    load_checkpoint_file, CheckpointError, CheckpointStore, DirCheckpointStore, EngineCheckpoint,
    MemoryCheckpointStore, SessionCheckpoint, CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
pub use engine::{serve, ServeEngine, ServeOptions};
pub use loadgen::{mixed_session_specs, LoadGenerator, ServeSpecError, Workload};
pub use planner::BatchCounters;
pub use report::{PhaseTimings, ReportAssemblyError, ServeReport, SessionReport};
pub use session::{LinkSession, SessionSpec};
pub use store::SessionStore;
