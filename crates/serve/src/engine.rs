//! The event-driven serving loop.
//!
//! [`serve`] drains a [`Workload`] tick by tick.  A tick is one instant of
//! the arrival schedule at which at least one session has a packet due —
//! empty instants are skipped, so the number of loop iterations is
//! bounded by the number of distinct arrival instants (each iteration
//! still scans every session for a cheap due/pending check; a due-tick
//! priority queue is the natural upgrade once idle sessions dominate).
//! Each tick runs three phases:
//!
//! 1. **Prepare** (parallel over shards): every due session regenerates
//!    its packet's waveform, fits the preamble LS estimate and surfaces
//!    its NN inference plan — the per-packet work that dominates CPU cost
//!    besides the forward pass itself.
//! 2. **Plan + batch** (sequential): the planner groups all plans by model
//!    key and issues one `predict_batch` per distinct model
//!    (`crate::planner`), scattering predictions back.
//! 3. **Complete** (parallel over shards): every due session decodes with
//!    the injected prediction, scores the packet and observes it.
//!
//! # Determinism
//!
//! Every number the loop produces is independent of the shard count *and*
//! of the arrival schedule: sessions share no mutable state, each phase
//! visits each session exactly once, batch composition only affects how
//! predictions are grouped — never their values (`predict_batch` is
//! bit-identical to per-image prediction) — and traces are kept per
//! session.  The serve golden test pins this down against the offline
//! streaming pipeline at shard counts 1, 2 and 8.

use crate::loadgen::Workload;
use crate::planner::{run_batched_inference, BatchCounters};
use crate::report::ServeReport;
use std::time::Instant;

/// Execution options of a serve run.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Number of shards (worker threads) the session store fans out over.
    /// The default follows `vvd_dsp::worker_budget()` (the `VVD_WORKERS`
    /// override included); any value produces bit-identical results.
    pub shards: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            shards: vvd_dsp::worker_budget(),
        }
    }
}

/// Runs the workload to completion and reports what happened.
pub fn serve(workload: Workload, options: &ServeOptions) -> ServeReport {
    let Workload {
        mut store, cache, ..
    } = workload;
    let shards = options.shards.max(1);

    // vvd-allow: wall-clock — observability only; `ServeReport::digest()` excludes timing
    let started = Instant::now();
    let mut ticks = 0u64;
    let mut batches = BatchCounters::default();

    while let Some(tick) = store.next_due_tick() {
        // Phase 1: prepare every due session's packet (sharded).
        store.for_each_sharded(shards, |session| {
            if session.due(tick) {
                session.prepare(tick);
            }
        });

        // Phase 2: one batched forward pass per distinct model.
        batches.absorb(run_batched_inference(store.sessions_mut()));

        // Phase 3: decode, score, observe (sharded).
        store.for_each_sharded(shards, |session| {
            if session.has_pending() {
                session.complete();
            }
        });

        ticks += 1;
    }
    let wall = started.elapsed();

    let sessions = store.into_sessions();
    let meta: Vec<(usize, String, String, usize)> = sessions
        .iter()
        .map(|s| {
            (
                s.id(),
                s.scenario().to_string(),
                s.label().to_string(),
                s.total_packets(),
            )
        })
        .collect();
    let traces = sessions
        .into_iter()
        .map(|s| s.into_trace())
        .collect::<Vec<_>>();

    ServeReport::assemble(meta, traces, ticks, batches, cache.stats(), wall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::LoadGenerator;
    use crate::session::SessionSpec;
    use vvd_testbed::EvalConfig;

    fn tiny_config() -> EvalConfig {
        let mut cfg = EvalConfig::smoke();
        cfg.n_sets = 3;
        cfg.packets_per_set = 12;
        cfg.kalman_warmup_packets = 2;
        cfg
    }

    fn cheap_specs() -> Vec<SessionSpec> {
        vec![
            SessionSpec::new("paper", "ground-truth"),
            SessionSpec::new("paper", "previous:100ms").every(2),
            SessionSpec::new("paper", "standard").every(3).offset(4),
            SessionSpec::new("rayleigh:doppler=10", "preamble:genie")
                .every(2)
                .offset(1),
        ]
    }

    #[test]
    fn serve_drains_every_session_and_reports_consistently() {
        let cfg = tiny_config();
        let workload = LoadGenerator::new(cfg).build(&cheap_specs()).unwrap();
        let report = serve(workload, &ServeOptions { shards: 2 });

        assert_eq!(report.sessions.len(), 4);
        let per_session = cfg.packets_per_set;
        for s in &report.sessions {
            assert_eq!(s.packets_streamed, per_session);
            assert!((0.0..=1.0).contains(&s.per));
        }
        assert_eq!(report.packets_streamed, 4 * per_session as u64);
        // Only non-empty ticks are processed: at least one tick per
        // arrival of the slowest session, at most the full schedule span
        // of the slowest session (every 3 ticks from offset 4).
        assert!(report.ticks >= per_session as u64);
        assert!(report.ticks <= 4 + 3 * (per_session as u64 - 1) + 1);
        assert!(report.packets_per_tick() > 0.0);
        // No VVD estimator in the mix: the planner never ran.
        assert_eq!(report.batches.batch_calls, 0);
        assert_eq!(report.batch_occupancy(), 0.0);
    }

    #[test]
    fn shard_count_and_arrival_schedule_do_not_change_the_digest() {
        let cfg = tiny_config();
        let gen = LoadGenerator::new(cfg);
        let base = serve(
            gen.build(&cheap_specs()).unwrap(),
            &ServeOptions { shards: 1 },
        );
        // Different shard count.
        let sharded = serve(
            gen.build(&cheap_specs()).unwrap(),
            &ServeOptions { shards: 3 },
        );
        assert_eq!(base.digest(), sharded.digest());
        // Different arrival schedule (all sessions burst at tick 0, one
        // packet per tick): same outcomes, different timing.
        let burst: Vec<SessionSpec> = cheap_specs()
            .into_iter()
            .map(|s| s.every(1).offset(0))
            .collect();
        let bursty = serve(gen.build(&burst).unwrap(), &ServeOptions { shards: 2 });
        assert_eq!(base.digest(), bursty.digest());
        assert!(bursty.ticks < base.ticks);
    }
}
